// E4 (paper §3.4): bootstrap cost — TAdds and well-known addresses.
//
// Claims reproduced:
//   * a module comes up with NO special initial-connection protocol: the
//     ordinary LCM/IP/ND machinery plus a self-assigned TAdd and the
//     well-known table carry the first registration;
//   * TAdds are purged "within the first two communications with the Name
//     Server" (measured: promotions happen, and the module's very next
//     call uses its real UAdd).
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct BootRig {
  core::Testbed tb;
  std::uint64_t counter = 0;

  BootRig() {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
  }
};

BootRig& rig() {
  static BootRig r;
  return r;
}

/// Full module bring-up: bind endpoint, start pump, register (the first
/// exchange runs over a TAdd), stop.
void BM_ModuleBringUp(benchmark::State& state) {
  BootRig& r = rig();
  for (auto _ : state) {
    auto node = r.tb.spawn_module("boot-" + std::to_string(r.counter++),
                                  "m2", "lan");
    if (!node.ok()) {
      state.SkipWithError("bring-up failed");
      break;
    }
    node.value()->stop();
  }
}
BENCHMARK(BM_ModuleBringUp)->Unit(benchmark::kMicrosecond);

/// Registration only (node already bound and pumping).
void BM_RegistrationOnly(benchmark::State& state) {
  BootRig& r = rig();
  for (auto _ : state) {
    state.PauseTiming();
    auto node = r.tb.make_node("reg-" + std::to_string(r.counter++), "m2",
                               "lan");
    if (!node.ok()) {
      state.SkipWithError("node start failed");
      break;
    }
    state.ResumeTiming();
    auto uadd = node.value()->commod().register_self();
    if (!uadd.ok()) state.SkipWithError("registration failed");
    state.PauseTiming();
    node.value()->stop();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RegistrationOnly)->Unit(benchmark::kMicrosecond);

/// TAdd purge: after registration + one ping, the Name-Server side must
/// have promoted the module's TAdd (≤ two communications, §3.4). The
/// benchmark reports promotions per bring-up as a counter.
void BM_TAddPurge(benchmark::State& state) {
  BootRig& r = rig();
  const auto before = r.tb.name_server().node().lcm().stats().tadds_promoted;
  std::uint64_t brought_up = 0;
  for (auto _ : state) {
    auto node =
        r.tb.spawn_module("tadd-" + std::to_string(r.counter++), "m2", "lan");
    if (!node.ok()) {
      state.SkipWithError("bring-up failed");
      break;
    }
    (void)node.value()->commod().ping_name_server();  // second exchange
    ++brought_up;
    node.value()->stop();
  }
  const auto after = r.tb.name_server().node().lcm().stats().tadds_promoted;
  state.counters["promotions_per_module"] = benchmark::Counter(
      brought_up == 0
          ? 0.0
          : static_cast<double>(after - before) /
                static_cast<double>(brought_up));
}
BENCHMARK(BM_TAddPurge)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
