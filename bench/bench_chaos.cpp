// Chaos overhead: what each injected fault class costs a steady-state
// request/reply workload across one gateway hop.
//
// The fault engine bends the delivery schedule inside the fabric, and the
// layers pay for recovery (ND dedup/resync, retry-on-open backoff), so the
// interesting number is the end-to-end round trip under each class
// relative to the clean baseline. Request/reply keeps at most one message
// in flight per direction, so reordering can displace a frame by at most
// its window — the per-circuit sequence numbers absorb everything.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

enum FaultClass : std::int64_t {
  kNone = 0,
  kDup = 1,
  kReorder = 2,
  kJitter = 3,
};

const char* fault_label(std::int64_t c) {
  switch (c) {
    case kDup: return "dup=0.05";
    case kReorder: return "reorder=0.05";
    case kJitter: return "jitter=50us";
    default: return "clean";
  }
}

simnet::FaultPlan fault_plan(std::int64_t c) {
  simnet::FaultPlan plan;
  switch (c) {
    case kDup:
      plan.dup_prob = 0.05;
      break;
    case kReorder:
      plan.reorder_prob = 0.05;
      plan.reorder_window = 300us;
      break;
    case kJitter:
      plan.jitter = 50us;
      break;
    default:
      break;
  }
  return plan;
}

/// Install the plan on every network of the rig's fabric, run the body,
/// clear on scope exit.
struct PlanScope {
  core::Testbed& tb;
  PlanScope(core::Testbed& tb_, const simnet::FaultPlan& plan) : tb(tb_) {
    for (std::size_t n = 0; n < tb.fabric().network_count(); ++n) {
      tb.fabric().set_fault_plan(static_cast<simnet::NetworkId>(n), plan);
    }
  }
  ~PlanScope() { tb.fabric().clear_faults(); }
};

/// Round trip across one gateway under each fault class.
void BM_RequestUnderFaults(benchmark::State& state) {
  HopRig& rig = hop_rig(1);
  state.SetLabel(fault_label(state.range(0)));
  PlanScope scope(rig.tb, fault_plan(state.range(0)));
  const Bytes msg(256, 0x5A);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
    if (!reply.ok()) {
      state.SkipWithError("request failed");
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_RequestUnderFaults)
    ->Arg(kNone)->Arg(kDup)->Arg(kReorder)->Arg(kJitter)
    ->Unit(benchmark::kMicrosecond);

/// One-way goodput under duplication: the fabric carries ~5% extra frames
/// and the receiving ND-Layer discards them before they cost anything
/// above the STD-IF.
void BM_OneWaySendUnderDup(benchmark::State& state) {
  HopRig& rig = hop_rig(1);
  PlanScope scope(rig.tb, fault_plan(kDup));
  const Bytes msg(256, 0x5A);
  for (auto _ : state) {
    auto st = rig.src->commod().send(rig.dst_addr, msg);
    if (!st.ok()) {
      state.SkipWithError("send failed");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_OneWaySendUnderDup)->Unit(benchmark::kMicrosecond);

/// Circuit establishment through a flapping link: the cost of the open
/// backoff ladder when the first attempts land in a down phase. Down time
/// is kept short so the ladder, not the wait for the up phase, dominates.
void BM_EstablishOverFlappingLink(benchmark::State& state) {
  HopRig& rig = hop_rig(1);
  simnet::FaultPlan plan;
  plan.flap_period = 4ms;
  plan.flap_down = 1ms;
  PlanScope scope(rig.tb, plan);
  core::ResolvedDest dest;
  dest.uadd = rig.dst->identity().uadd();
  dest.phys = rig.dst->phys();
  dest.net = HopRig::net_name(1);
  for (auto _ : state) {
    auto ivc = rig.src->ip().open_ivc(dest);
    if (!ivc.ok()) {
      state.SkipWithError("open_ivc failed");
      break;
    }
    (void)rig.src->ip().close_ivc(ivc.value());
  }
}
// Fixed iteration count: an unlucky open waits out a full ack timeout, so
// letting the library auto-scale iterations makes run time unbounded.
BENCHMARK(BM_EstablishOverFlappingLink)
    ->Iterations(25)->Unit(benchmark::kMicrosecond);

}  // namespace

// Expanded BENCHMARK_MAIN (see bench_gateway.cpp): leave the per-layer
// metrics snapshot behind so a run shows the recovery work next to its
// timings — simnet.dup and nd.frames_deduped correlate directly here.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!ntcs::bench::dump_metrics_json("BENCH_chaos_metrics.json")) {
    std::fprintf(stderr, "failed to write BENCH_chaos_metrics.json\n");
    return 1;
  }
  return 0;
}
