// E1 (paper §5): conversion-mode costs.
//
// Claims reproduced:
//   * image mode between identical machine types is a plain byte copy —
//     cheapest, size-independent per byte;
//   * packed mode (character transport format) costs real conversion work
//     and is only paid between incompatible types;
//   * shift mode is cheap enough to use for ALL header transfers
//     regardless of destination ("a mode efficient enough to be used for
//     all transfers, regardless of destination, was desired").
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "convert/mode.h"
#include "convert/schema.h"
#include "convert/shift.h"

namespace {

using namespace ntcs;
using namespace ntcs::convert;

/// A message schema scaled so its image is roughly `bytes` long.
MessageSchema sized_schema(std::size_t bytes) {
  std::vector<FieldSpec> fields;
  std::size_t have = 0;
  int i = 0;
  while (have + 8 <= bytes) {
    fields.push_back({"u" + std::to_string(i++), FieldType::u64});
    have += 8;
  }
  if (have < bytes) {
    fields.push_back({"pad", FieldType::chars, bytes - have});
  }
  return MessageSchema("sized", std::move(fields));
}

Record fill(const MessageSchema& s, std::uint64_t seed) {
  Rng rng(seed);
  Record r = s.make_record();
  for (const auto& f : s.fields()) {
    if (f.type == FieldType::u64) (void)r.set_u64(f.name, rng.next());
  }
  return r;
}

/// Image-mode serialisation (what a same-type transfer pays).
void BM_ImageMode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto schema = sized_schema(size);
  Record rec = fill(schema, 1);
  for (auto _ : state) {
    auto image = schema.to_image(rec, Arch::vax780);
    benchmark::DoNotOptimize(image);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ImageMode)->Range(16, 64 << 10);

/// Packed-mode pack+unpack (what a cross-type transfer pays).
void BM_PackedMode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto schema = sized_schema(size);
  Record rec = fill(schema, 1);
  for (auto _ : state) {
    auto packed = schema.pack(rec);
    auto back = schema.unpack(packed.value());
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_PackedMode)->Range(16, 64 << 10);

/// Image round trip (serialise + deserialise) for a fair pair comparison.
void BM_ImageRoundTrip(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  auto schema = sized_schema(size);
  Record rec = fill(schema, 1);
  for (auto _ : state) {
    auto image = schema.to_image(rec, Arch::vax780);
    auto back = schema.from_image(image.value(), Arch::vax780);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ImageRoundTrip)->Range(16, 64 << 10);

/// Shift-mode encode+decode of a 14-word NTCS-style header: the per-message
/// overhead paid on EVERY transfer.
void BM_ShiftModeHeader(benchmark::State& state) {
  for (auto _ : state) {
    Bytes out;
    ShiftWriter w(out);
    for (int i = 0; i < 10; ++i) w.put_u32(0xABCDEF01u + i);
    w.put_u64(0x123456789ULL);
    w.put_u64(0x987654321ULL);
    ShiftReader r(out);
    std::uint64_t acc = 0;
    for (int i = 0; i < 10; ++i) acc += r.get_u32().value();
    acc += r.get_u64().value() + r.get_u64().value();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ShiftModeHeader);

/// The mode decision itself (taken on every send at the lowest layer).
void BM_ChooseMode(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    auto m = choose_mode(static_cast<Arch>(i % kArchCount),
                         static_cast<Arch>((i / kArchCount) % kArchCount));
    benchmark::DoNotOptimize(m);
    ++i;
  }
}
BENCHMARK(BM_ChooseMode);

}  // namespace

BENCHMARK_MAIN();
