// A2: the DRTS services' costs — what running the distributed run-time
// support layer on top of the NTCS (instead of inside it) costs per
// operation. The paper's position (§1.2, §3.1) is that DRTS services are
// ordinary modules; these numbers show an ordinary module's request cycle
// is all any of them pay.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "drts/error_log.h"
#include "drts/file_service.h"
#include "drts/time_service.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct DrtsRig {
  core::Testbed tb;
  std::unique_ptr<ntcs::drts::TimeServer> time_server;
  std::unique_ptr<ntcs::drts::FileServer> file_server;
  std::unique_ptr<ntcs::drts::ErrorLogServer> errlog;
  std::unique_ptr<core::Node> client;
  std::unique_ptr<ntcs::drts::TimeClient> tc;
  std::unique_ptr<ntcs::drts::FileClient> fc;
  std::unique_ptr<ntcs::drts::ErrorLogClient> elc;

  DrtsRig() {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    time_server =
        std::make_unique<ntcs::drts::TimeServer>(tb.node_config("", "m2", "lan"));
    if (!time_server->start().ok()) std::abort();
    file_server =
        std::make_unique<ntcs::drts::FileServer>(tb.node_config("", "m2", "lan"));
    if (!file_server->start().ok()) std::abort();
    errlog = std::make_unique<ntcs::drts::ErrorLogServer>(
        tb.node_config("", "m2", "lan"));
    if (!errlog->start().ok()) std::abort();
    client = tb.spawn_module("bench-client", "m1", "lan").value();
    tc = std::make_unique<ntcs::drts::TimeClient>(*client);
    (void)tc->sync();
    fc = std::make_unique<ntcs::drts::FileClient>(*client);
    if (!fc->connect().ok()) std::abort();
    elc = std::make_unique<ntcs::drts::ErrorLogClient>(*client);
    (void)fc->write("/bench/warm", to_bytes("warm"));
  }
  ~DrtsRig() { client->stop(); }
};

DrtsRig& rig() {
  static DrtsRig r;
  return r;
}

/// One full time correction (5 request/reply exchanges, min-RTT filter).
void BM_TimeSync(benchmark::State& state) {
  DrtsRig& r = rig();
  for (auto _ : state) {
    if (!r.tc->sync().ok()) state.SkipWithError("sync failed");
  }
}
BENCHMARK(BM_TimeSync)->Unit(benchmark::kMicrosecond);

/// The corrected-time read on the hot path (what every monitored send pays
/// once synced).
void BM_CorrectedNow(benchmark::State& state) {
  DrtsRig& r = rig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.tc->corrected_now_ns());
  }
}
BENCHMARK(BM_CorrectedNow);

/// File writes across the NTCS, by size.
void BM_FileWrite(benchmark::State& state) {
  DrtsRig& r = rig();
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  for (auto _ : state) {
    if (!r.fc->write("/bench/w", data).ok()) {
      state.SkipWithError("write failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FileWrite)->Range(64, 64 << 10)->Unit(benchmark::kMicrosecond);

void BM_FileRead(benchmark::State& state) {
  DrtsRig& r = rig();
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0x5C);
  (void)r.fc->write("/bench/r", data);
  for (auto _ : state) {
    auto got = r.fc->read("/bench/r");
    if (!got.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FileRead)->Range(64, 64 << 10)->Unit(benchmark::kMicrosecond);

void BM_FileStat(benchmark::State& state) {
  DrtsRig& r = rig();
  for (auto _ : state) {
    auto s = r.fc->stat("/bench/warm");
    if (!s.ok()) state.SkipWithError("stat failed");
  }
}
BENCHMARK(BM_FileStat)->Unit(benchmark::kMicrosecond);

/// Fire-and-forget exception report (the §6.3 running table's feed).
void BM_ErrorReport(benchmark::State& state) {
  DrtsRig& r = rig();
  for (auto _ : state) {
    r.elc->report("lcm", Errc::address_fault, "bench");
  }
}
BENCHMARK(BM_ErrorReport)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
