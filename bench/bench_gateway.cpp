// E2 (paper §4): internet virtual circuits through gateway chains.
//
// Claims reproduced:
//   * IVCs work identically over 0, 1, 2, 3 gateway hops (transparency);
//   * per-message cost grows roughly linearly with hop count (each hop is
//     one extra relay through a Gateway's IP-Layer fast path);
//   * circuit establishment is the expensive, but rare, operation — and it
//     too grows with hop count (one EXTEND round per hop).
#include <benchmark/benchmark.h>

#include "common/trace.h"
#include "common/trace_export.h"

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

/// Steady-state request/reply round trip across `hops` gateways.
void BM_RequestRoundTrip(benchmark::State& state) {
  HopRig& rig = hop_rig(static_cast<int>(state.range(0)));
  const Bytes msg(256, 0x5A);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
    if (!reply.ok()) state.SkipWithError("request failed");
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_RequestRoundTrip)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

/// One-way send throughput across `hops` gateways (drained by the echo
/// server's receive loop).
void BM_OneWaySend(benchmark::State& state) {
  HopRig& rig = hop_rig(static_cast<int>(state.range(0)));
  const Bytes msg(256, 0x5A);
  for (auto _ : state) {
    auto st = rig.src->commod().send(rig.dst_addr, msg);
    if (!st.ok()) state.SkipWithError("send failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_OneWaySend)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

/// Full circuit establishment (ND open + EXTEND per hop), then teardown.
/// "The centralized topology was tolerable since this information is only
/// required at circuit establishment time, which is relatively rare."
void BM_CircuitEstablish(benchmark::State& state) {
  HopRig& rig = hop_rig(static_cast<int>(state.range(0)));
  core::ResolvedDest dest;
  dest.uadd = rig.dst->identity().uadd();
  dest.phys = rig.dst->phys();
  dest.net = HopRig::net_name(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto ivc = rig.src->ip().open_ivc(dest);
    if (!ivc.ok()) {
      state.SkipWithError("open_ivc failed");
      break;
    }
    (void)rig.src->ip().close_ivc(ivc.value());
  }
}
BENCHMARK(BM_CircuitEstablish)->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

/// Message size sweep across a fixed 1-gateway chain (fragmentation cost).
void BM_SizeSweepOneHop(benchmark::State& state) {
  HopRig& rig = hop_rig(1);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x33);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 10s);
    if (!reply.ok()) state.SkipWithError("request failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SizeSweepOneHop)->Range(64, 256 << 10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Expanded BENCHMARK_MAIN so the run can leave its artifacts behind: after
// the gateway benchmarks every hop rig has pushed traffic through 0..3
// gateways, so BENCH_gateway_metrics.json carries nonzero lcm.sends,
// ip.hops_forwarded, and the convert.mode.* breakdown — then a short
// sampled burst across the 2-gateway chain is exported as a Chrome
// trace-event timeline (BENCH_trace.json: root -> per-hop -> reply spans,
// loadable in chrome://tracing or Perfetto).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!ntcs::bench::dump_metrics_json()) {
    std::fprintf(stderr, "failed to write BENCH_gateway_metrics.json\n");
    return 1;
  }
  ntcs::trace::set_sampling(ntcs::trace::SampleMode::always);
  ntcs::trace::clear_spans();
  HopRig& rig = hop_rig(2);
  for (int i = 0; i < 8; ++i) {
    if (!rig.src->commod().request(rig.dst_addr, to_bytes("traced"), 5s)
             .ok()) {
      std::fprintf(stderr, "traced request failed\n");
      return 1;
    }
  }
  ntcs::trace::set_sampling(ntcs::trace::SampleMode::off);
  const std::vector<ntcs::trace::Span> spans =
      ntcs::trace::merge_harvests({ntcs::trace::snapshot_spans()});
  if (!ntcs::trace::write_chrome_json(spans, "BENCH_trace.json")) {
    std::fprintf(stderr, "failed to write BENCH_trace.json\n");
    return 1;
  }
  return 0;
}
