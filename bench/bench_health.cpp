// bench_health.cpp — the observability plane's own price tag (EXPERIMENTS
// A8), plus the two end-to-end acceptance probes for the health plane.
//
// Three scenarios, one artifact (BENCH_health.json):
//
//  1. overhead — the pipelined depth-32 data path (the BM_PipelinedRequests
//     anchor point) timed with the health plane passive vs active
//     (background watchdog classifying every layer each period). Both legs
//     pay the always-on inline costs — relaxed gauge arithmetic and
//     journal writes, a handful of relaxed atomics per event (the flight
//     recorder is wait-free for writers) — so the A/B isolates the
//     *toggleable* residue: watchdog sampling, whose per-tick metrics
//     snapshot takes the registry mutex that every uncached lookup would
//     also want. Repetitions are interleaved A/B/A/B and compared by
//     median so clock drift and cache warmth cancel. No artificial
//     load threads: on a single-CPU container any busy sibling thread
//     charges raw scheduler preemption to the measurement, which says
//     nothing about the plane. Pass: active is within 3% of passive.
//
//  2. scrape — a six-module, two-gateway, three-network fleet with a
//     monitor per application machine; every monitor must answer
//     query_health + query_metrics + query_journal through the NTCS with
//     zero non-retriable errors and a per-layer report.
//
//  3. stall — a parked consumer: a heartbeat registered and then never
//     beaten while the background watchdog runs. The remote harvest
//     (query_health against a monitor on another machine) must report the
//     layer stalled within one watchdog period of the stall window
//     expiring (budget below allows one extra period for RPC + scheduling
//     skew).
//
// Exit status: 0 iff all three pass flags hold.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/health.h"
#include "common/metrics.h"
#include "core/testbed.h"
#include "drts/monitor.h"

namespace ntcs::bench {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr int kDepth = 32;
// Long enough per repetition (~100 ms of wall on simnet) that the watchdog
// actually fires inside the measured window and scheduler noise amortizes;
// with short windows the A/B difference is dominated by jitter.
constexpr int kTotalPerRep = kDepth * 400;  // 12800 requests per repetition
constexpr int kReps = 7;                    // per leg, interleaved

/// One timed repetition of the sliding-window pipeline at depth 32 over
/// the cached single-net rig. Returns seconds of wall, or < 0 on failure.
double pipelined_wall(HopRig& rig, const core::Payload& p) {
  std::deque<core::RequestTicket> inflight;
  int issued = 0;
  int done = 0;
  const auto t0 = Clock::now();
  while (done < kTotalPerRep) {
    while (issued < kTotalPerRep &&
           static_cast<int>(inflight.size()) < kDepth) {
      auto t = rig.src->commod().request_async(rig.dst_addr, p, 30s);
      if (!t.ok()) return -1.0;
      inflight.push_back(t.value());
      ++issued;
    }
    auto r = rig.src->commod().await(inflight.front());
    inflight.pop_front();
    if (!r.ok()) return -1.0;
    ++done;
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct OverheadResult {
  double passive_s = -1.0;
  double active_s = -1.0;
  double overhead_pct = 0.0;
  bool pass = false;
};

OverheadResult run_overhead() {
  OverheadResult res;
  HopRig& rig = hop_rig(0);
  core::Payload p;
  p.image = Bytes(1024, 0x5A);

  auto& reg = health::HealthRegistry::instance();
  // Warm caches and the circuit before the first measured repetition.
  if (pipelined_wall(rig, p) < 0) return res;
  std::vector<double> passive;
  std::vector<double> active;
  for (int rep = 0; rep < kReps; ++rep) {
    reg.stop_watchdog();
    const double a = pipelined_wall(rig, p);
    if (a < 0) return res;
    passive.push_back(a);

    // Active leg: watchdog sampling at the default 250 ms period — the
    // background thread classifies every heartbeat/beacon/gauge pair and
    // snapshots the metrics registry each tick.
    reg.start_watchdog();
    const double b = pipelined_wall(rig, p);
    if (b < 0) return res;
    active.push_back(b);
  }
  reg.stop_watchdog();

  res.passive_s = median(passive);
  res.active_s = median(active);
  res.overhead_pct =
      100.0 * (res.active_s - res.passive_s) / res.passive_s;
  res.pass = res.overhead_pct <= 3.0;
  return res;
}

/// The acceptance fleet: six modules across four machines, three networks
/// bridged by two gateways, one monitor per application machine.
struct FleetRig {
  core::Testbed tb{2};
  std::vector<std::unique_ptr<drts::MonitorServer>> monitors;
  std::vector<std::unique_ptr<core::Node>> modules;

  FleetRig() {
    tb.net("fnet-0");
    tb.net("fnet-1");
    tb.net("fnet-2");
    tb.machine("f-a", convert::Arch::vax780, {"fnet-0"});
    tb.machine("f-b", convert::Arch::pdp11_70, {"fnet-0"});
    tb.machine("f-gw0", convert::Arch::apollo_dn330, {"fnet-0", "fnet-1"});
    tb.machine("f-gw1", convert::Arch::apollo_dn330, {"fnet-1", "fnet-2"});
    tb.machine("f-c", convert::Arch::sun3, {"fnet-2"});
    tb.machine("f-d", convert::Arch::microvax, {"fnet-2"});
    if (!tb.start_name_server("f-a", "fnet-0").ok()) std::abort();
    if (!tb.add_gateway("fgw-0", "f-gw0", {"fnet-0", "fnet-1"}).ok()) {
      std::abort();
    }
    if (!tb.add_gateway("fgw-1", "f-gw1", {"fnet-1", "fnet-2"}).ok()) {
      std::abort();
    }
    if (!tb.finalize().ok()) std::abort();
    for (const char* name : {"mon.f-a", "mon.f-b", "mon.f-c", "mon.f-d"}) {
      const std::string machine = std::string(name).substr(4);
      const std::string net = (machine == "f-a" || machine == "f-b")
                                  ? "fnet-0"
                                  : "fnet-2";
      monitors.push_back(std::make_unique<drts::MonitorServer>(
          tb.node_config(name, machine, net)));
      if (!monitors.back()->start().ok()) std::abort();
    }
    const struct {
      const char* name;
      const char* machine;
      const char* net;
    } kMods[] = {{"f.alpha", "f-a", "fnet-0"}, {"f.beta", "f-b", "fnet-0"},
                 {"f.gamma", "f-c", "fnet-2"}, {"f.delta", "f-d", "fnet-2"},
                 {"f.epsil", "f-a", "fnet-0"}, {"f.zeta", "f-c", "fnet-2"}};
    for (const auto& m : kMods) {
      modules.push_back(tb.spawn_module(m.name, m.machine, m.net).value());
    }
  }

  ~FleetRig() {
    for (auto& m : modules) m->stop();
    for (auto& m : monitors) m->stop();
  }
};

struct ScrapeResult {
  int monitors = 0;
  int errors = 0;
  bool truncated = false;
  bool pass = false;
};

ScrapeResult run_scrape(FleetRig& fleet) {
  ScrapeResult res;
  core::Node& via = *fleet.modules.front();
  auto mons = via.nsp().lookup_attrs({{"role", "monitor"}});
  if (!mons.ok() || mons.value().size() < fleet.monitors.size()) {
    res.errors = 1;
    return res;
  }
  for (core::UAdd mon : mons.value()) {
    ++res.monitors;
    bool trunc = false;
    auto rep = drts::query_health(via, mon, &trunc);
    res.truncated = res.truncated || trunc;
    if (!rep.ok() || rep.value().layers.empty()) {
      ++res.errors;
      continue;
    }
    auto snap = drts::query_metrics(via, mon, &trunc);
    res.truncated = res.truncated || trunc;
    if (!snap.ok()) {
      ++res.errors;
      continue;
    }
    auto events = drts::query_journal(via, mon, drts::kMaxJournalHarvest,
                                      &trunc);
    res.truncated = res.truncated || trunc;
    if (!events.ok()) ++res.errors;
  }
  res.pass = res.monitors >= 4 && res.errors == 0;
  return res;
}

struct StallResult {
  double detect_ms = -1.0;
  double budget_ms = 0.0;
  bool pass = false;
};

StallResult run_stall(FleetRig& fleet) {
  StallResult res;
  constexpr auto kStallAfter = 100ms;
  const auto kPeriod = health::WatchdogConfig{}.period;
  // One period for the watchdog to sample past the stall window, one more
  // for harvest RPC + thread-scheduling skew.
  res.budget_ms =
      std::chrono::duration<double, std::milli>(kStallAfter + 2 * kPeriod)
          .count();

  core::Node& via = *fleet.modules.front();
  auto mon = via.commod().locate("mon.f-c");
  if (!mon.ok()) return res;

  auto& reg = health::HealthRegistry::instance();
  reg.start_watchdog();
  // The parked consumer: registered, primed, never beaten again.
  health::Heartbeat& parked =
      health::heartbeat("bench.parked_consumer", kStallAfter);
  const auto t0 = Clock::now();
  while (std::chrono::duration<double, std::milli>(Clock::now() - t0)
             .count() < 4.0 * res.budget_ms) {
    auto rep = drts::query_health(via, mon.value());
    if (rep.ok()) {
      const health::LayerHealth* l =
          rep.value().find("bench.parked_consumer");
      if (l != nullptr && l->state == health::HealthState::stalled) {
        res.detect_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        break;
      }
    }
    std::this_thread::sleep_for(20ms);
  }
  parked.retire();
  reg.stop_watchdog();
  res.pass = res.detect_ms >= 0 && res.detect_ms <= res.budget_ms;
  return res;
}

int run_all() {
  std::printf("bench_health: overhead (pipelined depth-%d, %d reqs/rep, "
              "%d reps/leg)\n",
              kDepth, kTotalPerRep, kReps);
  const OverheadResult overhead = run_overhead();
  std::printf("  passive %.4fs  active %.4fs  overhead %+.2f%%  [%s]\n",
              overhead.passive_s, overhead.active_s, overhead.overhead_pct,
              overhead.pass ? "pass" : "FAIL");

  std::printf("bench_health: fleet scrape (6 modules, 2 gateways)\n");
  FleetRig fleet;
  const ScrapeResult scrape = run_scrape(fleet);
  std::printf("  %d monitors, %d errors%s  [%s]\n", scrape.monitors,
              scrape.errors, scrape.truncated ? ", truncated" : "",
              scrape.pass ? "pass" : "FAIL");

  std::printf("bench_health: induced stall (parked consumer)\n");
  const StallResult stall = run_stall(fleet);
  std::printf("  detected in %.1fms (budget %.1fms)  [%s]\n",
              stall.detect_ms, stall.budget_ms,
              stall.pass ? "pass" : "FAIL");

  std::FILE* f = std::fopen("BENCH_health.json", "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n"
        "  \"pipelined_depth\": %d,\n"
        "  \"requests_per_rep\": %d,\n"
        "  \"reps_per_leg\": %d,\n"
        "  \"passive_wall_s\": %.6f,\n"
        "  \"active_wall_s\": %.6f,\n"
        "  \"overhead_pct\": %.3f,\n"
        "  \"scrape_monitors\": %d,\n"
        "  \"scrape_errors\": %d,\n"
        "  \"scrape_truncated\": %s,\n"
        "  \"stall_detect_ms\": %.1f,\n"
        "  \"stall_budget_ms\": %.1f,\n"
        "  \"pass_overhead\": %s,\n"
        "  \"pass_scrape\": %s,\n"
        "  \"pass_stall\": %s\n"
        "}\n",
        kDepth, kTotalPerRep, kReps, overhead.passive_s, overhead.active_s,
        overhead.overhead_pct, scrape.monitors, scrape.errors,
        scrape.truncated ? "true" : "false", stall.detect_ms,
        stall.budget_ms, overhead.pass ? "true" : "false",
        scrape.pass ? "true" : "false", stall.pass ? "true" : "false");
    std::fclose(f);
  }
  dump_metrics_json("BENCH_health_metrics.json");

  return (overhead.pass && scrape.pass && stall.pass) ? 0 : 1;
}

}  // namespace
}  // namespace ntcs::bench

int main() { return ntcs::bench::run_all(); }
