// Naming at scale (DESIGN §5f, EXPERIMENTS A6): the sharded, replicated
// name service under a realistic large-registry load.
//
// Four measured phases, written to BENCH_naming_scale.json:
//
//   1. load      — one million names bulk-loaded into a 4-shard service
//                  (primaries and warm standbys load the same deterministic
//                  striped records, so replication ships no snapshot);
//   2. storm     — a lookup storm over a 1000-name working set; leases must
//                  absorb >= 90% of it (measured, not assumed) and the
//                  p50/p99 of the mixed hit/miss stream is recorded;
//   3. kill      — a shard primary dies mid-storm; lookups keep flowing
//                  through candidate rotation and a write promotes the
//                  standby. p99 across the window, and ZERO non-retriable
//                  errors allowed;
//   4. reconfig  — a 10k-move storm (re-registrations of loaded names):
//                  every move bumps the owner shard's epoch, killing stale
//                  leases; the rate and a moved-name resolution check are
//                  recorded.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nsp/shard_map.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kShards = 4;
constexpr std::size_t kNames = 1'000'000;
constexpr std::size_t kWorkingSet = 1'000;
constexpr int kStormRounds = 20;
constexpr std::size_t kMoves = 10'000;
constexpr std::size_t kKillShard = 1;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::min(v.size() - 1, static_cast<std::size_t>(p * v.size()));
  return v[idx];
}

bool retriable(ntcs::Errc e) {
  switch (e) {
    case ntcs::Errc::timeout:
    case ntcs::Errc::not_found:
    case ntcs::Errc::wrong_shard:
    case ntcs::Errc::address_fault:
    case ntcs::Errc::no_route:
    case ntcs::Errc::closed:
    case ntcs::Errc::refused:
    case ntcs::Errc::overloaded:
    case ntcs::Errc::partitioned:
      return true;
    default:
      return false;
  }
}

std::string bulk_name(std::size_t i) { return "n" + std::to_string(i); }

}  // namespace

int main() {
  core::Testbed tb;
  tb.net("lan");
  tb.machine("m1", convert::Arch::vax780, {"lan"});
  tb.machine("m2", convert::Arch::sun3, {"lan"});
  tb.machine("m3", convert::Arch::apollo_dn330, {"lan"});
  if (!tb.start_name_service(kShards, {"m1", "m2", "m3"}, "lan",
                             /*with_standbys=*/true, /*lease_ms=*/10'000)
           .ok()) {
    std::fprintf(stderr, "name service bring-up failed\n");
    return 1;
  }
  if (!tb.finalize().ok()) {
    std::fprintf(stderr, "finalize failed\n");
    return 1;
  }

  // ---- phase 1: bulk-load one million names ------------------------------
  // Primaries and standbys load the identical deterministic records; the
  // replication link then only has to carry the increments of phases 3-4.
  const auto load_t0 = Clock::now();
  std::size_t loaded_primary = 0;
  std::size_t loaded_standby = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    loaded_primary += tb.shard(s).load_records("n", kNames, "tcp:bulk:1", "lan");
    loaded_standby +=
        tb.shard_standby(s).load_records("n", kNames, "tcp:bulk:1", "lan");
  }
  const double load_ms = us_since(load_t0) / 1000.0;
  if (loaded_primary != kNames || loaded_standby != kNames) {
    std::fprintf(stderr, "bulk load mismatch: %zu/%zu of %zu\n",
                 loaded_primary, loaded_standby, kNames);
    return 1;
  }

  auto client = tb.spawn_module("bench-client", "m1", "lan").value();

  // ---- phase 2: lookup storm over a hot working set ----------------------
  // kWorkingSet distinct names, kStormRounds passes: the first pass misses
  // (one shard round trip each), every later pass must come out of the
  // lease cache.
  std::vector<std::string> working;
  working.reserve(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    working.push_back(bulk_name((i * 997) % kNames));
  }
  const auto storm_stats_before = client->nsp().stats();
  std::vector<double> storm_us;
  storm_us.reserve(kWorkingSet * kStormRounds);
  for (int round = 0; round < kStormRounds; ++round) {
    for (const std::string& name : working) {
      const auto t0 = Clock::now();
      auto r = client->nsp().lookup(name);
      storm_us.push_back(us_since(t0));
      if (!r.ok()) {
        std::fprintf(stderr, "storm lookup '%s' failed: %s\n", name.c_str(),
                     r.error().what().c_str());
        return 1;
      }
    }
  }
  const auto storm_stats_after = client->nsp().stats();
  const std::uint64_t storm_hits =
      storm_stats_after.lease_hits - storm_stats_before.lease_hits;
  const std::uint64_t storm_misses =
      storm_stats_after.lease_misses - storm_stats_before.lease_misses;
  const double hit_ratio =
      static_cast<double>(storm_hits) /
      static_cast<double>(storm_hits + storm_misses);
  const double storm_p50 = percentile(storm_us, 0.50);
  const double storm_p99 = percentile(storm_us, 0.99);

  // ---- phase 3: primary death across a lookup window ---------------------
  // Work a set owned by the victim shard, force each lookup to the server
  // (leases would otherwise hide the outage entirely), kill the primary
  // mid-window, and promote the standby with one write. Every error in the
  // window must be retriable.
  const core::nsp::ShardMap map(kShards);
  std::vector<std::string> victims;
  for (std::size_t i = 0; victims.size() < 200 && i < kNames; ++i) {
    if (map.shard_of(bulk_name(i)) == kKillShard) {
      victims.push_back(bulk_name(i));
    }
  }
  const std::uint64_t promotions_before =
      tb.shard_standby(kKillShard).stats().promotions;
  std::vector<double> kill_us;
  std::size_t nonretriable = 0;
  std::size_t kill_lookups = 0;
  bool killed = false;
  for (int round = 0; round < 8; ++round) {
    if (round == 3) {
      tb.kill_shard_primary(kKillShard);
      killed = true;
    }
    if (round == 5 && killed) {
      // The promoting write: a real module registration whose name the
      // victim shard owns.
      std::string promo = "promo-0";
      for (int i = 0; map.shard_of(promo) != kKillShard; ++i) {
        promo = "promo-" + std::to_string(i);
      }
      auto mod = tb.spawn_module(promo, "m2", "lan");
      if (mod.ok()) mod.value()->stop();
    }
    for (const std::string& name : victims) {
      client->nsp().debug_force_expire(name);
      const auto t0 = Clock::now();
      auto r = client->nsp().lookup(name);
      kill_us.push_back(us_since(t0));
      ++kill_lookups;
      if (!r.ok() && !retriable(r.code())) ++nonretriable;
    }
  }
  const double kill_p99 = percentile(kill_us, 0.99);
  const std::uint64_t promotions =
      tb.shard_standby(kKillShard).stats().promotions - promotions_before;

  // ---- phase 4: the 10k-move reconfigure storm ---------------------------
  // Re-register loaded names under the client's own address: each one is a
  // module move — new striped UAdd, epoch bump on the owning shard, every
  // stale lease for that shard dead.
  const auto move_t0 = Clock::now();
  std::size_t moves_ok = 0;
  for (std::size_t i = 0; i < kMoves; ++i) {
    core::RegistrationInfo info;
    info.name_override = bulk_name(i * 61 % kNames);
    if (client->nsp().register_module(info).ok()) ++moves_ok;
  }
  const double move_ms = us_since(move_t0) / 1000.0;
  const double moves_per_sec = moves_ok / (move_ms / 1000.0);

  // A moved name must resolve to its new (post-move) UAdd: anything minted
  // by the move storm is far past the bulk-loaded stripe.
  client->nsp().debug_force_expire(bulk_name(61 % kNames));
  auto moved = client->nsp().lookup(bulk_name(61 % kNames));
  const bool moved_ok =
      moved.ok() &&
      moved.value().raw() >= core::kFirstDynamicUAdd + kNames * kShards;

  const bool pass_hits = hit_ratio >= 0.90;
  const bool pass_kill = nonretriable == 0 && promotions >= 1;
  const bool pass_moves = moves_ok == kMoves && moved_ok;

  // Gauge-plane accounting: the lease-cache size gauge must show a live
  // cache after the lookup storm — a 90% hit ratio with a zero-size gauge
  // would mean the observability plane lost track of the very structure
  // that produced the hits.
  const std::int64_t lease_cache_size =
      metrics::MetricsRegistry::instance().snapshot().gauge_value(
          "nsp.lease_cache.size");
  const bool pass_gauge = lease_cache_size > 0;

  std::FILE* f = std::fopen("BENCH_naming_scale.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open BENCH_naming_scale.json\n");
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"shards\": %zu,\n"
      "  \"load\": {\"names\": %zu, \"primary_loaded\": %zu, "
      "\"standby_loaded\": %zu, \"load_ms\": %.1f},\n"
      "  \"lookup_storm\": {\"lookups\": %zu, \"cache_hit_ratio\": %.4f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f},\n"
      "  \"shard_kill\": {\"lookups\": %zu, \"p99_us\": %.1f, "
      "\"nonretriable_errors\": %zu, \"promotions\": %llu},\n"
      "  \"reconfigure_storm\": {\"moves\": %zu, \"applied\": %zu, "
      "\"moves_per_sec\": %.0f, \"moved_name_resolves_new\": %s},\n"
      "  \"lease_cache_size\": %lld,\n"
      "  \"pass\": {\"cache_hits_90pct\": %s, \"failover_clean\": %s, "
      "\"moves_applied\": %s, \"lease_gauge_live\": %s}\n"
      "}\n",
      kShards, kNames, loaded_primary, loaded_standby, load_ms,
      storm_us.size(), hit_ratio, storm_p50, storm_p99, kill_lookups,
      kill_p99, nonretriable, static_cast<unsigned long long>(promotions),
      kMoves, moves_ok, moves_per_sec, moved_ok ? "true" : "false",
      static_cast<long long>(lease_cache_size),
      pass_hits ? "true" : "false", pass_kill ? "true" : "false",
      pass_moves ? "true" : "false", pass_gauge ? "true" : "false");
  std::fclose(f);
  if (!dump_metrics_json("BENCH_naming_metrics.json")) {
    std::fprintf(stderr, "failed to write BENCH_naming_metrics.json\n");
    return 1;
  }
  std::printf(
      "bench_naming: loaded=%zu hit_ratio=%.3f storm_p99=%.0fus "
      "kill_p99=%.0fus nonretriable=%zu promotions=%llu moves=%zu "
      "(%.0f/s) pass=%s\n",
      loaded_primary, hit_ratio, storm_p99, kill_p99, nonretriable,
      static_cast<unsigned long long>(promotions), moves_ok, moves_per_sec,
      (pass_hits && pass_kill && pass_moves && pass_gauge) ? "yes" : "NO");
  client->stop();
  return (pass_hits && pass_kill && pass_moves && pass_gauge) ? 0 : 1;
}
