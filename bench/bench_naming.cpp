// E3 (paper §3.3): naming-service cost and cache effectiveness.
//
// Claims reproduced:
//   * every name lookup / address resolution is one request/reply to the
//     Name Server (measurable, non-trivial);
//   * once resolved, communication never touches the Name Server again —
//     warm-path sends cost the same with the Name Server REMOVED ("the
//     Name Server can be removed with no consequence, unless the system
//     is reconfigured").
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct NamingRig {
  core::Testbed tb;
  std::unique_ptr<core::Node> client;
  std::unique_ptr<core::Node> target;
  core::UAdd target_addr;
  std::jthread drain;
  bool ns_killed = false;

  NamingRig() {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    client = tb.spawn_module("client", "m1", "lan").value();
    target = tb.spawn_module("target", "m2", "lan").value();
    target_addr = client->commod().locate("target").value();
    (void)client->commod().send(target_addr, to_bytes("warm"));
    drain = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        (void)target->commod().receive(50ms);
      }
    });
  }
  ~NamingRig() {
    drain.request_stop();
    if (drain.joinable()) drain.join();
    client->stop();
    target->stop();
  }
};

NamingRig& rig() {
  static NamingRig r;
  return r;
}

/// Name -> UAdd resolution (one Name Server round trip each time).
void BM_LocateByName(benchmark::State& state) {
  NamingRig& r = rig();
  if (r.ns_killed) {
    state.SkipWithError("name server already removed");
    return;
  }
  for (auto _ : state) {
    auto addr = r.client->commod().locate("target");
    if (!addr.ok()) state.SkipWithError("locate failed");
    benchmark::DoNotOptimize(addr);
  }
}
BENCHMARK(BM_LocateByName)->Unit(benchmark::kMicrosecond);

/// UAdd -> physical address resolution (the ND-Layer's NSP query).
void BM_ResolveUAdd(benchmark::State& state) {
  NamingRig& r = rig();
  if (r.ns_killed) {
    state.SkipWithError("name server already removed");
    return;
  }
  for (auto _ : state) {
    auto info = r.client->nsp().resolve_info(r.target_addr);
    if (!info.ok()) state.SkipWithError("resolve failed");
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_ResolveUAdd)->Unit(benchmark::kMicrosecond);

/// Attribute-based lookup (the §7 extension scheme).
void BM_LocateByAttr(benchmark::State& state) {
  NamingRig& r = rig();
  if (r.ns_killed) {
    state.SkipWithError("name server already removed");
    return;
  }
  for (auto _ : state) {
    auto hits = r.client->nsp().lookup_attrs({{"role", "none"}});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LocateByAttr)->Unit(benchmark::kMicrosecond);

/// Warm-path send: all addresses cached, no naming-service involvement.
void BM_WarmSend(benchmark::State& state) {
  NamingRig& r = rig();
  const Bytes msg(64, 0x11);
  for (auto _ : state) {
    if (!r.client->commod().send(r.target_addr, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
}
BENCHMARK(BM_WarmSend)->Unit(benchmark::kMicrosecond);

/// The §3.3 claim itself: kill the Name Server, keep sending. Must match
/// BM_WarmSend — the warm path provably does not use the Name Server.
void BM_WarmSendNameServerRemoved(benchmark::State& state) {
  NamingRig& r = rig();
  if (!r.ns_killed) {
    r.tb.name_server().stop();
    r.ns_killed = true;
  }
  const Bytes msg(64, 0x11);
  for (auto _ : state) {
    if (!r.client->commod().send(r.target_addr, msg).ok()) {
      state.SkipWithError("send failed after NS removal");
    }
  }
}
BENCHMARK(BM_WarmSendNameServerRemoved)->Unit(benchmark::kMicrosecond);

/// §7 replication: lookups served by a replica after the primary died
/// (steady state, failover already taken). A separate rig with a replica.
void BM_LocateViaReplica(benchmark::State& state) {
  struct ReplicaRig {
    core::Testbed tb;
    std::unique_ptr<core::Node> client;
    std::unique_ptr<core::Node> target;

    ReplicaRig() {
      tb.net("lan");
      tb.machine("m1", convert::Arch::vax780, {"lan"});
      tb.machine("m2", convert::Arch::sun3, {"lan"});
      if (!tb.start_name_server("m1", "lan").ok()) std::abort();
      if (!tb.add_name_server_replica("m2", "lan").ok()) std::abort();
      if (!tb.finalize().ok()) std::abort();
      client = tb.spawn_module("rclient", "m1", "lan").value();
      target = tb.spawn_module("rtarget", "m2", "lan").value();
      // Let the snapshot land, then fail the primary over.
      for (int spin = 0; spin < 200 && tb.replica(0).record_count() < 3;
           ++spin) {
        std::this_thread::sleep_for(5ms);
      }
      tb.name_server().stop();
      (void)client->commod().locate("rtarget");  // pays the failover once
    }
    ~ReplicaRig() {
      client->stop();
      target->stop();
    }
  };
  static ReplicaRig r;
  for (auto _ : state) {
    auto addr = r.client->commod().locate("rtarget");
    if (!addr.ok()) state.SkipWithError("replica lookup failed");
    benchmark::DoNotOptimize(addr);
  }
}
BENCHMARK(BM_LocateViaReplica)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
