// bench_overload.cpp — the overload-control acceptance experiment.
//
// Unlike the other benchmarks this is scenario-driven, not
// iteration-driven: it offers a 10x overload storm to a bounded-queue
// victim and writes BENCH_overload.json with the three numbers the
// overload design is accountable for:
//
//   1. bounded memory — process RSS growth during the storm stays within
//      allocator slack, nowhere near the offered byte volume;
//   2. bounded latency for admitted requests — the p99 of requests that
//      were admitted (completed) stays within a small multiple of the
//      unloaded p99, because everything that cannot be served in time is
//      shed fast (busy frames, deadline-aware admission) instead of
//      queued;
//   3. accounting — completed + shed/rejected + timed-out reconciles with
//      offered: overload never makes requests disappear silently.
//
// A fourth scenario saturates a metered gateway relay and records the
// per-peer fairness drops next to a control-plane lookup that must cross
// the same relay unmetered.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "core/testbed.h"

namespace ntcs::bench {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

long max_rss_kb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

/// One LAN, a pipelining sender and an echo victim whose inbound queue is
/// bounded tight, so a storm exercises shed + busy back-pressure rather
/// than buffering.
struct StormRig {
  core::Testbed tb{1};
  std::unique_ptr<core::Node> sender;
  std::unique_ptr<core::Node> victim;
  std::jthread echo;
  core::UAdd victim_addr;

  explicit StormRig(std::size_t victim_queue, std::size_t reserve,
                    std::chrono::nanoseconds busy_pause = 2ms) {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();

    auto scfg = tb.node_config("src", "m1", "lan");
    scfg.lcm.busy_pause = busy_pause;
    sender = std::make_unique<core::Node>(scfg);
    if (!sender->start().ok() || !sender->commod().register_self().ok()) {
      std::abort();
    }
    auto vcfg = tb.node_config("victim", "m2", "lan");
    vcfg.lcm.max_inbound_queue = victim_queue;
    vcfg.lcm.control_reserve = reserve;
    victim = std::make_unique<core::Node>(vcfg);
    if (!victim->start().ok() || !victim->commod().register_self().ok()) {
      std::abort();
    }
    echo = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = victim->commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)victim->commod().reply(in.value().reply_ctx,
                                       in.value().payload);
        }
      }
    });
    victim_addr = sender->commod().locate("victim").value();
    (void)sender->commod().request(victim_addr, to_bytes("warm"), 5s);
  }

  ~StormRig() {
    echo.request_stop();
    if (echo.joinable()) echo.join();
    sender->stop();
    victim->stop();
  }
};

struct StormResult {
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t other = 0;
  double p50_admitted_us = 0;
  double p99_admitted_us = 0;
  long rss_growth_kb = 0;
};

/// Offer `threads * per_thread` requests and tally every outcome. With
/// `pace` zero the threads re-offer as fast as the busy/admission
/// machinery allows (the storm); a non-zero pace keeps the offered load
/// inside capacity (the concurrency-matched baseline).
StormResult run_storm(StormRig& rig, int threads, int per_thread,
                      std::chrono::nanoseconds deadline,
                      std::chrono::nanoseconds pace = {},
                      std::chrono::nanoseconds reject_backoff = {}) {
  StormResult res;
  res.offered = static_cast<std::uint64_t>(threads) * per_thread;
  const long rss_before = max_rss_kb();
  std::atomic<std::uint64_t> completed{0}, overloaded{0}, timeouts{0},
      other{0};
  std::vector<std::vector<double>> lat(threads);
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const ntcs::Bytes body = to_bytes(std::string(1024, 's'));
        lat[t].reserve(per_thread);
        for (int i = 0; i < per_thread; ++i) {
          const auto start = Clock::now();
          auto r = rig.sender->commod().request(rig.victim_addr, body,
                                                deadline);
          if (r.ok()) {
            const auto us = std::chrono::duration<double, std::micro>(
                                Clock::now() - start)
                                .count();
            lat[t].push_back(us);
            completed.fetch_add(1, std::memory_order_relaxed);
          } else if (r.code() == ntcs::Errc::overloaded) {
            overloaded.fetch_add(1, std::memory_order_relaxed);
          } else if (r.code() == ntcs::Errc::timeout) {
            timeouts.fetch_add(1, std::memory_order_relaxed);
          } else {
            other.fetch_add(1, std::memory_order_relaxed);
          }
          if (!r.ok() && r.code() == ntcs::Errc::overloaded &&
              reject_backoff.count() > 0) {
            // overloaded is retriable: a well-behaved client backs off
            // before re-offering, which also keeps the storm sustained in
            // time instead of burning all its attempts into one pause.
            std::this_thread::sleep_for(reject_backoff);
          }
          if (pace.count() > 0) std::this_thread::sleep_for(pace);
        }
      });
    }
  }
  res.rss_growth_kb = max_rss_kb() - rss_before;
  res.completed = completed.load();
  res.overloaded = overloaded.load();
  res.timeouts = timeouts.load();
  res.other = other.load();
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  res.p50_admitted_us = percentile(all, 0.50);
  res.p99_admitted_us = percentile(all, 0.99);
  return res;
}

/// Saturate a metered gateway relay with data frames while a control-class
/// lookup crosses the same relay.
struct GatewayResult {
  std::uint64_t offered = 0;
  std::uint64_t fairness_drops = 0;
  bool control_ok = false;
};

GatewayResult run_gateway_saturation() {
  GatewayResult res;
  HopRig& rig = hop_rig(1);
  for (std::size_t g = 0; g < rig.tb.gateway_count(); ++g) {
    auto& gw = rig.tb.gateway(g);
    for (std::size_t i = 0; i < gw.attachment_count(); ++i) {
      gw.attachment(i).ip().set_relay_fair_rate(200);
    }
  }
  static metrics::Counter& drops = metrics::counter("gw.fairness_drops");
  const std::uint64_t before = drops.value();
  constexpr int kStorm = 4000;
  res.offered = kStorm;
  const ntcs::Bytes junk = to_bytes(std::string(64, 'g'));
  for (int i = 0; i < kStorm; ++i) {
    (void)rig.src->commod().send(rig.dst_addr, junk);
  }
  res.fairness_drops = drops.value() - before;
  // Control-class traffic (naming lookup from the far side, internal on
  // the wire) must cross the saturated relay unmetered.
  res.control_ok = rig.dst->commod().locate("src").ok();
  // Restore the unmetered default so other scenarios reusing the cached
  // rig are unaffected.
  for (std::size_t g = 0; g < rig.tb.gateway_count(); ++g) {
    auto& gw = rig.tb.gateway(g);
    for (std::size_t i = 0; i < gw.attachment_count(); ++i) {
      gw.attachment(i).ip().set_relay_fair_rate(0);
    }
  }
  return res;
}

}  // namespace
}  // namespace ntcs::bench

int main() {
  using namespace ntcs::bench;
  using namespace std::chrono_literals;
  using Clock = std::chrono::steady_clock;

  // ---- unloaded baseline: one caller, no contention ----------------------
  std::vector<double> base_lat;
  {
    StormRig rig(/*victim_queue=*/4096, /*reserve=*/256);
    constexpr int kBase = 400;
    base_lat.reserve(kBase);
    const ntcs::Bytes body = ntcs::to_bytes(std::string(1024, 'b'));
    for (int i = 0; i < kBase; ++i) {
      const auto start = Clock::now();
      auto r = rig.sender->commod().request(rig.victim_addr, body, 5s);
      if (r.ok()) {
        base_lat.push_back(std::chrono::duration<double, std::micro>(
                               Clock::now() - start)
                               .count());
      }
    }
  }
  const double base_p50 = percentile(base_lat, 0.50);
  const double base_p99 = percentile(base_lat, 0.99);

  // ---- concurrency-matched baseline --------------------------------------
  // The same 6 caller threads, paced inside capacity against an unbounded
  // victim: its p99 carries the scheduler-contention cost of 6 threads on
  // however many cores this host has, with no overload in play. The storm
  // is then accountable for at most 2x THIS number — comparing the storm
  // against the single-caller baseline would blame admission control for
  // plain CPU contention.
  StormResult paced;
  {
    StormRig rig(/*victim_queue=*/4096, /*reserve=*/256);
    paced = run_storm(rig, /*threads=*/6, /*per_thread=*/400,
                      /*deadline=*/5s, /*pace=*/2ms);
  }

  // ---- 10x overload storm against a tightly bounded victim ---------------
  // 6 threads re-offering as fast as back-pressure allows against a
  // 2-deep inbound queue: offered load stays an order of magnitude past
  // what the victim admits, the rest sheds fast and accounts exactly.
  // Shed callers back off 2 ms before re-offering (overloaded is
  // retriable; a client that re-offers instantly is a spin loop, not a
  // workload), which keeps the storm sustained across many busy-pause
  // cycles. Admitted requests wait behind at most the 1-slot backlog
  // plus one 1 ms pause, so their p99 stays within 2x the
  // concurrency-matched baseline — the bounded-latency claim the
  // admission machinery exists to make.
  constexpr auto kStormPause = 1ms;
  StormResult storm;
  {
    StormRig rig(/*victim_queue=*/2, /*reserve=*/1,
                 /*busy_pause=*/kStormPause);
    storm = run_storm(rig, /*threads=*/6, /*per_thread=*/400,
                      /*deadline=*/100ms, /*pace=*/{},
                      /*reject_backoff=*/2ms);
  }

  // ---- gateway relay saturation with per-peer fairness metering ----------
  const GatewayResult gw = run_gateway_saturation();

  const std::uint64_t accounted =
      storm.completed + storm.overloaded + storm.timeouts + storm.other;
  const double accounted_ratio =
      storm.offered ? static_cast<double>(accounted) / storm.offered : 0.0;
  const bool pass_memory = storm.rss_growth_kb < 64 * 1024;
  // The design's latency promise for an admitted request: it waits at
  // most one busy pause plus the (1-slot) bounded backlog before the
  // victim serves it, so its p99 must stay within 2x of the
  // unloaded-at-equal-concurrency p99 plus that one pause. Without the
  // bounds and the back-pressure the storm's queues grow without limit
  // and this number grows with them.
  const double pause_us =
      std::chrono::duration<double, std::micro>(kStormPause).count();
  const bool pass_p99 =
      storm.p99_admitted_us <= 2.0 * (paced.p99_admitted_us + pause_us);
  const bool pass_accounting = accounted_ratio >= 0.99;

  // Gauge-plane accounting: the LCM inbound-queue gauge must have
  // witnessed the storm reaching the shed cliff — sheds happen only once
  // depth crosses bound - reserve, so shed > 0 implies a recorded peak at
  // least that deep (the tight victim's cliff is 2 - 1 = 1) — and must
  // balance back to zero after every rig is torn down: one unpaired
  // increment/decrement across the storm's enqueue/shed/drain cycles
  // would leave a residue in the live depth.
  const ntcs::metrics::Snapshot gsnap =
      ntcs::metrics::MetricsRegistry::instance().snapshot();
  const std::int64_t q_depth = gsnap.gauge_value("lcm.app_queue.depth");
  std::int64_t q_peak = 0;
  if (auto it = gsnap.values.find("lcm.app_queue.depth");
      it != gsnap.values.end()) {
    q_peak = it->second.gauge_peak;
  }
  const bool pass_gauges =
      storm.overloaded == 0 || (q_peak >= 1 && q_depth == 0);

  std::FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to open BENCH_overload.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"unloaded\": {\"requests\": %zu, \"p50_us\": %.1f, "
               "\"p99_us\": %.1f},\n"
               "  \"paced_baseline\": {\"offered\": %llu, \"completed\": "
               "%llu, \"p50_us\": %.1f, \"p99_us\": %.1f},\n"
               "  \"storm\": {\n"
               "    \"offered\": %llu,\n"
               "    \"completed\": %llu,\n"
               "    \"shed_overloaded\": %llu,\n"
               "    \"timeouts\": %llu,\n"
               "    \"other_errors\": %llu,\n"
               "    \"accounted_ratio\": %.4f,\n"
               "    \"p50_admitted_us\": %.1f,\n"
               "    \"p99_admitted_us\": %.1f,\n"
               "    \"rss_growth_kb\": %ld\n"
               "  },\n"
               "  \"gateway\": {\"offered\": %llu, \"fairness_drops\": %llu, "
               "\"control_plane_ok\": %s},\n"
               "  \"queue_gauge\": {\"depth_after\": %lld, \"peak\": %lld},\n"
               "  \"pass\": {\"bounded_memory\": %s, \"bounded_p99\": %s, "
               "\"accounting\": %s, \"gauge_accounting\": %s, "
               "\"gateway_fairness\": %s}\n"
               "}\n",
               base_lat.size(), base_p50, base_p99,
               static_cast<unsigned long long>(paced.offered),
               static_cast<unsigned long long>(paced.completed),
               paced.p50_admitted_us, paced.p99_admitted_us,
               static_cast<unsigned long long>(storm.offered),
               static_cast<unsigned long long>(storm.completed),
               static_cast<unsigned long long>(storm.overloaded),
               static_cast<unsigned long long>(storm.timeouts),
               static_cast<unsigned long long>(storm.other),
               accounted_ratio, storm.p50_admitted_us, storm.p99_admitted_us,
               storm.rss_growth_kb,
               static_cast<unsigned long long>(gw.offered),
               static_cast<unsigned long long>(gw.fairness_drops),
               gw.control_ok ? "true" : "false",
               static_cast<long long>(q_depth), static_cast<long long>(q_peak),
               pass_memory ? "true" : "false", pass_p99 ? "true" : "false",
               pass_accounting ? "true" : "false",
               pass_gauges ? "true" : "false",
               (gw.fairness_drops > 0 && gw.control_ok) ? "true" : "false");
  std::fclose(f);
  if (!dump_metrics_json("BENCH_overload_metrics.json")) {
    std::fprintf(stderr, "failed to write BENCH_overload_metrics.json\n");
    return 1;
  }
  std::printf(
      "bench_overload: offered=%llu completed=%llu shed=%llu timeouts=%llu "
      "p99_admitted=%.0fus (unloaded p99=%.0fus) rss_growth=%ldKiB "
      "gw_drops=%llu\n",
      static_cast<unsigned long long>(storm.offered),
      static_cast<unsigned long long>(storm.completed),
      static_cast<unsigned long long>(storm.overloaded),
      static_cast<unsigned long long>(storm.timeouts), storm.p99_admitted_us,
      base_p99, storm.rss_growth_kb,
      static_cast<unsigned long long>(gw.fairness_drops));
  return (pass_memory && pass_accounting && pass_gauges) ? 0 : 1;
}
