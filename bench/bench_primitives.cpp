// E7 (paper §1.3): the communication primitives and the virtual-circuit
// rationale.
//
// Claims reproduced:
//   * both asynchronous (send, dgram) and synchronous (send/receive/reply)
//     primitives are provided; async is cheaper per message;
//   * "interactions among application modules would stabilize in a set of
//     extended conversations" — circuit establishment amortises across a
//     conversation: per-message cost falls sharply as conversation length
//     grows.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

void BM_AsyncSend(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    if (!rig.src->commod().send(rig.dst_addr, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AsyncSend)->Range(16, 64 << 10)->Unit(benchmark::kMicrosecond);

void BM_Dgram(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(64, 0x42);
  for (auto _ : state) {
    if (!rig.src->commod().dgram(rig.dst_addr, msg).ok()) {
      state.SkipWithError("dgram failed");
    }
  }
}
BENCHMARK(BM_Dgram)->Unit(benchmark::kMicrosecond);

void BM_SyncRequestReply(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
    if (!reply.ok()) state.SkipWithError("request failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SyncRequestReply)->Range(16, 64 << 10)
    ->Unit(benchmark::kMicrosecond);

/// Conversation amortisation: per-message cost of (1 circuit + K messages)
/// as K grows. Establishment dominates at K=1 and vanishes by K=100 — the
/// virtual-circuit design's justification.
void BM_ConversationLength(benchmark::State& state) {
  HopRig& rig = hop_rig(1);  // include a gateway so establishment matters
  const int k = static_cast<int>(state.range(0));
  core::ResolvedDest dest;
  dest.uadd = rig.dst->identity().uadd();
  dest.phys = rig.dst->phys();
  dest.net = HopRig::net_name(1);
  const Bytes payload(64, 0x42);
  core::wire::LcmHeader hdr;
  hdr.kind = core::wire::LcmKind::data;
  hdr.src = rig.src->identity().uadd();
  hdr.dst = dest.uadd;
  const Bytes lcm_msg = core::wire::encode_lcm(hdr, payload);
  for (auto _ : state) {
    auto ivc = rig.src->ip().open_ivc(dest);
    if (!ivc.ok()) {
      state.SkipWithError("open_ivc failed");
      break;
    }
    for (int i = 0; i < k; ++i) {
      if (!rig.src->ip().send(ivc.value(), lcm_msg).ok()) {
        state.SkipWithError("send failed");
        break;
      }
    }
    (void)rig.src->ip().close_ivc(ivc.value());
  }
  // Normalise to per-message cost.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_ConversationLength)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

/// Ablation for the §5 "no needless conversions" policy: the same schema
/// record sent end-to-end between identical machine types (adaptive mode
/// picks image: byte copy) vs incompatible ones (packed: pack on send,
/// unpack on receive). The delta is exactly what the adaptive decision
/// saves on every same-type message.
struct ModeRig {
  core::Testbed tb;
  std::unique_ptr<core::Node> vax_a, vax_b, sun;
  std::jthread drain_vax, drain_sun;
  core::UAdd vax_b_addr, sun_addr;
  convert::MessageSchema schema;
  convert::Record rec;

  ModeRig()
      : schema("bulk",
               [] {
                 std::vector<convert::FieldSpec> fields;
                 for (int i = 0; i < 512; ++i) {
                   fields.push_back({"f" + std::to_string(i),
                                     convert::FieldType::u64});
                 }
                 return fields;
               }()),
        rec(schema.make_record()) {
    tb.net("lan");
    tb.machine("vax1", convert::Arch::vax780, {"lan"});
    tb.machine("vax2", convert::Arch::microvax, {"lan"});  // same order
    tb.machine("sun1", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("vax1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    vax_a = tb.spawn_module("vax-a", "vax1", "lan").value();
    vax_b = tb.spawn_module("vax-b", "vax2", "lan").value();
    sun = tb.spawn_module("sun", "sun1", "lan").value();
    drain_vax = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) (void)vax_b->commod().receive(50ms);
    });
    drain_sun = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) (void)sun->commod().receive(50ms);
    });
    vax_b_addr = vax_a->commod().locate("vax-b").value();
    sun_addr = vax_a->commod().locate("sun").value();
    Rng rng(3);
    for (int i = 0; i < 512; ++i) {
      (void)rec.set_u64("f" + std::to_string(i), rng.next());
    }
    auto p = vax_a->commod().payload_for(rec).value();
    (void)vax_a->commod().send(vax_b_addr, p);
    (void)vax_a->commod().send(sun_addr, p);
  }
  ~ModeRig() {
    drain_vax.request_stop();
    drain_sun.request_stop();
    if (drain_vax.joinable()) drain_vax.join();
    if (drain_sun.joinable()) drain_sun.join();
    vax_a->stop();
    vax_b->stop();
    sun->stop();
  }
};

ModeRig& mode_rig() {
  static ModeRig r;
  return r;
}

void BM_AdaptiveModeSameArch(benchmark::State& state) {
  ModeRig& r = mode_rig();
  for (auto _ : state) {
    auto p = r.vax_a->commod().payload_for(r.rec);
    if (!p.ok() || !r.vax_a->commod().send(r.vax_b_addr, p.value()).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.schema.image_size()));
}
BENCHMARK(BM_AdaptiveModeSameArch)->Unit(benchmark::kMicrosecond);

void BM_AdaptiveModeCrossArch(benchmark::State& state) {
  ModeRig& r = mode_rig();
  for (auto _ : state) {
    auto p = r.vax_a->commod().payload_for(r.rec);
    if (!p.ok() || !r.vax_a->commod().send(r.sun_addr, p.value()).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.schema.image_size()));
}
BENCHMARK(BM_AdaptiveModeCrossArch)->Unit(benchmark::kMicrosecond);

/// Raw Nucleus send (LCM bypassed) as the substrate floor.
void BM_NdLayerFloor(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  // A dedicated LVC straight to the destination endpoint.
  auto lvc = rig.src->nd().open(rig.dst->phys());
  if (!lvc.ok()) {
    state.SkipWithError("nd open failed");
    return;
  }
  // A well-formed envelope the peer's IP-Layer quietly discards (teardown
  // of an unknown circuit), so the floor measures transport only.
  const Bytes msg = core::wire::encode_ip_teardown(0xFFFFFFFFu);
  for (auto _ : state) {
    if (!rig.src->nd().send(lvc.value(), msg).ok()) {
      state.SkipWithError("nd send failed");
    }
  }
  (void)rig.src->nd().close(lvc.value());
}
BENCHMARK(BM_NdLayerFloor)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
