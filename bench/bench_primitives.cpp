// E7 (paper §1.3): the communication primitives and the virtual-circuit
// rationale.
//
// Claims reproduced:
//   * both asynchronous (send, dgram) and synchronous (send/receive/reply)
//     primitives are provided; async is cheaper per message;
//   * "interactions among application modules would stabilize in a set of
//     extended conversations" — circuit establishment amortises across a
//     conversation: per-message cost falls sharply as conversation length
//     grows.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <deque>
#include <string_view>

#include "common/trace.h"
#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

void BM_AsyncSend(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    if (!rig.src->commod().send(rig.dst_addr, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AsyncSend)->Range(16, 64 << 10)->Unit(benchmark::kMicrosecond);

void BM_Dgram(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(64, 0x42);
  for (auto _ : state) {
    if (!rig.src->commod().dgram(rig.dst_addr, msg).ok()) {
      state.SkipWithError("dgram failed");
    }
  }
}
BENCHMARK(BM_Dgram)->Unit(benchmark::kMicrosecond);

void BM_SyncRequestReply(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
    if (!reply.ok()) state.SkipWithError("request failed");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SyncRequestReply)->Range(16, 64 << 10)
    ->Unit(benchmark::kMicrosecond);

/// Conversation amortisation: per-message cost of (1 circuit + K messages)
/// as K grows. Establishment dominates at K=1 and vanishes by K=100 — the
/// virtual-circuit design's justification.
void BM_ConversationLength(benchmark::State& state) {
  HopRig& rig = hop_rig(1);  // include a gateway so establishment matters
  const int k = static_cast<int>(state.range(0));
  core::ResolvedDest dest;
  dest.uadd = rig.dst->identity().uadd();
  dest.phys = rig.dst->phys();
  dest.net = HopRig::net_name(1);
  const Bytes payload(64, 0x42);
  core::wire::LcmHeader hdr;
  hdr.kind = core::wire::LcmKind::data;
  hdr.src = rig.src->identity().uadd();
  hdr.dst = dest.uadd;
  const Bytes lcm_msg = core::wire::encode_lcm(hdr, payload);
  for (auto _ : state) {
    auto ivc = rig.src->ip().open_ivc(dest);
    if (!ivc.ok()) {
      state.SkipWithError("open_ivc failed");
      break;
    }
    for (int i = 0; i < k; ++i) {
      if (!rig.src->ip().send(ivc.value(), lcm_msg).ok()) {
        state.SkipWithError("send failed");
        break;
      }
    }
    (void)rig.src->ip().close_ivc(ivc.value());
  }
  // Normalise to per-message cost.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}
BENCHMARK(BM_ConversationLength)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

/// Ablation for the §5 "no needless conversions" policy: the same schema
/// record sent end-to-end between identical machine types (adaptive mode
/// picks image: byte copy) vs incompatible ones (packed: pack on send,
/// unpack on receive). The delta is exactly what the adaptive decision
/// saves on every same-type message.
struct ModeRig {
  core::Testbed tb;
  std::unique_ptr<core::Node> vax_a, vax_b, sun;
  std::jthread drain_vax, drain_sun;
  core::UAdd vax_b_addr, sun_addr;
  convert::MessageSchema schema;
  convert::Record rec;

  ModeRig()
      : schema("bulk",
               [] {
                 std::vector<convert::FieldSpec> fields;
                 for (int i = 0; i < 512; ++i) {
                   fields.push_back({"f" + std::to_string(i),
                                     convert::FieldType::u64});
                 }
                 return fields;
               }()),
        rec(schema.make_record()) {
    tb.net("lan");
    tb.machine("vax1", convert::Arch::vax780, {"lan"});
    tb.machine("vax2", convert::Arch::microvax, {"lan"});  // same order
    tb.machine("sun1", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("vax1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    vax_a = tb.spawn_module("vax-a", "vax1", "lan").value();
    vax_b = tb.spawn_module("vax-b", "vax2", "lan").value();
    sun = tb.spawn_module("sun", "sun1", "lan").value();
    drain_vax = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) (void)vax_b->commod().receive(50ms);
    });
    drain_sun = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) (void)sun->commod().receive(50ms);
    });
    vax_b_addr = vax_a->commod().locate("vax-b").value();
    sun_addr = vax_a->commod().locate("sun").value();
    Rng rng(3);
    for (int i = 0; i < 512; ++i) {
      (void)rec.set_u64("f" + std::to_string(i), rng.next());
    }
    auto p = vax_a->commod().payload_for(rec).value();
    (void)vax_a->commod().send(vax_b_addr, p);
    (void)vax_a->commod().send(sun_addr, p);
  }
  ~ModeRig() {
    drain_vax.request_stop();
    drain_sun.request_stop();
    if (drain_vax.joinable()) drain_vax.join();
    if (drain_sun.joinable()) drain_sun.join();
    vax_a->stop();
    vax_b->stop();
    sun->stop();
  }
};

ModeRig& mode_rig() {
  static ModeRig r;
  return r;
}

void BM_AdaptiveModeSameArch(benchmark::State& state) {
  ModeRig& r = mode_rig();
  for (auto _ : state) {
    auto p = r.vax_a->commod().payload_for(r.rec);
    if (!p.ok() || !r.vax_a->commod().send(r.vax_b_addr, p.value()).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.schema.image_size()));
}
BENCHMARK(BM_AdaptiveModeSameArch)->Unit(benchmark::kMicrosecond);

void BM_AdaptiveModeCrossArch(benchmark::State& state) {
  ModeRig& r = mode_rig();
  for (auto _ : state) {
    auto p = r.vax_a->commod().payload_for(r.rec);
    if (!p.ok() || !r.vax_a->commod().send(r.sun_addr, p.value()).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.schema.image_size()));
}
BENCHMARK(BM_AdaptiveModeCrossArch)->Unit(benchmark::kMicrosecond);

/// Raw Nucleus send (LCM bypassed) as the substrate floor.
void BM_NdLayerFloor(benchmark::State& state) {
  HopRig& rig = hop_rig(0);
  // A dedicated LVC straight to the destination endpoint.
  auto lvc = rig.src->nd().open(rig.dst->phys());
  if (!lvc.ok()) {
    state.SkipWithError("nd open failed");
    return;
  }
  // A well-formed envelope the peer's IP-Layer quietly discards (teardown
  // of an unknown circuit), so the floor measures transport only.
  const Bytes msg = core::wire::encode_ip_teardown(0xFFFFFFFFu);
  for (auto _ : state) {
    if (!rig.src->nd().send(lvc.value(), msg).ok()) {
      state.SkipWithError("nd send failed");
    }
  }
  (void)rig.src->nd().close(lvc.value());
}
BENCHMARK(BM_NdLayerFloor)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Pipelined request throughput (the PR's tentpole claim): N outstanding
// 1 KiB requests on one circuit vs the strict request/reply lockstep. The
// fabric gets a realistic 1986-LAN latency so there is real wire time for
// the window to hide; both transfer modes run, since a packed-mode request
// adds a pack/unpack on the same critical path the window overlaps.

struct PipeRig {
  core::Testbed tb;
  std::unique_ptr<core::Node> src;
  std::unique_ptr<core::Node> dst_image;   // same representation: image mode
  std::unique_ptr<core::Node> dst_packed;  // incompatible: packed mode
  std::jthread echo_image, echo_packed;
  core::UAdd image_addr, packed_addr;

  PipeRig() {
    simnet::NetConfig lan_cfg;
    lan_cfg.latency_min = 100us;
    lan_cfg.latency_max = 200us;
    tb.net("lan", lan_cfg);
    tb.machine("m-src", convert::Arch::vax780, {"lan"});
    tb.machine("m-img", convert::Arch::microvax, {"lan"});  // image-compatible
    tb.machine("m-pkd", convert::Arch::sun3, {"lan"});      // packed
    if (!tb.start_name_server("m-src", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    // The client gets a deep window so the sweep can go to 64 outstanding.
    core::NodeConfig cfg = tb.node_config("src", "m-src", "lan");
    cfg.lcm.window_depth = 64;
    src = std::make_unique<core::Node>(std::move(cfg));
    if (!src->start().ok() || !src->commod().register_self().ok()) {
      std::abort();
    }
    dst_image = tb.spawn_module("dst-img", "m-img", "lan").value();
    dst_packed = tb.spawn_module("dst-pkd", "m-pkd", "lan").value();
    echo_image = echo_loop(*dst_image);
    echo_packed = echo_loop(*dst_packed);
    image_addr = src->commod().locate("dst-img").value();
    packed_addr = src->commod().locate("dst-pkd").value();
    (void)src->commod().request(image_addr, to_bytes("warm"), 5s);
    (void)src->commod().request(packed_addr, to_bytes("warm"), 5s);
  }

  static std::jthread echo_loop(core::Node& n) {
    return std::jthread([&n](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = n.commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)n.commod().reply(in.value().reply_ctx, in.value().payload);
        }
      }
    });
  }

  ~PipeRig() {
    echo_image.request_stop();
    echo_packed.request_stop();
    src->stop();
    dst_image->stop();
    dst_packed->stop();
  }
};

PipeRig& pipe_rig() {
  static PipeRig r;
  return r;
}

core::Payload pipeline_payload(bool packed) {
  const Bytes body(1024, 0x5A);
  core::Payload p;
  p.image = body;
  if (packed) {
    // A pack routine makes the payload conversion-eligible; against the
    // incompatible destination the adaptive decision picks packed mode.
    p.pack = [body]() -> ntcs::Result<Bytes> { return body; };
  }
  return p;
}

/// Sliding-window driver: keep `depth` requests outstanding until `total`
/// complete. Returns requests/second, or < 0 on failure.
double pipelined_rps(PipeRig& rig, core::UAdd addr, const core::Payload& p,
                     int depth, int total) {
  std::deque<core::RequestTicket> inflight;
  int issued = 0;
  int done = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < total) {
    while (issued < total && static_cast<int>(inflight.size()) < depth) {
      auto t = rig.src->commod().request_async(addr, p, 30s);
      if (!t.ok()) return -1.0;
      inflight.push_back(t.value());
      ++issued;
    }
    auto r = rig.src->commod().await(inflight.front());
    inflight.pop_front();
    if (!r.ok()) return -1.0;
    ++done;
  }
  const std::chrono::duration<double> secs =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(total) / secs.count();
}

void BM_PipelinedRequests(benchmark::State& state) {
  PipeRig& rig = pipe_rig();
  const int depth = static_cast<int>(state.range(0));
  const bool packed = state.range(1) != 0;
  const core::Payload p = pipeline_payload(packed);
  const core::UAdd addr = packed ? rig.packed_addr : rig.image_addr;
  for (auto _ : state) {
    if (pipelined_rps(rig, addr, p, depth, depth * 4) < 0) {
      state.SkipWithError("pipelined request failed");
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          depth * 4);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          depth * 4 * 1024);
}
BENCHMARK(BM_PipelinedRequests)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// The artifact sweep behind BENCH_pipeline.json: requests/second at each
/// (depth, mode) point, one circuit, 1 KiB payloads.
bool dump_pipeline_json(const char* path) {
  PipeRig& rig = pipe_rig();
  constexpr int kTotal = 400;
  const int depths[] = {1, 2, 4, 8, 16, 32, 64};
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n  \"payload_bytes\": 1024,\n  \"requests_per_point\": "
               "%d,\n  \"points\": [\n",
               kTotal);
  bool first = true;
  bool ok = true;
  std::map<std::string, double> depth1;
  for (const bool packed : {false, true}) {
    const core::Payload p = pipeline_payload(packed);
    const core::UAdd addr = packed ? rig.packed_addr : rig.image_addr;
    const char* mode = packed ? "packed" : "image";
    for (const int depth : depths) {
      const double rps = pipelined_rps(rig, addr, p, depth, kTotal);
      if (rps < 0) {
        ok = false;
        continue;
      }
      if (depth == 1) depth1[mode] = rps;
      const double speedup = depth1[mode] > 0 ? rps / depth1[mode] : 0.0;
      std::fprintf(f,
                   "%s    {\"depth\": %d, \"mode\": \"%s\", "
                   "\"requests_per_sec\": %.1f, \"speedup_vs_depth1\": "
                   "%.2f}",
                   first ? "" : ",\n", depth, mode, rps, speedup);
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return ok;
}

}  // namespace

// Expanded BENCHMARK_MAIN (see bench_chaos.cpp): after the registered
// benchmarks, run the pipelined-throughput sweep and leave the artifact
// behind as BENCH_pipeline.json.
int main(int argc, char** argv) {
  // Tracing-overhead ablation (EXPERIMENTS.md): NTCS_TRACE=always samples
  // every root span, NTCS_TRACE=off (or unset) is the production default —
  // the same binary measures both sides of the <2% overhead budget.
  if (const char* t = std::getenv("NTCS_TRACE")) {
    if (std::string_view(t) == "always") {
      ntcs::trace::set_sampling(ntcs::trace::SampleMode::always);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ntcs::trace::set_sampling(ntcs::trace::SampleMode::off);
  if (!dump_pipeline_json("BENCH_pipeline.json")) {
    std::fprintf(stderr, "failed to write BENCH_pipeline.json\n");
    return 1;
  }
  return 0;
}
