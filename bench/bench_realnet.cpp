// Substrate comparison: the SAME HopRig harness (bench_util.h) timed over
// the simulated fabric and over real loopback TCP sockets.
//
// What the numbers mean: simnet hops cost a mutex-protected queue handoff
// plus simulated latency; realnet hops cost real syscalls (sendmsg /
// read), kernel socket buffers and thread wakeups. The per-hop delta is
// the price of a real IPCS below the STD-IF — and the proof that nothing
// above the ND-Layer had to change to pay it.
//
// Artifacts: standard google-benchmark timings for the registered
// benchmarks, plus BENCH_realnet.json — a per-hop cost table (request
// round-trip and async-send throughput at 0 and 1 gateway hops, both
// substrates) written by an explicit sweep in main() so the artifact does
// not depend on benchmark CLI flags.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

core::Substrate substrate_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? core::Substrate::simnet
                             : core::Substrate::realnet;
}

void BM_RequestReply(benchmark::State& state) {
  HopRig& rig = hop_rig(static_cast<int>(state.range(0)),
                        substrate_arg(state));
  const Bytes msg(1024, 0x42);
  for (auto _ : state) {
    auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
    if (!reply.ok()) state.SkipWithError("request failed");
  }
  state.SetLabel(state.range(1) == 0 ? "simnet" : "realnet");
}
BENCHMARK(BM_RequestReply)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_AsyncSend(benchmark::State& state) {
  HopRig& rig = hop_rig(static_cast<int>(state.range(0)),
                        substrate_arg(state));
  const Bytes msg(1024, 0x42);
  for (auto _ : state) {
    if (!rig.src->commod().send(rig.dst_addr, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
  state.SetLabel(state.range(1) == 0 ? "simnet" : "realnet");
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AsyncSend)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

struct Point {
  const char* substrate;
  int hops;
  double request_us;
  double per_hop_us;
};

/// One measured sweep point: median-of-3 batches of synchronous 1 KiB
/// request round trips.
double measure_request_us(HopRig& rig, int iters) {
  const Bytes msg(1024, 0x42);
  for (int i = 0; i < 50; ++i) {  // steady-state: circuits, caches, threads
    if (!rig.src->commod().request(rig.dst_addr, msg, 5s).ok()) std::abort();
  }
  std::vector<double> batches;
  for (int b = 0; b < 3; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      auto reply = rig.src->commod().request(rig.dst_addr, msg, 5s);
      if (!reply.ok()) std::abort();
    }
    const auto dt = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    batches.push_back(dt / iters);
  }
  std::sort(batches.begin(), batches.end());
  return batches[1];
}

bool dump_realnet_json(const char* path) {
  constexpr int kIters = 300;
  std::vector<Point> points;
  for (const auto substrate :
       {core::Substrate::simnet, core::Substrate::realnet}) {
    const char* name =
        substrate == core::Substrate::simnet ? "simnet" : "realnet";
    const double direct = measure_request_us(hop_rig(0, substrate), kIters);
    const double one_gw = measure_request_us(hop_rig(1, substrate), kIters);
    points.push_back({name, 0, direct, 0.0});
    points.push_back({name, 1, one_gw, one_gw - direct});
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\n"
               "  \"payload_bytes\": 1024,\n"
               "  \"requests_per_point\": %d,\n"
               "  \"points\": [\n",
               kIters);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"substrate\": \"%s\", \"gateway_hops\": %d, "
                 "\"request_us\": %.1f, \"per_gateway_hop_us\": %.1f}%s\n",
                 p.substrate, p.hops, p.request_us, p.per_hop_us,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

// Expanded BENCHMARK_MAIN (see bench_primitives.cpp): after the registered
// benchmarks run, sweep the per-hop cost table and leave it behind as
// BENCH_realnet.json.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!dump_realnet_json("BENCH_realnet.json")) {
    std::fprintf(stderr, "failed to write BENCH_realnet.json\n");
    return 1;
  }
  return 0;
}
