// E5 (paper §3.5, §4.3): dynamic reconfiguration cost.
//
// Claims reproduced:
//   * relocating a module mid-conversation is recovered transparently —
//     the client's next request succeeds against the address it resolved
//     before the move;
//   * recovery costs one address fault + one forwarding query + one
//     re-established circuit ("in exactly the same manner as during an
//     initial connection"), measured end to end.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct ReconfigRig {
  core::Testbed tb;
  ntcs::drts::ProcessController pc{tb};
  std::unique_ptr<core::Node> client;
  core::UAdd addr;
  int placement = 0;

  ReconfigRig() {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    tb.machine("m3", convert::Arch::apollo_dn330, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();
    if (!pc.spawn("svc", "m2", "lan", {}, ntcs::drts::make_echo_service())
             .ok()) {
      std::abort();
    }
    client = tb.spawn_module("client", "m1", "lan").value();
    addr = client->commod().locate("svc").value();
    (void)client->commod().request(addr, to_bytes("warm"), 5s);
  }
  ~ReconfigRig() { client->stop(); }

  const char* next_machine() {
    static const char* kMachines[] = {"m3", "m2"};
    return kMachines[placement++ % 2];
  }
};

ReconfigRig& rig() {
  static ReconfigRig r;
  return r;
}

/// Steady-state request (baseline: no reconfiguration).
void BM_RequestNoReconfig(benchmark::State& state) {
  ReconfigRig& r = rig();
  for (auto _ : state) {
    auto reply = r.client->commod().request(r.addr, to_bytes("x"), 5s);
    if (!reply.ok()) state.SkipWithError("request failed");
  }
}
BENCHMARK(BM_RequestNoReconfig)->Unit(benchmark::kMicrosecond);

/// First request after a relocation: fault + forwarding query + reconnect
/// + resend. The relocation itself (kill + respawn) is excluded.
void BM_FirstRequestAfterRelocation(benchmark::State& state) {
  ReconfigRig& r = rig();
  for (auto _ : state) {
    state.PauseTiming();
    if (!r.pc.relocate("svc", r.next_machine(), "lan").ok()) {
      state.SkipWithError("relocation failed");
      break;
    }
    state.ResumeTiming();
    auto reply = r.client->commod().request(r.addr, to_bytes("x"), 5s);
    if (!reply.ok()) state.SkipWithError("post-move request failed");
  }
  state.counters["relocations_resolved"] = benchmark::Counter(
      static_cast<double>(r.client->lcm().stats().relocations));
}
BENCHMARK(BM_FirstRequestAfterRelocation)->Unit(benchmark::kMicrosecond);

/// The relocation operation itself (kill + respawn + re-register).
void BM_RelocateOperation(benchmark::State& state) {
  ReconfigRig& r = rig();
  for (auto _ : state) {
    if (!r.pc.relocate("svc", r.next_machine(), "lan").ok()) {
      state.SkipWithError("relocation failed");
      break;
    }
  }
}
BENCHMARK(BM_RelocateOperation)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
