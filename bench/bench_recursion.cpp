// E6 (paper §6.1): the cost of recursion — DRTS hooks on the send path.
//
// Claims reproduced:
//   * recursion is "not bad for the traditional reason of speed
//     (recursive calls are rare under normal operation)": once the time
//     service is synced and the monitor located, a monitored send adds
//     only one timestamp call and one datagram;
//   * the FIRST monitored send is much more expensive — it locates the
//     time service, runs the multi-message correction, locates the
//     monitor, and establishes circuits, all recursively (the §6.1
//     walkthrough).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "drts/monitor.h"
#include "drts/time_service.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct RecursionRig {
  core::Testbed tb;
  std::unique_ptr<ntcs::drts::TimeServer> time_server;
  std::unique_ptr<ntcs::drts::MonitorServer> monitor;
  std::unique_ptr<core::Node> plain;      // no hooks
  std::unique_ptr<core::Node> monitored;  // monitor hook
  std::unique_ptr<core::Node> full;       // monitor + time hooks
  std::unique_ptr<core::Node> sink;
  std::unique_ptr<ntcs::drts::MonitorClient> mc1, mc2;
  std::unique_ptr<ntcs::drts::TimeClient> tc;
  std::jthread drain;
  core::UAdd sink_addr_plain, sink_addr_mon, sink_addr_full;
  std::uint64_t counter = 0;

  RecursionRig() {
    tb.net("lan");
    tb.machine("m1", convert::Arch::vax780, {"lan"});
    tb.machine("m2", convert::Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) std::abort();
    if (!tb.finalize().ok()) std::abort();

    time_server =
        std::make_unique<ntcs::drts::TimeServer>(tb.node_config("", "m2", "lan"));
    if (!time_server->start().ok()) std::abort();
    monitor = std::make_unique<ntcs::drts::MonitorServer>(
        tb.node_config("", "m2", "lan"));
    if (!monitor->start().ok()) std::abort();

    plain = tb.spawn_module("plain", "m1", "lan").value();
    monitored = tb.spawn_module("monitored", "m1", "lan").value();
    full = tb.spawn_module("full", "m1", "lan").value();
    sink = tb.spawn_module("sink", "m2", "lan").value();

    mc1 = std::make_unique<ntcs::drts::MonitorClient>(*monitored);
    monitored->lcm().set_monitor_hook(mc1->hook());
    mc2 = std::make_unique<ntcs::drts::MonitorClient>(*full);
    full->lcm().set_monitor_hook(mc2->hook());
    tc = std::make_unique<ntcs::drts::TimeClient>(*full);
    full->lcm().set_time_source(tc->source());

    drain = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) (void)sink->commod().receive(50ms);
    });
    sink_addr_plain = plain->commod().locate("sink").value();
    sink_addr_mon = monitored->commod().locate("sink").value();
    sink_addr_full = full->commod().locate("sink").value();
    // Warm everything: circuits, monitor location, time sync.
    (void)plain->commod().send(sink_addr_plain, to_bytes("w"));
    (void)monitored->commod().send(sink_addr_mon, to_bytes("w"));
    (void)full->commod().send(sink_addr_full, to_bytes("w"));
  }
  ~RecursionRig() {
    drain.request_stop();
    if (drain.joinable()) drain.join();
    plain->stop();
    monitored->stop();
    full->stop();
    sink->stop();
  }
};

RecursionRig& rig() {
  static RecursionRig r;
  return r;
}

void BM_SendNoHooks(benchmark::State& state) {
  RecursionRig& r = rig();
  const Bytes msg(64, 1);
  for (auto _ : state) {
    if (!r.plain->commod().send(r.sink_addr_plain, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
}
BENCHMARK(BM_SendNoHooks)->Unit(benchmark::kMicrosecond);

void BM_SendMonitorHook(benchmark::State& state) {
  RecursionRig& r = rig();
  const Bytes msg(64, 1);
  for (auto _ : state) {
    if (!r.monitored->commod().send(r.sink_addr_mon, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
}
BENCHMARK(BM_SendMonitorHook)->Unit(benchmark::kMicrosecond);

void BM_SendMonitorAndTimeHooks(benchmark::State& state) {
  RecursionRig& r = rig();
  const Bytes msg(64, 1);
  for (auto _ : state) {
    if (!r.full->commod().send(r.sink_addr_full, msg).ok()) {
      state.SkipWithError("send failed");
    }
  }
}
BENCHMARK(BM_SendMonitorAndTimeHooks)->Unit(benchmark::kMicrosecond);

/// The §6.1 walkthrough: a module's very first monitored+timed send to a
/// fresh destination — every nested call included (fresh module each
/// iteration; the spawn itself is excluded from timing).
void BM_FirstSendFullRecursion(benchmark::State& state) {
  RecursionRig& r = rig();
  for (auto _ : state) {
    state.PauseTiming();
    auto node =
        r.tb.spawn_module("cold-" + std::to_string(r.counter++), "m1", "lan");
    if (!node.ok()) {
      state.SkipWithError("spawn failed");
      break;
    }
    auto mc = std::make_unique<ntcs::drts::MonitorClient>(*node.value());
    auto tc = std::make_unique<ntcs::drts::TimeClient>(*node.value());
    node.value()->lcm().set_monitor_hook(mc->hook());
    node.value()->lcm().set_time_source(tc->source());
    auto dst = node.value()->commod().locate("sink").value();
    state.ResumeTiming();
    if (!node.value()->commod().send(dst, to_bytes("first")).ok()) {
      state.SkipWithError("first send failed");
    }
    state.PauseTiming();
    node.value()->stop();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FirstSendFullRecursion)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
