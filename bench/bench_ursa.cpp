// E8 (paper §7): the URSA application workload over the full NTCS.
//
// Claims reproduced:
//   * the NTCS supports a real message-based IR application across
//     heterogeneous machines and multiple networks ("successfully
//     employed in three generations of distributed information retrieval
//     systems");
//   * query cost scales with the number of query terms (one backend
//     round trip per term) and with corpus selectivity.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ursa/servers.h"

namespace {

using namespace ntcs;
using namespace ntcs::bench;

struct UrsaRig {
  core::Testbed tb;
  ntcs::drts::ProcessController pc{tb};
  std::shared_ptr<ursa::Corpus> corpus;
  std::unique_ptr<core::Node> host_node;
  std::unique_ptr<ursa::UrsaHost> host;

  UrsaRig() {
    tb.net("office");
    tb.net("backend");
    tb.machine("vax-host", convert::Arch::vax780, {"office"});
    tb.machine("gw", convert::Arch::apollo_dn330, {"office", "backend"});
    tb.machine("sun-be", convert::Arch::sun3, {"backend"});
    if (!tb.start_name_server("vax-host", "office").ok()) std::abort();
    if (!tb.add_gateway("gw-1", "gw", {"office", "backend"}).ok()) {
      std::abort();
    }
    if (!tb.finalize().ok()) std::abort();
    ursa::UrsaPlacement placement;
    placement.index_machine = "sun-be";
    placement.index_net = "backend";
    placement.doc_machine = "sun-be";
    placement.doc_net = "backend";
    placement.search_machine = "sun-be";
    placement.search_net = "backend";
    auto c = ursa::spawn_ursa(pc, placement, 500, 21);
    if (!c.ok()) std::abort();
    corpus = c.value();
    host_node = tb.spawn_module("host", "vax-host", "office").value();
    host = std::make_unique<ursa::UrsaHost>(*host_node);
    if (!host->connect().ok()) std::abort();
  }
  ~UrsaRig() { host_node->stop(); }

  std::string query(int terms, int base_rank) const {
    std::string q;
    for (int t = 0; t < terms; ++t) {
      if (t != 0) q.push_back(' ');
      q += corpus->vocabulary()[static_cast<std::size_t>(base_rank + t)];
    }
    return q;
  }
};

UrsaRig& rig() {
  static UrsaRig r;
  return r;
}

/// Query latency vs number of query terms (one index round trip each).
void BM_QueryByTermCount(benchmark::State& state) {
  UrsaRig& r = rig();
  const std::string q = r.query(static_cast<int>(state.range(0)), 0);
  for (auto _ : state) {
    auto hits = r.host->search(q, 10);
    if (!hits.ok()) state.SkipWithError("search failed");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_QueryByTermCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Common (low-rank) vs rare (high-rank) single-term queries: postings
/// volume drives the cost.
void BM_QueryBySelectivity(benchmark::State& state) {
  UrsaRig& r = rig();
  const std::string q = r.query(1, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hits = r.host->search(q, 10);
    if (!hits.ok()) state.SkipWithError("search failed");
  }
}
BENCHMARK(BM_QueryBySelectivity)->Arg(0)->Arg(50)->Arg(200)->Arg(390)
    ->Unit(benchmark::kMicrosecond);

/// Document fetch (doc server round trip across the gateway).
void BM_DocumentFetch(benchmark::State& state) {
  UrsaRig& r = rig();
  std::uint64_t id = 1;
  for (auto _ : state) {
    auto doc = r.host->fetch(id);
    if (!doc.ok()) state.SkipWithError("fetch failed");
    id = id % r.corpus->size() + 1;
  }
}
BENCHMARK(BM_DocumentFetch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
