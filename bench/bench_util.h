// bench_util.h — shared rig builders for the experiment benchmarks.
//
// Rigs are built once per process (google-benchmark re-enters each
// benchmark body many times) and torn down at exit. Machines are given
// distinct architectures so conversion decisions stay realistic.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <thread>

#include "common/metrics.h"
#include "core/testbed.h"
#include "drts/process_control.h"

namespace ntcs::bench {

using namespace std::chrono_literals;

/// A chain of `hops+1` networks with `hops` gateways; a source module on
/// the first network, an echo server on the last. Runs unchanged over
/// either substrate — that is the point of BENCH_realnet.json: the same
/// harness, simnet vs real loopback sockets.
struct HopRig {
  core::Testbed tb;
  std::unique_ptr<core::Node> src;
  std::unique_ptr<core::Node> dst;
  std::jthread echo;
  core::UAdd dst_addr;

  explicit HopRig(int hops,
                  core::Substrate substrate = core::Substrate::simnet)
      : tb(1, substrate) {
    for (int n = 0; n <= hops; ++n) tb.net(net_name(n));
    tb.machine("m-src", convert::Arch::vax780, {net_name(0)});
    tb.machine("m-dst", convert::Arch::sun3, {net_name(hops)});
    for (int g = 0; g < hops; ++g) {
      tb.machine(gw_machine(g), convert::Arch::apollo_dn330,
                 {net_name(g), net_name(g + 1)});
    }
    if (!tb.start_name_server("m-src", net_name(0)).ok()) std::abort();
    for (int g = 0; g < hops; ++g) {
      if (!tb.add_gateway("gw-" + std::to_string(g), gw_machine(g),
                          {net_name(g), net_name(g + 1)})
               .ok()) {
        std::abort();
      }
    }
    if (!tb.finalize().ok()) std::abort();
    src = tb.spawn_module("src", "m-src", net_name(0)).value();
    dst = tb.spawn_module("dst", "m-dst", net_name(hops)).value();
    echo = std::jthread([this](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = dst->commod().receive(50ms);
        if (in.ok() && in.value().is_request) {
          (void)dst->commod().reply(in.value().reply_ctx,
                                    in.value().payload);
        }
      }
    });
    dst_addr = src->commod().locate("dst").value();
    // Warm the circuit so steady-state numbers exclude establishment.
    (void)src->commod().request(dst_addr, to_bytes("warm"), 5s);
  }

  ~HopRig() {
    echo.request_stop();
    if (echo.joinable()) echo.join();
    src->stop();
    dst->stop();
  }

  static std::string net_name(int n) { return "net-" + std::to_string(n); }
  static std::string gw_machine(int g) { return "m-gw" + std::to_string(g); }
};

inline HopRig& hop_rig(int hops,
                       core::Substrate substrate = core::Substrate::simnet) {
  static std::map<std::pair<int, int>, std::unique_ptr<HopRig>> rigs;
  const std::pair<int, int> key{hops, static_cast<int>(substrate)};
  auto it = rigs.find(key);
  if (it == rigs.end()) {
    it = rigs.emplace(key, std::make_unique<HopRig>(hops, substrate)).first;
  }
  return *it->second;
}

/// Dump the process-wide metrics snapshot as JSON next to the benchmark's
/// own output, so a run leaves behind the per-layer event counts (lcm.sends,
/// ip.hops_forwarded, convert.mode.*, ...) and latency percentiles
/// (p50/p90/p99 per histogram) alongside its timings. The default artifact
/// name follows the BENCH_<bench>_*.json convention
/// (BENCH_chaos_metrics.json, BENCH_pipeline.json).
inline bool dump_metrics_json(const char* path = "BENCH_gateway_metrics.json") {
  const std::string json = metrics::MetricsRegistry::instance()
                               .snapshot()
                               .to_json();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace ntcs::bench
