// ntcs_top.cpp — fleet-wide live introspection over the NTCS itself.
//
// The observability plane's driver: brings up (or, one day, attaches to) a
// fleet, discovers every monitor through the name service's
// attribute-value query (role=monitor — naming used recursively to find
// the observers), then harvests each monitor's health verdict, journal
// tail and metrics snapshot over the NTCS (§6.1: the system monitors
// itself through its own primitives). Renders a per-module health table, a
// per-queue utilization table computed from the `<base>.depth` /
// `<base>.bound` gauge convention, and — with --prom — the merged
// Prometheus text exposition for an external scraper. Truncated harvests
// are surfaced per module, never silently merged as complete.
//
// Modes:
//   ntcs_top            six modules, two gateways, three networks (the
//                       acceptance fleet), one monitor per machine row
//   ntcs_top --smoke    two nodes, one monitor — the verify.sh smoke scrape
//   ntcs_top --prom     also print the Prometheus exposition
//
// Exit status: 0 iff every discovered monitor answered health, journal and
// metrics with zero non-retriable errors.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/health.h"
#include "common/metrics.h"
#include "core/testbed.h"
#include "drts/monitor.h"

namespace ntcs::top {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

/// One scraped module: everything its monitor answered, with per-op
/// truncation flags.
struct ModuleView {
  std::string name;
  bool ok = false;
  std::string error;
  health::HealthReport health;
  std::vector<health::JournalEvent> journal;
  metrics::Snapshot snapshot;
  bool health_truncated = false;
  bool journal_truncated = false;
  bool metrics_truncated = false;
};

/// Scrape one monitor (three harvest ops) through `via`.
ModuleView scrape(core::Node& via, const std::string& name, core::UAdd mon) {
  ModuleView m;
  m.name = name;
  auto rep = drts::query_health(via, mon, &m.health_truncated);
  if (!rep.ok()) {
    m.error = "query_health: " + std::string(rep.error().what());
    return m;
  }
  m.health = std::move(rep.value());
  auto events = drts::query_journal(via, mon, drts::kMaxJournalHarvest,
                                    &m.journal_truncated);
  if (!events.ok()) {
    m.error = "query_journal: " + std::string(events.error().what());
    return m;
  }
  m.journal = std::move(events.value());
  auto snap = drts::query_metrics(via, mon, &m.metrics_truncated);
  if (!snap.ok()) {
    m.error = "query_metrics: " + std::string(snap.error().what());
    return m;
  }
  m.snapshot = std::move(snap.value());
  m.ok = true;
  return m;
}

/// The fleet health table: one row per scraped module, worst layer named.
void render_fleet(const std::vector<ModuleView>& fleet) {
  std::printf("%-14s %-9s %-7s %-8s %s\n", "module", "health", "layers",
              "journal", "worst evidence");
  for (const ModuleView& m : fleet) {
    if (!m.ok) {
      std::printf("%-14s %-9s %-7s %-8s %s\n", m.name.c_str(), "ERROR", "-",
                  "-", m.error.c_str());
      continue;
    }
    const health::LayerHealth* worst = nullptr;
    for (const auto& l : m.health.layers) {
      if (l.state == health::HealthState::ok) continue;
      if (worst == nullptr || l.state > worst->state) worst = &l;
    }
    std::string journal_col = std::to_string(m.journal.size());
    if (m.journal_truncated) journal_col += "+";
    std::string health_col(health::to_string(m.health.overall));
    if (m.health_truncated || m.metrics_truncated) health_col += "*";
    std::printf("%-14s %-9s %-7zu %-8s %s\n", m.name.c_str(),
                health_col.c_str(), m.health.layers.size(),
                journal_col.c_str(),
                worst == nullptr
                    ? "-"
                    : (worst->name + ": " + worst->evidence).c_str());
  }
}

/// Per-queue utilization from the gauge-pair convention, merged across the
/// fleet (max utilization wins per base — the hottest instance is the one
/// the operator needs to see).
void render_utilization(const std::vector<ModuleView>& fleet) {
  struct Row {
    std::int64_t depth = 0;
    std::int64_t bound = 0;
    std::int64_t peak = 0;
  };
  std::map<std::string, Row> rows;
  for (const ModuleView& m : fleet) {
    if (!m.ok) continue;
    for (const auto& [name, v] : m.snapshot.values) {
      if (v.kind != metrics::MetricKind::gauge) continue;
      constexpr std::string_view kDepth = ".depth";
      if (name.size() <= kDepth.size() ||
          name.compare(name.size() - kDepth.size(), kDepth.size(), kDepth) !=
              0) {
        continue;
      }
      const std::string base = name.substr(0, name.size() - kDepth.size());
      const std::int64_t bound = m.snapshot.gauge_value(base + ".bound");
      if (bound <= 0) continue;
      Row& r = rows[base];
      if (v.gauge > r.depth) {
        r.depth = v.gauge;
        r.bound = bound;
      }
      if (r.bound == 0) r.bound = bound;
      if (v.gauge_peak > r.peak) r.peak = v.gauge_peak;
    }
  }
  std::printf("\n%-26s %10s %10s %10s %6s\n", "queue", "depth", "peak",
              "bound", "util");
  for (const auto& [base, r] : rows) {
    std::printf("%-26s %10lld %10lld %10lld %5.1f%%\n", base.c_str(),
                static_cast<long long>(r.depth),
                static_cast<long long>(r.peak),
                static_cast<long long>(r.bound),
                100.0 * static_cast<double>(r.depth) /
                    static_cast<double>(r.bound));
  }
}

int run(bool smoke, bool prom) {
  core::Testbed tb(1);
  std::vector<std::unique_ptr<drts::MonitorServer>> monitors;
  std::vector<std::unique_ptr<core::Node>> modules;
  std::vector<std::jthread> echoes;

  auto add_monitor = [&](const std::string& name, const std::string& machine,
                         const std::string& net) {
    auto cfg = tb.node_config(name, machine, net);
    monitors.push_back(std::make_unique<drts::MonitorServer>(cfg));
    if (!monitors.back()->start().ok()) std::abort();
  };

  if (smoke) {
    // The verify.sh smoke fleet: two nodes, one network, one monitor.
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    if (!tb.start_name_server("m1", "lan").ok()) return 2;
    if (!tb.finalize().ok()) return 2;
    add_monitor("mon.m1", "m1", "lan");
    modules.push_back(tb.spawn_module("a", "m1", "lan").value());
    modules.push_back(tb.spawn_module("b", "m2", "lan").value());
  } else {
    // The acceptance fleet: three networks bridged by two gateways, six
    // application modules spread across four machines, one monitor per
    // application machine (each registered by name, role=monitor).
    tb.net("net-0");
    tb.net("net-1");
    tb.net("net-2");
    tb.machine("m-a", Arch::vax780, {"net-0"});
    tb.machine("m-b", Arch::pdp11_70, {"net-0"});
    tb.machine("m-gw0", Arch::apollo_dn330, {"net-0", "net-1"});
    tb.machine("m-gw1", Arch::apollo_dn330, {"net-1", "net-2"});
    tb.machine("m-c", Arch::sun3, {"net-2"});
    tb.machine("m-d", Arch::microvax, {"net-2"});
    if (!tb.start_name_server("m-a", "net-0").ok()) return 2;
    if (!tb.add_gateway("gw-0", "m-gw0", {"net-0", "net-1"}).ok()) return 2;
    if (!tb.add_gateway("gw-1", "m-gw1", {"net-1", "net-2"}).ok()) return 2;
    if (!tb.finalize().ok()) return 2;
    add_monitor("mon.m-a", "m-a", "net-0");
    add_monitor("mon.m-b", "m-b", "net-0");
    add_monitor("mon.m-c", "m-c", "net-2");
    add_monitor("mon.m-d", "m-d", "net-2");
    const struct {
      const char* name;
      const char* machine;
      const char* net;
    } kModules[] = {{"alpha", "m-a", "net-0"}, {"beta", "m-b", "net-0"},
                    {"gamma", "m-c", "net-2"}, {"delta", "m-d", "net-2"},
                    {"epsil", "m-a", "net-0"}, {"zeta", "m-c", "net-2"}};
    for (const auto& spec : kModules) {
      modules.push_back(
          tb.spawn_module(spec.name, spec.machine, spec.net).value());
    }
    // Echo servers on the far side so cross-gateway traffic exists and the
    // tables show live, non-zero structures.
    for (std::size_t i = 2; i < 4; ++i) {
      echoes.emplace_back([&modules, i](std::stop_token st) {
        while (!st.stop_requested()) {
          auto in = modules[i]->commod().receive(50ms);
          if (in.ok() && in.value().is_request) {
            (void)modules[i]->commod().reply(in.value().reply_ctx,
                                             in.value().payload);
          }
        }
      });
    }
    auto g = modules[0]->commod().locate("gamma");
    auto d = modules[1]->commod().locate("delta");
    if (g.ok() && d.ok()) {
      for (int i = 0; i < 32; ++i) {
        (void)modules[0]->commod().request(g.value(), to_bytes("ping"), 3s);
        (void)modules[1]->commod().request(d.value(), to_bytes("ping"), 3s);
      }
    }
  }

  health::HealthRegistry::instance().start_watchdog();

  // Discover the fleet's monitors through the naming service itself:
  // attribute-value query for role=monitor, then resolve each UAdd back to
  // its registered name for the table rows.
  core::Node& via = *modules.front();
  auto mons = via.nsp().lookup_attrs({{"role", "monitor"}});
  if (!mons.ok() || mons.value().empty()) {
    std::fprintf(stderr, "ntcs_top: monitor discovery failed: %s\n",
                 mons.ok() ? "no monitors registered"
                           : mons.error().what().c_str());
    health::HealthRegistry::instance().stop_watchdog();
    return 2;
  }

  std::vector<ModuleView> fleet;
  for (core::UAdd mon : mons.value()) {
    std::string name = "U#" + std::to_string(mon.raw());
    if (auto info = via.nsp().resolve_info(mon); info.ok()) {
      name = info.value().name;
    }
    fleet.push_back(scrape(via, name, mon));
  }

  render_fleet(fleet);
  render_utilization(fleet);
  if (prom) {
    // Merged exposition: last writer wins per metric name, which for a
    // single-process fleet is exact and for a real multi-process fleet is
    // a per-module scrape away (one exposition per monitor).
    metrics::Snapshot merged;
    for (const ModuleView& m : fleet) {
      if (!m.ok) continue;
      for (const auto& [name, v] : m.snapshot.values) {
        merged.values[name] = v;
      }
    }
    std::printf("\n%s", merged.to_prometheus().c_str());
  }

  int failures = 0;
  for (const ModuleView& m : fleet) {
    if (!m.ok) ++failures;
  }
  std::printf("\nntcs_top: scraped %zu monitors, %d errors\n", fleet.size(),
              failures);

  health::HealthRegistry::instance().stop_watchdog();
  for (auto& e : echoes) e.request_stop();
  for (auto& m : modules) m->stop();
  for (auto& m : monitors) m->stop();
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ntcs::top

int main(int argc, char** argv) {
  bool smoke = false;
  bool prom = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--prom") == 0) prom = true;
  }
  return ntcs::top::run(smoke, prom);
}
