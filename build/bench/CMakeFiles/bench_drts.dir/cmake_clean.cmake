file(REMOVE_RECURSE
  "CMakeFiles/bench_drts.dir/bench_drts.cpp.o"
  "CMakeFiles/bench_drts.dir/bench_drts.cpp.o.d"
  "bench_drts"
  "bench_drts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
