# Empty compiler generated dependencies file for bench_drts.
# This may be replaced when dependencies are built.
