file(REMOVE_RECURSE
  "CMakeFiles/bench_naming.dir/bench_naming.cpp.o"
  "CMakeFiles/bench_naming.dir/bench_naming.cpp.o.d"
  "bench_naming"
  "bench_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
