
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ursa.cpp" "bench/CMakeFiles/bench_ursa.dir/bench_ursa.cpp.o" "gcc" "bench/CMakeFiles/bench_ursa.dir/bench_ursa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ntcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/drts/CMakeFiles/ntcs_drts.dir/DependInfo.cmake"
  "/root/repo/build/src/ursa/CMakeFiles/ntcs_ursa.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ntcs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/ntcs_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
