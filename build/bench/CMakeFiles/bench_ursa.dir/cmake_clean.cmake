file(REMOVE_RECURSE
  "CMakeFiles/bench_ursa.dir/bench_ursa.cpp.o"
  "CMakeFiles/bench_ursa.dir/bench_ursa.cpp.o.d"
  "bench_ursa"
  "bench_ursa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ursa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
