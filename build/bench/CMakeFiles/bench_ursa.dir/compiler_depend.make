# Empty compiler generated dependencies file for bench_ursa.
# This may be replaced when dependencies are built.
