file(REMOVE_RECURSE
  "CMakeFiles/drts_services.dir/drts_services.cpp.o"
  "CMakeFiles/drts_services.dir/drts_services.cpp.o.d"
  "drts_services"
  "drts_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drts_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
