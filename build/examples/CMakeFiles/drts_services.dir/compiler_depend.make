# Empty compiler generated dependencies file for drts_services.
# This may be replaced when dependencies are built.
