file(REMOVE_RECURSE
  "CMakeFiles/internetting.dir/internetting.cpp.o"
  "CMakeFiles/internetting.dir/internetting.cpp.o.d"
  "internetting"
  "internetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
