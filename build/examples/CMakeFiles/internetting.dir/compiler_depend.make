# Empty compiler generated dependencies file for internetting.
# This may be replaced when dependencies are built.
