# Empty dependencies file for reconfigure.
# This may be replaced when dependencies are built.
