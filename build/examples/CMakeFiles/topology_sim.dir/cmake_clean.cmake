file(REMOVE_RECURSE
  "CMakeFiles/topology_sim.dir/topology_sim.cpp.o"
  "CMakeFiles/topology_sim.dir/topology_sim.cpp.o.d"
  "topology_sim"
  "topology_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
