# Empty dependencies file for topology_sim.
# This may be replaced when dependencies are built.
