file(REMOVE_RECURSE
  "CMakeFiles/ursa_retrieval.dir/ursa_retrieval.cpp.o"
  "CMakeFiles/ursa_retrieval.dir/ursa_retrieval.cpp.o.d"
  "ursa_retrieval"
  "ursa_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
