# Empty compiler generated dependencies file for ursa_retrieval.
# This may be replaced when dependencies are built.
