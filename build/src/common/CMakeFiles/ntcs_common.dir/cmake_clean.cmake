file(REMOVE_RECURSE
  "CMakeFiles/ntcs_common.dir/bytes.cpp.o"
  "CMakeFiles/ntcs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/ntcs_common.dir/error.cpp.o"
  "CMakeFiles/ntcs_common.dir/error.cpp.o.d"
  "CMakeFiles/ntcs_common.dir/log.cpp.o"
  "CMakeFiles/ntcs_common.dir/log.cpp.o.d"
  "CMakeFiles/ntcs_common.dir/rng.cpp.o"
  "CMakeFiles/ntcs_common.dir/rng.cpp.o.d"
  "libntcs_common.a"
  "libntcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
