file(REMOVE_RECURSE
  "libntcs_common.a"
)
