# Empty dependencies file for ntcs_common.
# This may be replaced when dependencies are built.
