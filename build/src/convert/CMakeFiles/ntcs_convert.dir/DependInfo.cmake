
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convert/image.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/image.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/image.cpp.o.d"
  "/root/repo/src/convert/machine.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/machine.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/machine.cpp.o.d"
  "/root/repo/src/convert/mode.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/mode.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/mode.cpp.o.d"
  "/root/repo/src/convert/packed.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/packed.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/packed.cpp.o.d"
  "/root/repo/src/convert/schema.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/schema.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/schema.cpp.o.d"
  "/root/repo/src/convert/shift.cpp" "src/convert/CMakeFiles/ntcs_convert.dir/shift.cpp.o" "gcc" "src/convert/CMakeFiles/ntcs_convert.dir/shift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
