file(REMOVE_RECURSE
  "CMakeFiles/ntcs_convert.dir/image.cpp.o"
  "CMakeFiles/ntcs_convert.dir/image.cpp.o.d"
  "CMakeFiles/ntcs_convert.dir/machine.cpp.o"
  "CMakeFiles/ntcs_convert.dir/machine.cpp.o.d"
  "CMakeFiles/ntcs_convert.dir/mode.cpp.o"
  "CMakeFiles/ntcs_convert.dir/mode.cpp.o.d"
  "CMakeFiles/ntcs_convert.dir/packed.cpp.o"
  "CMakeFiles/ntcs_convert.dir/packed.cpp.o.d"
  "CMakeFiles/ntcs_convert.dir/schema.cpp.o"
  "CMakeFiles/ntcs_convert.dir/schema.cpp.o.d"
  "CMakeFiles/ntcs_convert.dir/shift.cpp.o"
  "CMakeFiles/ntcs_convert.dir/shift.cpp.o.d"
  "libntcs_convert.a"
  "libntcs_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
