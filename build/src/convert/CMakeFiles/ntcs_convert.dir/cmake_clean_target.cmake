file(REMOVE_RECURSE
  "libntcs_convert.a"
)
