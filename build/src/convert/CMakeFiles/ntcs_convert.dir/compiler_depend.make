# Empty compiler generated dependencies file for ntcs_convert.
# This may be replaced when dependencies are built.
