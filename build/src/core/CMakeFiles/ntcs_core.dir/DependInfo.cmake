
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/addr.cpp" "src/core/CMakeFiles/ntcs_core.dir/addr.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/addr.cpp.o.d"
  "/root/repo/src/core/ali/commod.cpp" "src/core/CMakeFiles/ntcs_core.dir/ali/commod.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/ali/commod.cpp.o.d"
  "/root/repo/src/core/ip/gateway.cpp" "src/core/CMakeFiles/ntcs_core.dir/ip/gateway.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/ip/gateway.cpp.o.d"
  "/root/repo/src/core/ip/ip_layer.cpp" "src/core/CMakeFiles/ntcs_core.dir/ip/ip_layer.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/ip/ip_layer.cpp.o.d"
  "/root/repo/src/core/lcm/lcm_layer.cpp" "src/core/CMakeFiles/ntcs_core.dir/lcm/lcm_layer.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/lcm/lcm_layer.cpp.o.d"
  "/root/repo/src/core/nd/nd_layer.cpp" "src/core/CMakeFiles/ntcs_core.dir/nd/nd_layer.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/nd/nd_layer.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/ntcs_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/node.cpp.o.d"
  "/root/repo/src/core/nsp/name_server.cpp" "src/core/CMakeFiles/ntcs_core.dir/nsp/name_server.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/nsp/name_server.cpp.o.d"
  "/root/repo/src/core/nsp/nsp_layer.cpp" "src/core/CMakeFiles/ntcs_core.dir/nsp/nsp_layer.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/nsp/nsp_layer.cpp.o.d"
  "/root/repo/src/core/nsp/protocol.cpp" "src/core/CMakeFiles/ntcs_core.dir/nsp/protocol.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/nsp/protocol.cpp.o.d"
  "/root/repo/src/core/nsp/static_resolver.cpp" "src/core/CMakeFiles/ntcs_core.dir/nsp/static_resolver.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/nsp/static_resolver.cpp.o.d"
  "/root/repo/src/core/testbed.cpp" "src/core/CMakeFiles/ntcs_core.dir/testbed.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/testbed.cpp.o.d"
  "/root/repo/src/core/wire/frames.cpp" "src/core/CMakeFiles/ntcs_core.dir/wire/frames.cpp.o" "gcc" "src/core/CMakeFiles/ntcs_core.dir/wire/frames.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/ntcs_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ntcs_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
