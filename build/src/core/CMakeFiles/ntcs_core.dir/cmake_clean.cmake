file(REMOVE_RECURSE
  "CMakeFiles/ntcs_core.dir/addr.cpp.o"
  "CMakeFiles/ntcs_core.dir/addr.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/ali/commod.cpp.o"
  "CMakeFiles/ntcs_core.dir/ali/commod.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/ip/gateway.cpp.o"
  "CMakeFiles/ntcs_core.dir/ip/gateway.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/ip/ip_layer.cpp.o"
  "CMakeFiles/ntcs_core.dir/ip/ip_layer.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/lcm/lcm_layer.cpp.o"
  "CMakeFiles/ntcs_core.dir/lcm/lcm_layer.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/nd/nd_layer.cpp.o"
  "CMakeFiles/ntcs_core.dir/nd/nd_layer.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/node.cpp.o"
  "CMakeFiles/ntcs_core.dir/node.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/nsp/name_server.cpp.o"
  "CMakeFiles/ntcs_core.dir/nsp/name_server.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/nsp/nsp_layer.cpp.o"
  "CMakeFiles/ntcs_core.dir/nsp/nsp_layer.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/nsp/protocol.cpp.o"
  "CMakeFiles/ntcs_core.dir/nsp/protocol.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/nsp/static_resolver.cpp.o"
  "CMakeFiles/ntcs_core.dir/nsp/static_resolver.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/testbed.cpp.o"
  "CMakeFiles/ntcs_core.dir/testbed.cpp.o.d"
  "CMakeFiles/ntcs_core.dir/wire/frames.cpp.o"
  "CMakeFiles/ntcs_core.dir/wire/frames.cpp.o.d"
  "libntcs_core.a"
  "libntcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
