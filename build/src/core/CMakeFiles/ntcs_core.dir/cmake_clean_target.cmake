file(REMOVE_RECURSE
  "libntcs_core.a"
)
