# Empty dependencies file for ntcs_core.
# This may be replaced when dependencies are built.
