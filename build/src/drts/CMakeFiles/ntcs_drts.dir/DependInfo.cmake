
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drts/error_log.cpp" "src/drts/CMakeFiles/ntcs_drts.dir/error_log.cpp.o" "gcc" "src/drts/CMakeFiles/ntcs_drts.dir/error_log.cpp.o.d"
  "/root/repo/src/drts/file_service.cpp" "src/drts/CMakeFiles/ntcs_drts.dir/file_service.cpp.o" "gcc" "src/drts/CMakeFiles/ntcs_drts.dir/file_service.cpp.o.d"
  "/root/repo/src/drts/monitor.cpp" "src/drts/CMakeFiles/ntcs_drts.dir/monitor.cpp.o" "gcc" "src/drts/CMakeFiles/ntcs_drts.dir/monitor.cpp.o.d"
  "/root/repo/src/drts/process_control.cpp" "src/drts/CMakeFiles/ntcs_drts.dir/process_control.cpp.o" "gcc" "src/drts/CMakeFiles/ntcs_drts.dir/process_control.cpp.o.d"
  "/root/repo/src/drts/time_service.cpp" "src/drts/CMakeFiles/ntcs_drts.dir/time_service.cpp.o" "gcc" "src/drts/CMakeFiles/ntcs_drts.dir/time_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ntcs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ntcs_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/ntcs_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntcs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
