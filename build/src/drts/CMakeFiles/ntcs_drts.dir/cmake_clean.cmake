file(REMOVE_RECURSE
  "CMakeFiles/ntcs_drts.dir/error_log.cpp.o"
  "CMakeFiles/ntcs_drts.dir/error_log.cpp.o.d"
  "CMakeFiles/ntcs_drts.dir/file_service.cpp.o"
  "CMakeFiles/ntcs_drts.dir/file_service.cpp.o.d"
  "CMakeFiles/ntcs_drts.dir/monitor.cpp.o"
  "CMakeFiles/ntcs_drts.dir/monitor.cpp.o.d"
  "CMakeFiles/ntcs_drts.dir/process_control.cpp.o"
  "CMakeFiles/ntcs_drts.dir/process_control.cpp.o.d"
  "CMakeFiles/ntcs_drts.dir/time_service.cpp.o"
  "CMakeFiles/ntcs_drts.dir/time_service.cpp.o.d"
  "libntcs_drts.a"
  "libntcs_drts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_drts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
