file(REMOVE_RECURSE
  "libntcs_drts.a"
)
