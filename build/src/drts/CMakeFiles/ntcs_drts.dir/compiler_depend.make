# Empty compiler generated dependencies file for ntcs_drts.
# This may be replaced when dependencies are built.
