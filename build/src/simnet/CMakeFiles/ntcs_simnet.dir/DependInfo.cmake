
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/endpoint.cpp" "src/simnet/CMakeFiles/ntcs_simnet.dir/endpoint.cpp.o" "gcc" "src/simnet/CMakeFiles/ntcs_simnet.dir/endpoint.cpp.o.d"
  "/root/repo/src/simnet/fabric.cpp" "src/simnet/CMakeFiles/ntcs_simnet.dir/fabric.cpp.o" "gcc" "src/simnet/CMakeFiles/ntcs_simnet.dir/fabric.cpp.o.d"
  "/root/repo/src/simnet/phys.cpp" "src/simnet/CMakeFiles/ntcs_simnet.dir/phys.cpp.o" "gcc" "src/simnet/CMakeFiles/ntcs_simnet.dir/phys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntcs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/ntcs_convert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
