file(REMOVE_RECURSE
  "CMakeFiles/ntcs_simnet.dir/endpoint.cpp.o"
  "CMakeFiles/ntcs_simnet.dir/endpoint.cpp.o.d"
  "CMakeFiles/ntcs_simnet.dir/fabric.cpp.o"
  "CMakeFiles/ntcs_simnet.dir/fabric.cpp.o.d"
  "CMakeFiles/ntcs_simnet.dir/phys.cpp.o"
  "CMakeFiles/ntcs_simnet.dir/phys.cpp.o.d"
  "libntcs_simnet.a"
  "libntcs_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
