file(REMOVE_RECURSE
  "libntcs_simnet.a"
)
