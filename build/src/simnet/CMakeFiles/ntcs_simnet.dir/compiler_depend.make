# Empty compiler generated dependencies file for ntcs_simnet.
# This may be replaced when dependencies are built.
