file(REMOVE_RECURSE
  "CMakeFiles/ntcs_ursa.dir/corpus.cpp.o"
  "CMakeFiles/ntcs_ursa.dir/corpus.cpp.o.d"
  "CMakeFiles/ntcs_ursa.dir/index.cpp.o"
  "CMakeFiles/ntcs_ursa.dir/index.cpp.o.d"
  "CMakeFiles/ntcs_ursa.dir/protocol.cpp.o"
  "CMakeFiles/ntcs_ursa.dir/protocol.cpp.o.d"
  "CMakeFiles/ntcs_ursa.dir/query.cpp.o"
  "CMakeFiles/ntcs_ursa.dir/query.cpp.o.d"
  "CMakeFiles/ntcs_ursa.dir/servers.cpp.o"
  "CMakeFiles/ntcs_ursa.dir/servers.cpp.o.d"
  "libntcs_ursa.a"
  "libntcs_ursa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntcs_ursa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
