file(REMOVE_RECURSE
  "libntcs_ursa.a"
)
