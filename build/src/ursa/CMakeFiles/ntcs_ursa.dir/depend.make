# Empty dependencies file for ntcs_ursa.
# This may be replaced when dependencies are built.
