file(REMOVE_RECURSE
  "CMakeFiles/commod_test.dir/commod_test.cpp.o"
  "CMakeFiles/commod_test.dir/commod_test.cpp.o.d"
  "commod_test"
  "commod_test.pdb"
  "commod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
