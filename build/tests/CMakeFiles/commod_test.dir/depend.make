# Empty dependencies file for commod_test.
# This may be replaced when dependencies are built.
