file(REMOVE_RECURSE
  "CMakeFiles/drts_test.dir/drts_test.cpp.o"
  "CMakeFiles/drts_test.dir/drts_test.cpp.o.d"
  "drts_test"
  "drts_test.pdb"
  "drts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
