# Empty compiler generated dependencies file for drts_test.
# This may be replaced when dependencies are built.
