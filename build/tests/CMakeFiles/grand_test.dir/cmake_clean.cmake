file(REMOVE_RECURSE
  "CMakeFiles/grand_test.dir/grand_test.cpp.o"
  "CMakeFiles/grand_test.dir/grand_test.cpp.o.d"
  "grand_test"
  "grand_test.pdb"
  "grand_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
