# Empty dependencies file for grand_test.
# This may be replaced when dependencies are built.
