# Empty dependencies file for nd_test.
# This may be replaced when dependencies are built.
