file(REMOVE_RECURSE
  "CMakeFiles/nsp_test.dir/nsp_test.cpp.o"
  "CMakeFiles/nsp_test.dir/nsp_test.cpp.o.d"
  "nsp_test"
  "nsp_test.pdb"
  "nsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
