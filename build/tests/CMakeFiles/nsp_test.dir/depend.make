# Empty dependencies file for nsp_test.
# This may be replaced when dependencies are built.
