file(REMOVE_RECURSE
  "CMakeFiles/static_naming_test.dir/static_naming_test.cpp.o"
  "CMakeFiles/static_naming_test.dir/static_naming_test.cpp.o.d"
  "static_naming_test"
  "static_naming_test.pdb"
  "static_naming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_naming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
