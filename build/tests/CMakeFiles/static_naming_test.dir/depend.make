# Empty dependencies file for static_naming_test.
# This may be replaced when dependencies are built.
