file(REMOVE_RECURSE
  "CMakeFiles/ursa_test.dir/ursa_test.cpp.o"
  "CMakeFiles/ursa_test.dir/ursa_test.cpp.o.d"
  "ursa_test"
  "ursa_test.pdb"
  "ursa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
