# Empty dependencies file for ursa_test.
# This may be replaced when dependencies are built.
