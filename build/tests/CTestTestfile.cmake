# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/convert_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/nd_test[1]_include.cmake")
include("/root/repo/build/tests/lcm_test[1]_include.cmake")
include("/root/repo/build/tests/nsp_test[1]_include.cmake")
include("/root/repo/build/tests/replica_test[1]_include.cmake")
include("/root/repo/build/tests/static_naming_test[1]_include.cmake")
include("/root/repo/build/tests/ip_test[1]_include.cmake")
include("/root/repo/build/tests/commod_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/drts_test[1]_include.cmake")
include("/root/repo/build/tests/file_service_test[1]_include.cmake")
include("/root/repo/build/tests/ursa_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/grand_test[1]_include.cmake")
include("/root/repo/build/tests/observability_test[1]_include.cmake")
