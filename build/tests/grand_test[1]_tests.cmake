add_test([=[GrandIntegration.FullSystemEndToEnd]=]  /root/repo/build/tests/grand_test [==[--gtest_filter=GrandIntegration.FullSystemEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GrandIntegration.FullSystemEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  grand_test_TESTS GrandIntegration.FullSystemEndToEnd)
