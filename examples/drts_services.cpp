// drts_services — the distributed run-time support layer in action
// (paper §1.2, §6.1) plus the §7 replication extension.
//
// Brings up: Name Server + replica, time service, monitor, error log.
// Shows: (1) the §6.1 recursion scenario — a first monitored+timed send
// triggers nested NTCS traffic; (2) clock-skew correction; (3) monitor
// aggregation; (4) transparent naming-service failover when the primary
// Name Server dies.
//
// Build & run:  ./examples/drts_services
#include <cstdio>
#include <thread>

#include "core/testbed.h"
#include "drts/error_log.h"
#include "drts/monitor.h"
#include "drts/time_service.h"

using namespace std::chrono_literals;
using ntcs::convert::Arch;

int main() {
  ntcs::core::Testbed tb;
  tb.net("lan");
  tb.machine("vax1", Arch::vax780, {"lan"});
  tb.machine("sun1", Arch::sun3, {"lan"});
  tb.machine("apollo1", Arch::apollo_dn330, {"lan"});
  // sun1's clock runs 3 seconds ahead — the time service will hide this.
  if (!tb.start_name_server("vax1", "lan").ok()) return 1;
  if (!tb.add_name_server_replica("apollo1", "lan").ok()) return 1;
  if (!tb.finalize().ok()) return 1;
  tb.fabric().set_clock_offset(tb.machine_id("sun1"), 3s);

  ntcs::drts::TimeServer time_server(tb.node_config("", "sun1", "lan"));
  if (!time_server.start().ok()) return 1;
  ntcs::drts::MonitorServer monitor(tb.node_config("", "sun1", "lan"));
  if (!monitor.start().ok()) return 1;
  ntcs::drts::ErrorLogServer errlog(tb.node_config("", "apollo1", "lan"));
  if (!errlog.start().ok()) return 1;
  std::printf("DRTS up: time-service, monitor, error-log (+ NS replica)\n");

  auto app = tb.spawn_module("app", "vax1", "lan").value();
  auto sink = tb.spawn_module("sink", "sun1", "lan").value();
  ntcs::drts::TimeClient tc(*app);
  ntcs::drts::MonitorClient mc(*app);
  app->lcm().set_time_source(tc.source());
  app->lcm().set_monitor_hook(mc.hook());

  // The §6.1 walkthrough: the first send locates + syncs the time service,
  // locates the monitor, and establishes every circuit — recursively.
  auto dst = app->commod().locate("sink").value();
  (void)app->commod().send(dst, ntcs::to_bytes("first monitored send"));
  std::printf("first send done: time synced=%s (offset %+.3f s), "
              "nested NSP queries so far: %llu\n",
              tc.synced() ? "yes" : "no",
              static_cast<double>(tc.offset_ns()) / 1e9,
              static_cast<unsigned long long>(app->nsp().stats().queries));

  for (int i = 0; i < 9; ++i) {
    (void)app->commod().send(dst, ntcs::to_bytes("steady"));
  }
  for (int spin = 0; spin < 100 && monitor.sample_count() < 10; ++spin) {
    std::this_thread::sleep_for(10ms);
  }
  std::printf("monitor collected %llu samples, %llu payload bytes\n",
              static_cast<unsigned long long>(monitor.sample_count()),
              static_cast<unsigned long long>(monitor.total_bytes()));

  // Error log: report a synthetic exception table entry.
  ntcs::drts::ErrorLogClient elc(*app);
  elc.report("lcm", ntcs::Errc::address_fault, "synthetic demo fault");
  std::this_thread::sleep_for(50ms);
  std::printf("error-log running table holds %llu entr(ies)\n",
              static_cast<unsigned long long>(errlog.total()));

  // Replication failover: kill the primary; resolution keeps working.
  tb.name_server().stop();
  auto again = app->commod().locate("sink");
  std::printf("primary name server killed; locate(\"sink\") via replica: %s\n",
              again.ok() ? "OK" : again.error().to_string().c_str());

  app->stop();
  sink->stop();
  std::printf("drts_services OK\n");
  return 0;
}
