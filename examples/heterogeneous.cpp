// heterogeneous — inter-machine data conversion (paper §5).
//
// Demonstrates, with the schema "code generator":
//   1. what a raw byte-copy between a VAX and a Sun would do to a struct
//      (integers scrambled — the problem);
//   2. that the NTCS automatically picks packed mode for that pair and the
//      message arrives intact (the solution);
//   3. that between two Suns the NTCS keeps image mode (no needless
//      conversions).
//
// Build & run:  ./examples/heterogeneous
#include <cstdio>

#include "core/testbed.h"

using namespace std::chrono_literals;
using namespace ntcs::convert;

int main() {
  MessageSchema schema("reading", {{"sensor", FieldType::u32},
                                   {"value", FieldType::i64},
                                   {"tag", FieldType::chars, 8}});
  auto rec = schema.make_record();
  (void)rec.set_u64("sensor", 0x01020304);
  (void)rec.set_i64("value", 123456789);
  (void)rec.set_string("tag", "urse");

  // --- 1. The problem, outside the NTCS: byte-copy across byte orders.
  auto vax_image = schema.to_image(rec, Arch::vax780).value();
  auto misread = schema.from_image(vax_image, Arch::sun3).value();
  std::printf("raw byte copy VAX -> Sun (no NTCS):\n");
  std::printf("  sensor 0x%08llx -> 0x%08llx   (scrambled!)\n",
              0x01020304ULL,
              static_cast<unsigned long long>(
                  misread.get_u64("sensor").value()));

  // --- 2 & 3. The NTCS picks the mode per destination machine type.
  ntcs::core::Testbed tb;
  tb.net("lan");
  tb.machine("vax1", Arch::vax780, {"lan"});
  tb.machine("sun1", Arch::sun3, {"lan"});
  tb.machine("sun2", Arch::sun2, {"lan"});
  if (!tb.start_name_server("vax1", "lan").ok()) return 1;
  if (!tb.finalize().ok()) return 1;
  auto vax = tb.spawn_module("vax-app", "vax1", "lan").value();
  auto sun = tb.spawn_module("sun-app", "sun1", "lan").value();
  auto sun_b = tb.spawn_module("sun-app2", "sun2", "lan").value();

  auto show = [&](const char* label, ntcs::core::Node& from,
                  ntcs::core::Node& to, const std::string& to_name) {
    auto addr = from.commod().locate(to_name).value();
    auto payload = from.commod().payload_for(rec).value();
    (void)from.commod().send(addr, payload);
    auto in = to.commod().receive(2s).value();
    auto decoded = to.commod().decode(in, schema).value();
    std::printf("%s: mode=%s  sensor=0x%08llx  value=%lld  tag=%s\n", label,
                std::string(xfer_mode_name(in.mode)).c_str(),
                static_cast<unsigned long long>(
                    decoded.get_u64("sensor").value()),
                static_cast<long long>(decoded.get_i64("value").value()),
                decoded.get_string("tag").value().c_str());
  };

  show("VAX -> Sun-3 via NTCS", *vax, *sun, "sun-app");
  show("Sun-3 -> Sun-2 via NTCS", *sun, *sun_b, "sun-app2");
  show("Sun-3 -> VAX via NTCS", *sun, *vax, "vax-app");

  vax->stop();
  sun->stop();
  sun_b->stop();
  std::printf("heterogeneous OK\n");
  return 0;
}
