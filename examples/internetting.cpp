// internetting — portable internet support (paper §4).
//
// Four disjoint networks in a chain, three gateway modules; a module on
// net-1 talks to a module on net-4 over a three-gateway chained internet
// virtual circuit. The route is computed at the originator from topology
// held in the naming service; establishment proceeds hop-by-hop with no
// inter-gateway protocol.
//
// Build & run:  ./examples/internetting
#include <cstdio>

#include "core/testbed.h"

using namespace std::chrono_literals;
using ntcs::convert::Arch;

int main() {
  ntcs::core::Testbed tb;
  for (int i = 1; i <= 4; ++i) tb.net("net-" + std::to_string(i));
  tb.machine("m1", Arch::vax780, {"net-1"});
  tb.machine("g12", Arch::apollo_dn330, {"net-1", "net-2"});
  tb.machine("m2", Arch::sun3, {"net-2"});
  tb.machine("g23", Arch::apollo_dn330, {"net-2", "net-3"});
  tb.machine("g34", Arch::apollo_dn330, {"net-3", "net-4"});
  tb.machine("m4", Arch::sun2, {"net-4"});

  if (!tb.start_name_server("m2", "net-2").ok()) return 1;
  if (!tb.add_gateway("gw-12", "g12", {"net-1", "net-2"}).ok()) return 1;
  if (!tb.add_gateway("gw-23", "g23", {"net-2", "net-3"}).ok()) return 1;
  if (!tb.add_gateway("gw-34", "g34", {"net-3", "net-4"}).ok()) return 1;
  if (!tb.finalize().ok()) return 1;

  auto origin = tb.spawn_module("origin", "m1", "net-1").value();
  auto target = tb.spawn_module("target", "m4", "net-4").value();

  // Show the route the IP-Layer computes (normally invisible).
  ntcs::core::ResolvedDest dst;
  dst.uadd = target->identity().uadd();
  dst.phys = target->phys();
  dst.net = "net-4";
  auto route = origin->ip().compute_route(dst);
  if (route.ok()) {
    std::printf("route from net-1 to net-4 (%zu hops):\n",
                route.value().size());
    for (const auto& hop : route.value()) {
      std::printf("   on %-6s connect to %s\n", hop.net.c_str(),
                  hop.phys.c_str());
    }
  }

  // Converse across the chain.
  std::jthread server([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = target->commod().receive(100ms);
      if (in.ok() && in.value().is_request) {
        (void)target->commod().reply(in.value().reply_ctx,
                                     ntcs::to_bytes("greetings from net-4"));
      }
    }
  });
  auto addr = origin->commod().locate("target").value();
  auto reply = origin->commod().request(addr, ntcs::to_bytes("hello?"), 5s);
  if (!reply.ok()) {
    std::printf("request failed: %s\n", reply.error().to_string().c_str());
    return 1;
  }
  std::printf("reply across 3 gateways: \"%s\"\n",
              ntcs::to_string(reply.value().payload).c_str());

  // Per-gateway relay counters prove the chain was used.
  for (std::size_t g = 0; g < tb.gateway_count(); ++g) {
    std::uint64_t relayed = 0;
    for (std::size_t i = 0; i < tb.gateway(g).attachment_count(); ++i) {
      relayed += tb.gateway(g).attachment(i).ip().stats().messages_relayed;
    }
    std::printf("gateway %s relayed %llu message(s)\n",
                tb.gateway(g).name().c_str(),
                static_cast<unsigned long long>(relayed));
  }
  server.request_stop();
  server.join();
  origin->stop();
  target->stop();
  std::printf("internetting OK\n");
  return 0;
}
