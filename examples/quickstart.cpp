// quickstart — the smallest complete NTCS system.
//
// One simulated LAN, a Name Server, and two application modules that find
// each other by logical name and exchange messages: an asynchronous send
// and a synchronous send/receive/reply round trip (paper §1.3).
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>

#include "core/testbed.h"

using namespace std::chrono_literals;
using ntcs::core::Testbed;

int main() {
  // 1. The environment: one network, two machines (a VAX and a Sun — the
  //    byte orders differ, but the NTCS hides that).
  Testbed tb;
  tb.net("lan");
  tb.machine("vax1", ntcs::convert::Arch::vax780, {"lan"});
  tb.machine("sun1", ntcs::convert::Arch::sun3, {"lan"});

  // 2. Infrastructure: the Name Server (well-known UAdd 1).
  if (!tb.start_name_server("vax1", "lan").ok()) return 1;
  if (!tb.finalize().ok()) return 1;

  // 3. Two application modules. spawn_module = bind ComMod + register.
  auto alice = tb.spawn_module("alice", "vax1", "lan").value();
  auto bob = tb.spawn_module("bob", "sun1", "lan").value();
  std::printf("alice registered as %s\n",
              alice->identity().uadd().to_string().c_str());
  std::printf("bob   registered as %s\n",
              bob->identity().uadd().to_string().c_str());

  // 4. Resource location: name -> UAdd, once. Relocation would be
  //    transparent from here on.
  auto bob_addr = alice->commod().locate("bob").value();

  // 5. Asynchronous send.
  (void)alice->commod().send(bob_addr, ntcs::to_bytes("hello from alice"));
  auto in = bob->commod().receive(2s).value();
  std::printf("bob received: \"%s\" from %s\n",
              ntcs::to_string(in.payload).c_str(),
              in.src.to_string().c_str());

  // 6. Synchronous send/receive/reply.
  std::jthread server([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto req = bob->commod().receive(100ms);
      if (req.ok() && req.value().is_request) {
        (void)bob->commod().reply(
            req.value().reply_ctx,
            ntcs::to_bytes("bob says: " +
                           ntcs::to_string(req.value().payload)));
      }
    }
  });
  auto reply = alice->commod().request(bob_addr, ntcs::to_bytes("ping"), 2s);
  std::printf("alice's request answered: \"%s\"\n",
              ntcs::to_string(reply.value().payload).c_str());

  server.request_stop();
  server.join();
  alice->stop();
  bob->stop();
  std::printf("quickstart OK\n");
  return 0;
}
