// reconfigure — dynamic reconfiguration in action (paper §3.5).
//
// A client resolves a server's address ONCE, then keeps calling it while
// the process controller relocates the server across three machines. The
// client never re-resolves: every move is recovered transparently by the
// LCM-Layer's address-fault handler and the naming service's forwarding
// determination.
//
// Build & run:  ./examples/reconfigure
#include <cstdio>

#include "core/testbed.h"
#include "drts/process_control.h"

using namespace std::chrono_literals;
using ntcs::convert::Arch;

int main() {
  ntcs::core::Testbed tb;
  tb.net("lan");
  tb.machine("vax1", Arch::vax780, {"lan"});
  tb.machine("sun1", Arch::sun3, {"lan"});
  tb.machine("apollo1", Arch::apollo_dn330, {"lan"});
  if (!tb.start_name_server("vax1", "lan").ok()) return 1;
  if (!tb.finalize().ok()) return 1;

  ntcs::drts::ProcessController pc(tb);
  auto first = pc.spawn("worker", "sun1", "lan", {{"role", "worker"}},
                        ntcs::drts::make_echo_service());
  if (!first.ok()) return 1;

  auto client = tb.spawn_module("client", "vax1", "lan").value();
  const auto addr = client->commod().locate("worker").value();
  std::printf("client resolved worker -> %s (once; never again)\n",
              addr.to_string().c_str());

  const char* machines[] = {"apollo1", "vax1", "sun1"};
  int call = 0;
  auto call_worker = [&](const char* note) {
    auto reply = client->commod().request(
        addr, ntcs::to_bytes("call " + std::to_string(++call)), 3s);
    if (reply.ok()) {
      std::printf("  [%s] reply: \"%s\"\n", note,
                  ntcs::to_string(reply.value().payload).c_str());
    } else {
      std::printf("  [%s] FAILED: %s\n", note,
                  reply.error().to_string().c_str());
    }
  };

  call_worker("initial placement sun1");
  for (const char* machine : machines) {
    auto moved = pc.relocate("worker", machine, "lan");
    if (!moved.ok()) return 1;
    std::printf("relocated worker -> %s (new UAdd %s)\n", machine,
                moved.value().to_string().c_str());
    call_worker(machine);
  }

  const auto stats = client->lcm().stats();
  std::printf(
      "client LCM: %llu address fault(s) handled, %llu relocation(s) "
      "resolved, %llu reconnect(s)\n",
      static_cast<unsigned long long>(stats.address_faults),
      static_cast<unsigned long long>(stats.relocations),
      static_cast<unsigned long long>(stats.reconnects));
  std::printf("forwarding now maps %s -> %s\n", addr.to_string().c_str(),
              client->lcm().current_target(addr).to_string().c_str());
  client->stop();
  std::printf("reconfigure OK\n");
  return 0;
}
