// topology_sim — a configurable NTCS deployment simulator.
//
// Builds a chain of N networks joined by gateways, scatters M echo-server
// modules across them, drives R request/reply round trips from a host on
// the first network to random modules, and prints a traffic summary —
// including the distributed monitor's per-conversation report.
//
// Usage: topology_sim [networks=3] [modules=6] [requests=200] [seed=1]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/rng.h"
#include "core/testbed.h"
#include "drts/monitor.h"
#include "drts/process_control.h"

using namespace std::chrono_literals;
using ntcs::convert::Arch;

int main(int argc, char** argv) {
  const int networks = argc > 1 ? std::atoi(argv[1]) : 3;
  const int modules = argc > 2 ? std::atoi(argv[2]) : 6;
  const int requests = argc > 3 ? std::atoi(argv[3]) : 200;
  const std::uint64_t seed = argc > 4
                                 ? static_cast<std::uint64_t>(
                                       std::atoll(argv[4]))
                                 : 1;
  if (networks < 1 || networks > 16 || modules < 1 || modules > 64 ||
      requests < 1) {
    std::fprintf(stderr,
                 "usage: %s [networks 1..16] [modules 1..64] [requests]\n",
                 argv[0]);
    return 2;
  }
  std::printf("topology: %d network(s) in a chain, %d module(s), "
              "%d request(s), seed %llu\n",
              networks, modules, requests,
              static_cast<unsigned long long>(seed));

  const Arch archs[] = {Arch::vax780, Arch::sun3, Arch::apollo_dn330,
                        Arch::sun2, Arch::microvax, Arch::pdp11_70};
  ntcs::core::Testbed tb(seed);
  std::vector<std::string> nets;
  for (int n = 0; n < networks; ++n) {
    nets.push_back("net-" + std::to_string(n));
    tb.net(nets.back());
  }
  std::vector<std::string> machines;
  for (int n = 0; n < networks; ++n) {
    machines.push_back("host-" + std::to_string(n));
    tb.machine(machines.back(), archs[n % 6], {nets[static_cast<size_t>(n)]});
  }
  if (!tb.start_name_server(machines[0], nets[0]).ok()) return 1;
  for (int n = 1; n < networks; ++n) {
    const std::string gm = "gw-host-" + std::to_string(n);
    tb.machine(gm, Arch::apollo_dn330,
               {nets[static_cast<size_t>(n - 1)], nets[static_cast<size_t>(n)]});
    if (!tb.add_gateway("gw-" + std::to_string(n), gm,
                        {nets[static_cast<size_t>(n - 1)],
                         nets[static_cast<size_t>(n)]})
             .ok()) {
      return 1;
    }
  }
  if (!tb.finalize().ok()) return 1;

  // Monitor on the last network (the farthest point from the host).
  ntcs::drts::MonitorServer monitor(
      tb.node_config("", machines.back(), nets.back()));
  if (!monitor.start().ok()) return 1;

  ntcs::drts::ProcessController pc(tb);
  ntcs::Rng rng(seed * 17);
  for (int m = 0; m < modules; ++m) {
    const int net = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(networks)));
    auto uadd = pc.spawn("mod-" + std::to_string(m),
                         machines[static_cast<size_t>(net)],
                         nets[static_cast<size_t>(net)], {},
                         ntcs::drts::make_echo_service());
    if (!uadd.ok()) return 1;
  }

  auto host = tb.spawn_module("driver", machines[0], nets[0]).value();
  ntcs::drts::MonitorClient mc(*host);
  host->lcm().set_monitor_hook(mc.hook());
  std::vector<ntcs::core::UAdd> addrs;
  for (int m = 0; m < modules; ++m) {
    addrs.push_back(
        host->commod().locate("mod-" + std::to_string(m)).value());
  }

  int ok = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < requests; ++r) {
    const auto target = addrs[rng.next_below(addrs.size())];
    auto reply = host->commod().request(
        target, ntcs::to_bytes("req " + std::to_string(r)), 5s);
    if (reply.ok()) ++ok;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  std::printf("%d/%d requests answered in %.3f s (%.0f req/s)\n", ok,
              requests, elapsed, ok / elapsed);

  std::uint64_t relayed = 0;
  for (std::size_t g = 0; g < tb.gateway_count(); ++g) {
    for (std::size_t i = 0; i < tb.gateway(g).attachment_count(); ++i) {
      relayed += tb.gateway(g).attachment(i).ip().stats().messages_relayed;
    }
  }
  std::printf("gateways relayed %llu message(s) in total\n",
              static_cast<unsigned long long>(relayed));
  std::this_thread::sleep_for(100ms);  // let the last dgrams land
  std::printf("\nmonitor report (per conversation):\n%s",
              monitor.report().c_str());

  host->stop();
  std::printf("topology_sim OK\n");
  return ok == requests ? 0 : 1;
}
