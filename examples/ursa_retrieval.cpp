// ursa_retrieval — the paper's motivating application (§1.2): a distributed
// information-retrieval system with backend index / search / document
// servers spread over two networks and three machine architectures,
// queried from a host module.
//
// Build & run:  ./examples/ursa_retrieval
#include <cstdio>

#include "core/testbed.h"
#include "drts/process_control.h"
#include "ursa/servers.h"

using ntcs::convert::Arch;

int main() {
  // Two LANs joined by a gateway; heterogeneous machines.
  ntcs::core::Testbed tb;
  tb.net("office-lan");
  tb.net("backend-lan");
  tb.machine("vax-host", Arch::vax780, {"office-lan"});
  tb.machine("gw", Arch::apollo_dn330, {"office-lan", "backend-lan"});
  tb.machine("sun-index", Arch::sun3, {"backend-lan"});
  tb.machine("apollo-docs", Arch::apollo_dn330, {"backend-lan"});
  if (!tb.start_name_server("vax-host", "office-lan").ok()) return 1;
  if (!tb.add_gateway("gw-1", "gw", {"office-lan", "backend-lan"}).ok()) {
    return 1;
  }
  if (!tb.finalize().ok()) return 1;

  // Deploy the URSA backends.
  ntcs::drts::ProcessController pc(tb);
  ursa::UrsaPlacement placement;
  placement.index_machine = "sun-index";
  placement.index_net = "backend-lan";
  placement.doc_machine = "apollo-docs";
  placement.doc_net = "backend-lan";
  placement.search_machine = "sun-index";
  placement.search_net = "backend-lan";
  auto corpus = ursa::spawn_ursa(pc, placement, /*corpus_docs=*/300,
                                 /*seed=*/11);
  if (!corpus.ok()) {
    std::printf("deploy failed: %s\n", corpus.error().to_string().c_str());
    return 1;
  }
  std::printf("URSA deployed: %zu documents indexed\n",
              corpus.value()->size());

  // A host workstation on the office LAN.
  auto host_node = tb.spawn_module("workstation", "vax-host", "office-lan");
  if (!host_node.ok()) return 1;
  ursa::UrsaHost host(*host_node.value());
  if (!host.connect().ok()) return 1;

  // Run a few queries drawn from the corpus vocabulary.
  for (int rank : {0, 5, 50}) {
    const std::string& term =
        corpus.value()->vocabulary()[static_cast<std::size_t>(rank)];
    auto hits = host.search(term, 5);
    if (!hits.ok()) {
      std::printf("query '%s' failed: %s\n", term.c_str(),
                  hits.error().to_string().c_str());
      continue;
    }
    std::printf("query '%s' (vocab rank %d): %zu hit(s)\n", term.c_str(),
                rank, hits.value().size());
    for (const auto& h : hits.value()) {
      std::printf("   doc %3llu  score %5.1f\n",
                  static_cast<unsigned long long>(h.doc), h.score);
    }
    if (!hits.value().empty()) {
      auto doc = host.fetch(hits.value()[0].doc);
      if (doc.ok()) {
        std::printf("   top doc title: \"%s\"\n", doc.value().title.c_str());
      }
    }
  }

  auto stats = host.index_stats();
  if (stats.ok()) {
    std::printf("index server: %llu requests served, %llu terms held\n",
                static_cast<unsigned long long>(stats.value().served),
                static_cast<unsigned long long>(stats.value().items_held));
  }
  host_node.value()->stop();
  std::printf("ursa_retrieval OK\n");
  return 0;
}
