// driver_main.cpp — standalone corpus replayer for toolchains without
// libFuzzer (the GCC-only container). Each harness still exports the
// canonical LLVMFuzzerTestOneInput entry point; this driver walks the
// corpus directories given on the command line and feeds every file
// through it, so `ctest -L fuzz` exercises the exact harness body that
// a real libFuzzer build would mutate.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::size_t g_cases = 0;

void run_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n", p.c_str());
    return;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  ++g_cases;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // ignore libFuzzer-style flags
    fs::path p(argv[i]);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p, ec)) {
        if (e.is_regular_file()) run_file(e.path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      run_file(p);
    }
  }
  // An empty run is a configuration bug (missing corpus), not a pass.
  if (g_cases == 0) {
    std::fprintf(stderr, "fuzz driver: no corpus inputs found\n");
    return 1;
  }
  std::fprintf(stderr, "fuzz driver: %zu inputs OK\n", g_cases);
  return 0;
}
