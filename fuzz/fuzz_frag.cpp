// fuzz_frag.cpp — fragment header word round-trip and adversarial
// Reassembler feeding. The reassembler sits directly on the IPCS
// receive path, so it must be total on arbitrary frames: no crash, no
// byte manufacturing (buffered bytes never exceed bytes fed), and an
// exact reconstruction on the well-formed path.
#include <cstdint>

#include "core/wire/frames.h"

namespace wire = ntcs::core::wire;

namespace {

void require(bool cond) {
  if (!cond) __builtin_trap();
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Header-word round-trip: the four fields tile the 32-bit word, so
  // decomposing any word and re-composing it must be the identity.
  if (size >= 4) {
    const std::uint32_t w = read_u32(data);
    const std::uint32_t back =
        wire::make_frag_word(wire::frag_more(w), wire::frag_len(w),
                             wire::frag_seq(w), wire::frag_first(w));
    require(back == w);
  }

  // Adversarial stream: slice the input into pseudo-frames (first byte
  // picks the length) and feed them in sequence. The reassembler must
  // never crash and never buffer more bytes than it was fed.
  wire::Reassembler ra;
  std::size_t off = 0;
  while (off < size) {
    std::size_t len = data[off] % 64 + 1;
    ++off;
    if (len > size - off) len = size - off;
    auto fed = ra.feed(ntcs::BytesView(data + off, len));
    off += len;
    if (!fed.ok()) continue;  // rejected frame: reassembler unchanged
    if (fed.value().complete) {
      ntcs::Bytes msg = ra.take();
      require(msg.size() <= size);
      require(ra.pending_bytes() == 0);
    }
    require(ra.pending_bytes() <= size);
  }

  // Well-formed path: fragment a message derived from the input and
  // confirm a fresh reassembler reconstructs it byte-for-byte.
  if (size > 0) {
    ntcs::Bytes msg(data, data + size);
    std::vector<ntcs::Bytes> frames = wire::fragment(ntcs::BytesView(msg), 64);
    wire::Reassembler rb;
    ntcs::Bytes out;
    bool complete = false;
    for (const ntcs::Bytes& f : frames) {
      auto fed = rb.feed(ntcs::BytesView(f));
      require(fed.ok());
      require(!fed.value().dropped && !fed.value().orphan);
      if (fed.value().complete) {
        complete = true;
        out = rb.take();
      }
    }
    require(complete);
    require(out == msg);
  }
  return 0;
}
