// fuzz_lcm_header.cpp — LCM header decode plus the trace/flag peeks.
// The peeks are the gateway fast path: they read trace words and flags
// at fixed offsets without a full decode, so they must agree with
// decode_lcm on every input decode_lcm accepts, and must never read out
// of bounds on input it rejects. Also drives the ND and IP envelope
// decoders, which share the ShiftReader plumbing.
#include <cstdint>

#include "core/wire/frames.h"

namespace wire = ntcs::core::wire;

namespace {

void require(bool cond) {
  if (!cond) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  ntcs::BytesView view(data, size);

  auto lcm = wire::decode_lcm(view);
  auto flags = wire::peek_lcm_flags(view);
  auto trace = wire::peek_lcm_trace(view);
  if (lcm.ok()) {
    const auto& h = lcm.value().header;
    // The flags peek must see exactly what the full decode sees.
    require(flags.has_value() && *flags == h.flags);
    // The trace peek treats a zero trace id as untraced; otherwise it
    // must reproduce the decoded words.
    const bool traced = (h.flags & wire::kLcmFlagTraced) != 0 &&
                        (h.trace_hi | h.trace_lo) != 0;
    require(trace.has_value() == traced);
    if (traced) {
      require(trace->hi == h.trace_hi && trace->lo == h.trace_lo &&
              trace->parent == h.trace_parent);
    }
    // Canonical re-encode must round-trip.
    ntcs::Bytes wire2 =
        wire::encode_lcm(h, ntcs::BytesView(lcm.value().payload));
    auto again = wire::decode_lcm(ntcs::BytesView(wire2));
    require(again.ok());
    require(again.value().header.kind == h.kind);
    require(again.value().header.flags == h.flags);
    require(again.value().header.src == h.src);
    require(again.value().header.dst == h.dst);
    require(again.value().header.req_id == h.req_id);
    require(again.value().payload == lcm.value().payload);
  }

  // The ND/IP decoders must be total on arbitrary bytes (no crash, no
  // over-read); nothing to cross-check unless they accept.
  auto nd = wire::decode_nd(view);
  (void)wire::peek_nd_trace(view);
  if (nd.ok() && nd.value().kind == wire::NdKind::payload) {
    // A payload body is an opaque IP envelope; decoding it further must
    // also be total.
    (void)wire::decode_ip(ntcs::BytesView(nd.value().body));
  }
  (void)wire::decode_ip(view);
  return 0;
}
