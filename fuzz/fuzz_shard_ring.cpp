// fuzz_shard_ring.cpp — consistent-hash ring construction and lookup.
// Every ComMod rebuilds the ring independently from nothing but the
// shard count, so construction must be total for any count and
// shard_of must be deterministic, in-range, and independent of which
// ShardMap instance answers.
#include <cstdint>
#include <string>
#include <string_view>

#include "core/nsp/shard_map.h"

namespace nsp = ntcs::core::nsp;

namespace {

void require(bool cond) {
  if (!cond) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // Byte 0 picks the shard count (1..32), byte 1 the vnode density
  // (1..64); the rest is the logical name.
  const std::size_t shards = data[0] % 32 + 1;
  const int vnodes = size > 1 ? data[1] % 64 + 1 : nsp::ShardMap::kVnodesPerShard;
  const char* p = reinterpret_cast<const char*>(data);
  const std::string_view name(p + (size > 2 ? 2 : size),
                              size > 2 ? size - 2 : 0);

  // Hash stability: same bytes, same hash, and embedded NULs count.
  require(nsp::stable_hash(name) == nsp::stable_hash(std::string(name)));

  nsp::ShardMap a(shards, vnodes);
  nsp::ShardMap b(shards, vnodes);
  require(a.size() == shards && a.sharded() == (shards > 1));

  const std::size_t owner = a.shard_of(name);
  require(owner < shards);
  // Determinism across instances and across repeated lookups.
  require(b.shard_of(name) == owner);
  require(a.shard_of(name) == owner);
  if (shards == 1) require(owner == 0);
  return 0;
}
