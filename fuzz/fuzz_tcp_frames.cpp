// fuzz_tcp_frames.cpp — the realnet TCP length-prefix StreamDecoder,
// fed the input under a chunking schedule also derived from the input
// (TCP makes no delivery-size promises, so chunk boundaries are part of
// the attack surface). Invariants: frames handed to the sink are sized
// within (0, kMaxWireFrame]; corruption latches; chunking never changes
// what is decoded.
#include <cstdint>
#include <vector>

#include "realnet/frame_decode.h"

namespace rn = ntcs::realnet;

namespace {

void require(bool cond) {
  if (!cond) __builtin_trap();
}

struct Decoded {
  std::vector<ntcs::Bytes> frames;
  bool corrupt = false;
};

Decoded run(const std::uint8_t* data, std::size_t size,
            const std::uint8_t* sched, std::size_t sched_len) {
  Decoded out;
  rn::StreamDecoder dec;
  auto sink = [&out](ntcs::Bytes frame) {
    require(!frame.empty() && frame.size() <= rn::kMaxWireFrame);
    out.frames.push_back(std::move(frame));
  };
  std::size_t off = 0, si = 0;
  while (off < size) {
    std::size_t chunk =
        sched_len == 0 ? size - off : sched[si++ % sched_len] % 97 + 1;
    if (chunk > size - off) chunk = size - off;
    if (!dec.feed(data + off, chunk, sink)) {
      out.corrupt = true;
      require(dec.corrupt());
      // Once latched, further input must be refused without effect.
      const std::size_t sunk = out.frames.size();
      require(!dec.feed(data, size != 0 ? 1 : 0, sink));
      require(out.frames.size() == sunk);
      break;
    }
    require(dec.pending() < rn::kLenPrefix + rn::kMaxWireFrame);
    off += chunk;
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // First pass: byte-at-a-time worst case. Second pass: chunk sizes
  // taken from the input itself. Third: one giant write. All three must
  // decode the identical frame sequence and corruption verdict.
  std::uint8_t one = 1;
  Decoded a = run(data, size, &one, 1);
  Decoded b = run(data, size, data, size);
  Decoded c = run(data, size, nullptr, 0);
  require(a.corrupt == b.corrupt && b.corrupt == c.corrupt);
  require(a.frames == b.frames && b.frames == c.frames);
  return 0;
}
