#!/usr/bin/env bash
# lint.sh — the static-analysis gate.
#
# Stage 1 (always): the annotated-mutex grep gate. Every lock in src/ must
# be an ntcs::Mutex from common/annotated.h — a bare std::mutex /
# std::condition_variable / std::lock_guard / std::unique_lock bypasses
# both the Clang thread-safety annotations and the runtime lock-rank
# validator, so its mere presence is a finding.
#
# Stage 2 (when clang-tidy is installed): clang-tidy with the repo's
# .clang-tidy over every translation unit in compile_commands.json.
# Fails on any finding (WarningsAsErrors: '*'). On toolchains without
# clang-tidy the stage is skipped with a notice — the grep gate and the
# -Wthread-safety Clang build remain the enforced floor.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
fail=0

echo "== lint: annotated-mutex grep gate =="
# common/annotated.h is the single permitted holder of the raw primitives
# (it wraps them); everything else in src/ must go through ntcs::Mutex.
# Exception: the schedule explorer's controller (analysis/sched.cpp) — it
# IS the thing interposing on ntcs::Mutex, so its own park/grant lock must
# be a raw primitive or every schedule point would recurse into itself.
violations=$(grep -rn \
  -e 'std::mutex' \
  -e 'std::recursive_mutex' \
  -e 'std::shared_mutex' \
  -e 'std::condition_variable' \
  -e 'std::lock_guard' \
  -e 'std::unique_lock' \
  -e 'std::scoped_lock' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/common/annotated\.h:' \
  | grep -v '^src/analysis/sched\.cpp:' || true)
if [ -n "$violations" ]; then
  echo "FAIL: raw locking primitives outside common/annotated.h:"
  echo "$violations"
  fail=1
else
  echo "ok: no raw locking primitives outside common/annotated.h"
fi

echo "== lint: trace static-ref grep gate =="
# Mirror of the metrics call-site rule for spans: instrumentation sites use
# the free helpers in common/trace.h (record_child / ScopedSpan / RootSpan /
# snapshot_spans ...), never a per-event SpanBuffer::instance() lookup.
# trace.cpp holds the one static reference behind those helpers.
violations=$(grep -rn 'SpanBuffer::instance' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/common/trace\.cpp:' \
  | grep -v '^src/common/trace\.h:' || true)
if [ -n "$violations" ]; then
  echo "FAIL: SpanBuffer::instance() outside common/trace.{h,cpp} — use the"
  echo "      free helpers in common/trace.h at instrumentation sites:"
  echo "$violations"
  fail=1
else
  echo "ok: span recording goes through the trace.h helpers"
fi

echo "== lint: metrics static-ref grep gate =="
# The metrics cost model (metrics.h header comment) only holds when each
# instrumentation site resolves its registry lookup once: the lookup takes
# the kMetricsRegistry mutex and a map find, so a per-event
# metrics::counter(...) / metrics::histogram(...) call silently turns a
# relaxed add into a lock acquisition on a hot path. Every such call in
# src/ must be a `static` local initializer (the cached-static-ref idiom)
# — `static` on the call line or within the three lines above it — or
# carry a `// cached:` comment marking a constructor-cached member
# (name_server.cpp's per-shard counter). Gauges are exempt: gauge wiring
# is setup-time by construction.
violations=""
while IFS=: read -r file line _; do
  start=$((line > 3 ? line - 3 : 1))
  if ! sed -n "${start},${line}p" "$file" | grep -q -e 'static' -e 'cached:'; then
    violations="${violations}${file}:${line}"$'\n'
  fi
done < <(grep -rn \
  -e 'metrics::counter(' \
  -e 'metrics::histogram(' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/common/metrics\.h:' \
  | grep -v '^src/common/metrics\.cpp:' || true)
if [ -n "$violations" ]; then
  echo "FAIL: per-event metrics registry lookups (cache the reference:"
  echo "      'static metrics::Counter& c = metrics::counter(...);' or mark"
  echo "      a constructor-cached member with '// cached:'):"
  printf '%s' "$violations"
  fail=1
else
  echo "ok: every metrics lookup in src/ is a cached static reference"
fi

echo "== lint: STD-IF isolation grep gate =="
# The paper's portability claim, enforced: machine/network dependence is
# confined to the ND-Layer's backends. Raw socket headers may appear only
# in src/realnet/; concrete backend headers (simnet/, realnet/) may be
# named only by the backends themselves and by core/testbed.{h,cpp} — the
# one composition root that picks a substrate. Everything else in src/
# talks through the STD-IF (core/nd/backend.h).
violations=$(grep -rn \
  -e '#include [<"]sys/socket\.h' \
  -e '#include [<"]netinet/' \
  -e '#include [<"]arpa/inet\.h' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/realnet/' || true)
if [ -n "$violations" ]; then
  echo "FAIL: raw socket headers outside src/realnet/ — go through the"
  echo "      STD-IF (core/nd/backend.h):"
  echo "$violations"
  fail=1
else
  echo "ok: raw socket headers confined to src/realnet/"
fi
violations=$(grep -rn \
  -e '#include "simnet/' \
  -e '#include "realnet/' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/simnet/' \
  | grep -v '^src/realnet/' \
  | grep -v '^src/core/testbed\.h:' \
  | grep -v '^src/core/testbed\.cpp:' || true)
if [ -n "$violations" ]; then
  echo "FAIL: concrete backend headers outside the backends and the"
  echo "      testbed composition root:"
  echo "$violations"
  fail=1
else
  echo "ok: concrete backend types named only by backends + testbed"
fi

echo "== lint: bounded-queue grep gate =="
# Overload-control floor (DESIGN.md "Overload control"): every queue-typed
# declaration in src/ must carry a documented bound — a `// bound: ...`
# comment on the declaration line or within the three lines above it —
# naming the capacity and what happens at it. An unannotated std::deque /
# std::queue / std::priority_queue is exactly how the unbounded-growth
# bug this gate guards against gets reintroduced.
violations=""
while IFS=: read -r file line _; do
  start=$((line > 3 ? line - 3 : 1))
  if ! sed -n "${start},${line}p" "$file" | grep -q 'bound:'; then
    violations="${violations}${file}:${line}"$'\n'
  fi
done < <(grep -rn \
  -e 'std::deque<' \
  -e 'std::queue<' \
  -e 'std::priority_queue<' \
  src/ --include='*.h' --include='*.cpp')
if [ -n "$violations" ]; then
  echo "FAIL: queue declarations without a documented bound (add a"
  echo "      '// bound: <capacity> — <shed semantics>' comment):"
  printf '%s' "$violations"
  fail=1
else
  echo "ok: every queue declaration in src/ documents its bound"
fi

echo "== lint: atomic sync-comment grep gate =="
# Companion to the annotated-mutex gate for the lock-free residue: every
# raw std::atomic member in src/ must either be an ntcs::Atomic<T>
# (common/atomic.h — interposed by the schedule explorer, so explored
# tests see its happens-before edges) or carry a `// sync: ...` comment
# on the declaration line or within the three lines above it explaining
# the ordering contract. A bare std::atomic is invisible to the race
# detector — undocumented ones are exactly where the next silent
# ordering bug lands.
violations=""
while IFS=: read -r file line _; do
  start=$((line > 3 ? line - 3 : 1))
  if ! sed -n "${start},${line}p" "$file" | grep -q 'sync:'; then
    violations="${violations}${file}:${line}"$'\n'
  fi
done < <(grep -rn 'std::atomic<\|std::atomic_' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/analysis/' \
  | grep -v '^[^:]*:[0-9]*:[[:space:]]*//' || true)
if [ -n "$violations" ]; then
  echo "FAIL: raw std::atomic members without a '// sync: ...' ordering"
  echo "      comment (or use ntcs::Atomic<T> from common/atomic.h, which"
  echo "      the schedule explorer interposes on):"
  printf '%s' "$violations"
  fail=1
else
  echo "ok: every raw std::atomic in src/ documents its ordering contract"
fi

echo "== lint: lease-cache isolation grep gate =="
# Correct-under-churn caching depends on every cache touch going through
# the lease API in nsp_layer.cpp (freshness check, epoch purge, the
# leaf-scoped lease_mu_ contract). Direct access to the cache members
# anywhere else in src/ bypasses the TTL/epoch discipline — and holding
# the lease lock across an LCM call is precisely the rank inversion the
# kNspLease rank exists to catch. The NspLayer's own header declares the
# members; nsp_layer.cpp is the only implementation file allowed to name
# them.
violations=$(grep -rn \
  -e 'lease_cache_' \
  -e 'shard_epochs_' \
  -e 'lease_mu_' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/core/nsp/nsp_layer\.h:' \
  | grep -v '^src/core/nsp/nsp_layer\.cpp:' || true)
if [ -n "$violations" ]; then
  echo "FAIL: NSP lease-cache state touched outside core/nsp/nsp_layer.{h,cpp}"
  echo "      — go through the lease API (lookup / forward / lease_peek):"
  echo "$violations"
  fail=1
else
  echo "ok: lease-cache state confined to core/nsp/nsp_layer.{h,cpp}"
fi

echo "== lint: clang-tidy =="
if ! command -v clang-tidy >/dev/null 2>&1; then
  # NTCS_LINT_STRICT=1 turns "tool missing" from a notice into a failure:
  # CI environments that are supposed to run the tidy stage must not pass
  # silently because an image dropped the package.
  if [ "${NTCS_LINT_STRICT:-0}" = "1" ]; then
    echo "FAIL: clang-tidy not installed and NTCS_LINT_STRICT=1"
    fail=1
  else
    echo "skip: clang-tidy not installed on this toolchain"
  fi
else
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "-- configuring $BUILD_DIR to produce compile_commands.json"
    cmake -B "$BUILD_DIR" -S . >/dev/null || exit 1
  fi
  # Lint every first-party translation unit; headers are covered through
  # HeaderFilterRegex in .clang-tidy.
  sources=$(find src tests bench examples -name '*.cpp' 2>/dev/null)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -quiet -p "$BUILD_DIR" $sources || fail=1
  else
    for f in $sources; do
      clang-tidy --quiet -p "$BUILD_DIR" "$f" || fail=1
    done
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
