#!/usr/bin/env bash
# verify.sh — the full local verification flow.
#
# 1. Configure + build (pass NTCS_SANITIZE=thread in the environment to get
#    a TSan build: the metrics hot paths are relaxed-atomic and must be
#    clean under it).
# 2. Run the whole suite once.
# 3. Re-run the stress and failure suites under --repeat until-fail:3 —
#    these exercise timing-dependent recovery paths (killed channels,
#    partitions, reconnects) where a flake is a bug.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SANITIZE="${NTCS_SANITIZE:-}"

cmake -B "$BUILD_DIR" -S . -DNTCS_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j"$(nproc)"

ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Test names come from gtest suites: Stress.*, Failure.*
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure \
  -R '^(Stress|Failure)\.' --repeat until-fail:3

echo "verify: OK"
