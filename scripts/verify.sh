#!/usr/bin/env bash
# verify.sh — the full local verification flow.
#
# 1. Configure + build (pass NTCS_SANITIZE=thread in the environment to get
#    a TSan build: the metrics hot paths are relaxed-atomic and must be
#    clean under it).
# 2. Run the whole suite once.
# 3. Re-run the stress and failure suites under --repeat until-fail:3 —
#    these exercise timing-dependent recovery paths (killed channels,
#    partitions, reconnects) where a flake is a bug.
# 4. Build the chaos suite under TSan and run it repeatedly: the
#    fault-injection engine plus every layer's recovery path is the most
#    interleaving-sensitive code in the tree.
# 5. Trace suite (ctest label `trace`) in the normal build, then repeated
#    under TSan: the span ring's lock-free writers vs. snapshot readers.
# 6. Realnet stage: the STD-IF conformance labels (`nd`, `realnet`) plus
#    the realnet half of the parameterized integration suite, normal build
#    and TSan — real listener/reader threads over real loopback sockets.
# 7. Fabric-seed sweep: re-run the pipeline + chaos suites across 10 fixed
#    fabric seeds (NTCS_FABRIC_SEED), normal build and TSan build. Each
#    seed is a different deterministic fault/latency schedule; the
#    pipelined request engine must keep its correlation and window
#    invariants under every one of them.
# 8. Lint gate: scripts/lint.sh (annotated-mutex, trace static-ref and
#    STD-IF isolation grep gates, clang-tidy where available) — run
#    first, cheapest failure.
# 9. ASan/UBSan build (the second sanitizer-matrix axis,
#    NTCS_SANITIZE=address,undefined with -fno-sanitize-recover): full
#    suite plus the analysis-label lock-validator tests.
# 10. Overload stage (ctest label `overload`): bounded-queue shedding,
#    busy-frame back-pressure, admission control, control-plane priority
#    and gateway fairness under storm load — normal build, then ASan.
# 11. Naming stage (ctest label `naming`): the sharded name service —
#    backend-parameterized conformance, ring invariants, seeded churn and
#    the failover chaos regression — normal build, then repeated TSan.
# 12. Health stage (ctest label `health`): the observability plane —
#    gauges, the watchdog's stall/wedge/queue classifications, the
#    flight-recorder ring, and the remote health/journal harvest — in the
#    normal build, then repeated under TSan (the journal's lock-free
#    writers vs. its drain readers reuse the span ring's seqlock
#    discipline and must stay clean). Plus the ntcs_top smoke scrape: the
#    fleet scraper against a live 2-node testbed must exit 0.
# 13. Sched stage (ctest label `sched`): the deterministic schedule
#    explorer — bounded exploration of the known-dangerous interleaving
#    trios, the seeded historical-bug reproductions, the stored minimal
#    replay fixtures, and the clean-fragment zero-race/zero-inversion
#    anchor — normal build, then ASan (the explorer's fibers and the
#    vector-clock bookkeeping under memory checking). The fuzz corpus
#    replay (label `fuzz`) rides along here: wire decoders over the
#    checked-in corpus in both builds.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
SANITIZE="${NTCS_SANITIZE:-}"

./scripts/lint.sh "$BUILD_DIR"

cmake -B "$BUILD_DIR" -S . -DNTCS_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j"$(nproc)"

ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Test names come from gtest suites: Stress.*, Failure.*
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure \
  -R '^(Stress|Failure)\.' --repeat until-fail:3

# Chaos suite under TSan, repeated until-fail. Selected by ctest label.
TSAN_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "$TSAN_DIR" -S . -DNTCS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j"$(nproc)" --target chaos_test simnet_test nd_test
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -L chaos --repeat until-fail:3
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -R '^(FaultPlan|FaultInjection|FabricTopology|NdLayer)\.' \
  --repeat until-fail:3

# Tracing suite (label `trace`): the wire round trip, the span ring, the
# gateway-chain span chain and the chaos-harvest acceptance — once in the
# normal build, then under TSan (the span ring's seqlock writers race its
# snapshot readers by design and must stay clean).
cmake --build "$TSAN_DIR" -j"$(nproc)" --target trace_test
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L trace
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -L trace --repeat until-fail:3

# Realnet stage: the backend-parameterized conformance suites prove the
# STD-IF contract over real loopback sockets (labels `nd` + `realnet`:
# conformance over both backends, the realnet-only edge cases, and the
# multi-process bootstrap/exchange/shutdown test), then the same suites
# run under TSan — the TCP backend's listener/reader/reaper threads are
# real OS concurrency, not the fabric's deterministic scheduler.
cmake --build "$TSAN_DIR" -j"$(nproc)" --target realnet_test \
  multiprocess_test multiprocess_peer integration_test
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure \
  -L 'nd|realnet'
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure \
  -R '/realnet' # the realnet half of the parameterized suites
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -L 'nd|realnet' --repeat until-fail:3
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -R '/realnet'

# Pipelined-request seed sweep: the pipeline and chaos labels plus the
# PipelinedChaos property suite, across 10 fixed fabric seeds, first in
# the normal build and then under TSan.
cmake --build "$TSAN_DIR" -j"$(nproc)" --target pipeline_test property_test
SEEDS="1 2 3 5 7 11 13 17 19 23"
for seed in $SEEDS; do
  echo "=== pipeline sweep: fabric seed $seed (normal) ==="
  NTCS_FABRIC_SEED="$seed" ctest --test-dir "$BUILD_DIR" -j"$(nproc)" \
    --output-on-failure -L 'pipeline|chaos'
  NTCS_FABRIC_SEED="$seed" ctest --test-dir "$BUILD_DIR" -j"$(nproc)" \
    --output-on-failure -R 'PipelinedChaos'
done
for seed in $SEEDS; do
  echo "=== pipeline sweep: fabric seed $seed (TSan) ==="
  NTCS_FABRIC_SEED="$seed" ctest --test-dir "$TSAN_DIR" -j"$(nproc)" \
    --output-on-failure -L 'pipeline|chaos'
  NTCS_FABRIC_SEED="$seed" ctest --test-dir "$TSAN_DIR" -j"$(nproc)" \
    --output-on-failure -R 'PipelinedChaos'
done

# ASan/UBSan axis of the sanitizer matrix: memory errors and UB across
# the whole suite (TSan cannot be combined with ASan, hence two trees).
# UBSan runs with -fno-sanitize-recover, so any finding is a test failure,
# and the analysis-label suite re-checks the lock-rank validator with
# ASan watching its thread-local stack bookkeeping.
ASAN_DIR="${ASAN_BUILD_DIR:-build-asan}"
cmake -B "$ASAN_DIR" -S . -DNTCS_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j"$(nproc)"
ctest --test-dir "$ASAN_DIR" -j"$(nproc)" --output-on-failure
ctest --test-dir "$ASAN_DIR" -j"$(nproc)" --output-on-failure -L analysis \
  --repeat until-fail:3

# Naming stage (label `naming`): the sharded name service's conformance
# suite (both substrates), the ring invariants, the seeded churn property
# suite and the primary-death chaos regression — once in the normal build,
# then repeated under TSan: the lease cache, the epoch purges and the
# standby promotion are the contended state, and a flake in the failover
# path is a bug.
cmake --build "$TSAN_DIR" -j"$(nproc)" --target naming_scale_test
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L naming
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -L naming --repeat until-fail:3

# Overload stage (label `overload`): bounded queues, busy back-pressure,
# deadline-aware admission, control-plane priority and gateway fairness
# under deliberate storms — normal build first (includes the getrusage
# bounded-memory assertion), then under ASan, where every shed path's
# buffer lifetime is checked while the storm is in flight.
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L overload
ctest --test-dir "$ASAN_DIR" -j"$(nproc)" --output-on-failure -L overload

# Health stage (label `health`): the observability plane. The gauge
# arithmetic, the watchdog classifications (seeded stall, wedged window,
# queue-near-bound, counter storm), the journal ring's overwrite-oldest
# seqlock, the chaos-run zero-false-positive anchor and the remote
# health/journal harvest — normal build, then repeated under TSan (the
# journal writers are lock-free against the drain reader by design).
# Finally the ntcs_top smoke scrape: the operator tool must bring up a
# 2-node fleet, discover its monitor through the name service and come
# back with zero scrape errors.
cmake --build "$TSAN_DIR" -j"$(nproc)" --target health_test
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L health
ctest --test-dir "$TSAN_DIR" -j"$(nproc)" --output-on-failure \
  -L health --repeat until-fail:3
cmake --build "$BUILD_DIR" -j"$(nproc)" --target ntcs_top
./scripts/ntcs_top --smoke --build-dir "$BUILD_DIR"

# Sched stage (label `sched`): bounded deterministic exploration. The
# default budgets (NTCS_SCHED_BUDGET / NTCS_SCHED_PREEMPT, see
# analysis/sched.h Options::from_env) are chosen so the stage is minutes,
# not hours: every seeded historical bug must be found and shrunk within
# budget, every stored replay fixture must re-trigger its bug
# byte-for-byte, and the clean fragments must explore to completion with
# zero races and zero rank inversions. Run once in the normal build, then
# under ASan — the explorer's cooperative fibers, the vector-clock maps
# and the shrink loop all allocate on hot paths worth watching. The fuzz
# corpus replay rides along: every wire-decoder harness over its
# checked-in corpus, both builds.
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L sched
ctest --test-dir "$ASAN_DIR" -j"$(nproc)" --output-on-failure -L sched
ctest --test-dir "$BUILD_DIR" -j"$(nproc)" --output-on-failure -L fuzz
ctest --test-dir "$ASAN_DIR" -j"$(nproc)" --output-on-failure -L fuzz

echo "verify: OK"
