#include "analysis/race.h"

namespace ntcs::analysis::sched {

void RaceDetector::report(const PlainLoc& l, const char* kind, int first,
                          int second, long step) {
  for (const RaceReport& r : races_) {
    if (r.location == l.name && r.kind == kind &&
        ((r.first == first && r.second == second) ||
         (r.first == second && r.second == first))) {
      return;  // already reported this pair on this location
    }
  }
  RaceReport r;
  r.location = l.name;
  r.kind = kind;
  r.first = first;
  r.second = second;
  r.step = step;
  races_.push_back(std::move(r));
}

void RaceDetector::on_plain(const void* loc, const char* name, int task,
                            const VectorClock& vc, bool write, long step) {
  PlainLoc& l = plain_[loc];
  l.name = name;
  // A prior write by another task is ordered iff our clock has absorbed
  // the writer's component at the time of that write.
  const bool write_unordered =
      l.w_task >= 0 && l.w_task != task &&
      vc.at(static_cast<std::size_t>(l.w_task)) < l.w_clk;
  if (write) {
    if (write_unordered) report(l, "write-write", l.w_task, task, step);
    for (const auto& [rt, rc] : l.readers) {
      if (rt != task && vc.at(static_cast<std::size_t>(rt)) < rc) {
        report(l, "read-write", rt, task, step);
      }
    }
    l.readers.clear();
    l.w_task = task;
    l.w_clk = vc.at(static_cast<std::size_t>(task));
  } else {
    if (write_unordered) report(l, "write-read", l.w_task, task, step);
    for (auto& [rt, rc] : l.readers) {
      if (rt == task) {
        rc = vc.at(static_cast<std::size_t>(task));
        return;
      }
    }
    l.readers.emplace_back(task, vc.at(static_cast<std::size_t>(task)));
  }
}

void RaceDetector::atomic_release(const void* loc, const VectorClock& vc) {
  sync_[loc].join(vc);
}

void RaceDetector::atomic_acquire(const void* loc, VectorClock& vc) {
  auto it = sync_.find(loc);
  if (it != sync_.end()) vc.join(it->second);
}

}  // namespace ntcs::analysis::sched
