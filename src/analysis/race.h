// race.h — vector clocks and the happens-before race detector used by the
// deterministic schedule explorer (sched.h).
//
// The explorer serializes every scenario thread, so at any instant exactly
// one task executes one *visible operation* (a lock, an unlock, a CondVar
// wait/notify, an ntcs::Atomic access, or an annotated plain access). This
// module maintains the happens-before order those operations induce:
//
//   * each task carries a vector clock, ticked at every visible op;
//   * each mutex carries the release clock of its last holder — an
//     acquire joins it (unlock -> lock edge);
//   * each CondVar wakeup joins the notifier's clock (notify -> wake);
//   * each ntcs::Atomic location accumulates release clocks and hands
//     them to acquire loads (store/release -> load/acquire edges; relaxed
//     accesses create no edge, which is the point of checking them);
//   * spawn and join edges come from the scheduler directly.
//
// A *plain* access (sched::Var, sched::plain_read/plain_write — the
// modeled unsynchronized state of a protocol fragment) is checked
// FastTrack-style: a write racing an unordered prior read or write, or a
// read racing an unordered prior write, is a happens-before violation and
// is reported deterministically on the schedule that exhibits it — the
// same schedule every run, instead of when TSan gets lucky.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ntcs::analysis::sched {

/// A task-indexed logical clock. Grows on demand; absent entries read 0.
class VectorClock {
 public:
  void tick(std::size_t i) {
    ensure(i + 1);
    ++c_[i];
  }
  std::uint32_t at(std::size_t i) const {
    return i < c_.size() ? c_[i] : 0;
  }
  void join(const VectorClock& o) {
    ensure(o.c_.size());
    for (std::size_t i = 0; i < o.c_.size(); ++i) {
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
    }
  }
  void assign(const VectorClock& o) { c_ = o.c_; }
  void clear() { c_.clear(); }

 private:
  void ensure(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }
  std::vector<std::uint32_t> c_;
};

/// One detected happens-before violation.
struct RaceReport {
  std::string location;  // the Var/plain-access name
  std::string kind;      // "write-write" | "read-write" | "write-read"
  int first = 0;         // task that made the earlier access
  int second = 0;        // task whose access raced it
  long step = 0;         // schedule step of the detection
};

/// The happens-before state for one exploration run. All calls come from
/// the scheduler with its own lock held — no synchronization here.
class RaceDetector {
 public:
  /// Plain (unsynchronized-candidate) access by `task` whose clock is
  /// `vc`, already ticked for this op. Appends to races() on violation;
  /// duplicate (location, kind, pair) findings are reported once.
  void on_plain(const void* loc, const char* name, int task,
                const VectorClock& vc, bool write, long step);

  /// Atomic-location edges. `release` accumulates the writer's clock into
  /// the location; `acquire` joins the location's clock into the reader.
  void atomic_release(const void* loc, const VectorClock& vc);
  void atomic_acquire(const void* loc, VectorClock& vc);

  const std::vector<RaceReport>& races() const { return races_; }

 private:
  struct PlainLoc {
    const char* name = "";
    int w_task = -1;           // last writer (-1: none yet)
    std::uint32_t w_clk = 0;   // its clock component at the write
    // Readers since the last write: (task, clock component at the read).
    std::vector<std::pair<int, std::uint32_t>> readers;
  };

  void report(const PlainLoc& l, const char* kind, int first, int second,
              long step);

  std::unordered_map<const void*, PlainLoc> plain_;
  std::unordered_map<const void*, VectorClock> sync_;
  std::vector<RaceReport> races_;
};

}  // namespace ntcs::analysis::sched
