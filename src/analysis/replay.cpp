#include "analysis/replay.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ntcs::analysis::sched {

std::string format_token(const ForcedSchedule& f) {
  if (f.empty()) return "v1:-";
  std::string out = "v1:";
  bool first = true;
  for (const auto& [step, task] : f) {
    if (!first) out += ',';
    first = false;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%ld@%d", step, task);
    out += buf;
  }
  return out;
}

std::optional<ForcedSchedule> parse_token(std::string_view token) {
  constexpr std::string_view kTag = "v1:";
  if (token.substr(0, kTag.size()) != kTag) return std::nullopt;
  std::string_view body = token.substr(kTag.size());
  ForcedSchedule f;
  if (body == "-") return f;
  if (body.empty()) return std::nullopt;
  long prev_step = -1;
  while (!body.empty()) {
    std::size_t comma = body.find(',');
    std::string_view item =
        comma == std::string_view::npos ? body : body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    long step = 0;
    int task = 0;
    int consumed = 0;
    std::string s(item);
    if (std::sscanf(s.c_str(), "%ld@%d%n", &step, &task, &consumed) != 2 ||
        static_cast<std::size_t>(consumed) != s.size() || step <= prev_step ||
        task < 0) {
      return std::nullopt;
    }
    prev_step = step;
    f[step] = task;
  }
  return f;
}

std::optional<std::string> load_replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t b = line.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) continue;
    std::size_t e = line.find_last_not_of(" \t\r\n");
    std::string trimmed = line.substr(b, e - b + 1);
    if (trimmed[0] == '#') continue;
    return trimmed;
  }
  return std::nullopt;
}

bool save_replay_file(const std::string& path, const std::string& token) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << token << '\n';
  return static_cast<bool>(out);
}

}  // namespace ntcs::analysis::sched
