// replay.h — the replay token format of the deterministic schedule
// explorer, plus the stored-replay file helpers the fixture tests use.
//
// A schedule is identified by its *forced switches* alone: the explorer's
// default policy (keep running the current task; otherwise the lowest
// enabled task id) is deterministic, so a run is fully reproduced by the
// set of decision steps where it deviated from that policy and which task
// it deviated to. The token serializes that set:
//
//   v1:-                  the all-default schedule (no forced switches)
//   v1:12@1               at decision step 12, run task 1
//   v1:12@1,30@0,41@2     three forced switches, ascending by step
//
// Steps count *applied operations* from 0 within one run; tasks are
// numbered in spawn order with the scenario body as task 0. Tokens are
// self-contained: replaying one needs only the scenario (which must be
// deterministic apart from scheduling) and the token string. The shrinker
// emits minimal tokens — every forced switch it keeps is necessary to
// reproduce the failure — and tests/replays/*.sched store them one token
// per file so a historical bug's minimal reproducer is re-triggered
// byte-for-byte by the fixture suite.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace ntcs::analysis::sched {

/// Decision step -> task id forced at that step.
using ForcedSchedule = std::map<long, int>;

std::string format_token(const ForcedSchedule& f);

/// Parses a token; nullopt on malformed input (wrong tag, unsorted or
/// duplicate steps, junk).
std::optional<ForcedSchedule> parse_token(std::string_view token);

/// Reads a stored replay file: the first line is the token, surrounding
/// whitespace ignored, '#'-prefixed lines are comments. nullopt when the
/// file is missing or holds no token line.
std::optional<std::string> load_replay_file(const std::string& path);

/// Writes `token` (plus a trailing newline) to `path`; false on IO error.
bool save_replay_file(const std::string& path, const std::string& token);

}  // namespace ntcs::analysis::sched
