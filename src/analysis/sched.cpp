// sched.cpp — the cooperative controller, the preemption-bounded DFS
// explorer, and the ddmin schedule shrinker. See sched.h for the model.
//
// Execution model invariants (load-bearing — the correctness argument):
//
//  * Exactly one task runs between schedule points: every visible op
//    parks its task and a single select_next_locked() grants exactly one.
//  * model-free => physically-free, for mutexes: a task is granted a lock
//    op only when the model owner is -1; the previous owner physically
//    unlocked *before* its synchronous model release (Mutex::unlock runs
//    mu_.unlock() and then sched_mutex_unlock()), and between the release
//    and the next grant only the releasing task runs. So the physical
//    mu_.lock() after a granted lock op never blocks.
//  * Synchronous model ops (unlock, cv enqueue, spawn) are not schedule
//    points: the running task performs them alone under the controller
//    lock, and commuting them with the *next* park is unobservable — no
//    other task can see the intermediate state.
//  * Timed CondVar waits fire only when nothing else is enabled (earliest
//    deadline first) on a virtual clock — timeouts "happen eventually",
//    which keeps scenarios terminating without branching on every
//    possible timeout point.
//  * Abort (check() failure, deadlock, budget, replay divergence) wakes
//    every parked task with AbortRun; hooks called during the resulting
//    stack unwinding degrade to physical passthrough (no model ops, no
//    throwing into active unwinding).
#include "analysis/sched.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotated.h"

namespace ntcs::analysis::sched {
namespace {

struct AbortRun {};

enum class OpKind {
  start,      // spawned task's first scheduling
  lock,       // blocked mutex acquisition
  trylock,    // non-blocking acquisition attempt
  cv_wake,    // parked CondVar waiter (enabled by notify or timeout)
  notify,     // CondVar notify_one/notify_all
  atomic_op,  // ntcs::Atomic access
  plain,      // sched::Var / plain_read / plain_write access
  yield,      // voluntary schedule point
  join_all,   // task 0 waiting for every spawned task to finish
};

struct Op {
  OpKind kind = OpKind::yield;
  const void* obj = nullptr;
  const char* name = "";
  bool write = false;
  bool all = false;             // notify_all
  bool acq = false, rel = false;  // atomic ordering
  bool timed = false;
  std::int64_t rel_ns = 0;      // cv_wake: relative deadline
};

struct Task {
  int id = 0;
  std::thread thr;  // empty for task 0
  std::function<void()> fn;
  bool finished = false;
  bool parked = false;
  bool granted = false;
  Op pending;
  bool notified = false;
  bool timed_out = false;
  bool timed = false;
  std::int64_t deadline = 0;
  bool last_wake_was_timeout = false;
  bool try_ok = false;
  VectorClock vc;
  VectorClock wake_vc;
};

struct MutexModel {
  int owner = -1;
  VectorClock release_vc;
};

struct CvModel {
  std::vector<int> waiters;  // FIFO
};

struct Decision {
  long step = 0;
  std::vector<int> enabled;
  std::vector<Op> enabled_ops;  // parallel to `enabled`
  int chosen = 0;
  Op chosen_op;
  int prev = -1;
  bool prev_yielded = false;  // prev runnable but at a voluntary yield
  int preemptions_before = 0;
};

struct Controller {
  std::mutex mu;
  std::condition_variable cv;
  Options opts;
  ForcedSchedule forced;
  std::vector<std::unique_ptr<Task>> tasks;
  std::unordered_map<const void*, MutexModel> mutexes;
  std::unordered_map<const void*, CvModel> cvs;
  RaceDetector detector;
  std::vector<Decision> decisions;
  long step = 0;
  int running = -1;
  int preemptions = 0;
  std::int64_t now_ns = 0;  // virtual clock, advanced by fired timeouts
  bool abort = false;
  bool failed = false;
  std::string failure;
};

// One exploration at a time per process (the explorer serializes anyway).
Controller* g_ctrl = nullptr;
thread_local Task* t_self = nullptr;

const char* op_desc(const Op& op) {
  switch (op.kind) {
    case OpKind::start: return "start";
    case OpKind::lock: return "lock";
    case OpKind::trylock: return "trylock";
    case OpKind::cv_wake: return "cv-wait";
    case OpKind::notify: return "notify";
    case OpKind::atomic_op: return "atomic";
    case OpKind::plain: return "plain";
    case OpKind::yield: return "yield";
    case OpKind::join_all: return "join-all";
  }
  return "?";
}

void fail_locked(Controller& c, std::string msg) {
  if (!c.failed) {
    c.failed = true;
    c.failure = std::move(msg);
  }
  c.abort = true;
  c.cv.notify_all();
}

bool op_enabled(Controller& c, const Task& t) {
  switch (t.pending.kind) {
    case OpKind::lock: {
      auto it = c.mutexes.find(t.pending.obj);
      return it == c.mutexes.end() || it->second.owner == -1;
    }
    case OpKind::cv_wake:
      return t.notified || t.timed_out;
    case OpKind::join_all:
      for (const auto& o : c.tasks) {
        if (o->id != t.id && !o->finished) return false;
      }
      return true;
    default:
      return true;
  }
}

// Picks and grants the next task. Called with c.mu held, after the
// previously running task `prev` has parked or finished. Records a
// Decision at every step — the DFS branches on these.
void select_next_locked(Controller& c, int prev) {
  for (;;) {
    if (c.abort) {
      c.cv.notify_all();
      return;
    }
    if (c.step >= c.opts.max_steps_per_run) {
      fail_locked(c, "step budget exhausted (livelock?)");
      return;
    }
    std::vector<int> enabled;
    std::vector<Op> enabled_ops;
    bool any_unfinished = false;
    for (const auto& tp : c.tasks) {
      const Task& t = *tp;
      if (t.finished) continue;
      any_unfinished = true;
      if (!t.parked) continue;
      if (op_enabled(c, t)) {
        enabled.push_back(t.id);
        enabled_ops.push_back(t.pending);
      }
    }
    if (!any_unfinished) return;  // run complete
    if (enabled.empty()) {
      // Fire the earliest pending timeout, then retry.
      Task* earliest = nullptr;
      for (const auto& tp : c.tasks) {
        Task& t = *tp;
        if (!t.finished && t.parked && t.timed && !t.timed_out &&
            (!earliest || t.deadline < earliest->deadline)) {
          earliest = &t;
        }
      }
      if (earliest) {
        earliest->timed_out = true;
        c.now_ns = std::max(c.now_ns, earliest->deadline);
        continue;
      }
      std::string msg = "deadlock: no enabled task; pending:";
      for (const auto& tp : c.tasks) {
        if (tp->finished || !tp->parked) continue;
        msg += " t" + std::to_string(tp->id) + ":" + op_desc(tp->pending);
        if (tp->pending.name[0] != '\0') {
          msg += "(";
          msg += tp->pending.name;
          msg += ")";
        }
      }
      fail_locked(c, std::move(msg));
      return;
    }
    int chosen;
    auto f = c.forced.find(c.step);
    if (f != c.forced.end()) {
      chosen = f->second;
      if (std::find(enabled.begin(), enabled.end(), chosen) == enabled.end()) {
        fail_locked(c, "replay divergence: forced task t" +
                           std::to_string(chosen) + " not enabled at step " +
                           std::to_string(c.step));
        return;
      }
    } else {
      const bool prev_runnable =
          prev >= 0 &&
          std::find(enabled.begin(), enabled.end(), prev) != enabled.end();
      const bool prev_yielded =
          prev_runnable &&
          c.tasks[static_cast<std::size_t>(prev)]->pending.kind ==
              OpKind::yield;
      if (prev_runnable && (!prev_yielded || enabled.size() == 1)) {
        chosen = prev;  // default: keep running the current task
      } else if (prev_yielded) {
        // A yield hands off: lowest enabled id other than prev (else a
        // spin-wait loop would monopolize the default schedule forever).
        chosen = enabled.front() != prev ? enabled.front() : enabled[1];
      } else {
        chosen = enabled.front();  // lowest id (tasks iterate in id order)
      }
    }
    const bool prev_enabled =
        prev >= 0 &&
        std::find(enabled.begin(), enabled.end(), prev) != enabled.end();
    const bool prev_yielded =
        prev_enabled &&
        c.tasks[static_cast<std::size_t>(prev)]->pending.kind == OpKind::yield;
    Decision d;
    d.step = c.step;
    d.enabled = enabled;
    d.enabled_ops = enabled_ops;
    d.chosen = chosen;
    d.chosen_op = c.tasks[static_cast<std::size_t>(chosen)]->pending;
    d.prev = prev;
    d.prev_yielded = prev_yielded;
    d.preemptions_before = c.preemptions;
    c.decisions.push_back(std::move(d));
    // Switching away from a task parked at a *yield* is voluntary, not a
    // preemption — only involuntary switches consume the bound.
    if (prev_enabled && !prev_yielded && chosen != prev) ++c.preemptions;
    ++c.step;
    c.running = chosen;
    c.tasks[static_cast<std::size_t>(chosen)]->granted = true;
    c.cv.notify_all();
    return;
  }
}

// Applies the granted op's model effects. Called with c.mu held by the
// task that was just granted, before it returns to perform the physical
// side of the op.
void apply_locked(Controller& c, Task& t) {
  const Op& op = t.pending;
  t.vc.tick(static_cast<std::size_t>(t.id));
  switch (op.kind) {
    case OpKind::lock: {
      MutexModel& m = c.mutexes[op.obj];
      m.owner = t.id;
      t.vc.join(m.release_vc);
      break;
    }
    case OpKind::trylock: {
      MutexModel& m = c.mutexes[op.obj];
      if (m.owner == -1) {
        m.owner = t.id;
        t.vc.join(m.release_vc);
        t.try_ok = true;
      } else {
        t.try_ok = false;
      }
      break;
    }
    case OpKind::cv_wake: {
      t.timed = false;
      if (t.notified) {
        t.vc.join(t.wake_vc);
        t.wake_vc.clear();
        t.last_wake_was_timeout = false;
      } else {  // timed out while still enqueued
        auto& w = c.cvs[op.obj].waiters;
        w.erase(std::remove(w.begin(), w.end(), t.id), w.end());
        t.last_wake_was_timeout = true;
      }
      t.notified = false;
      t.timed_out = false;
      break;
    }
    case OpKind::notify: {
      auto& w = c.cvs[op.obj].waiters;
      auto mark = [&](int id) {
        Task& wt = *c.tasks[static_cast<std::size_t>(id)];
        wt.notified = true;
        wt.wake_vc.join(t.vc);
      };
      if (op.all) {
        for (int id : w) mark(id);
        w.clear();
      } else if (!w.empty()) {
        mark(w.front());
        w.erase(w.begin());
      }
      break;
    }
    case OpKind::atomic_op: {
      if (op.rel) c.detector.atomic_release(op.obj, t.vc);
      if (op.acq) c.detector.atomic_acquire(op.obj, t.vc);
      break;
    }
    case OpKind::plain: {
      c.detector.on_plain(op.obj, op.name, t.id, t.vc, op.write, c.step);
      break;
    }
    case OpKind::join_all: {
      for (const auto& o : c.tasks) {
        if (o->id != t.id) t.vc.join(o->vc);
      }
      break;
    }
    case OpKind::start:
    case OpKind::yield:
      break;
  }
}

// Parks the calling task on `op`, hands control to the scheduler, and
// applies the op once granted. Throws AbortRun on run abort — except when
// the caller is already unwinding, where it degrades to a no-op so hooks
// in destructors never throw into an active exception.
void park(Controller& c, Task& t, Op op) {
  std::unique_lock<std::mutex> lk(c.mu);
  if (c.abort) {
    if (std::uncaught_exceptions() > 0) {
      t.last_wake_was_timeout = true;  // let timed loops bail out
      t.try_ok = true;                 // and trylocks pass through
      return;
    }
    throw AbortRun{};
  }
  t.pending = op;
  if (op.timed) {
    t.timed = true;
    t.deadline = c.now_ns + (op.rel_ns > 0 ? op.rel_ns : 0);
  }
  t.parked = true;
  if (c.running == t.id) select_next_locked(c, t.id);
  c.cv.wait(lk, [&] { return t.granted || c.abort; });
  if (c.abort) throw AbortRun{};
  t.granted = false;
  t.parked = false;
  apply_locked(c, t);
}

void task_main(Controller* c, Task* t) {
  t_self = t;
  sched_tls().task = true;
  try {
    {  // initial wait: the parent registered us parked on Op{start}
      std::unique_lock<std::mutex> lk(c->mu);
      c->cv.wait(lk, [&] { return t->granted || c->abort; });
      if (c->abort) throw AbortRun{};
      t->granted = false;
      t->parked = false;
      apply_locked(*c, *t);
    }
    t->fn();
  } catch (AbortRun&) {
  }
  {
    std::lock_guard<std::mutex> lk(c->mu);
    t->finished = true;
    if (!c->abort && c->running == t->id) select_next_locked(*c, t->id);
  }
  sched_tls().task = false;
  t_self = nullptr;
}

struct RunResult {
  std::vector<Decision> decisions;
  bool failed = false;
  std::string failure;
  long steps = 0;
  std::vector<RaceReport> races;
  std::uint64_t inversions_delta = 0;
};

RunResult run_once(const std::function<void()>& scenario,
                   const ForcedSchedule& forced, const Options& opts) {
  Controller c;
  c.opts = opts;
  c.forced = forced;
  const std::uint64_t inv_before = analysis::lock_inversions();
  g_ctrl = &c;
  {
    auto t0 = std::make_unique<Task>();
    t0->id = 0;
    t0->vc.tick(0);
    c.tasks.push_back(std::move(t0));
  }
  Task* t0 = c.tasks[0].get();
  c.running = 0;
  t_self = t0;
  sched_tls().task = true;
  try {
    scenario();
    Op op;
    op.kind = OpKind::join_all;
    park(c, *t0, op);
  } catch (AbortRun&) {
  }
  {
    std::lock_guard<std::mutex> lk(c.mu);
    t0->finished = true;
  }
  sched_tls().task = false;
  t_self = nullptr;
  for (auto& tp : c.tasks) {
    if (tp->thr.joinable()) tp->thr.join();
  }
  g_ctrl = nullptr;

  RunResult r;
  r.decisions = std::move(c.decisions);
  r.failed = c.failed;
  r.failure = std::move(c.failure);
  r.steps = c.step;
  if (std::getenv("NTCS_SCHED_DEBUG") != nullptr) {
    std::fprintf(stderr, "[run] forced=%s failed=%d steps=%ld %s\n",
                 format_token(forced).c_str(), r.failed ? 1 : 0, r.steps,
                 r.failure.c_str());
    for (const Decision& d : r.decisions) {
      std::string en;
      for (std::size_t i = 0; i < d.enabled.size(); ++i) {
        en += " t" + std::to_string(d.enabled[i]) + ":" +
              op_desc(d.enabled_ops[i]);
      }
      std::fprintf(stderr,
                   "  step=%ld chosen=t%d:%s(%s) prev=%d py=%d pre=%d en=%s\n",
                   d.step, d.chosen, op_desc(d.chosen_op), d.chosen_op.name,
                   d.prev, d.prev_yielded ? 1 : 0, d.preemptions_before,
                   en.c_str());
    }
  }
  r.races = c.detector.races();
  r.inversions_delta = analysis::lock_inversions() - inv_before;
  if (!r.failed && opts.fail_on_race && !r.races.empty()) {
    const RaceReport& rr = r.races.front();
    r.failed = true;
    r.failure = "happens-before race on " + rr.location + " (" + rr.kind +
                ") tasks t" + std::to_string(rr.first) + "/t" +
                std::to_string(rr.second);
  }
  if (!r.failed && opts.fail_on_inversion && r.inversions_delta > 0) {
    r.failed = true;
    r.failure = "lock-rank inversion observed (" +
                std::to_string(r.inversions_delta) + ", see stderr)";
  }
  return r;
}

// Two pending ops are dependent when flipping their order can reach a
// different state — the sleep-set-style pruning skips alternatives whose
// op is independent of the one actually chosen (adjacent independent ops
// commute, so the flipped schedule is equivalent to one already covered).
bool dependent(const Op& a, const Op& b) {
  // A yield is a pure no-op: it commutes with every other op, including
  // start/join. (Order matters: checking start first would make every
  // yield-vs-start decision a branch point, and each such branch extends
  // a spin loop by one iteration — an unbounded ladder of schedules that
  // differ only in how long the spinner spun.)
  if (a.kind == OpKind::yield || b.kind == OpKind::yield) return false;
  if (a.kind == OpKind::start || b.kind == OpKind::start ||
      a.kind == OpKind::join_all || b.kind == OpKind::join_all) {
    return true;  // spawn/join edges order everything conservatively
  }
  if (a.obj == nullptr || b.obj == nullptr || a.obj != b.obj) return false;
  if ((a.kind == OpKind::plain && b.kind == OpKind::plain) ||
      (a.kind == OpKind::atomic_op && b.kind == OpKind::atomic_op)) {
    return a.write || b.write;  // two reads of one location commute
  }
  return true;  // mutex/cv ops on the same object
}

void shrink_failure(const std::function<void()>& scenario,
                    const ForcedSchedule& forced, const std::string& failure,
                    const Options& opts, Report& rep) {
  ForcedSchedule cur = forced;
  long runs = 0;
  bool progress = true;
  while (progress && runs < opts.max_shrink_runs) {
    progress = false;
    for (auto it = cur.begin();
         it != cur.end() && runs < opts.max_shrink_runs;) {
      ForcedSchedule trial = cur;
      trial.erase(it->first);
      RunResult r = run_once(scenario, trial, opts);
      ++runs;
      if (r.failed && r.failure == failure) {
        cur = std::move(trial);
        progress = true;
        it = cur.begin();  // restart the sweep from the front
      } else {
        ++it;
      }
    }
  }
  rep.minimal = format_token(cur);
  rep.shrink_runs = runs;
}

bool contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

Options Options::from_env() {
  Options o;
  if (const char* b = std::getenv("NTCS_SCHED_BUDGET")) {
    o.max_schedules = std::max(1L, std::atol(b));
  }
  if (const char* p = std::getenv("NTCS_SCHED_PREEMPT")) {
    o.preemption_bound = std::max(0, std::atoi(p));
  }
  return o;
}

Report explore(const std::function<void()>& scenario, const Options& opts) {
  Report rep;
  // Priming run (discarded): first-touch function-local statics — metrics
  // counters, report-once state — take locks only on their first call;
  // running the default schedule once keeps decision indices identical
  // across the recorded runs that follow.
  (void)run_once(scenario, ForcedSchedule{}, opts);

  struct Cand {
    ForcedSchedule forced;
    long floor = 0;  // only branch at decision indices >= floor
  };
  std::vector<Cand> stack;
  stack.push_back(Cand{});
  while (!stack.empty() && rep.schedules < opts.max_schedules) {
    Cand cand = std::move(stack.back());
    stack.pop_back();
    RunResult r = run_once(scenario, cand.forced, opts);
    ++rep.schedules;
    rep.steps += r.steps;
    rep.inversions += static_cast<long>(r.inversions_delta);
    if (r.failed) {
      rep.failed = true;
      rep.first_failure_schedule = rep.schedules;
      rep.failure = r.failure;
      rep.schedule = format_token(cand.forced);
      rep.races = static_cast<long>(r.races.size());
      rep.race_details = r.races;
      if (opts.shrink) {
        shrink_failure(scenario, cand.forced, r.failure, opts, rep);
      } else {
        rep.minimal = rep.schedule;
      }
      return rep;
    }
    for (long k = static_cast<long>(r.decisions.size()) - 1; k >= cand.floor;
         --k) {
      const Decision& d = r.decisions[static_cast<std::size_t>(k)];
      if (d.enabled.size() < 2) continue;
      for (std::size_t i = 0; i < d.enabled.size(); ++i) {
        const int t = d.enabled[i];
        if (t == d.chosen) continue;
        const bool preempt = d.prev >= 0 && contains(d.enabled, d.prev) &&
                             !d.prev_yielded && t != d.prev;
        if (preempt && d.preemptions_before >= opts.preemption_bound) continue;
        if (opts.sleep_sets && !dependent(d.enabled_ops[i], d.chosen_op)) {
          continue;
        }
        Cand child;
        child.forced = cand.forced;
        child.forced[d.step] = t;
        child.floor = k + 1;
        stack.push_back(std::move(child));
      }
    }
  }
  rep.complete = stack.empty();
  return rep;
}

Report replay(const std::function<void()>& scenario, const std::string& token,
              const Options& opts) {
  Report rep;
  auto forced = parse_token(token);
  if (!forced) {
    rep.failed = true;
    rep.failure = "malformed replay token: " + token;
    return rep;
  }
  (void)run_once(scenario, ForcedSchedule{}, opts);  // priming, as explore()
  RunResult r = run_once(scenario, *forced, opts);
  rep.schedules = 1;
  rep.steps = r.steps;
  rep.failed = r.failed;
  rep.failure = r.failure;
  rep.schedule = token;
  rep.minimal = token;
  rep.races = static_cast<long>(r.races.size());
  rep.race_details = r.races;
  rep.inversions = static_cast<long>(r.inversions_delta);
  if (r.failed) rep.first_failure_schedule = 1;
  return rep;
}

bool active() { return g_ctrl != nullptr && t_self != nullptr; }

TaskHandle spawn(std::function<void()> fn) {
  Controller* c = g_ctrl;
  Task* parent = t_self;
  if (c == nullptr || parent == nullptr) {
    fn();  // outside exploration: degenerate sequential schedule
    return TaskHandle(-1);
  }
  std::lock_guard<std::mutex> lk(c->mu);
  if (c->abort) throw AbortRun{};
  const int id = static_cast<int>(c->tasks.size());
  auto t = std::make_unique<Task>();
  t->id = id;
  t->fn = std::move(fn);
  t->vc.assign(parent->vc);
  t->vc.tick(static_cast<std::size_t>(id));
  parent->vc.tick(static_cast<std::size_t>(parent->id));
  t->parked = true;
  t->pending.kind = OpKind::start;
  c->tasks.push_back(std::move(t));
  Task* tp = c->tasks.back().get();
  tp->thr = std::thread(task_main, c, tp);
  return TaskHandle(id);
}

void yield() {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::yield;
  park(*c, *t, op);
}

void check(bool ok, const char* what) {
  if (ok) return;
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c != nullptr && t != nullptr) {
    {
      std::lock_guard<std::mutex> lk(c->mu);
      fail_locked(*c, std::string("check failed: ") + what);
    }
    throw AbortRun{};
  }
  std::fprintf(stderr, "sched::check failed outside exploration: %s\n", what);
  std::abort();
}

void plain_read(const void* addr, const char* name) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::plain;
  op.obj = addr;
  op.name = name;
  op.write = false;
  park(*c, *t, op);
}

void plain_write(const void* addr, const char* name) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::plain;
  op.obj = addr;
  op.name = name;
  op.write = true;
  park(*c, *t, op);
}

// ---- hooks from common/annotated.h and common/atomic.h --------------------
// Only reached when sched_interposed() was true at the call site, i.e. the
// calling thread is a registered task of the active run.

void sched_mutex_lock(const void* m, const char* name) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::lock;
  op.obj = m;
  op.name = name;
  park(*c, *t, op);
}

bool sched_mutex_trylock(const void* m, const char* name) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return true;
  Op op;
  op.kind = OpKind::trylock;
  op.obj = m;
  op.name = name;
  park(*c, *t, op);
  return t->try_ok;
}

void sched_mutex_unlock(const void* m) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  std::lock_guard<std::mutex> lk(c->mu);
  if (c->abort) return;
  MutexModel& mm = c->mutexes[m];
  mm.owner = -1;
  mm.release_vc.assign(t->vc);
  t->vc.tick(static_cast<std::size_t>(t->id));
}

void sched_cv_enqueue(const void* cvp) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  std::lock_guard<std::mutex> lk(c->mu);
  if (c->abort) return;
  c->cvs[cvp].waiters.push_back(t->id);
  t->notified = false;
  t->timed_out = false;
}

bool sched_cv_wait_parked(const void* cvp, std::int64_t rel_ns) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return true;
  Op op;
  op.kind = OpKind::cv_wake;
  op.obj = cvp;
  if (rel_ns >= 0) {
    op.timed = true;
    op.rel_ns = rel_ns;
  }
  park(*c, *t, op);
  return t->last_wake_was_timeout;
}

void sched_cv_notify(const void* cvp, bool all) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::notify;
  op.obj = cvp;
  op.all = all;
  park(*c, *t, op);
}

void sched_atomic_access(const void* loc, bool write, bool acquire,
                         bool release) {
  Controller* c = g_ctrl;
  Task* t = t_self;
  if (c == nullptr || t == nullptr) return;
  Op op;
  op.kind = OpKind::atomic_op;
  op.obj = loc;
  op.write = write;
  op.acq = acquire;
  op.rel = release;
  park(*c, *t, op);
}

}  // namespace ntcs::analysis::sched
