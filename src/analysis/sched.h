// sched.h — the deterministic schedule explorer (loom/DPOR-style stateless
// model checking for NTCS protocol fragments).
//
// A *scenario* is a function that spawns tasks with sched::spawn() and
// synchronizes them only through the interposed primitives: ntcs::Mutex /
// ntcs::CondVar (common/annotated.h), ntcs::Atomic<T> (common/atomic.h),
// and sched::Var<T> for modeled plain shared state. Under exploration a
// cooperative controller serializes all tasks — exactly one runs between
// consecutive *schedule points* (lock, try_lock, cv wait/notify, atomic
// access, Var access, yield, spawn/finish) — and a DFS over the scheduling
// decisions enumerates meaningfully different interleavings:
//
//   * preemption-bounded: at most `preemption_bound` context switches away
//     from a runnable task per schedule (CHESS result: most interleaving
//     bugs need <= 2);
//   * dependence-pruned ("sleep sets" in the Options): an alternative
//     branch at step k is generated only when the alternative task's
//     pending op is dependent with the op actually chosen at k — adjacent
//     independent ops commute, so flipping them reaches an equivalent
//     state;
//   * bounded by `max_schedules` total runs and `max_steps_per_run` steps.
//
// Each run is identified by a replay token (replay.h) of its forced
// switches; failing schedules are ddmin-shrunk to a minimal token that the
// fixture tests replay byte-for-byte. Failures are: a sched::check()
// assertion, a deadlock (no task enabled), a happens-before race from the
// vector-clock detector (race.h), or a lock-rank inversion from the PR 4
// validator observed during the run.
//
// Scope: simnet/in-process state machines only. Realnet kernel threads,
// real sockets, and real time are outside the model — timed CondVar waits
// are modeled as firing only when nothing else can run (earliest deadline
// first), which keeps scenarios terminating without exploding the
// schedule space with spurious-timeout branches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/race.h"
#include "analysis/replay.h"

namespace ntcs::analysis::sched {

struct Options {
  long max_schedules = 2048;     // DFS run budget
  int preemption_bound = 2;      // max forced preemptions per schedule
  long max_steps_per_run = 20000;
  bool sleep_sets = true;        // dependence-based sibling pruning
  bool fail_on_race = true;      // HB race => schedule failure
  bool fail_on_inversion = true; // lock-rank inversion => schedule failure
  bool shrink = true;            // ddmin failing schedules
  long max_shrink_runs = 256;

  /// Reads NTCS_SCHED_BUDGET / NTCS_SCHED_PREEMPT overrides from the
  /// environment (used by the verify.sh sched stage to tighten budgets).
  static Options from_env();
};

struct Report {
  long schedules = 0;        // runs executed (incl. the failing one)
  long steps = 0;            // schedule points applied across all runs
  bool complete = false;     // DFS drained within max_schedules
  bool failed = false;
  long first_failure_schedule = -1;  // 1-based index of the failing run
  std::string failure;       // human-readable failure description
  std::string schedule;      // token of the failing schedule ("" if none)
  std::string minimal;       // shrunk token (== schedule when not shrunk)
  long shrink_runs = 0;
  long races = 0;            // HB violations on the failing run
  long inversions = 0;       // rank inversions observed across the run(s)
  std::vector<RaceReport> race_details;
};

/// Explores `scenario` under `opts`. The scenario runs as task 0; it must
/// be deterministic apart from scheduling, and every thread it needs must
/// go through sched::spawn (raw std::thread is invisible to the model).
Report explore(const std::function<void()>& scenario, const Options& opts);

/// Replays `scenario` under exactly one schedule, given by `token`.
/// Report.failed reflects that single run.
Report replay(const std::function<void()>& scenario, const std::string& token,
              const Options& opts);

/// True while the calling thread is a task of an active exploration run.
bool active();

/// Spawns a scenario task. Inside a run: a controller-managed cooperative
/// task with a spawn happens-before edge from the parent; all tasks are
/// joined implicitly when the scenario body returns. Outside a run the
/// body runs inline (the degenerate sequential schedule).
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(int id) : id_(id) {}
  int id() const { return id_; }

 private:
  int id_ = -1;
};

TaskHandle spawn(std::function<void()> fn);

/// Voluntary schedule point (models "anything can happen here").
void yield();

/// Scenario assertion. Under exploration a false `ok` fails the current
/// schedule (recorded, shrunk, reported); outside exploration it prints
/// `what` to stderr and aborts.
void check(bool ok, const char* what);

/// Modeled plain shared accesses — the race detector's subjects. `addr`
/// identifies the location; `name` labels it in RaceReport.
void plain_read(const void* addr, const char* name);
void plain_write(const void* addr, const char* name);

/// A plain shared variable for scenario state machines: every load/store
/// is a schedule point and an HB-checked plain access. Synchronize it with
/// ntcs::Mutex / ntcs::Atomic or the detector will (correctly) object.
template <typename T>
class Var {
 public:
  Var() = default;
  explicit Var(T v, const char* name = "sched::Var") : v_(v), name_(name) {}

  T load() const {
    plain_read(&v_, name_);
    return v_;
  }
  void store(T v) {
    plain_write(&v_, name_);
    v_ = v;
  }

 private:
  T v_{};
  const char* name_ = "sched::Var";
};

// ---------------------------------------------------------------------------
// Interposition hooks — called from common/annotated.h and common/atomic.h
// on threads where ntcs::analysis::sched_interposed() is true. Not part of
// the scenario-facing API.

void sched_mutex_lock(const void* m, const char* name);
bool sched_mutex_trylock(const void* m, const char* name);
void sched_mutex_unlock(const void* m);
void sched_cv_enqueue(const void* cv);
/// Parks the caller as a CondVar waiter. The caller must have already
/// modeled the mutex release (sched_mutex_unlock) and physically unlocked;
/// on return the caller re-acquires via sched_mutex_lock + physical lock.
/// `rel_ns < 0` means wait forever; returns true when the modeled wait
/// ended by timeout.
bool sched_cv_wait_parked(const void* cv, std::int64_t rel_ns);
void sched_cv_notify(const void* cv, bool all);
void sched_atomic_access(const void* loc, bool write, bool acquire,
                         bool release);

}  // namespace ntcs::analysis::sched
