// annotated.cpp — the runtime half of the lock-hierarchy validator.
//
// Each thread keeps a fixed-depth stack of the ranked locks it holds.
// lock() pushes after acquiring, unlock() pops (searching from the top —
// out-of-order release through UniqueLock is legal). An acquisition whose
// rank is <= the rank of any held lock is a rank inversion; it is counted
// into `analysis.lock_inversions`, mirrored in a plain atomic readable
// without the registry, and reported on stderr once per (held, acquired)
// name pair so a chaos run cannot flood the log.
//
// Re-entrancy: reporting an inversion itself takes leaf locks (the
// metrics registry's map lock, stderr). A thread-local in_validator flag
// suppresses nested validation while reporting, so the validator can
// never recurse into itself or flag its own bookkeeping.
#include "common/annotated.h"

#include <atomic>
#include <cstdio>

#include "common/metrics.h"

namespace ntcs::analysis {

namespace {
// sync: monotonic count, relaxed; the validator's report path is the
// synchronization-free diagnostic of last resort by design.
std::atomic<std::uint64_t> g_inversions{0};
}  // namespace

std::uint64_t lock_inversions() {
  return g_inversions.load(std::memory_order_relaxed);
}

#ifdef NTCS_LOCK_RANK_CHECKS

namespace {

// Deep enough for every real chain (the longest in the tree is
// drts.process_control → lcm.state → nd.state → log, depth 4) with a wide
// margin; acquisitions past the cap are left untracked rather than UB.
constexpr std::size_t kMaxHeld = 32;

struct HeldLock {
  const void* m;
  std::uint16_t rank;
  const char* name;
};

struct ThreadLockState {
  HeldLock held[kMaxHeld];
  std::size_t depth = 0;
  bool in_validator = false;
};

thread_local ThreadLockState t_locks;

// Once-per-pair stderr reporting. Guarded by its own unranked mutex; only
// reached on the (rare) inversion path with in_validator set, so the
// acquisition below bypasses the validator and cannot recurse.
void report_once(const char* held_name, std::uint16_t held_rank,
                 const char* acq_name, std::uint16_t acq_rank) {
  static Mutex mu;
  static constexpr std::size_t kMaxPairs = 64;
  static struct {
    const char* a;
    const char* b;
  } seen[kMaxPairs];
  static std::size_t n_seen = 0;

  LockGuard lk(mu);
  for (std::size_t i = 0; i < n_seen; ++i) {
    if (seen[i].a == held_name && seen[i].b == acq_name) return;
  }
  if (n_seen < kMaxPairs) seen[n_seen++] = {held_name, acq_name};
  std::fprintf(stderr,
               "ntcs: LOCK RANK INVERSION: acquiring '%s' (rank %u) while "
               "holding '%s' (rank %u)\n",
               acq_name, acq_rank, held_name, held_rank);
}

}  // namespace

std::size_t held_lock_depth() { return t_locks.depth; }

void note_acquire(const void* m, std::uint16_t rank, const char* name) {
  ThreadLockState& s = t_locks;
  if (s.in_validator) return;
  if (rank != lockrank::kUnranked) {
    // The hierarchy demands strictly increasing ranks down the stack.
    for (std::size_t i = 0; i < s.depth; ++i) {
      if (s.held[i].rank != lockrank::kUnranked && s.held[i].rank >= rank) {
        g_inversions.fetch_add(1, std::memory_order_relaxed);
        s.in_validator = true;
        {
          // The reporting path takes the registry/report locks; under an
          // exploration run those must not become schedule points (they
          // only occur on failing schedules, so they would make decision
          // indices — and replay tokens — schedule-dependent).
          SchedSuppress suppress;
          static metrics::Counter* c =
              &metrics::counter("analysis.lock_inversions");
          c->inc();
          report_once(s.held[i].name, s.held[i].rank, name, rank);
        }
        s.in_validator = false;
        break;
      }
    }
  }
  if (s.depth < kMaxHeld) s.held[s.depth++] = {m, rank, name};
}

void note_release(const void* m) {
  ThreadLockState& s = t_locks;
  if (s.in_validator) return;
  for (std::size_t i = s.depth; i-- > 0;) {
    if (s.held[i].m == m) {
      for (std::size_t j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
  }
}

#else  // !NTCS_LOCK_RANK_CHECKS

std::size_t held_lock_depth() { return 0; }

#endif

}  // namespace ntcs::analysis
