// annotated.h — capability-annotated locking primitives and the runtime
// lock-hierarchy validator.
//
// The Nucleus is a stack of concurrently-driven layers (ND → IP → LCM →
// NSP → ALI over the simnet substrate), and the locking discipline that
// keeps LvcState, the per-circuit send windows, the Fabric FIFOs and the
// metrics registry consistent used to exist only in the authors' heads.
// This header turns that discipline into two machine-checked contracts:
//
//  1. **Static**: Clang thread-safety attributes. `ntcs::Mutex` is a
//     CAPABILITY, `ntcs::LockGuard`/`ntcs::UniqueLock` are
//     SCOPED_CAPABILITYs, and shared state throughout src/ is annotated
//     GUARDED_BY its mutex. Under Clang the build runs with
//     `-Wthread-safety -Werror=thread-safety`; under GCC (which has no
//     such analysis) every attribute expands to nothing and the wrappers
//     are zero-overhead forwarding shims.
//
//  2. **Dynamic**: a lock-hierarchy registry. Every mutex is constructed
//     with a *rank* (see `lockrank` below — lower rank = acquired
//     earlier / held outermost). A thread-local held-lock stack checks,
//     on every acquisition, that the new lock's rank is strictly greater
//     than every ranked lock already held by the thread. A violation is
//     a *rank inversion*: two threads interleaving the same pair of
//     locks in opposite orders is the classic deadlock cycle, and rank
//     inversions are exactly the acquisitions that make such cycles
//     possible. Inversions are counted in `analysis.lock_inversions`
//     (metrics registry) and reported once per offending lock pair on
//     stderr. The validator is compiled in when NTCS_LOCK_RANK_CHECKS
//     is defined (CMake option NTCS_LOCK_CHECKS, default ON — including
//     RelWithDebInfo, so the tier-1 suite always runs under it) and
//     costs one thread-local stack scan (depth ≤ 4 in practice) per
//     lock; perf builds may configure it away.
//
// The condition-variable wrapper is std::condition_variable_any: its
// wait() releases and reacquires through UniqueLock::unlock()/lock(), so
// the held-lock bookkeeping stays exact across blocking waits.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// ---- Clang thread-safety annotation macros --------------------------------
// The canonical attribute set from the Clang thread-safety docs. Under any
// compiler without the capability analysis these expand to nothing.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NTCS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NTCS_THREAD_ANNOTATION
#define NTCS_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) NTCS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY NTCS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) NTCS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) NTCS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) NTCS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) NTCS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) NTCS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) NTCS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) NTCS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) NTCS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) NTCS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) NTCS_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) NTCS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS NTCS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ntcs {

// ---- the lock hierarchy ---------------------------------------------------
// One rank per lock *role*; lower rank = acquired earlier (outermost).
// A thread holding a lock of rank r may only acquire locks of rank > r.
// The numbering is derived from the empirical nesting in the codebase
// (documented per-edge below and in DESIGN.md §6), not from conceptual
// layering alone — e.g. the LCM-Layer's state lock is *outer* to the
// ND-Layer's because resolution results are pushed down into the ND
// physical-address cache while the LCM table lock is held.
//
// Rank 0 (kUnranked) exempts a mutex from ordering checks; it is for
// test scaffolding and genuinely order-free leaves only — production
// locks all carry a rank.
namespace lockrank {
inline constexpr std::uint16_t kUnranked = 0;

// DRTS managed-process control: held across module start/stop, which
// re-enters the whole Nucleus (register_self → NSP → LCM → ND → fabric),
// so it must be outermost of all.
inline constexpr std::uint16_t kDrtsProcessControl = 100;
// DRTS server state (monitor rollups, error-log ring, file tables):
// leaf-scoped copies, never held across NTCS calls.
inline constexpr std::uint16_t kDrtsServer = 110;
// IP gateway relay/stats state.
inline constexpr std::uint16_t kGatewayState = 120;

// NSP-Layer: resolver caches and the name-server database. Held only
// around table mutation/copy; NTCS traffic happens outside.
inline constexpr std::uint16_t kNspState = 200;
// The NSP shard-map + lease cache (client-side naming state: per-shard
// epochs, lease entries). Strictly leaf-scoped within the NSP-Layer: a
// lookup consults/mutates the cache under it, RELEASES it, and only then
// issues the LCM request — the lock is never held across a blocking
// naming-service call (the PR 4 validator found that shape twice
// elsewhere; the rank exists so analysis_test can pin the contract).
inline constexpr std::uint16_t kNspLease = 205;
inline constexpr std::uint16_t kNameServerDb = 210;
inline constexpr std::uint16_t kStaticResolver = 220;

// LCM-Layer: the connection/forward/pending tables lock is held while
// seeding the ND physical cache (lcm.state < nd.state); the per-circuit
// send window and per-request ticket locks are taken strictly after it
// and never nested with each other.
inline constexpr std::uint16_t kLcmState = 300;
inline constexpr std::uint16_t kLcmWindow = 310;
inline constexpr std::uint16_t kLcmRequest = 320;

// IP-Layer: route-extension waiters are held while relay state is
// installed (ip.extend_wait < ip.state); the state lock is never held
// across ND-Layer calls.
inline constexpr std::uint16_t kIpExtendWait = 400;
inline constexpr std::uint16_t kIpState = 410;

// ND-Layer: an open waiter's lock is held across the whole open attempt
// (nd.open_wait < nd.state < fabric, via close_channel on stale
// attempts); the per-LVC transmit lock serialises fragment trains across
// Endpoint::send (nd.tx < fabric).
inline constexpr std::uint16_t kNdOpenWait = 500;
inline constexpr std::uint16_t kNdState = 510;
inline constexpr std::uint16_t kNdTx = 520;

// Node identity (UAdd/phys snapshot): leaf below the layer locks.
inline constexpr std::uint16_t kIdentity = 600;

// simnet substrate: endpoint inbox and fabric core. The fabric never
// holds its lock across Endpoint::enqueue and endpoints never call back
// into the fabric under their inbox lock, so the two are unnested; both
// sit below every Nucleus lock that reaches them (nd.tx, nd.open_wait).
inline constexpr std::uint16_t kSimnetEndpoint = 700;
inline constexpr std::uint16_t kSimnetFabric = 710;

// realnet substrate (real loopback TCP sockets), same stratum as simnet:
// reached with ND-Layer locks held. The port lock guards the channel
// table (taken by connect/close and the listener/reader threads); each
// channel's tx lock serialises gather-writes onto its socket and is
// taken after the port lock (connect sends nothing, send looks up the
// channel under kRealnetPort then writes under kRealnetTx); the inbox
// lock is a strict leaf the reader threads and recv_for meet at.
inline constexpr std::uint16_t kRealnetPort = 720;
inline constexpr std::uint16_t kRealnetTx = 730;
inline constexpr std::uint16_t kRealnetInbox = 740;

// Leaf infrastructure: acquired last, never held across anything.
inline constexpr std::uint16_t kBlockingQueue = 800;
inline constexpr std::uint16_t kLog = 900;
inline constexpr std::uint16_t kMetricsRegistry = 910;
// Trace span-buffer drain lock (writes are lock-free; only snapshot/clear
// serialise here). Strict leaf: drains may run under the DRTS server lock
// and first-touch a metric, never the other way around.
inline constexpr std::uint16_t kTraceBuffer = 920;
// Health-plane registry/report lock (common/health.h). Leaf below
// everything: heartbeats and beacons are raw relaxed atomics (no lock at
// all on layer hot paths); this lock only serialises watchdog sampling
// and registration, and a sample never holds it across the metrics
// snapshot it consumes (kMetricsRegistry < kHealth — the snapshot is
// taken first, unlocked).
inline constexpr std::uint16_t kHealth = 930;
// Flight-recorder drain lock (common/health.h journal) — the exact
// analogue of kTraceBuffer for the event journal: record() is lock-free,
// only snapshot/clear/dump serialise here. Strict leaf.
inline constexpr std::uint16_t kJournal = 940;
}  // namespace lockrank

namespace analysis {
/// Process-wide count of detected rank inversions (same value the
/// `analysis.lock_inversions` metric carries; readable without touching
/// the metrics registry, e.g. from the validator's own failure paths).
std::uint64_t lock_inversions();

/// Number of ranked locks the calling thread currently holds.
std::size_t held_lock_depth();

// Internal hooks used by ntcs::Mutex (defined even when the validator is
// compiled out, as empty inlines, so annotated.h stays the only
// conditional surface).
#ifdef NTCS_LOCK_RANK_CHECKS
void note_acquire(const void* m, std::uint16_t rank, const char* name);
void note_release(const void* m);
#else
inline void note_acquire(const void*, std::uint16_t, const char*) {}
inline void note_release(const void*) {}
#endif

// ---- schedule-explorer interposition seam ---------------------------------
// When a thread is registered as a task of an active exploration run
// (src/analysis/sched.h), every Mutex/CondVar/Atomic operation first calls
// the matching sched_* hook so the cooperative scheduler can serialize it.
// `task` is set by the explorer on its task threads only; `suppress` lets
// validator-internal code (inversion reporting, metrics first-touch) take
// locks without creating schedule points, keeping decision indices
// deterministic across runs. On every other thread — all of production
// and tier-1 — sched_interposed() is one thread_local flag test.
struct SchedTls {
  bool task = false;
  int suppress = 0;
};
// Accessor instead of an extern thread_local object: GCC's UBSan
// false-positives ("member access within null pointer") on the cross-TU
// TLS wrapper of an extern thread_local class object; a function-local
// thread_local is constant-initialized, wrapper-free, and identical cost.
inline SchedTls& sched_tls() {
  static thread_local SchedTls t;
  return t;
}

inline bool sched_interposed() {
  const SchedTls& t = sched_tls();
  return t.task && t.suppress == 0;
}

/// RAII suppression for validator/infrastructure code paths that must not
/// become schedule points.
class SchedSuppress {
 public:
  SchedSuppress() { ++sched_tls().suppress; }
  ~SchedSuppress() { --sched_tls().suppress; }
  SchedSuppress(const SchedSuppress&) = delete;
  SchedSuppress& operator=(const SchedSuppress&) = delete;
};

namespace sched {
// Defined in src/analysis/sched.cpp (ntcs_analysis, mutually linked with
// ntcs_common). Declarations duplicated in analysis/sched.h.
void sched_mutex_lock(const void* m, const char* name);
bool sched_mutex_trylock(const void* m, const char* name);
void sched_mutex_unlock(const void* m);
void sched_cv_enqueue(const void* cv);
bool sched_cv_wait_parked(const void* cv, std::int64_t rel_ns);
void sched_cv_notify(const void* cv, bool all);
void sched_atomic_access(const void* loc, bool write, bool acquire,
                         bool release);
}  // namespace sched
}  // namespace analysis

// ---- the annotated mutex --------------------------------------------------

/// A standard mutex that (a) carries Clang capability annotations and
/// (b) participates in the runtime lock-hierarchy validator. Construct
/// with a rank from ntcs::lockrank and a static-storage name.
class CAPABILITY("mutex") Mutex {
 public:
  /// Unranked (ordering-exempt) mutex — test scaffolding only.
  Mutex() = default;
  Mutex(std::uint16_t rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Hook ordering is the explorer's core invariant (model-free =>
  // physically-free): a lock is model-granted *before* the physical
  // acquisition, and the physical release happens *before* the model one
  // — so a granted mu_.lock() can never block on a stale physical holder.
  void lock() ACQUIRE() {
    if (analysis::sched_interposed()) {
      analysis::sched::sched_mutex_lock(this, name_);
    }
    mu_.lock();
    analysis::note_acquire(this, rank_, name_);
  }
  void unlock() RELEASE() {
    analysis::note_release(this);
    mu_.unlock();
    if (analysis::sched_interposed()) {
      analysis::sched::sched_mutex_unlock(this);
    }
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (analysis::sched_interposed()) {
      // The model decides; when it grants, the mutex is physically free.
      if (!analysis::sched::sched_mutex_trylock(this, name_)) return false;
      mu_.lock();
      analysis::note_acquire(this, rank_, name_);
      return true;
    }
    if (!mu_.try_lock()) return false;
    analysis::note_acquire(this, rank_, name_);
    return true;
  }

  std::uint16_t rank() const { return rank_; }
  const char* name() const { return name_; }

  /// For code paths the static analysis cannot follow (e.g. a lock
  /// handed through a callback): assert at analysis level that the
  /// capability is held.
  void assert_held() const ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
  std::uint16_t rank_ = lockrank::kUnranked;
  const char* name_ = "unranked";
};

/// Scoped lock, the std::lock_guard analogue.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Relockable scoped lock, the std::unique_lock analogue — BasicLockable,
/// so std::condition_variable_any can release/reacquire it (keeping the
/// hierarchy validator's bookkeeping exact across waits).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) ACQUIRE(m) : mu_(&m), owned_(true) {
    mu_->lock();
  }
  ~UniqueLock() RELEASE() {
    if (owned_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    owned_ = false;
    mu_->unlock();
  }
  bool owns_lock() const { return owned_; }

 private:
  Mutex* mu_;
  bool owned_;
};

/// Condition variable over ntcs::Mutex. std::condition_variable_any waits
/// by calling UniqueLock::unlock()/lock(), so every blocking wait passes
/// through the same rank bookkeeping as a plain acquisition. The wait
/// overloads mirror the std ones used in this codebase. (The thread-safety
/// analysis treats the lock as held across a wait — true at entry and
/// exit, which is what GUARDED_BY cares about.)
/// Under an exploration run the underlying condition_variable_any is not
/// used at all: a wait enqueues the task in the scheduler's FIFO waiter
/// model, releases the lock through the interposed Mutex path, parks
/// until a modeled notify (or modeled timeout — timeouts fire only when
/// nothing else can run), and relocks. notify_one wakes the FIFO front;
/// std's "any waiter" latitude collapses to that one deterministic
/// choice. (The notify methods are schedule points, hence not noexcept.)
class CondVar {
 public:
  void notify_one() {
    if (analysis::sched_interposed()) {
      analysis::sched::sched_cv_notify(this, /*all=*/false);
      return;
    }
    cv_.notify_one();
  }
  void notify_all() {
    if (analysis::sched_interposed()) {
      analysis::sched::sched_cv_notify(this, /*all=*/true);
      return;
    }
    cv_.notify_all();
  }

  void wait(UniqueLock& lk) {
    if (analysis::sched_interposed()) {
      sched_wait(lk, -1);
      return;
    }
    cv_.wait(lk);
  }

  template <typename Pred>
  void wait(UniqueLock& lk, Pred pred) {
    if (analysis::sched_interposed()) {
      while (!pred()) sched_wait(lk, -1);
      return;
    }
    cv_.wait(lk, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    if (analysis::sched_interposed()) {
      return sched_wait(lk, rel_ns(d)) ? std::cv_status::timeout
                                       : std::cv_status::no_timeout;
    }
    return cv_.wait_for(lk, d);
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lk, const std::chrono::duration<Rep, Period>& d,
                Pred pred) {
    if (analysis::sched_interposed()) {
      while (!pred()) {
        if (sched_wait(lk, rel_ns(d))) return pred();
      }
      return true;
    }
    return cv_.wait_for(lk, d, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    if (analysis::sched_interposed()) {
      return sched_wait(lk, rel_ns(tp - Clock::now()))
                 ? std::cv_status::timeout
                 : std::cv_status::no_timeout;
    }
    return cv_.wait_until(lk, tp);
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(UniqueLock& lk,
                  const std::chrono::time_point<Clock, Duration>& tp,
                  Pred pred) {
    if (analysis::sched_interposed()) {
      while (!pred()) {
        if (sched_wait(lk, rel_ns(tp - Clock::now()))) return pred();
      }
      return true;
    }
    return cv_.wait_until(lk, tp, std::move(pred));
  }

 private:
  template <typename Rep, typename Period>
  static std::int64_t rel_ns(const std::chrono::duration<Rep, Period>& d) {
    auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns < 0 ? 0 : ns;
  }

  /// The modeled wait; returns true when it ended by (modeled) timeout.
  /// rel_ns < 0 waits forever.
  bool sched_wait(UniqueLock& lk, std::int64_t rel_ns) {
    analysis::sched::sched_cv_enqueue(this);  // atomic with the release:
    lk.unlock();  // no schedule point runs between enqueue and unlock
    const bool timed_out = analysis::sched::sched_cv_wait_parked(this, rel_ns);
    lk.lock();
    return timed_out;
  }

  std::condition_variable_any cv_;
};

}  // namespace ntcs
