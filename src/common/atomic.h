// atomic.h — ntcs::Atomic<T>, the interposable std::atomic wrapper.
//
// The schedule explorer (src/analysis/sched.h) can only reorder what it
// can see. ntcs::Mutex/CondVar cover the locked state; the codebase's
// lock-free hot paths — the trace sampling gate, the send-window
// busy_until timestamp, shed/stall counters — go through raw atomics the
// explorer would race right past. Atomic<T> forwards every access to
// std::atomic<T> and, on threads registered with an active exploration
// run, also reports it as a schedule point with its memory-order edge
// (release accumulates the writer's vector clock at the location; acquire
// joins it into the reader; relaxed creates no edge, which is exactly
// what lets the race detector tell a published value from a lucky one).
//
// Off the explorer (every production thread, and all of tier-1), the
// added cost is one thread_local flag test per access. Atomics that stay
// std::atomic on purpose (seqlock slots, signal-adjacent state, anything
// inside the trace/metrics internals the explorer must not park in) carry
// a `// sync:` comment instead — the lint.sh gate enforces one or the
// other for every atomic member in src/.
#pragma once

#include <atomic>

#include "common/annotated.h"

namespace ntcs {

template <typename T>
class Atomic {
 public:
  Atomic() noexcept = default;
  constexpr Atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    hook(false, mo);
    return v_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    v_.store(v, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    return v_.exchange(v, mo);
  }
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    return v_.fetch_add(d, mo);
  }
  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    return v_.fetch_sub(d, mo);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    return v_.compare_exchange_strong(expected, desired, mo);
  }
  // Weak CAS maps to strong: a spurious failure is scheduling noise the
  // deterministic explorer must not depend on, and on the platforms this
  // builds for the strong form costs the same.
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    hook(true, mo);
    return v_.compare_exchange_strong(expected, desired, mo);
  }

 private:
  static bool mo_acquire(std::memory_order mo) {
    return mo == std::memory_order_acquire || mo == std::memory_order_consume ||
           mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
  }
  static bool mo_release(std::memory_order mo) {
    return mo == std::memory_order_release ||
           mo == std::memory_order_acq_rel || mo == std::memory_order_seq_cst;
  }
  void hook(bool write, std::memory_order mo) const {
    if (analysis::sched_interposed()) {
      analysis::sched::sched_atomic_access(&v_, write, mo_acquire(mo),
                                           mo_release(mo));
    }
  }

  // sync: the wrapped cell itself; every access goes through the hooked
  // methods above.
  mutable std::atomic<T> v_;
};

}  // namespace ntcs
