// backoff.h — capped exponential backoff with jitter.
//
// Every retry loop in the NTCS (ND retry-on-open, LCM circuit
// re-establishment, IP extend retries) shares this policy: a fixed retry
// delay synchronises competing retriers into storms and loses races with
// flapping links, while exponential growth with randomised spread drains
// contention and rides out outages of unknown length. Determinism is
// preserved by drawing the jitter from an explicitly seeded Rng.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace ntcs {

/// Tunables for one retry loop. Delay for attempt k (0-based, first retry)
/// is `min(initial * multiplier^k, cap)` spread uniformly over
/// `[d*(1-jitter), d*(1+jitter)]`.
struct BackoffPolicy {
  std::chrono::nanoseconds initial{std::chrono::milliseconds(1)};
  std::chrono::nanoseconds cap{std::chrono::milliseconds(32)};
  double multiplier = 2.0;
  double jitter = 0.5;  // 0 = deterministic delays, 1 = full spread
};

/// One retry sequence. Not thread-safe; callers serialise per loop.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy)
      : policy_(policy), next_(policy.initial) {}

  /// The delay to sleep before the next retry; advances the sequence.
  std::chrono::nanoseconds next(Rng& rng) {
    const auto base = next_;
    const double grown =
        static_cast<double>(next_.count()) * std::max(policy_.multiplier, 1.0);
    const double capped =
        std::min(grown, static_cast<double>(policy_.cap.count()));
    next_ = std::chrono::nanoseconds(static_cast<std::int64_t>(capped));
    const double j = std::clamp(policy_.jitter, 0.0, 1.0);
    if (j <= 0.0 || base.count() <= 0) return base;
    const auto lo = static_cast<std::uint64_t>(
        static_cast<double>(base.count()) * (1.0 - j));
    const auto span = static_cast<std::uint64_t>(
        static_cast<double>(base.count()) * 2.0 * j);
    return std::chrono::nanoseconds(lo + rng.next_below(span + 1));
  }

  /// Restart from `initial` (after a success).
  void reset() { next_ = policy_.initial; }

 private:
  BackoffPolicy policy_;
  std::chrono::nanoseconds next_;
};

}  // namespace ntcs
