#include "common/bytes.h"

#include <array>

namespace ntcs {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

std::string hex_dump(BytesView b, std::size_t max_bytes) {
  static constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5',
                                                '6', '7', '8', '9', 'a', 'b',
                                                'c', 'd', 'e', 'f'};
  std::string out;
  const std::size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  out.reserve(n * 3 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xF]);
  }
  if (b.size() > n) out += " ...";
  return out;
}

}  // namespace ntcs
