// bytes.h — raw byte-buffer type used throughout the NTCS, plus helpers.
//
// All NTCS messages are, at the bottom, contiguous byte buffers (the paper
// requires the original application message to be a contiguous block of
// memory; linked structures are not allowed — §5.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ntcs {

/// Owned contiguous byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view of a byte buffer.
using BytesView = std::span<const std::uint8_t>;

/// Build a Bytes from a string (no terminator is added).
Bytes to_bytes(std::string_view s);

/// Interpret a byte buffer as text (copies).
std::string to_string(BytesView b);

/// Append the contents of `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Hex dump (for diagnostics), at most `max_bytes` shown.
std::string hex_dump(BytesView b, std::size_t max_bytes = 64);

}  // namespace ntcs
