#include "common/error.h"

namespace ntcs {

std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::address_fault: return "address_fault";
    case Errc::no_route: return "no_route";
    case Errc::not_found: return "not_found";
    case Errc::closed: return "closed";
    case Errc::refused: return "refused";
    case Errc::timeout: return "timeout";
    case Errc::bad_message: return "bad_message";
    case Errc::no_resource: return "no_resource";
    case Errc::already_exists: return "already_exists";
    case Errc::shutdown: return "shutdown";
    case Errc::too_big: return "too_big";
    case Errc::bad_argument: return "bad_argument";
    case Errc::recursion_limit: return "recursion_limit";
    case Errc::conversion_error: return "conversion_error";
    case Errc::partitioned: return "partitioned";
    case Errc::unsupported: return "unsupported";
    case Errc::still_alive: return "still_alive";
    case Errc::overloaded: return "overloaded";
    case Errc::wrong_shard: return "wrong_shard";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string s(errc_name(code_));
  if (!what_.empty()) {
    s += ": ";
    s += what_;
  }
  return s;
}

}  // namespace ntcs
