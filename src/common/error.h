// error.h — error codes and the Result<T> type used across all NTCS layers.
//
// Expected communication failures (address faults, timeouts, partitions,
// closed channels …) are values, not exceptions: a communication system is
// "quickly inundated with the handling of unlikely exceptional conditions"
// (paper §6.3), and those conditions are part of normal operation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ntcs {

/// Error codes surfaced by NTCS layers. The ALI-Layer "tailors" these for
/// the application; internal layers pass them upward unchanged (§2.2: "no
/// automatic relocation or recovery ...; notification is simply passed
/// upward").
enum class Errc : std::uint8_t {
  ok = 0,
  /// Destination physical address unreachable / channel to it died.
  address_fault,
  /// No route between source and destination networks.
  no_route,
  /// Name or address not known to the naming service.
  not_found,
  /// The channel/circuit was closed by the peer or by teardown.
  closed,
  /// The destination exists but refused the open.
  refused,
  /// A deadline expired.
  timeout,
  /// A malformed or unexpected protocol message was received.
  bad_message,
  /// Resource exhaustion (queue full, table full, ids exhausted).
  no_resource,
  /// An entity with this name/address already exists.
  already_exists,
  /// The module or fabric is shutting down.
  shutdown,
  /// Message exceeds the maximum transfer size.
  too_big,
  /// Caller error detected by ALI-Layer parameter checking.
  bad_argument,
  /// Recursion guard tripped (paper §6.3: Name Server dead-circuit loop).
  recursion_limit,
  /// Pack/unpack failure in the conversion layer.
  conversion_error,
  /// Network partition injected / detected.
  partitioned,
  /// Operation not supported by this IPCS / layer.
  unsupported,
  /// Forwarding query answered: the old module is still alive (§3.5 —
  /// "the original module is still alive"; the caller should reconnect).
  still_alive,
  /// Admission rejected under overload: the destination (or this node's
  /// own admission control) cannot serve the request within its deadline.
  /// Retriable — back off and try again; nothing was partially applied.
  overloaded,
  /// A naming request reached a Name Server shard that does not own the
  /// name (stale shard map or misrouted query). Retriable: re-route to the
  /// owning shard — never a silent wrong answer.
  wrong_shard,
};

/// Human-readable name of an error code.
std::string_view errc_name(Errc e);

/// An error: a code plus optional context text for diagnostics.
class Error {
 public:
  Error(Errc code, std::string what) : code_(code), what_(std::move(what)) {}
  explicit Error(Errc code) : code_(code) {}

  Errc code() const { return code_; }
  const std::string& what() const { return what_; }
  std::string to_string() const;

 private:
  Errc code_;
  std::string what_;
};

/// Result<T>: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}       // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string what) : v_(Error(code, std::move(what))) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  const Error& error() const { return std::get<Error>(v_); }
  Errc code() const { return ok() ? Errc::ok : error().code(); }

  /// Value or a default when in error state.
  T value_or(T dflt) const& { return ok() ? value() : std::move(dflt); }

 private:
  std::variant<T, Error> v_;
};

/// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : err_(std::move(error)) {}     // NOLINT(google-explicit-constructor)
  Status(Errc code, std::string what) : err_(Error(code, std::move(what))) {}

  static Status success() { return Status(); }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const { return *err_; }
  Errc code() const { return ok() ? Errc::ok : err_->code(); }
  std::string to_string() const { return ok() ? "ok" : err_->to_string(); }

 private:
  std::optional<Error> err_;
};

}  // namespace ntcs
