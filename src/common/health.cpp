#include "common/health.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <type_traits>

#include "common/trace.h"

namespace ntcs::health {

// ---- flight recorder ------------------------------------------------------

namespace {

// The fixed-width marshalled form of one journal event (the RawSpan of the
// flight recorder). Must stay a multiple of 8 bytes with no interior
// padding holes that memcpy would leave undefined (the char arrays absorb
// the tail after `kind`).
struct RawEvent {
  std::uint64_t seq;
  std::int64_t ts_ns;
  std::uint64_t trace_hi;
  std::uint64_t trace_lo;
  std::uint64_t a;
  std::uint64_t b;
  std::uint32_t kind;
  char layer[12];
  char what[16];
};

constexpr std::size_t kEventWords = sizeof(RawEvent) / sizeof(std::uint64_t);
static_assert(sizeof(RawEvent) == 80, "no interior padding expected");
static_assert(sizeof(RawEvent) % sizeof(std::uint64_t) == 0);
static_assert(std::is_trivially_copyable_v<RawEvent>);

constexpr std::uint64_t kBusyStamp = ~0ULL;

void copy_bounded(char* dst, std::size_t cap, std::string_view s) {
  const std::size_t n = s.size() < cap ? s.size() : cap;
  std::memcpy(dst, s.data(), n);
  if (n < cap) std::memset(dst + n, 0, cap - n);
}

std::string read_bounded(const char* src, std::size_t cap) {
  std::size_t n = 0;
  while (n < cap && src[n] != '\0') ++n;
  return std::string(src, n);
}

std::string_view kind_name(EventKind k) {
  switch (k) {
    case EventKind::transition: return "transition";
    case EventKind::shed: return "shed";
    case EventKind::failover: return "failover";
    case EventKind::busy: return "busy";
    case EventKind::retry: return "retry";
    case EventKind::stall: return "stall";
    case EventKind::health: return "health";
  }
  return "?";
}

// The process journal, resolved once per call site file — the only
// Journal::instance() touch outside tests (mirrors trace.cpp's
// process_buffer()).
Journal& process_journal() {
  static Journal& j = Journal::instance();
  return j;
}

}  // namespace

// One ring slot: a seqlock stamp plus the event payload as relaxed-atomic
// words — the exact protocol of trace.cpp's SpanBuffer::Slot (a reader
// racing a wrap-around writer detects the recycled stamp and skips).
struct Journal::Slot {
  // Deliberately NOT ntcs::Atomic: journal_note() fires inside shed and
  // failover paths under layer locks; the explorer must never park here.
  // sync: seqlock — stamp acq/rel brackets the relaxed word payload.
  std::atomic<std::uint64_t> stamp{0};  // 0 empty, kBusyStamp mid-write,
                                        // else writer's ticket + 1
  std::atomic<std::uint64_t> words[kEventWords]{};  // sync: seqlock payload
};

Journal::Journal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

Journal::~Journal() = default;

Journal& Journal::instance() {
  // Intentionally leaked, same pattern as the span ring's singleton:
  // detached module threads may journal during static destruction.
  static Journal* j = new Journal();
  return *j;
}

void Journal::record(EventKind kind, std::string_view layer,
                     std::string_view what, std::uint64_t a, std::uint64_t b,
                     std::uint64_t trace_hi, std::uint64_t trace_lo) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  RawEvent raw;
  raw.seq = ticket + 1;  // nonzero so a decoded event is distinguishable
  raw.ts_ns = trace::now_ns();
  raw.trace_hi = trace_hi;
  raw.trace_lo = trace_lo;
  raw.a = a;
  raw.b = b;
  raw.kind = static_cast<std::uint32_t>(kind);
  copy_bounded(raw.layer, sizeof(raw.layer), layer);
  copy_bounded(raw.what, sizeof(raw.what), what);
  std::uint64_t words[kEventWords];
  std::memcpy(words, &raw, sizeof(raw));

  Slot& slot = slots_[ticket % capacity_];
  const std::uint64_t prev =
      slot.stamp.exchange(kBusyStamp, std::memory_order_acq_rel);
  if (prev != 0 && prev != kBusyStamp) {
    // Overwrote an event nobody drained: the ring wrapped.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter& dropped =
        metrics::counter("health.journal_dropped");
    dropped.inc();
  }
  for (std::size_t i = 0; i < kEventWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.stamp.store(ticket + 1, std::memory_order_release);
}

std::vector<JournalEvent> Journal::snapshot() const {
  ntcs::LockGuard lk(mu_);
  const std::uint64_t hi = next_.load(std::memory_order_acquire);
  const std::uint64_t lo = hi > capacity_ ? hi - capacity_ : 0;
  std::vector<JournalEvent> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (std::uint64_t t = lo; t < hi; ++t) {
    const Slot& slot = slots_[t % capacity_];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 == 0 || s1 == kBusyStamp) continue;
    std::uint64_t words[kEventWords];
    for (std::size_t i = 0; i < kEventWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    // sync: seqlock read fence — orders the word loads before the stamp
    // re-check.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != s1) continue;  // torn
    RawEvent raw;
    std::memcpy(&raw, words, sizeof(raw));
    if (raw.seq == 0) continue;
    JournalEvent e;
    e.seq = raw.seq;
    e.ts_ns = raw.ts_ns;
    e.trace_hi = raw.trace_hi;
    e.trace_lo = raw.trace_lo;
    e.a = raw.a;
    e.b = raw.b;
    e.kind = static_cast<EventKind>(raw.kind);
    e.layer = read_bounded(raw.layer, sizeof(raw.layer));
    e.what = read_bounded(raw.what, sizeof(raw.what));
    out.push_back(std::move(e));
  }
  return out;
}

void Journal::clear() {
  ntcs::LockGuard lk(mu_);
  // Tickets keep counting (stamps stay unique across clears); a zero stamp
  // marks the slot empty so overwriting it is not counted as a drop.
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].stamp.store(0, std::memory_order_release);
  }
}

void journal_note(EventKind kind, std::string_view layer,
                  std::string_view what, std::uint64_t a, std::uint64_t b) {
  const trace::TraceContext ctx = trace::current();
  process_journal().record(kind, layer, what, a, b, ctx.hi, ctx.lo);
}

std::vector<JournalEvent> journal_snapshot() {
  return process_journal().snapshot();
}

void journal_clear() { process_journal().clear(); }

std::uint64_t journal_dropped() { return process_journal().dropped(); }

void journal_dump(std::string_view reason) {
  const std::vector<JournalEvent> events = journal_snapshot();
  std::fprintf(stderr,
               "=== ntcs flight recorder (%.*s): %zu events, %llu lost to "
               "wrap ===\n",
               static_cast<int>(reason.size()), reason.data(), events.size(),
               static_cast<unsigned long long>(journal_dropped()));
  for (const JournalEvent& e : events) {
    std::fprintf(stderr,
                 "  #%llu %+12lldns %-10s %-12s %-16s a=%llu b=%llu"
                 " trace=%016llx%016llx\n",
                 static_cast<unsigned long long>(e.seq),
                 static_cast<long long>(e.ts_ns),
                 std::string(kind_name(e.kind)).c_str(), e.layer.c_str(),
                 e.what.c_str(), static_cast<unsigned long long>(e.a),
                 static_cast<unsigned long long>(e.b),
                 static_cast<unsigned long long>(e.trace_hi),
                 static_cast<unsigned long long>(e.trace_lo));
  }
  std::fprintf(stderr, "=== end flight recorder ===\n");
  std::fflush(stderr);
}

namespace {

// sync: one-shot install flag, relaxed CAS — install_fatal_dump must be
// idempotent from any thread; the handler itself runs single-threaded
// (std::terminate).
std::atomic<bool> g_fatal_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void fatal_dump_handler() {
  journal_dump("fatal");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void install_fatal_dump() {
  bool expected = false;
  if (!g_fatal_installed.compare_exchange_strong(expected, true,
                                                 std::memory_order_relaxed)) {
    return;
  }
  g_prev_terminate = std::set_terminate(&fatal_dump_handler);
}

// ---- the watchdog ---------------------------------------------------------

std::string_view to_string(HealthState s) {
  switch (s) {
    case HealthState::ok: return "ok";
    case HealthState::degraded: return "degraded";
    case HealthState::stalled: return "stalled";
  }
  return "?";
}

const LayerHealth* HealthReport::find(std::string_view name) const {
  for (const LayerHealth& l : layers) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

std::string HealthReport::to_string() const {
  std::string out = "overall=";
  out += health::to_string(overall);
  for (const LayerHealth& l : layers) {
    out += "\n  ";
    out += l.name;
    out += ": ";
    out += health::to_string(l.state);
    if (!l.evidence.empty()) {
      out += " (";
      out += l.evidence;
      out += ")";
    }
  }
  return out;
}

HealthRegistry& HealthRegistry::instance() {
  // Intentionally leaked, like the metrics registry: layer loops cache
  // Heartbeat& references and may beat during static destruction.
  static HealthRegistry* reg = new HealthRegistry();
  return *reg;
}

Heartbeat& HealthRegistry::heartbeat(std::string_view name,
                                     std::chrono::nanoseconds stall_after) {
  ntcs::LockGuard lk(mu_);
  auto it = heartbeats_.find(name);
  if (it == heartbeats_.end()) {
    it = heartbeats_.emplace(std::string(name), std::make_unique<Heartbeat>())
             .first;
  }
  Heartbeat& hb = *it->second;
  hb.active_.store(true, std::memory_order_relaxed);
  hb.stall_after_ns = stall_after.count();
  hb.seen_epoch = hb.epoch();
  hb.changed_ns = trace::now_ns();
  return hb;
}

Beacon& HealthRegistry::beacon(std::string_view name) {
  ntcs::LockGuard lk(mu_);
  auto it = beacons_.find(name);
  if (it == beacons_.end()) {
    it = beacons_.emplace(std::string(name), std::make_unique<Beacon>()).first;
  }
  return *it->second;
}

void HealthRegistry::watch_rate(std::string_view counter,
                                std::string_view label,
                                std::uint64_t threshold) {
  ntcs::LockGuard lk(mu_);
  RateWatch& w = rate_watches_[std::string(counter)];
  w.label = std::string(label);
  w.threshold = threshold;
  w.primed = false;
}

namespace {

std::string format_ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lldms",
                static_cast<long long>(ns / 1'000'000));
  return buf;
}

}  // namespace

HealthReport HealthRegistry::classify(const metrics::Snapshot& snap,
                                      std::int64_t now_ns) {
  HealthReport rep;
  rep.ts_ns = now_ns;

  // Stalled dispatch loops: an active heartbeat whose epoch has not moved
  // for its stall_after window.
  for (auto& [name, hb] : heartbeats_) {
    if (!hb->active()) continue;
    LayerHealth l;
    l.name = name;
    const std::uint64_t e = hb->epoch();
    if (e != hb->seen_epoch) {
      hb->seen_epoch = e;
      hb->changed_ns = now_ns;
    } else if (now_ns - hb->changed_ns > hb->stall_after_ns) {
      l.state = HealthState::stalled;
      l.evidence = "no heartbeat for " + format_ms(now_ns - hb->changed_ns) +
                   " (epoch " + std::to_string(e) + ")";
    }
    rep.layers.push_back(std::move(l));
  }

  // Wedged windows: a beacon still publishing a deadline that is already
  // past (plus grace). Normal deadline handling sweeps the waiter at its
  // deadline and republishes; only a sweep that never runs leaves the
  // beacon in the past.
  const std::int64_t grace = cfg_.beacon_grace.count();
  for (auto& [name, bc] : beacons_) {
    const std::int64_t v = bc->value();
    if (v == 0) continue;
    LayerHealth l;
    l.name = name;
    if (now_ns > v + grace) {
      l.state = HealthState::stalled;
      l.evidence =
          "waiter wedged " + format_ms(now_ns - v) + " past deadline";
    }
    rep.layers.push_back(std::move(l));
  }

  // Queues near their bound: every `<base>.depth` gauge with a
  // `<base>.bound` sibling at or above the utilization threshold.
  for (const auto& [name, v] : snap.values) {
    if (v.kind != metrics::MetricKind::gauge) continue;
    constexpr std::string_view kDepth = ".depth";
    if (name.size() <= kDepth.size() ||
        name.compare(name.size() - kDepth.size(), kDepth.size(), kDepth) !=
            0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - kDepth.size());
    const std::int64_t bound = snap.gauge_value(base + ".bound");
    if (bound <= 0) continue;
    const std::int64_t depth = v.gauge;
    if (static_cast<double>(depth) <
        cfg_.queue_utilization * static_cast<double>(bound)) {
      continue;
    }
    LayerHealth l;
    l.name = base;
    l.state = HealthState::degraded;
    char buf[96];
    std::snprintf(buf, sizeof buf, "queue at %lld/%lld (%.0f%%)",
                  static_cast<long long>(depth),
                  static_cast<long long>(bound),
                  100.0 * static_cast<double>(depth) /
                      static_cast<double>(bound));
    l.evidence = buf;
    rep.layers.push_back(std::move(l));
  }

  // Storms: a watched counter moving faster than its threshold between
  // consecutive samples (busy-pause storms, failover/address-fault storms).
  for (auto& [counter, w] : rate_watches_) {
    const std::uint64_t now_v = snap.value(counter);
    const std::uint64_t last = w.last;
    const bool primed = w.primed;
    w.last = now_v;
    w.primed = true;
    if (!primed) continue;
    const std::uint64_t delta = now_v >= last ? now_v - last : 0;
    const std::uint64_t thr =
        w.threshold != 0 ? w.threshold : cfg_.storm_threshold;
    if (delta < thr) continue;
    LayerHealth l;
    l.name = w.label;
    l.state = HealthState::degraded;
    l.evidence = std::to_string(delta) + " x " + counter +
                 " in one period (threshold " + std::to_string(thr) + ")";
    rep.layers.push_back(std::move(l));
  }

  for (const LayerHealth& l : rep.layers) {
    if (l.state > rep.overall) rep.overall = l.state;
  }
  return rep;
}

HealthReport HealthRegistry::check_now() {
  // Snapshot BEFORE locking: the metrics registry's mutex (rank
  // kMetricsRegistry = 910) ranks below kHealth = 930, so taking it while
  // holding mu_ would invert the order.
  const metrics::Snapshot snap = metrics::MetricsRegistry::instance().snapshot();
  const std::int64_t now = trace::now_ns();
  HealthReport rep;
  {
    ntcs::LockGuard lk(mu_);
    rep = classify(snap, now);
    // Journal per-layer state transitions (including recoveries), so the
    // flight recorder tells the story of when each layer went bad and
    // came back.
    for (const LayerHealth& l : rep.layers) {
      auto it = last_states_.find(l.name);
      const HealthState prev =
          it == last_states_.end() ? HealthState::ok : it->second;
      if (l.state != prev) {
        std::string what = std::string(to_string(prev)) + "->" +
                           std::string(to_string(l.state));
        journal_note(EventKind::health, l.name, what,
                     static_cast<std::uint64_t>(l.state));
        last_states_[l.name] = l.state;
      }
    }
    latest_ = rep;
  }
  return rep;
}

HealthReport HealthRegistry::latest() const {
  ntcs::LockGuard lk(mu_);
  return latest_;
}

void HealthRegistry::start_watchdog(WatchdogConfig cfg) {
  install_fatal_dump();
  {
    ntcs::LockGuard lk(mu_);
    if (running_.load(std::memory_order_relaxed)) return;
    cfg_ = cfg;
    stopping_ = false;
    if (!defaults_registered_) {
      defaults_registered_ = true;
      // Default storm watches: busy-pause storms (LCM flow control gone
      // pathological) and address-fault storms (failover churn).
      rate_watches_["lcm.busy_received"] = RateWatch{"lcm.busy_storm", 0, 0,
                                                     false};
      rate_watches_["lcm.address_faults"] =
          RateWatch{"lcm.failover_storm", 0, 0, false};
    }
    running_.store(true, std::memory_order_relaxed);
  }
  journal_note(EventKind::transition, "watchdog", "start");
  watchdog_ = std::jthread([this](std::stop_token st) { watchdog_main(st); });
}

void HealthRegistry::stop_watchdog() {
  {
    ntcs::LockGuard lk(mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) {
    watchdog_.request_stop();
    watchdog_.join();
  }
  running_.store(false, std::memory_order_relaxed);
  journal_note(EventKind::transition, "watchdog", "stop");
}

bool HealthRegistry::watchdog_running() const {
  return running_.load(std::memory_order_relaxed);
}

void HealthRegistry::watchdog_main(const std::stop_token& st) {
  while (!st.stop_requested()) {
    check_now();
    ntcs::UniqueLock lk(mu_);
    if (stopping_) return;
    cv_.wait_for(lk, cfg_.period, [&] { return stopping_; });
    if (stopping_) return;
  }
}

}  // namespace ntcs::health
