// health.h — the live health plane: heartbeats, watchdog, flight recorder.
//
// The metrics registry (counters/histograms/gauges) and the span ring both
// answer "what happened"; nothing in the system answered "what is stuck
// RIGHT NOW". This header adds the live-state half of the paper's §6.1
// observability argument, in three pieces:
//
//  1. **Heartbeats + beacons** — the layers' side. A dispatch loop (node
//     pump, gateway worker, monitor server) registers a named Heartbeat
//     and bumps its relaxed epoch counter once per loop iteration; a
//     blocking structure (the LCM send window) publishes a Beacon holding
//     the deadline of its oldest parked waiter. Both are raw relaxed
//     atomics (one uncontended add/store per event, `// sync:` below) so
//     the hot paths carry no lock and the schedule explorer never parks
//     in them.
//
//  2. **The watchdog** — the sampling side. check_now() classifies every
//     layer as ok/degraded/stalled with evidence:
//       - a Heartbeat whose epoch has not moved for its stall_after
//         window => the dispatch loop is *stalled*;
//       - a Beacon whose published deadline lies in the past (plus grace)
//         => a send window is *wedged* past its waiters' deadlines;
//       - any `<base>.depth` gauge at >= 90% of its `<base>.bound`
//         sibling => that queue is *degraded* (near the shed cliff);
//       - a watched counter (busy frames, address faults) moving faster
//         than its storm threshold between samples => *degraded*.
//     start_watchdog() runs check_now() on a period in a background
//     thread, journals every per-layer state transition, and keeps the
//     latest HealthReport for harvest (drts::query_health serves it over
//     the NTCS itself).
//
//  3. **The flight recorder** — a lock-free overwrite-oldest event
//     journal (the span-ring pattern from trace.cpp: fetch_add ticket +
//     per-slot seqlock) recording state transitions, sheds, failovers,
//     busy pauses and retries with trace-ID correlation. Dumped to
//     stderr on std::terminate (install_fatal_dump) and on demand
//     (drts::query_journal / journal_dump).
//
// Lock ranks: kHealth (registry/report, leaf — a sample takes its metrics
// snapshot BEFORE locking) and kJournal (drain-only, exact kTraceBuffer
// analogue). See DESIGN.md "Observability plane".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/annotated.h"
#include "common/metrics.h"

namespace ntcs::health {

// ---- flight recorder ------------------------------------------------------

enum class EventKind : std::uint32_t {
  transition = 0,  // lifecycle/state transition (start, stop, promote)
  shed = 1,        // a bounded queue dropped work at its bound
  failover = 2,    // naming/candidate rotation, standby promotion
  busy = 3,        // busy frame sent/received, admission paused
  retry = 4,       // fault retry / request reissue
  stall = 5,       // watchdog-detected stall or wedge
  health = 6,      // watchdog per-layer state transition
};

/// One decoded journal entry. `a`/`b` are event-specific numerics (queue
/// depth and bound for a shed, retries left for a retry, ...); trace_hi/lo
/// correlate with the distributed trace active at record time (0 when
/// untraced).
struct JournalEvent {
  std::uint64_t seq = 0;  // global write ticket: total order, gap = overwrite
  std::int64_t ts_ns = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  EventKind kind = EventKind::transition;
  std::string layer;  // truncated to 12 chars on record
  std::string what;   // truncated to 16 chars on record
};

/// The process flight recorder: fixed-capacity, overwrite-oldest,
/// lock-free writers (same seqlock-slot protocol as trace.cpp's
/// SpanBuffer; readers detect torn slots and skip them). Instantiable for
/// tests; production code records through journal_note().
class Journal {
 public:
  explicit Journal(std::size_t capacity = 8192);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  static Journal& instance();

  void record(EventKind kind, std::string_view layer, std::string_view what,
              std::uint64_t a, std::uint64_t b, std::uint64_t trace_hi,
              std::uint64_t trace_lo);

  /// Ticket-ordered copy of every live slot (oldest surviving first).
  std::vector<JournalEvent> snapshot() const;
  void clear();
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot;
  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // sync: ticket allocator + overwrite counter, relaxed — the per-slot
  // seqlock stamps carry the payload ordering (see Slot in health.cpp).
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};  // sync: relaxed stat, as above
  // Drain lock (kJournal): snapshot/clear only; record() never touches it.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kJournal, "health.journal"};
};

/// Record into the process journal, correlating with the calling thread's
/// current trace context (if any). One relaxed ticket + 10 relaxed word
/// stores; safe under any lock and on any hot path.
void journal_note(EventKind kind, std::string_view layer,
                  std::string_view what, std::uint64_t a = 0,
                  std::uint64_t b = 0);

std::vector<JournalEvent> journal_snapshot();
void journal_clear();
std::uint64_t journal_dropped();

/// Human-readable dump of the process journal to stderr ("on demand").
void journal_dump(std::string_view reason);

/// Install a std::terminate handler that dumps the journal to stderr
/// before chaining to the previous handler — the flight recorder's "on
/// fatal error" contract. Idempotent.
void install_fatal_dump();

// ---- heartbeats and beacons -----------------------------------------------

/// A dispatch loop's liveness signal. beat() every loop iteration; the
/// watchdog declares the loop stalled when the epoch stops moving for the
/// heartbeat's stall_after window. retire() when the loop exits cleanly
/// (a retired heartbeat is skipped, not reported stalled).
class Heartbeat {
 public:
  void beat() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  void retire() { active_.store(false, std::memory_order_relaxed); }
  bool active() const { return active_.load(std::memory_order_relaxed); }

 private:
  friend class HealthRegistry;
  // sync: relaxed liveness epoch + active flag; the watchdog tolerates
  // stale reads (a missed beat delays detection by one sample period).
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> active_{true};
  // Watchdog-owned sampling history, guarded by HealthRegistry::mu_.
  std::uint64_t seen_epoch = 0;
  std::int64_t changed_ns = 0;
  std::int64_t stall_after_ns = 0;
};

/// A wedge beacon: a structure that parks waiters with deadlines
/// publishes the deadline of its oldest parked waiter (steady-clock ns;
/// 0 = nothing parked). A published deadline that stays in the past means
/// waiters are wedged behind slots nobody releases — the watchdog reports
/// the layer stalled.
class Beacon {
 public:
  void set(std::int64_t deadline_ns) {
    v_.store(deadline_ns, std::memory_order_relaxed);
  }
  void clear() { v_.store(0, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  // sync: relaxed telemetry level, same contract as Heartbeat::epoch_.
  std::atomic<std::int64_t> v_{0};
};

// ---- the watchdog ---------------------------------------------------------

enum class HealthState : std::uint8_t { ok = 0, degraded = 1, stalled = 2 };

std::string_view to_string(HealthState s);

struct LayerHealth {
  std::string name;
  HealthState state = HealthState::ok;
  std::string evidence;  // empty when ok
};

/// One watchdog sample: every registered heartbeat/beacon plus every
/// depth/bound gauge pair and storm watch, worst state wins overall.
struct HealthReport {
  HealthState overall = HealthState::ok;
  std::int64_t ts_ns = 0;
  std::vector<LayerHealth> layers;

  const LayerHealth* find(std::string_view name) const;
  std::string to_string() const;
};

struct WatchdogConfig {
  std::chrono::nanoseconds period{std::chrono::milliseconds(250)};
  /// Grace added to a beacon's published deadline before calling it
  /// wedged (normal deadline handling sweeps waiters *at* the deadline;
  /// only a sweep that never runs leaves the beacon in the past).
  std::chrono::nanoseconds beacon_grace{std::chrono::milliseconds(100)};
  /// `<base>.depth` / `<base>.bound` utilization at/above this is
  /// degraded.
  double queue_utilization = 0.90;
  /// Watched-counter delta per sample at/above this is a storm.
  std::uint64_t storm_threshold = 256;
};

/// Process-wide health registry + watchdog. Layers register heartbeats
/// and beacons at start and beat/publish from their loops; the watchdog
/// (background thread or an explicit check_now()) classifies and reports.
class HealthRegistry {
 public:
  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  static HealthRegistry& instance();

  /// Fetch-or-create (re-activating a retired heartbeat of the same
  /// name). The reference is stable for the registry's lifetime — cache
  /// it, beat() per loop iteration.
  Heartbeat& heartbeat(
      std::string_view name,
      std::chrono::nanoseconds stall_after = std::chrono::seconds(1));

  Beacon& beacon(std::string_view name);

  /// Watch a counter's per-sample rate (busy storms, failover storms).
  /// Threshold 0 uses the config default.
  void watch_rate(std::string_view counter, std::string_view label,
                  std::uint64_t threshold = 0);

  /// Sample now: metrics snapshot first (unlocked), then classify under
  /// the kHealth lock. Journals per-layer state transitions. Works with
  /// or without the background watchdog (any two calls further apart
  /// than a heartbeat's stall_after detect its stall).
  HealthReport check_now();

  /// Most recent report (check_now or watchdog tick); empty before the
  /// first sample.
  HealthReport latest() const;

  /// Start/stop the background watchdog thread. Idempotent; also installs
  /// the fatal-dump terminate handler. The watchdog's default rate
  /// watches (lcm.busy_received, lcm.address_faults) are registered on
  /// first start.
  void start_watchdog(WatchdogConfig cfg = {});
  void stop_watchdog();
  bool watchdog_running() const;

 private:
  void watchdog_main(const std::stop_token& st);
  HealthReport classify(const metrics::Snapshot& snap, std::int64_t now_ns)
      REQUIRES(mu_);

  mutable ntcs::Mutex mu_{ntcs::lockrank::kHealth, "health.registry"};
  ntcs::CondVar cv_;  // watchdog pacing + stop wakeup
  std::map<std::string, std::unique_ptr<Heartbeat>, std::less<>> heartbeats_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Beacon>, std::less<>> beacons_
      GUARDED_BY(mu_);
  struct RateWatch {
    std::string label;
    std::uint64_t threshold = 0;  // 0 = config default
    std::uint64_t last = 0;
    bool primed = false;
  };
  std::map<std::string, RateWatch, std::less<>> rate_watches_ GUARDED_BY(mu_);
  std::map<std::string, HealthState, std::less<>> last_states_ GUARDED_BY(mu_);
  HealthReport latest_ GUARDED_BY(mu_);
  WatchdogConfig cfg_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  bool defaults_registered_ GUARDED_BY(mu_) = false;
  std::jthread watchdog_;
  // sync: running flag, relaxed — start/stop are externally serialised
  // (module lifecycle); readers only steer idempotence.
  std::atomic<bool> running_{false};
};

/// Process-wide shorthands (the instrumentation-site idiom, like
/// metrics::counter):
///   static health::Heartbeat& hb = health::heartbeat("pump.a");
///   hb.beat();
inline Heartbeat& heartbeat(
    std::string_view name,
    std::chrono::nanoseconds stall_after = std::chrono::seconds(1)) {
  return HealthRegistry::instance().heartbeat(name, stall_after);
}
inline Beacon& beacon(std::string_view name) {
  return HealthRegistry::instance().beacon(name);
}
inline HealthReport check_now() {
  return HealthRegistry::instance().check_now();
}

}  // namespace ntcs::health
