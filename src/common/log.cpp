#include "common/log.h"

#include <cinttypes>
#include <cstdio>

#include "common/trace.h"

namespace ntcs {

std::string_view log_level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

Log& Log::instance() {
  static Log log;
  return log;
}

void Log::set_default_level(LogLevel lvl) {
  ntcs::LockGuard lk(mu_);
  default_level_ = lvl;
}

void Log::set_layer_level(std::string_view layer, LogLevel lvl) {
  ntcs::LockGuard lk(mu_);
  for (auto& [name, level] : layer_levels_) {
    if (name == layer) {
      level = lvl;
      return;
    }
  }
  layer_levels_.emplace_back(std::string(layer), lvl);
}

LogLevel Log::level_for(std::string_view layer) const {
  ntcs::LockGuard lk(mu_);
  for (const auto& [name, level] : layer_levels_) {
    if (name == layer) return level;
  }
  return default_level_;
}

void Log::set_capture(bool on, std::size_t ring_capacity) {
  ntcs::LockGuard lk(mu_);
  capture_ = on;
  ring_capacity_ = ring_capacity;
  if (!on) ring_.clear();
}

std::vector<LogRecord> Log::captured() const {
  ntcs::LockGuard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

void Log::clear_captured() {
  ntcs::LockGuard lk(mu_);
  ring_.clear();
}

void Log::write(LogLevel lvl, std::string_view layer, std::string_view module,
                std::string_view text) {
  // Log/trace correlation (§6.2 selectivity, cross-referenced): a line
  // emitted while a trace context is installed carries that trace's hex ID,
  // so a harvested trace ID greps straight into the log and vice versa.
  char trace_id[33];
  trace_id[0] = '\0';
  const trace::TraceContext tctx = trace::current();
  if (tctx.valid()) {
    std::snprintf(trace_id, sizeof(trace_id), "%016" PRIx64 "%016" PRIx64,
                  tctx.hi, tctx.lo);
  }
  bool to_stderr = false;
  {
    ntcs::LockGuard lk(mu_);
    LogLevel eff = default_level_;
    for (const auto& [name, level] : layer_levels_) {
      if (name == layer) {
        eff = level;
        break;
      }
    }
    to_stderr = lvl >= eff && eff != LogLevel::off;
    if (capture_) {
      ring_.push_back(LogRecord{lvl, std::string(layer), std::string(module),
                                std::string(text), std::string(trace_id)});
      while (ring_.size() > ring_capacity_) ring_.pop_front();
    }
  }
  if (to_stderr) {
    if (trace_id[0] != '\0') {
      std::fprintf(stderr, "[%.*s] %.*s/%.*s {%s}: %.*s\n",
                   static_cast<int>(log_level_name(lvl).size()),
                   log_level_name(lvl).data(), static_cast<int>(layer.size()),
                   layer.data(), static_cast<int>(module.size()),
                   module.data(), trace_id, static_cast<int>(text.size()),
                   text.data());
    } else {
      std::fprintf(stderr, "[%.*s] %.*s/%.*s: %.*s\n",
                   static_cast<int>(log_level_name(lvl).size()),
                   log_level_name(lvl).data(), static_cast<int>(layer.size()),
                   layer.data(), static_cast<int>(module.size()),
                   module.data(), static_cast<int>(text.size()), text.data());
    }
  }
}

void LayerLog::emit(LogLevel lvl, std::string_view text) const {
  Log::instance().write(lvl, layer_, module_, text);
}

}  // namespace ntcs
