// log.h — selective, layer-tagged diagnostics.
//
// Paper §6.2: with recursion, "simple tracebacks are largely inadequate.
// One must also know *why* a layer is being called, and *who* is calling
// it. However, adequate *selectivity* in observing this information is
// equally important." Each log line therefore carries a layer tag and the
// module name, and verbosity is settable per layer tag.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated.h"

namespace ntcs {

enum class LogLevel : std::uint8_t { trace = 0, debug, info, warn, error, off };

std::string_view log_level_name(LogLevel lvl);

/// One captured log record (kept when capture mode is on, for tests).
struct LogRecord {
  LogLevel level;
  std::string layer;   // e.g. "nd", "ip", "lcm", "nsp", "ali", "simnet"
  std::string module;  // logical module name, e.g. "name-server"
  std::string text;
  /// Hex trace ID active on the emitting thread (log/trace correlation:
  /// grep a query_traces harvest's trace ID straight into the log). Empty
  /// when no trace context was installed.
  std::string trace_id;
};

/// Process-wide log sink. Thread-safe. Default level is `warn` so tests and
/// benches stay quiet; individual layers can be opened up selectively.
class Log {
 public:
  static Log& instance();

  void set_default_level(LogLevel lvl);
  void set_layer_level(std::string_view layer, LogLevel lvl);
  LogLevel level_for(std::string_view layer) const;

  /// When capturing, records are also kept in a bounded ring readable by
  /// tests (so assertions can be made about *what the system did*).
  void set_capture(bool on, std::size_t ring_capacity = 4096);
  std::vector<LogRecord> captured() const;
  void clear_captured();

  /// Emit to stderr (when >= effective level) and the capture ring.
  void write(LogLevel lvl, std::string_view layer, std::string_view module,
             std::string_view text);

  bool enabled(LogLevel lvl, std::string_view layer) const {
    return lvl >= level_for(layer);
  }

 private:
  Log() = default;

  // Near-leaf rank: layers log from under their state locks (e.g. the
  // ND-Layer warns about unknown channels while holding nd.state), so the
  // sink lock must order after every layer lock; only stderr I/O happens
  // beneath it (outside the lock).
  mutable ntcs::Mutex mu_{ntcs::lockrank::kLog, "common.log"};
  LogLevel default_level_ GUARDED_BY(mu_) = LogLevel::warn;
  std::vector<std::pair<std::string, LogLevel>> layer_levels_ GUARDED_BY(mu_);
  bool capture_ GUARDED_BY(mu_) = false;
  std::size_t ring_capacity_ GUARDED_BY(mu_) = 4096;
  // bound: ring_capacity_ — emit trims the front past it.
  std::deque<LogRecord> ring_ GUARDED_BY(mu_);
};

/// Convenience front-end bound to one (layer, module) pair; cheap to copy.
class LayerLog {
 public:
  LayerLog(std::string layer, std::string module)
      : layer_(std::move(layer)), module_(std::move(module)) {}

  void trace(std::string_view text) const { emit(LogLevel::trace, text); }
  void debug(std::string_view text) const { emit(LogLevel::debug, text); }
  void info(std::string_view text) const { emit(LogLevel::info, text); }
  void warn(std::string_view text) const { emit(LogLevel::warn, text); }
  void error(std::string_view text) const { emit(LogLevel::error, text); }

  const std::string& layer() const { return layer_; }
  const std::string& module() const { return module_; }

 private:
  void emit(LogLevel lvl, std::string_view text) const;

  std::string layer_;
  std::string module_;
};

}  // namespace ntcs
