// log.h — selective, layer-tagged diagnostics.
//
// Paper §6.2: with recursion, "simple tracebacks are largely inadequate.
// One must also know *why* a layer is being called, and *who* is calling
// it. However, adequate *selectivity* in observing this information is
// equally important." Each log line therefore carries a layer tag and the
// module name, and verbosity is settable per layer tag.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ntcs {

enum class LogLevel : std::uint8_t { trace = 0, debug, info, warn, error, off };

std::string_view log_level_name(LogLevel lvl);

/// One captured log record (kept when capture mode is on, for tests).
struct LogRecord {
  LogLevel level;
  std::string layer;   // e.g. "nd", "ip", "lcm", "nsp", "ali", "simnet"
  std::string module;  // logical module name, e.g. "name-server"
  std::string text;
};

/// Process-wide log sink. Thread-safe. Default level is `warn` so tests and
/// benches stay quiet; individual layers can be opened up selectively.
class Log {
 public:
  static Log& instance();

  void set_default_level(LogLevel lvl);
  void set_layer_level(std::string_view layer, LogLevel lvl);
  LogLevel level_for(std::string_view layer) const;

  /// When capturing, records are also kept in a bounded ring readable by
  /// tests (so assertions can be made about *what the system did*).
  void set_capture(bool on, std::size_t ring_capacity = 4096);
  std::vector<LogRecord> captured() const;
  void clear_captured();

  /// Emit to stderr (when >= effective level) and the capture ring.
  void write(LogLevel lvl, std::string_view layer, std::string_view module,
             std::string_view text);

  bool enabled(LogLevel lvl, std::string_view layer) const {
    return lvl >= level_for(layer);
  }

 private:
  Log() = default;

  mutable std::mutex mu_;
  LogLevel default_level_ = LogLevel::warn;
  std::vector<std::pair<std::string, LogLevel>> layer_levels_;
  bool capture_ = false;
  std::size_t ring_capacity_ = 4096;
  std::deque<LogRecord> ring_;
};

/// Convenience front-end bound to one (layer, module) pair; cheap to copy.
class LayerLog {
 public:
  LayerLog(std::string layer, std::string module)
      : layer_(std::move(layer)), module_(std::move(module)) {}

  void trace(std::string_view text) const { emit(LogLevel::trace, text); }
  void debug(std::string_view text) const { emit(LogLevel::debug, text); }
  void info(std::string_view text) const { emit(LogLevel::info, text); }
  void warn(std::string_view text) const { emit(LogLevel::warn, text); }
  void error(std::string_view text) const { emit(LogLevel::error, text); }

  const std::string& layer() const { return layer_; }
  const std::string& module() const { return module_; }

 private:
  void emit(LogLevel lvl, std::string_view text) const;

  std::string layer_;
  std::string module_;
};

}  // namespace ntcs
