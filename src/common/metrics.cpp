#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace ntcs::metrics {

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: call sites cache Counter&/Histogram& references
  // in function-local statics, and detached module threads may still be
  // bumping them during static destruction. An immortal registry makes the
  // cached references valid for the whole process lifetime.
  static MetricsRegistry* reg = new MetricsRegistry();
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  ntcs::LockGuard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  ntcs::LockGuard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  ntcs::LockGuard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  ntcs::LockGuard lk(mu_);
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.kind = MetricKind::counter;
    v.count = c->value();
    s.values.emplace(name, std::move(v));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.kind = MetricKind::gauge;
    v.gauge = g->value();
    v.gauge_peak = g->peak();
    s.values.emplace(name, std::move(v));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.kind = MetricKind::histogram;
    v.count = h->count();
    v.sum = h->sum();
    v.max = h->max();
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h->bucket(i) != 0) top = i + 1;
    }
    v.buckets.reserve(top);
    for (std::size_t i = 0; i < top; ++i) v.buckets.push_back(h->bucket(i));
    s.values.emplace(name, std::move(v));
  }
  return s;
}

const MetricValue* Snapshot::find(std::string_view name) const {
  auto it = values.find(name);
  return it == values.end() ? nullptr : &it->second;
}

std::uint64_t Snapshot::value(std::string_view name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->count;
}

std::int64_t Snapshot::gauge_value(std::string_view name) const {
  const MetricValue* v = find(name);
  return v == nullptr ? 0 : v->gauge;
}

Snapshot Snapshot::delta(const Snapshot& since) const {
  Snapshot out;
  for (const auto& [name, now] : values) {
    const MetricValue* old = since.find(name);
    MetricValue d = now;
    if (old != nullptr && old->kind == now.kind &&
        now.kind != MetricKind::gauge) {
      d.count -= std::min(old->count, now.count);
      d.sum -= std::min(old->sum, now.sum);
      for (std::size_t i = 0;
           i < d.buckets.size() && i < old->buckets.size(); ++i) {
        d.buckets[i] -= std::min(old->buckets[i], d.buckets[i]);
      }
    }
    out.values.emplace(name, std::move(d));
  }
  return out;
}

namespace {

/// Shared percentile estimator over power-of-two buckets: find the bucket
/// holding rank p*count, then interpolate linearly between its bounds
/// (bucket 0 is exactly zero; bucket i covers [2^(i-1), 2^i)). The
/// interpolation error is bounded by the bucket width — coarse at the
/// tail, but rank-exact at bucket granularity, which is what a
/// shift-counted histogram can honestly promise.
double percentile_from_buckets(const std::vector<std::uint64_t>& buckets,
                               double p) {
  std::uint64_t count = 0;
  for (std::uint64_t b : buckets) count += b;
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double c = static_cast<double>(buckets[i]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      if (i == 0) return 0.0;  // the all-zeros bucket
      const double lower = static_cast<double>(1ULL << (i - 1));
      const double upper =
          i >= 63 ? 2.0 * lower : static_cast<double>(1ULL << i);
      const double frac = target <= cum ? 0.0 : (target - cum) / c;
      return lower + frac * (upper - lower);
    }
    cum += c;
  }
  return 0.0;  // unreachable: cum reaches count
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

double Histogram::percentile(double p) const {
  std::vector<std::uint64_t> b(kHistogramBuckets);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) b[i] = bucket(i);
  return percentile_from_buckets(b, p);
}

double MetricValue::percentile(double p) const {
  return percentile_from_buckets(buckets, p);
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (v.kind != MetricKind::counter) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(v.count);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : values) {
    if (v.kind != MetricKind::gauge) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"value\": " + std::to_string(v.gauge) +
           ", \"peak\": " + std::to_string(v.gauge_peak) + "}";
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, v] : values) {
    if (v.kind != MetricKind::histogram) continue;
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    char pbuf[128];
    std::snprintf(pbuf, sizeof(pbuf),
                  ", \"p50_ns\": %.0f, \"p90_ns\": %.0f, \"p99_ns\": %.0f",
                  v.percentile(0.50), v.percentile(0.90), v.percentile(0.99));
    out += ": {\"count\": " + std::to_string(v.count) +
           ", \"sum_ns\": " + std::to_string(v.sum) + pbuf +
           ", \"max_ns\": " + std::to_string(v.max) + ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < v.buckets.size(); ++i) {
      if (v.buckets[i] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      // Bucket i covers [2^(i-1), 2^i); report the exclusive upper bound.
      const std::uint64_t upper =
          i >= 63 ? ~0ULL : (1ULL << i);
      out += "[" + std::to_string(upper) + ", " +
             std::to_string(v.buckets[i]) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}";
  return out;
}

namespace {

/// "lcm.request_rtt_ns" -> "ntcs_lcm_request_rtt_ns". Prometheus metric
/// names admit [a-zA-Z0-9_:]; everything else collapses to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "ntcs_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  char buf[160];
  for (const auto& [name, v] : values) {
    const std::string p = prom_name(name);
    switch (v.kind) {
      case MetricKind::counter:
        out += "# TYPE " + p + "_total counter\n";
        out += p + "_total " + std::to_string(v.count) + "\n";
        break;
      case MetricKind::gauge:
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + std::to_string(v.gauge) + "\n";
        out += "# TYPE " + p + "_peak gauge\n";
        out += p + "_peak " + std::to_string(v.gauge_peak) + "\n";
        break;
      case MetricKind::histogram: {
        out += "# TYPE " + p + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < v.buckets.size(); ++i) {
          if (v.buckets[i] == 0) continue;
          cum += v.buckets[i];
          // Bucket i covers [2^(i-1), 2^i); the exclusive upper bound is
          // the Prometheus `le` (close enough at power-of-two widths).
          const std::uint64_t upper = i >= 63 ? ~0ULL : (1ULL << i);
          std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%llu\"} %llu\n",
                        p.c_str(), static_cast<unsigned long long>(upper),
                        static_cast<unsigned long long>(cum));
          out += buf;
        }
        out += p + "_bucket{le=\"+Inf\"} " + std::to_string(v.count) + "\n";
        out += p + "_sum " + std::to_string(v.sum) + "\n";
        out += p + "_count " + std::to_string(v.count) + "\n";
        out += "# TYPE " + p + "_max gauge\n";
        out += p + "_max " + std::to_string(v.max) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace ntcs::metrics
