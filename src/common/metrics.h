// metrics.h — the process-wide per-layer metrics registry.
//
// The paper's project measured and projected system performance through the
// DRTS network monitor (§6.1, [Wang 85]), and §6.2 argues that a recursive
// system is only debuggable when one can observe *which layer* did *what*,
// with *selectivity*. This registry is that observation surface in counter
// form: every Nucleus/ComMod layer owns a handful of named counters and
// latency histograms, addressable as "layer.name" (lcm.sends,
// nd.open_retries, ip.hops_forwarded, nsp.cache_hits, convert.mode.image,
// ali.recv_wait_ns, ...), snapshotted locally or — through the DRTS
// MonitorServer — over the NTCS itself. The simulated substrate reports
// through the same surface: its fault-injection engine counts simnet.dup,
// simnet.reordered and simnet.flaps, so a chaos run can correlate injected
// faults with each layer's recovery work (nd.frames_deduped,
// ip.extend_transient_retries, lcm.fault_backoffs).
//
// Cost model: metrics are created lazily on first touch, so a metric that
// is never touched costs nothing and never appears in a snapshot. The
// intended call-site idiom resolves the registry lookup once per site and
// pays one relaxed atomic add per event thereafter:
//
//   static metrics::Counter& c = metrics::counter("lcm.sends");
//   c.inc();
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated.h"

namespace ntcs::metrics {

/// A monotonically increasing event counter. Relaxed ordering: counts are
/// observational, never used for synchronisation.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  // sync: relaxed monotonic counter; snapshot readers accept skew. Kept
  // raw (not ntcs::Atomic): counters fire inside every layer and would
  // turn each inc() into an explored schedule point.
  std::atomic<std::uint64_t> v_{0};
};

/// A settable level: queue depth, window occupancy, channel count, table
/// size. Unlike a Counter it moves both ways; like a Counter it is relaxed
/// and purely observational. A gauge additionally tracks its high watermark
/// (relaxed CAS) so "did the depth ever reach the bound" stays answerable
/// after the burst has drained — the live value alone cannot witness a
/// transient that the sampler missed.
///
/// Convention (the health plane keys on it): a live structure publishes a
/// `<base>.depth` gauge next to a `<base>.bound` gauge holding its
/// configured capacity, so utilization is computable by any consumer —
/// the watchdog, ntcs_top, or an external Prometheus scraper.
class Gauge {
 public:
  void set(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    bump_peak(v);
  }
  void add(std::int64_t n = 1) {
    bump_peak(v_.fetch_add(n, std::memory_order_relaxed) + n);
  }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void bump_peak(std::int64_t v) {
    std::int64_t p = peak_.load(std::memory_order_relaxed);
    while (v > p &&
           !peak_.compare_exchange_weak(p, v, std::memory_order_relaxed)) {
    }
  }
  // sync: relaxed level + high-watermark CAS, observational only; raw
  // (not ntcs::Atomic) so the explorer never parks in a gauge update.
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Fixed-bucket latency histogram: bucket i counts samples whose value in
/// nanoseconds satisfies 2^(i-1) <= v < 2^i (bucket 0 counts v == 0).
/// Power-of-two buckets keep record() branch-free and allocation-free: the
/// bucket index is the bit width of the sample.
inline constexpr std::size_t kHistogramBuckets = 64;

class Histogram {
 public:
  void record(std::uint64_t ns) {
    const std::size_t b = std::min<std::size_t>(
        static_cast<std::size_t>(std::bit_width(ns)), kHistogramBuckets - 1);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    // Exact maximum (relaxed CAS): interpolated p99 hides a single 5 s
    // outlier completely; the max is the only honest witness of the tail.
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (ns > m &&
           !max_.compare_exchange_weak(m, ns, std::memory_order_relaxed)) {
    }
  }
  void record(std::chrono::nanoseconds d) {
    record(d.count() < 0 ? 0 : static_cast<std::uint64_t>(d.count()));
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }

  /// Estimated p-quantile (p in [0,1]) by linear interpolation inside the
  /// power-of-two bucket holding the target rank. 0 when empty.
  double percentile(double p) const;

 private:
  // sync: relaxed telemetry accumulators, same contract as Counter::v_.
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};  // sync: relaxed CAS watermark, as above
};

/// Times a scope into a histogram (used for blocking waits: receive,
/// circuit open, request round trips).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(h), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { h_.record(std::chrono::steady_clock::now() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::chrono::steady_clock::time_point start_;
};

enum class MetricKind : std::uint8_t { counter = 0, histogram = 1, gauge = 2 };

/// One metric's value as captured by snapshot(). For counters `count` is
/// the counter value and the rest is unused; for histograms `count` is the
/// sample count, `sum` the summed nanoseconds, `max` the largest sample,
/// and `buckets` the per-bucket sample counts (trailing zero buckets
/// trimmed); for gauges `gauge` is the live level and `gauge_peak` its
/// high watermark.
struct MetricValue {
  MetricKind kind = MetricKind::counter;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::int64_t gauge = 0;
  std::int64_t gauge_peak = 0;
  std::vector<std::uint64_t> buckets;

  /// Histogram-only: same estimator as Histogram::percentile, computed
  /// from the captured buckets (works on snapshots and deltas alike).
  double percentile(double p) const;
};

/// A consistent point-in-time capture of every touched metric. "Consistent"
/// per metric (each load is atomic); the capture as a whole is not a global
/// barrier — exactly the semantics of the paper's monitor samples.
struct Snapshot {
  std::map<std::string, MetricValue, std::less<>> values;

  const MetricValue* find(std::string_view name) const;
  /// Counter value / histogram sample count, 0 when never touched.
  std::uint64_t value(std::string_view name) const;
  /// Gauge level, 0 when never touched (or not a gauge).
  std::int64_t gauge_value(std::string_view name) const;

  /// Per-name difference `this - since` (names missing from `since` keep
  /// their value; names only in `since` are dropped). Counter deltas
  /// subtract; histogram deltas subtract count, sum and buckets pairwise
  /// (max is kept from `this`: a maximum has no meaningful difference).
  /// Gauges are levels, not rates — they pass through unchanged.
  Snapshot delta(const Snapshot& since) const;

  /// Stable JSON rendering: {"counters": {...}, "gauges": {name: {"value":
  /// v, "peak": p}}, "histograms": {name: {"count": n, "sum_ns": s,
  /// "p50_ns": ..., "p90_ns": ..., "p99_ns": ..., "max_ns": m,
  /// "buckets": [[upper_bound_ns, count], ...]}}}.
  std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4) of the full registry for
  /// external scrapers: counters as `ntcs_<name>_total`, gauges as two
  /// gauges (`ntcs_<name>` and `ntcs_<name>_peak`), histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`/`_max`.
  /// Metric-name characters outside [a-zA-Z0-9_] become '_'.
  std::string to_prometheus() const;
};

/// The registry: name -> metric, created on first touch. Instantiable for
/// unit tests; production code uses the process-wide instance().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  /// Fetch-or-create. The returned reference is stable for the registry's
  /// lifetime, so call sites may cache it (the intended idiom).
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  Gauge& gauge(std::string_view name);

  Snapshot snapshot() const;

 private:
  // Leaf rank: instrumentation sites touch the registry from under any
  // layer lock (first-touch metric creation), so nothing may be acquired
  // beneath it. The returned Counter/Histogram references are lock-free.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mu_);
};

/// Process-wide shorthands for instrumentation sites.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline Histogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}

}  // namespace ntcs::metrics
