// queue.h — blocking multi-producer/multi-consumer queues.
//
// Every NTCS module owns queues at several points: the simnet inbox, the
// LCM-Layer application message queue, per-request reply slots, and the DRTS
// monitor feed. A single well-tested primitive serves them all.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/annotated.h"
#include "common/error.h"

namespace ntcs {

/// Blocking FIFO queue. push() never blocks (unbounded by default; a
/// capacity turns push into try-push). pop() blocks with an optional
/// deadline. close() wakes all waiters; subsequent pops drain remaining
/// items and then report Errc::closed.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue. Fails with no_resource when a capacity is set and reached,
  /// or with closed after close().
  Status push(T item) {
    {
      ntcs::LockGuard lk(mu_);
      if (closed_) return Status(Errc::closed, "queue closed");
      if (capacity_ != 0 && q_.size() >= capacity_) {
        return Status(Errc::no_resource, "queue full");
      }
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
    return Status::success();
  }

  /// Blocking dequeue; waits forever.
  Result<T> pop() {
    ntcs::UniqueLock lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    return pop_locked();
  }

  /// Dequeue with a relative timeout.
  Result<T> pop_for(std::chrono::nanoseconds timeout) {
    ntcs::UniqueLock lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return !q_.empty() || closed_; })) {
      return Error(Errc::timeout, "queue pop timed out");
    }
    return pop_locked();
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    ntcs::LockGuard lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  /// Close the queue; waiters wake, remaining items stay poppable.
  void close() {
    {
      ntcs::LockGuard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    ntcs::LockGuard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    ntcs::LockGuard lk(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  Result<T> pop_locked() REQUIRES(mu_) {
    if (!q_.empty()) {
      T item = std::move(q_.front());
      q_.pop_front();
      return item;
    }
    return Error(Errc::closed, "queue closed");
  }

  // Leaf rank: queues are pushed/popped from under no other lock, and
  // nothing is acquired while holding the queue lock.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kBlockingQueue, "common.queue"};
  ntcs::CondVar cv_;
  std::deque<T> q_ GUARDED_BY(mu_);
  std::size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ntcs
