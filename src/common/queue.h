// queue.h — blocking multi-producer/multi-consumer queues.
//
// Every NTCS module owns queues at several points: the simnet inbox, the
// LCM-Layer application message queue, per-request reply slots, and the DRTS
// monitor feed. A single well-tested primitive serves them all.
#pragma once

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <utility>

#include "common/annotated.h"
#include "common/error.h"
#include "common/metrics.h"

namespace ntcs {

/// Blocking FIFO queue. push() never blocks (unbounded by default; a
/// capacity turns push into try-push). pop() blocks with an optional
/// deadline. close() wakes all waiters; subsequent pops drain remaining
/// items and then report Errc::closed.
///
/// Priority classes (overload control): a `control_reserve` keeps the top
/// slots of a bounded queue for control-class items. push() — the normal
/// (data) class — rejects once `capacity - reserve` items are queued, while
/// push_control() may fill the queue to its true capacity. Data-plane
/// overload therefore cannot starve control traffic (NSP lookups, DRTS
/// harvests, replies) of queue admission.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity = 0,
                         std::size_t control_reserve = 0)
      : capacity_(capacity),
        control_reserve_(capacity == 0 ? 0
                                       : std::min(control_reserve,
                                                  capacity - 1)) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue at normal (data) class. Fails with no_resource when a
  /// capacity is set and the data-class share (capacity - control reserve)
  /// is reached, or with closed after close().
  Status push(T item) { return push_class(std::move(item), control_reserve_); }

  /// Enqueue at control class: may consume the reserved headroom, so it
  /// only fails once the queue is at true capacity (or closed).
  Status push_control(T item) { return push_class(std::move(item), 0); }

  /// Blocking dequeue; waits forever.
  Result<T> pop() {
    ntcs::UniqueLock lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    return pop_locked();
  }

  /// Dequeue with a relative timeout.
  Result<T> pop_for(std::chrono::nanoseconds timeout) {
    ntcs::UniqueLock lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return !q_.empty() || closed_; })) {
      return Error(Errc::timeout, "queue pop timed out");
    }
    return pop_locked();
  }

  /// Non-blocking dequeue.
  std::optional<T> try_pop() {
    ntcs::LockGuard lk(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    if (depth_gauge_ != nullptr) depth_gauge_->sub(1);
    return item;
  }

  /// Publish this queue's live depth (and its bound) into the metrics
  /// registry for the health plane. Delta-based (+1 per push, -1 per pop),
  /// so several queues may share one depth gauge and it reads as their
  /// aggregate (the simnet inbox idiom). The bound gauge, when given, is
  /// set to this queue's capacity once. Call during owner setup; the
  /// gauges must outlive the queue (registry gauges always do).
  void set_depth_gauge(metrics::Gauge* depth, metrics::Gauge* bound = nullptr) {
    ntcs::LockGuard lk(mu_);
    depth_gauge_ = depth;
    if (depth != nullptr && !q_.empty()) {
      depth->add(static_cast<std::int64_t>(q_.size()));
    }
    if (bound != nullptr) bound->set(static_cast<std::int64_t>(capacity_));
  }

  /// Close the queue; waiters wake, remaining items stay poppable.
  void close() {
    {
      ntcs::LockGuard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    ntcs::LockGuard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    ntcs::LockGuard lk(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  Status push_class(T item, std::size_t reserve) {
    {
      ntcs::LockGuard lk(mu_);
      if (closed_) return Status(Errc::closed, "queue closed");
      if (capacity_ != 0 && q_.size() + reserve >= capacity_) {
        return Status(Errc::no_resource, "queue full");
      }
      q_.push_back(std::move(item));
      if (depth_gauge_ != nullptr) depth_gauge_->add(1);
    }
    cv_.notify_one();
    return Status::success();
  }

  Result<T> pop_locked() REQUIRES(mu_) {
    if (!q_.empty()) {
      T item = std::move(q_.front());
      q_.pop_front();
      if (depth_gauge_ != nullptr) depth_gauge_->sub(1);
      return item;
    }
    return Error(Errc::closed, "queue closed");
  }

  // Leaf rank: queues are pushed/popped from under no other lock, and
  // nothing is acquired while holding the queue lock.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kBlockingQueue, "common.queue"};
  ntcs::CondVar cv_;
  std::deque<T> q_ GUARDED_BY(mu_);  // bound: capacity_ (0 = unbounded by owner's choice)
  metrics::Gauge* depth_gauge_ GUARDED_BY(mu_) = nullptr;
  std::size_t capacity_;
  std::size_t control_reserve_;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ntcs
