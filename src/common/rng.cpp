#include "common/rng.h"

namespace ntcs {

std::uint64_t seed_from(std::string_view tag, std::uint64_t salt) {
  std::uint64_t h = 0xCBF29CE484222325ULL ^ salt;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t Rng::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Modulo bias is negligible for the bounds used here (workload sizes).
  return next() % bound;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace ntcs
