// rng.h — deterministic random number generation.
//
// Loss injection, synthetic workloads and property-test sweeps must be
// reproducible run-to-run, so all randomness flows through explicitly
// seeded generators (never global state).
#pragma once

#include <cstdint>
#include <string_view>

namespace ntcs {

/// Deterministic 64-bit seed from a string tag (FNV-1a). Components that
/// need reproducible per-instance randomness (e.g. per-module retry jitter)
/// derive their seed from their own name instead of global state.
std::uint64_t seed_from(std::string_view tag, std::uint64_t salt = 0);

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic for
/// a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli with probability p.
  bool chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace ntcs
