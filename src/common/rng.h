// rng.h — deterministic random number generation.
//
// Loss injection, synthetic workloads and property-test sweeps must be
// reproducible run-to-run, so all randomness flows through explicitly
// seeded generators (never global state).
#pragma once

#include <cstdint>

namespace ntcs {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Deterministic for
/// a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli with probability p.
  bool chance(double p);

 private:
  std::uint64_t state_;
};

}  // namespace ntcs
