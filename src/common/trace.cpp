#include "common/trace.h"

#include <chrono>
#include <cstring>
#include <type_traits>

#include "common/metrics.h"
#include "common/rng.h"

namespace ntcs::trace {

namespace detail {
ntcs::Atomic<std::uint32_t> g_mode{static_cast<std::uint32_t>(SampleMode::off)};
}  // namespace detail

namespace {

// sync: sampling divisor, relaxed — paired with g_mode; a briefly stale N
// only shifts which spans get sampled.
std::atomic<std::uint32_t> g_sample_n{1};

thread_local TraceContext t_current;

// The process buffer, resolved once per call site file — the only
// SpanBuffer::instance() touch outside tests (lint-gated).
SpanBuffer& process_buffer() {
  static SpanBuffer& b = SpanBuffer::instance();
  return b;
}

}  // namespace

void set_sampling(SampleMode mode, std::uint32_t n) {
  g_sample_n.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  detail::g_mode.store(static_cast<std::uint32_t>(mode),
                       std::memory_order_relaxed);
}

SampleMode sampling_mode() {
  return static_cast<SampleMode>(
      detail::g_mode.load(std::memory_order_relaxed));
}

bool sample_this() {
  switch (sampling_mode()) {
    case SampleMode::off:
      return false;
    case SampleMode::always:
      return true;
    case SampleMode::one_in_n: {
      const std::uint32_t n = g_sample_n.load(std::memory_order_relaxed);
      if (n <= 1) return true;
      thread_local std::uint32_t tick = 0;
      return tick++ % n == 0;
    }
  }
  return false;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_id() {
  // Per-thread deterministic stream: no global state, reproducible stream
  // *structure* for a given thread-creation order (rng.h's contract).
  thread_local Rng rng = [] {
    // sync: thread-ordinal allocator, relaxed fetch_add is the whole
    // contract.
    static std::atomic<std::uint64_t> ordinal{0};
    return Rng(seed_from("trace.ids",
                         ordinal.fetch_add(1, std::memory_order_relaxed)));
  }();
  std::uint64_t v = 0;
  do {
    v = rng.next();
  } while (v == 0);
  return v;
}

TraceContext make_root() {
  TraceContext ctx;
  ctx.hi = next_id();
  ctx.lo = next_id();
  ctx.span = next_id();
  return ctx;
}

TraceContext current() { return t_current; }

ContextScope::ContextScope(const TraceContext& ctx) : prev_(t_current) {
  t_current = ctx;
}

ContextScope::~ContextScope() { t_current = prev_; }

// ---- the span buffer ------------------------------------------------------

namespace {

// The fixed-width marshalled form of one span. Must stay a multiple of 8
// bytes with no interior padding holes that memcpy would leave undefined
// (the char arrays absorb the tail after `flags`).
struct RawSpan {
  std::uint64_t trace_hi;
  std::uint64_t trace_lo;
  std::uint64_t span_id;
  std::uint64_t parent_id;
  std::int64_t start_ns;
  std::int64_t end_ns;
  std::uint32_t flags;
  char layer[12];
  char op[20];
  char node[20];
};

constexpr std::size_t kSlotWords = sizeof(RawSpan) / sizeof(std::uint64_t);
static_assert(sizeof(RawSpan) == 104, "no interior padding expected");
static_assert(sizeof(RawSpan) % sizeof(std::uint64_t) == 0);
static_assert(std::is_trivially_copyable_v<RawSpan>);

constexpr std::uint64_t kBusyStamp = ~0ULL;

void copy_bounded(char* dst, std::size_t cap, std::string_view s) {
  const std::size_t n = s.size() < cap ? s.size() : cap;
  std::memcpy(dst, s.data(), n);
  if (n < cap) std::memset(dst + n, 0, cap - n);
}

std::string read_bounded(const char* src, std::size_t cap) {
  std::size_t n = 0;
  while (n < cap && src[n] != '\0') ++n;
  return std::string(src, n);
}

}  // namespace

// One ring slot: a seqlock stamp plus the span payload as relaxed-atomic
// words, so a reader racing a wrap-around writer sees no data race (it
// detects the recycled stamp and skips the slot instead).
struct SpanBuffer::Slot {
  // Deliberately NOT ntcs::Atomic: the explorer must never park inside
  // the trace fast path, and the seqlock protocol is validated by its own
  // torn-read retry, not by happens-before edges.
  // sync: seqlock — stamp acq/rel brackets the relaxed word payload.
  std::atomic<std::uint64_t> stamp{0};  // 0 empty, kBusyStamp mid-write,
                                        // else writer's ticket + 1
  std::atomic<std::uint64_t> words[kSlotWords]{};  // sync: seqlock payload
};

SpanBuffer::SpanBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

SpanBuffer::~SpanBuffer() = default;

SpanBuffer& SpanBuffer::instance() {
  // Intentionally leaked, exactly like MetricsRegistry::instance():
  // detached module threads may record spans during static destruction.
  static SpanBuffer* buf = new SpanBuffer();
  return *buf;
}

void SpanBuffer::record(const TraceContext& ctx, std::uint64_t span_id,
                        std::uint64_t parent_id, std::int64_t start_ns,
                        std::int64_t end_ns, std::string_view layer,
                        std::string_view op, std::string_view node,
                        std::uint32_t flags) {
  RawSpan raw;
  raw.trace_hi = ctx.hi;
  raw.trace_lo = ctx.lo;
  raw.span_id = span_id;
  raw.parent_id = parent_id;
  raw.start_ns = start_ns;
  raw.end_ns = end_ns;
  raw.flags = flags;
  copy_bounded(raw.layer, sizeof(raw.layer), layer);
  copy_bounded(raw.op, sizeof(raw.op), op);
  copy_bounded(raw.node, sizeof(raw.node), node);
  std::uint64_t words[kSlotWords];
  std::memcpy(words, &raw, sizeof(raw));

  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  const std::uint64_t prev =
      slot.stamp.exchange(kBusyStamp, std::memory_order_acq_rel);
  if (prev != 0 && prev != kBusyStamp) {
    // Overwrote a span nobody drained: the ring wrapped.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static metrics::Counter& dropped = metrics::counter("trace.spans_dropped");
    dropped.inc();
  }
  for (std::size_t i = 0; i < kSlotWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.stamp.store(ticket + 1, std::memory_order_release);
}

std::vector<Span> SpanBuffer::snapshot() const {
  ntcs::LockGuard lk(mu_);
  const std::uint64_t hi = next_.load(std::memory_order_acquire);
  const std::uint64_t lo = hi > capacity_ ? hi - capacity_ : 0;
  std::vector<Span> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (std::uint64_t t = lo; t < hi; ++t) {
    const Slot& slot = slots_[t % capacity_];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 == 0 || s1 == kBusyStamp) continue;
    std::uint64_t words[kSlotWords];
    for (std::size_t i = 0; i < kSlotWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    // sync: seqlock read fence — orders the word loads before the stamp
    // re-check.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.stamp.load(std::memory_order_relaxed) != s1) continue;  // torn
    RawSpan raw;
    std::memcpy(&raw, words, sizeof(raw));
    if (raw.span_id == 0) continue;
    Span s;
    s.trace_hi = raw.trace_hi;
    s.trace_lo = raw.trace_lo;
    s.span_id = raw.span_id;
    s.parent_id = raw.parent_id;
    s.start_ns = raw.start_ns;
    s.end_ns = raw.end_ns;
    s.flags = raw.flags;
    s.layer = read_bounded(raw.layer, sizeof(raw.layer));
    s.op = read_bounded(raw.op, sizeof(raw.op));
    s.node = read_bounded(raw.node, sizeof(raw.node));
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Span> SpanBuffer::for_trace(std::uint64_t hi,
                                        std::uint64_t lo) const {
  std::vector<Span> out;
  for (auto& s : snapshot()) {
    if (s.trace_hi == hi && s.trace_lo == lo) out.push_back(std::move(s));
  }
  return out;
}

std::vector<Span> SpanBuffer::since(std::int64_t ns) const {
  std::vector<Span> out;
  for (auto& s : snapshot()) {
    if (s.start_ns >= ns) out.push_back(std::move(s));
  }
  return out;
}

void SpanBuffer::clear() {
  ntcs::LockGuard lk(mu_);
  // Tickets keep counting (stamps stay unique across clears); a zero stamp
  // marks the slot empty so overwriting it is not counted as a drop.
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].stamp.store(0, std::memory_order_release);
  }
}

// ---- instrumentation-site helpers ----------------------------------------

std::vector<Span> snapshot_spans() { return process_buffer().snapshot(); }

std::vector<Span> spans_for_trace(std::uint64_t hi, std::uint64_t lo) {
  return process_buffer().for_trace(hi, lo);
}

std::vector<Span> spans_since(std::int64_t ns) {
  return process_buffer().since(ns);
}

void clear_spans() { process_buffer().clear(); }

std::uint64_t spans_dropped() { return process_buffer().dropped(); }

std::uint64_t record_child(const TraceContext& ctx, std::string_view layer,
                           std::string_view op, std::string_view node,
                           std::int64_t start_ns, std::int64_t end_ns,
                           std::uint32_t flags) {
  const std::uint64_t id = next_id();
  process_buffer().record(ctx, id, ctx.valid() ? ctx.span : 0, start_ns,
                          end_ns, layer, op, node, flags);
  return id;
}

std::uint64_t record_event(const TraceContext& ctx, std::string_view layer,
                           std::string_view op, std::string_view node,
                           std::uint32_t flags) {
  const std::int64_t now = now_ns();
  return record_child(ctx, layer, op, node, now, now, flags);
}

RootSpan::RootSpan(std::string_view layer, std::string_view op,
                   std::string_view node)
    : layer_(layer), op_(op), node_(node) {
  if (!enabled()) return;
  if (t_current.valid()) return;  // nested ALI call joins the enclosing root
  if (!sample_this()) return;
  ctx_ = make_root();
  prev_ = t_current;
  t_current = ctx_;
  start_ns_ = now_ns();
}

RootSpan::~RootSpan() {
  if (!ctx_.valid()) return;
  t_current = prev_;
  process_buffer().record(ctx_, ctx_.span, 0, start_ns_, now_ns(), layer_,
                          op_, node_, 0);
}

ScopedSpan::ScopedSpan(std::string_view layer, std::string_view op,
                       std::string_view node, std::uint32_t flags)
    : flags_(flags), layer_(layer), op_(op), node_(node) {
  if (!enabled()) return;
  ctx_ = t_current;
  if (!ctx_.valid()) return;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!ctx_.valid()) return;
  record_child(ctx_, layer_, op_, node_, start_ns_, now_ns(), flags_);
}

}  // namespace ntcs::trace
