// trace.h — end-to-end distributed tracing for the NTCS (paper §6.1/§6.2).
//
// The paper's DRTS network monitor exists because a recursive, internetted
// system is only debuggable when one can see *which layer* on *which node*
// did *what* to a given message. The metrics registry (metrics.h) answers
// "how much"; this module answers "which one": a Dapper-style trace context
// rides the LCM wire header next to the correlation ID, every layer records
// spans into a per-process lock-free ring buffer, and the DRTS monitor
// harvests those buffers over the NTCS itself (monitor.h: query_traces).
//
// Span model: ALI entry points (send/request/request_async) open a *root*
// span and install its context in a thread-local. Because the whole send
// path is synchronous on the caller thread (ComMod -> LCM -> IP -> ND),
// downstream layers read the thread-local; receive-side layers (ND
// reassembly, IP relay) instead peek the context out of the frame they are
// forwarding. All spans are recorded flat as children of the root span
// carried on the wire, so merging per-node harvests needs no cross-node
// clock agreement beyond the simnet's shared steady_clock.
//
// Cost model: with sampling off (the default) every instrumentation site is
// one relaxed atomic load and a branch. When a root is sampled, recording a
// span is a ticket fetch_add plus ~13 relaxed word stores into a seqlock-
// stamped slot — no lock, no allocation. Only snapshot()/clear() take the
// buffer mutex (rank lockrank::kTraceBuffer, a leaf).
//
// Call-site idiom (mirrors the metrics static-ref rule, enforced by
// scripts/lint.sh): instrumentation sites use the free helpers below
// (record_child / ScopedSpan / RootSpan); `SpanBuffer::instance()` appears
// only inside trace.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotated.h"
#include "common/atomic.h"

namespace ntcs::trace {

/// The context that rides the wire: a 128-bit trace ID naming the whole
/// request tree plus the ID of the span that is the parent of whatever the
/// receiving site records. All-zero means "not traced".
struct TraceContext {
  std::uint64_t hi = 0;    ///< trace ID, high 64 bits
  std::uint64_t lo = 0;    ///< trace ID, low 64 bits
  std::uint64_t span = 0;  ///< parent span ID for children of this context

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

// ---- sampling -------------------------------------------------------------

enum class SampleMode : std::uint32_t {
  off = 0,     ///< no roots opened; instrumentation sites cost one branch
  always = 1,  ///< every ALI entry opens a root span
  one_in_n = 2 ///< every Nth ALI entry per thread opens a root span
};

namespace detail {
// 0 = off so the hot-path check compiles to one relaxed load + branch.
// ntcs::Atomic so the schedule explorer sees this gate as a schedule
// point: a scenario toggling sampling concurrently with traced sends is
// explorable, not invisible.
extern ntcs::Atomic<std::uint32_t> g_mode;
}  // namespace detail

void set_sampling(SampleMode mode, std::uint32_t n = 1);
SampleMode sampling_mode();

/// The one-branch gate every instrumentation site checks first.
inline bool enabled() {
  return detail::g_mode.load(std::memory_order_relaxed) != 0;
}

/// Sampling decision for a *new* root (already-propagated contexts are
/// always recorded). Deterministic per thread in one_in_n mode.
bool sample_this();

// ---- context plumbing -----------------------------------------------------

/// Monotonic steady_clock nanoseconds (the span timestamp base).
std::int64_t now_ns();

/// Fresh nonzero 64-bit ID from a per-thread SplitMix64 stream seeded via
/// Rng::seed_from("trace.ids", thread ordinal).
std::uint64_t next_id();

/// A fresh root context: new 128-bit trace ID, span = the root span's ID.
TraceContext make_root();

/// The context installed on this thread (all-zero when none).
TraceContext current();

/// Installs `ctx` as the thread's current context for the scope, restoring
/// the previous one on destruction. Used where a request's context must be
/// re-entered off the original call stack (LCM reply / await-retry paths).
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext prev_;
};

// ---- the span buffer ------------------------------------------------------

/// A completed span as read back out of the buffer.
struct Span {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t flags = 0;     ///< op-specific detail (frame count, attempt #)
  std::string layer;           ///< "ali", "lcm", "ip", "nd"
  std::string op;              ///< "request", "hop", "fragment", ...
  std::string node;            ///< module identity name that recorded it
};

/// Fixed-capacity overwrite-oldest span ring. Writers are lock-free: a
/// fetch_add ticket picks the slot and a per-slot seqlock stamp (0 = empty,
/// kBusy = being written, else ticket+1) lets readers detect torn or
/// recycled slots. Slot payloads are relaxed-atomic words so concurrent
/// writer/reader access is data-race-free under TSan; a reader that loses
/// the race simply skips the slot. Instantiable for unit tests; production
/// sites reach the process-wide buffer through the free helpers below.
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit SpanBuffer(std::size_t capacity = kDefaultCapacity);
  ~SpanBuffer();
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// The process-wide buffer. Intentionally leaked, like the metrics
  /// registry: spans may still be recorded during static destruction.
  static SpanBuffer& instance();

  /// Lock-free. Strings longer than the slot's fixed fields are truncated.
  void record(const TraceContext& ctx, std::uint64_t span_id,
              std::uint64_t parent_id, std::int64_t start_ns,
              std::int64_t end_ns, std::string_view layer, std::string_view op,
              std::string_view node, std::uint32_t flags = 0);

  /// Every readable span, oldest first. Takes the drain mutex.
  std::vector<Span> snapshot() const;
  /// Spans belonging to one trace ID.
  std::vector<Span> for_trace(std::uint64_t hi, std::uint64_t lo) const;
  /// Spans whose start is at or after `ns`.
  std::vector<Span> since(std::int64_t ns) const;
  /// Empties the ring (drops every recorded span). Takes the drain mutex.
  void clear();

  /// Spans lost to ring wrap since construction (also mirrored into the
  /// process-wide `trace.spans_dropped` counter).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct Slot;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  // sync: next_ is the seqlock ticket allocator (relaxed fetch_add to
  // claim, acquire load in snapshot to bound the scan); dropped_ is a
  // relaxed stat. Raw on purpose — the explorer must not park in the
  // span fast path.
  std::atomic<std::uint64_t> next_{0};     // sync: ticket allocator
  std::atomic<std::uint64_t> dropped_{0};  // sync: relaxed stat
  // Serialises drains only — record() never touches it (leaf rank; see
  // annotated.h).
  mutable ntcs::Mutex mu_{ntcs::lockrank::kTraceBuffer, "trace.buffer"};
};

// ---- instrumentation-site helpers ----------------------------------------
// These are the only way production code records spans (lint-gated): each
// writes into SpanBuffer::instance() through an internal static reference.

/// Process-buffer drains for harvest/report paths. These exist so the lint
/// gate can stay absolute: SpanBuffer::instance() appears only in
/// trace.cpp, never at call sites.
std::vector<Span> snapshot_spans();
std::vector<Span> spans_for_trace(std::uint64_t hi, std::uint64_t lo);
std::vector<Span> spans_since(std::int64_t ns);
void clear_spans();
std::uint64_t spans_dropped();

/// Records a completed child span of `ctx` with a fresh span ID into the
/// process buffer; returns the new span's ID. An invalid `ctx` records an
/// unparented zero-trace-ID event — used where the context is not
/// recoverable from the frame (ND dedup/resync drop the frame unseen).
std::uint64_t record_child(const TraceContext& ctx, std::string_view layer,
                           std::string_view op, std::string_view node,
                           std::int64_t start_ns, std::int64_t end_ns,
                           std::uint32_t flags = 0);

/// Records an instantaneous child event (start == end == now).
std::uint64_t record_event(const TraceContext& ctx, std::string_view layer,
                           std::string_view op, std::string_view node,
                           std::uint32_t flags = 0);

/// Opens a root span at ALI entry: if tracing is enabled, no context is
/// already installed (nested ALI calls join the enclosing root), and the
/// sampler picks this call, generates a fresh root context and installs it
/// for the scope. Records the root span on destruction.
class RootSpan {
 public:
  RootSpan(std::string_view layer, std::string_view op, std::string_view node);
  ~RootSpan();
  RootSpan(const RootSpan&) = delete;
  RootSpan& operator=(const RootSpan&) = delete;

  /// The installed context (invalid when this call was not sampled).
  const TraceContext& context() const { return ctx_; }

 private:
  TraceContext ctx_;  // valid only when this RootSpan opened a new root
  TraceContext prev_;
  std::int64_t start_ns_ = 0;
  std::string_view layer_;
  std::string_view op_;
  std::string_view node_;
};

/// Times a scope into a child span of the current thread-local context.
/// Inactive (zero-cost beyond one branch) when tracing is off or no
/// context is installed.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view layer, std::string_view op,
             std::string_view node, std::uint32_t flags = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext ctx_;
  std::int64_t start_ns_ = 0;
  std::uint32_t flags_;
  std::string_view layer_;
  std::string_view op_;
  std::string_view node_;
};

}  // namespace ntcs::trace
