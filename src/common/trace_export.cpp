#include "common/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

namespace ntcs::trace {

namespace {

using SpanKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

SpanKey key_of(const Span& s) {
  return {s.trace_hi, s.trace_lo, s.span_id};
}

void append_hex128(std::string& out, std::uint64_t hi, std::uint64_t lo) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, hi, lo);
  out += buf;
}

void append_hex64(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

std::vector<Span> merge_harvests(
    const std::vector<std::vector<Span>>& harvests) {
  std::map<SpanKey, Span> merged;
  for (const auto& h : harvests) {
    for (const auto& s : h) merged.emplace(key_of(s), s);
  }
  std::vector<Span> out;
  out.reserve(merged.size());
  for (auto& [k, s] : merged) out.push_back(std::move(s));
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::vector<Span> find_orphans(const std::vector<Span>& spans) {
  // Per-trace set of known span IDs.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::set<std::uint64_t>>
      ids;
  for (const auto& s : spans) {
    ids[{s.trace_hi, s.trace_lo}].insert(s.span_id);
  }
  std::vector<Span> orphans;
  for (const auto& s : spans) {
    if ((s.trace_hi | s.trace_lo) == 0) continue;  // context-free event
    if (s.parent_id == 0) continue;                // root
    const auto& known = ids[{s.trace_hi, s.trace_lo}];
    if (known.find(s.parent_id) == known.end()) orphans.push_back(s);
  }
  return orphans;
}

std::string to_chrome_json(const std::vector<Span>& spans) {
  // Stable node -> pid mapping, in order of first appearance.
  std::map<std::string, int> pids;
  std::vector<std::string> node_order;
  for (const auto& s : spans) {
    if (pids.emplace(s.node, 0).second) node_order.push_back(s.node);
  }
  int next_pid = 1;
  for (const auto& n : node_order) pids[n] = next_pid++;

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& n : node_order) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " +
           std::to_string(pids[n]) + ", \"args\": {\"name\": ";
    append_json_string(out, n);
    out += "}}";
  }
  for (const auto& s : spans) {
    if (!first) out += ",\n";
    first = false;
    char num[64];
    out += "  {\"ph\": \"X\", \"name\": ";
    append_json_string(out, s.op);
    out += ", \"cat\": ";
    append_json_string(out, s.layer);
    const double ts_us = static_cast<double>(s.start_ns) / 1000.0;
    const std::int64_t dur_ns = s.end_ns > s.start_ns ? s.end_ns - s.start_ns
                                                      : 0;
    const double dur_us = static_cast<double>(dur_ns) / 1000.0;
    std::snprintf(num, sizeof(num), ", \"ts\": %.3f, \"dur\": %.3f", ts_us,
                  dur_us);
    out += num;
    const int pid = pids[s.node];
    out += ", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(pid) + ", \"args\": {\"trace\": \"";
    append_hex128(out, s.trace_hi, s.trace_lo);
    out += "\", \"span\": \"";
    append_hex64(out, s.span_id);
    out += "\", \"parent\": \"";
    append_hex64(out, s.parent_id);
    out += "\", \"flags\": " + std::to_string(s.flags) + "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_json(const std::vector<Span>& spans,
                       const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json(spans);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ntcs::trace
