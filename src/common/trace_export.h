// trace_export.h — merging multi-node span harvests into a timeline.
//
// The paper's DRTS monitor gathers per-node observations over the NTCS
// itself (§6.1); query_traces (drts/monitor.h) is the span-flavoured
// version of that harvest. This module is the post-processing step: merge
// the per-node harvests, check causal completeness, and render the result
// as Chrome trace-event JSON (chrome://tracing / Perfetto "traceEvents"
// format) so an internetted request's gateway-by-gateway path reads as one
// timeline. All nodes in the simnet share one steady_clock, so merged
// timestamps are directly comparable with no skew correction.
#pragma once

#include <string>
#include <vector>

#include "common/trace.h"

namespace ntcs::trace {

/// Merges per-node harvests into one span list: deduplicates by
/// (trace_hi, trace_lo, span_id) — harvesting the same buffer twice, or a
/// node relaying its own traffic, must not double-count — and sorts by
/// start time.
std::vector<Span> merge_harvests(
    const std::vector<std::vector<Span>>& harvests);

/// Spans whose parent is missing from their own trace's span set. A
/// complete harvest of a delivered request yields none: every hop/deliver/
/// reply span parents on the root carried in the wire context. Spans with
/// a zero trace ID (context-free events such as ND dedup) are exempt.
std::vector<Span> find_orphans(const std::vector<Span>& spans);

/// Chrome trace-event JSON: one complete "X" event per span (timestamps in
/// microseconds), nodes mapped to process IDs with process_name metadata,
/// trace/span/parent IDs and flags in "args".
std::string to_chrome_json(const std::vector<Span>& spans);

/// to_chrome_json written to `path`; false on I/O failure.
bool write_chrome_json(const std::vector<Span>& spans,
                       const std::string& path);

}  // namespace ntcs::trace
