#include "convert/image.h"

#include <cstring>

namespace ntcs::convert {

namespace {

// Byte positions (most-significant byte first) of a 32-bit value in memory
// for each byte order. kLayout32[order][i] = which big-endian byte index
// lands at memory offset i.
constexpr int kLayout32[3][4] = {
    {3, 2, 1, 0},  // little: LSB first
    {0, 1, 2, 3},  // big: MSB first
    {1, 0, 3, 2},  // pdp_mid: little-endian 16-bit words, high word first
};

std::uint8_t be_byte32(std::uint32_t v, int idx) {
  return static_cast<std::uint8_t>((v >> (8 * (3 - idx))) & 0xFF);
}

}  // namespace

void ImageWriter::put_u8(std::uint8_t v) { out_.push_back(v); }

void ImageWriter::put_u16(std::uint16_t v) {
  const std::uint8_t hi = static_cast<std::uint8_t>(v >> 8);
  const std::uint8_t lo = static_cast<std::uint8_t>(v & 0xFF);
  // 16-bit quantities are little-endian on VAX and PDP-11, big-endian on
  // the MC680x0 machines.
  if (byte_order(arch_) == ByteOrder::big) {
    out_.push_back(hi);
    out_.push_back(lo);
  } else {
    out_.push_back(lo);
    out_.push_back(hi);
  }
}

void ImageWriter::put_u32(std::uint32_t v) {
  const auto& layout = kLayout32[static_cast<int>(byte_order(arch_))];
  for (int i = 0; i < 4; ++i) out_.push_back(be_byte32(v, layout[i]));
}

void ImageWriter::put_u64(std::uint64_t v) {
  // 64-bit values are represented as two 32-bit words, low word at the
  // lower address on little-endian machines, high word first otherwise.
  const std::uint32_t hi = static_cast<std::uint32_t>(v >> 32);
  const std::uint32_t lo = static_cast<std::uint32_t>(v & 0xFFFFFFFFULL);
  if (byte_order(arch_) == ByteOrder::little) {
    put_u32(lo);
    put_u32(hi);
  } else {
    put_u32(hi);
    put_u32(lo);
  }
}

void ImageWriter::put_f64(double v) {
  // Emulated machines store doubles as their 8-byte pattern subjected to
  // the same word ordering as u64 (a simplification: VAX F/G floats had
  // different formats; byte order is the observable property we model).
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void ImageWriter::put_chars(std::string_view s, std::size_t field_size) {
  // Characters are single bytes on every testbed machine; no reordering.
  const std::size_t n = s.size() < field_size ? s.size() : field_size;
  out_.insert(out_.end(), s.begin(), s.begin() + static_cast<long>(n));
  out_.insert(out_.end(), field_size - n, 0);
}

void ImageWriter::put_raw(ntcs::BytesView b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

ntcs::Result<ntcs::BytesView> ImageReader::take(std::size_t n) {
  if (in_.size() - off_ < n) {
    return ntcs::Error(ntcs::Errc::conversion_error, "image underrun");
  }
  ntcs::BytesView v = in_.subspan(off_, n);
  off_ += n;
  return v;
}

ntcs::Result<std::uint8_t> ImageReader::get_u8() {
  auto v = take(1);
  if (!v) return v.error();
  return v.value()[0];
}

ntcs::Result<std::uint16_t> ImageReader::get_u16() {
  auto v = take(2);
  if (!v) return v.error();
  const auto b = v.value();
  if (byte_order(arch_) == ByteOrder::big) {
    return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }
  return static_cast<std::uint16_t>((b[1] << 8) | b[0]);
}

ntcs::Result<std::uint32_t> ImageReader::get_u32() {
  auto v = take(4);
  if (!v) return v.error();
  const auto b = v.value();
  const auto& layout = kLayout32[static_cast<int>(byte_order(arch_))];
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(b[i]) << (8 * (3 - layout[i]));
  }
  return out;
}

ntcs::Result<std::uint64_t> ImageReader::get_u64() {
  auto first = get_u32();
  if (!first) return first.error();
  auto second = get_u32();
  if (!second) return second.error();
  if (byte_order(arch_) == ByteOrder::little) {
    return (static_cast<std::uint64_t>(second.value()) << 32) | first.value();
  }
  return (static_cast<std::uint64_t>(first.value()) << 32) | second.value();
}

ntcs::Result<std::int64_t> ImageReader::get_i64() {
  auto v = get_u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(v.value());
}

ntcs::Result<double> ImageReader::get_f64() {
  auto v = get_u64();
  if (!v) return v.error();
  double d = 0;
  const std::uint64_t bits = v.value();
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

ntcs::Result<std::string> ImageReader::get_chars(std::size_t field_size) {
  auto v = take(field_size);
  if (!v) return v.error();
  const auto b = v.value();
  std::size_t len = 0;
  while (len < field_size && b[len] != 0) ++len;
  return std::string(reinterpret_cast<const char*>(b.data()), len);
}

ntcs::Result<ntcs::Bytes> ImageReader::get_raw(std::size_t n) {
  auto v = take(n);
  if (!v) return v.error();
  return ntcs::Bytes(v.value().begin(), v.value().end());
}

}  // namespace ntcs::convert
