// image.h — NTCS "image mode" (paper §5.1) with emulated machine layouts.
//
// "In image mode, a byte-copy of the memory image is simply deposited at
// the destination."
//
// The original testbed ran on machines whose memory images genuinely
// differed (VAX little-endian vs Sun big-endian). This repository runs on a
// single real host, so the heterogeneity is *simulated*: ImageWriter lays
// out integers exactly as the given Arch would in memory, and ImageReader
// interprets bytes as the given Arch would. Byte-copying an image between
// incompatible Archs therefore really does corrupt multi-byte fields —
// which is what makes the NTCS's automatic image/packed mode choice (§5)
// observable and testable here.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"
#include "convert/machine.h"

namespace ntcs::convert {

/// Serialises values in the memory representation of `arch`.
class ImageWriter {
 public:
  explicit ImageWriter(Arch arch) : arch_(arch) {}

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  /// Fixed-size character array field (NUL-padded, like a C char[n]).
  void put_chars(std::string_view s, std::size_t field_size);
  void put_raw(ntcs::BytesView b);

  Arch arch() const { return arch_; }
  const ntcs::Bytes& data() const& { return out_; }
  ntcs::Bytes take() && { return std::move(out_); }

 private:
  ntcs::Bytes out_;
  Arch arch_;
};

/// Interprets bytes as the memory representation of `arch`.
class ImageReader {
 public:
  ImageReader(ntcs::BytesView in, Arch arch) : in_(in), arch_(arch) {}

  ntcs::Result<std::uint8_t> get_u8();
  ntcs::Result<std::uint16_t> get_u16();
  ntcs::Result<std::uint32_t> get_u32();
  ntcs::Result<std::uint64_t> get_u64();
  ntcs::Result<std::int64_t> get_i64();
  ntcs::Result<double> get_f64();
  ntcs::Result<std::string> get_chars(std::size_t field_size);
  ntcs::Result<ntcs::Bytes> get_raw(std::size_t n);

  Arch arch() const { return arch_; }
  std::size_t remaining() const { return in_.size() - off_; }

 private:
  ntcs::Result<ntcs::BytesView> take(std::size_t n);

  ntcs::BytesView in_;
  std::size_t off_ = 0;
  Arch arch_;
};

}  // namespace ntcs::convert
