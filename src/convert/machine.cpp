#include "convert/machine.h"

namespace ntcs::convert {

std::uint32_t arch_wire_id(Arch a) { return static_cast<std::uint32_t>(a); }

std::optional<Arch> arch_from_wire_id(std::uint32_t id) {
  if (id >= static_cast<std::uint32_t>(kArchCount)) return std::nullopt;
  return static_cast<Arch>(id);
}

std::string_view arch_name(Arch a) {
  switch (a) {
    case Arch::vax780: return "vax780";
    case Arch::microvax: return "microvax";
    case Arch::sun2: return "sun2";
    case Arch::sun3: return "sun3";
    case Arch::apollo_dn330: return "apollo_dn330";
    case Arch::pdp11_70: return "pdp11_70";
  }
  return "unknown";
}

ByteOrder byte_order(Arch a) {
  switch (a) {
    case Arch::vax780:
    case Arch::microvax:
      return ByteOrder::little;
    case Arch::sun2:
    case Arch::sun3:
    case Arch::apollo_dn330:
      return ByteOrder::big;
    case Arch::pdp11_70:
      return ByteOrder::pdp_mid;
  }
  return ByteOrder::big;
}

bool image_compatible(Arch src, Arch dst) {
  // All testbed machines use 8-bit bytes and ASCII; representation
  // compatibility reduces to integer byte order.
  return byte_order(src) == byte_order(dst);
}

}  // namespace ntcs::convert
