// machine.h — machine types for the heterogeneous environment (paper §5).
//
// "The byte ordering of long integers differs between the VAX and the Sun
// systems." The conversion layer decides between image and packed mode from
// the *source and destination machine types*, so machine identity must be
// carried with every open circuit.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ntcs::convert {

/// In-memory multi-byte integer layout of a machine family.
enum class ByteOrder : std::uint8_t {
  little,   // VAX: least-significant byte first
  big,      // Sun-2/3, Apollo (MC680x0): most-significant byte first
  pdp_mid,  // PDP-11 32-bit "middle-endian": little-endian 16-bit words,
            // most-significant word first
};

/// Machine families of the URSA era testbed (plus PDP-11 for a third
/// representation class).
enum class Arch : std::uint8_t {
  vax780 = 0,
  microvax,
  sun2,
  sun3,
  apollo_dn330,
  pdp11_70,
};

inline constexpr int kArchCount = 6;

/// Stable wire identifier for an Arch (carried in the channel-open
/// exchange and the shift-mode message header).
std::uint32_t arch_wire_id(Arch a);

/// Inverse of arch_wire_id. Empty on unknown ids.
std::optional<Arch> arch_from_wire_id(std::uint32_t id);

std::string_view arch_name(Arch a);

ByteOrder byte_order(Arch a);

/// True when a memory image written on `src` can be interpreted on `dst`
/// without conversion — the condition for image-mode transfer.
bool image_compatible(Arch src, Arch dst);

}  // namespace ntcs::convert
