#include "convert/mode.h"

namespace ntcs::convert {

std::string_view xfer_mode_name(XferMode m) {
  switch (m) {
    case XferMode::image: return "image";
    case XferMode::packed: return "packed";
    case XferMode::shift: return "shift";
  }
  return "unknown";
}

std::uint32_t xfer_mode_wire_id(XferMode m) {
  return static_cast<std::uint32_t>(m);
}

XferMode choose_mode(Arch src, Arch dst) {
  return image_compatible(src, dst) ? XferMode::image : XferMode::packed;
}

}  // namespace ntcs::convert
