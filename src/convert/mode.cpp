#include "convert/mode.h"

#include "common/metrics.h"

namespace ntcs::convert {

void note_mode(XferMode m) {
  switch (m) {
    case XferMode::image: {
      static metrics::Counter& c = metrics::counter("convert.mode.image");
      c.inc();
      return;
    }
    case XferMode::packed: {
      static metrics::Counter& c = metrics::counter("convert.mode.packed");
      c.inc();
      return;
    }
    case XferMode::shift: {
      static metrics::Counter& c = metrics::counter("convert.mode.shift");
      c.inc();
      return;
    }
  }
}

std::string_view xfer_mode_name(XferMode m) {
  switch (m) {
    case XferMode::image: return "image";
    case XferMode::packed: return "packed";
    case XferMode::shift: return "shift";
  }
  return "unknown";
}

std::uint32_t xfer_mode_wire_id(XferMode m) {
  return static_cast<std::uint32_t>(m);
}

XferMode choose_mode(Arch src, Arch dst) {
  const XferMode m =
      image_compatible(src, dst) ? XferMode::image : XferMode::packed;
  note_mode(m);
  return m;
}

}  // namespace ntcs::convert
