// mode.h — transfer-mode selection (paper §5).
//
// "Messages between identical machines are simply byte-copied (image mode)
// while those between incompatible machines are transmitted in a converted
// representation (packed mode). The NTCS determines the correct mode based
// on the source and destination machine types, thus avoiding needless
// conversions."
#pragma once

#include <cstdint>
#include <string_view>

#include "convert/machine.h"

namespace ntcs::convert {

/// How a message body travels on the wire.
enum class XferMode : std::uint8_t {
  image = 0,  // raw byte copy of the source memory image
  packed,     // application pack/unpack to a byte-stream transport format
  shift,      // canonical byte-shifted 4-byte integers (NTCS headers only)
};

std::string_view xfer_mode_name(XferMode m);

std::uint32_t xfer_mode_wire_id(XferMode m);

/// Decide image vs packed for an application payload between two machines.
/// Called at the *lowest* layer, where the destination machine type is
/// visible ("the decision to apply them is left to the lowest layers").
/// Every decision is counted under `convert.mode.<mode>` in the metrics
/// registry — the counters that *prove* "no needless conversions".
XferMode choose_mode(Arch src, Arch dst);

/// Count a transfer-mode use under `convert.mode.<mode>`. choose_mode calls
/// this itself; the LCM-Layer calls it for the forced-image path (payloads
/// with no pack routine) and the wire layer for every shift-mode header, so
/// the breakdown covers all three modes of §5.
void note_mode(XferMode m);

}  // namespace ntcs::convert
