#include "convert/packed.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ntcs::convert {

namespace {

void append_text(ntcs::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void Packer::put_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "i%" PRId64 ";", v);
  append_text(out_, buf);
}

void Packer::put_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "u%" PRIu64 ";", v);
  append_text(out_, buf);
}

void Packer::put_f64(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "f%.17g;", v);
  append_text(out_, buf);
}

void Packer::put_string(std::string_view s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "s%zu:", s.size());
  append_text(out_, buf);
  append_text(out_, s);
  out_.push_back(static_cast<std::uint8_t>(';'));
}

void Packer::put_bytes(ntcs::BytesView b) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "b%zu:", b.size());
  append_text(out_, buf);
  for (std::uint8_t byte : b) {
    out_.push_back(static_cast<std::uint8_t>(kHexDigits[byte >> 4]));
    out_.push_back(static_cast<std::uint8_t>(kHexDigits[byte & 0xF]));
  }
  out_.push_back(static_cast<std::uint8_t>(';'));
}

void Packer::put_bool(bool v) {
  append_text(out_, v ? "t1;" : "t0;");
}

ntcs::Result<std::string> Unpacker::take_field(char expect_tag) {
  if (off_ >= in_.size()) {
    return ntcs::Error(ntcs::Errc::conversion_error, "packed stream underrun");
  }
  const char tag = static_cast<char>(in_[off_]);
  if (tag != expect_tag) {
    return ntcs::Error(ntcs::Errc::conversion_error,
                       std::string("packed tag mismatch: expected '") +
                           expect_tag + "', got '" + tag + "'");
  }
  ++off_;
  if (tag == 's' || tag == 'b') {
    // length-prefixed: "<len>:<body>;"
    std::size_t len = 0;
    bool any = false;
    while (off_ < in_.size() && in_[off_] >= '0' && in_[off_] <= '9') {
      len = len * 10 + (in_[off_] - '0');
      ++off_;
      any = true;
    }
    if (!any || off_ >= in_.size() || in_[off_] != ':') {
      return ntcs::Error(ntcs::Errc::conversion_error, "bad length prefix");
    }
    ++off_;
    const std::size_t body = tag == 'b' ? len * 2 : len;
    if (in_.size() - off_ < body + 1) {
      return ntcs::Error(ntcs::Errc::conversion_error, "packed body underrun");
    }
    std::string s(reinterpret_cast<const char*>(in_.data() + off_), body);
    off_ += body;
    if (in_[off_] != ';') {
      return ntcs::Error(ntcs::Errc::conversion_error, "missing terminator");
    }
    ++off_;
    return s;
  }
  // numeric: characters up to ';'
  std::string s;
  while (off_ < in_.size() && in_[off_] != ';') {
    s.push_back(static_cast<char>(in_[off_]));
    ++off_;
  }
  if (off_ >= in_.size()) {
    return ntcs::Error(ntcs::Errc::conversion_error, "missing terminator");
  }
  ++off_;  // consume ';'
  return s;
}

ntcs::Result<std::int64_t> Unpacker::get_i64() {
  auto f = take_field('i');
  if (!f) return f.error();
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(f.value().c_str(), &end, 10);
  if (errno != 0 || end == f.value().c_str() || *end != '\0') {
    return ntcs::Error(ntcs::Errc::conversion_error, "bad i64 text");
  }
  return static_cast<std::int64_t>(v);
}

ntcs::Result<std::uint64_t> Unpacker::get_u64() {
  auto f = take_field('u');
  if (!f) return f.error();
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(f.value().c_str(), &end, 10);
  if (errno != 0 || end == f.value().c_str() || *end != '\0') {
    return ntcs::Error(ntcs::Errc::conversion_error, "bad u64 text");
  }
  return static_cast<std::uint64_t>(v);
}

ntcs::Result<double> Unpacker::get_f64() {
  auto f = take_field('f');
  if (!f) return f.error();
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(f.value().c_str(), &end);
  if (errno != 0 || end == f.value().c_str() || *end != '\0') {
    return ntcs::Error(ntcs::Errc::conversion_error, "bad f64 text");
  }
  return v;
}

ntcs::Result<std::string> Unpacker::get_string() {
  return take_field('s');
}

ntcs::Result<ntcs::Bytes> Unpacker::get_bytes() {
  auto f = take_field('b');
  if (!f) return f.error();
  const std::string& hex = f.value();
  ntcs::Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size() || (hex.size() % 2 == 0 && i < hex.size()); i += 2) {
    if (i + 1 >= hex.size()) break;
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return ntcs::Error(ntcs::Errc::conversion_error, "bad hex byte");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

ntcs::Result<bool> Unpacker::get_bool() {
  auto f = take_field('t');
  if (!f) return f.error();
  if (f.value() == "1") return true;
  if (f.value() == "0") return false;
  return ntcs::Error(ntcs::Errc::conversion_error, "bad bool text");
}

}  // namespace ntcs::convert
