// packed.h — NTCS "packed mode" (paper §5.1).
//
// "Each application module provides these conversion functions to
// pack/unpack its messages into/from a standard byte-stream transport
// format. ... A character representation transport format was chosen for
// the current implementation, purely for simplicity."
//
// As in the paper, values are converted to/from characters with
// representation-independent language constructs (the equivalents of
// sprintf/sscanf), so the stream means the same thing on every machine.
// Layout per field: a one-character type tag, a decimal rendering (with a
// length prefix for strings/bytes), then ';'.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"

namespace ntcs::convert {

/// Builds a packed-mode byte stream.
class Packer {
 public:
  void put_i64(std::int64_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_string(std::string_view s);
  void put_bytes(ntcs::BytesView b);
  void put_bool(bool v);

  const ntcs::Bytes& data() const& { return out_; }
  ntcs::Bytes take() && { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  ntcs::Bytes out_;
};

/// Consumes a packed-mode byte stream. Every getter validates the type tag
/// so a mismatched pack/unpack pair fails loudly with conversion_error.
class Unpacker {
 public:
  explicit Unpacker(ntcs::BytesView in) : in_(in) {}

  ntcs::Result<std::int64_t> get_i64();
  ntcs::Result<std::uint64_t> get_u64();
  ntcs::Result<double> get_f64();
  ntcs::Result<std::string> get_string();
  ntcs::Result<ntcs::Bytes> get_bytes();
  ntcs::Result<bool> get_bool();

  bool at_end() const { return off_ == in_.size(); }
  std::size_t offset() const { return off_; }

 private:
  ntcs::Result<std::string> take_field(char expect_tag);

  ntcs::BytesView in_;
  std::size_t off_ = 0;
};

}  // namespace ntcs::convert
