#include "convert/schema.h"

namespace ntcs::convert {

namespace {

std::size_t field_image_size(const FieldSpec& f) {
  switch (f.type) {
    case FieldType::u8: return 1;
    case FieldType::u16: return 2;
    case FieldType::u32: return 4;
    case FieldType::u64: return 8;
    case FieldType::i64: return 8;
    case FieldType::f64: return 8;
    case FieldType::chars: return f.size;
    case FieldType::string:
    case FieldType::bytes:
      return 0;  // variable; not image-compatible
  }
  return 0;
}

bool field_fixed(const FieldSpec& f) {
  return f.type != FieldType::string && f.type != FieldType::bytes;
}

Value default_value(const FieldSpec& f) {
  switch (f.type) {
    case FieldType::u8:
    case FieldType::u16:
    case FieldType::u32:
    case FieldType::u64:
      return std::uint64_t{0};
    case FieldType::i64:
      return std::int64_t{0};
    case FieldType::f64:
      return 0.0;
    case FieldType::chars:
    case FieldType::string:
      return std::string{};
    case FieldType::bytes:
      return ntcs::Bytes{};
  }
  return std::uint64_t{0};
}

ntcs::Error type_error(const FieldSpec& f, std::string_view wanted) {
  return ntcs::Error(ntcs::Errc::bad_argument,
                     "field '" + f.name + "' has type " +
                         std::string(field_type_name(f.type)) + ", not " +
                         std::string(wanted));
}

}  // namespace

std::string_view field_type_name(FieldType t) {
  switch (t) {
    case FieldType::u8: return "u8";
    case FieldType::u16: return "u16";
    case FieldType::u32: return "u32";
    case FieldType::u64: return "u64";
    case FieldType::i64: return "i64";
    case FieldType::f64: return "f64";
    case FieldType::chars: return "chars";
    case FieldType::string: return "string";
    case FieldType::bytes: return "bytes";
  }
  return "unknown";
}

Record::Record(const MessageSchema& schema) : schema_(&schema) {
  values_.reserve(schema.fields().size());
  for (const auto& f : schema.fields()) values_.push_back(default_value(f));
}

bool Record::operator==(const Record& other) const {
  return schema_ == other.schema_ && values_ == other.values_;
}

ntcs::Status Record::set_u64(std::string_view field, std::uint64_t v) {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Status(ntcs::Errc::not_found, std::string(field));
  const auto& spec = schema_->fields()[*idx];
  switch (spec.type) {
    case FieldType::u8:
    case FieldType::u16:
    case FieldType::u32:
    case FieldType::u64:
      values_[*idx] = v;
      return ntcs::Status::success();
    default:
      return ntcs::Status(type_error(spec, "unsigned"));
  }
}

ntcs::Status Record::set_i64(std::string_view field, std::int64_t v) {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Status(ntcs::Errc::not_found, std::string(field));
  const auto& spec = schema_->fields()[*idx];
  if (spec.type != FieldType::i64) return ntcs::Status(type_error(spec, "i64"));
  values_[*idx] = v;
  return ntcs::Status::success();
}

ntcs::Status Record::set_f64(std::string_view field, double v) {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Status(ntcs::Errc::not_found, std::string(field));
  const auto& spec = schema_->fields()[*idx];
  if (spec.type != FieldType::f64) return ntcs::Status(type_error(spec, "f64"));
  values_[*idx] = v;
  return ntcs::Status::success();
}

ntcs::Status Record::set_string(std::string_view field, std::string v) {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Status(ntcs::Errc::not_found, std::string(field));
  const auto& spec = schema_->fields()[*idx];
  if (spec.type == FieldType::chars) {
    if (v.size() > spec.size) {
      return ntcs::Status(ntcs::Errc::too_big,
                          "chars field '" + spec.name + "' overflow");
    }
    values_[*idx] = std::move(v);
    return ntcs::Status::success();
  }
  if (spec.type == FieldType::string) {
    values_[*idx] = std::move(v);
    return ntcs::Status::success();
  }
  return ntcs::Status(type_error(spec, "string"));
}

ntcs::Status Record::set_bytes(std::string_view field, ntcs::Bytes v) {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Status(ntcs::Errc::not_found, std::string(field));
  const auto& spec = schema_->fields()[*idx];
  if (spec.type != FieldType::bytes) {
    return ntcs::Status(type_error(spec, "bytes"));
  }
  values_[*idx] = std::move(v);
  return ntcs::Status::success();
}

ntcs::Result<std::uint64_t> Record::get_u64(std::string_view field) const {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Error(ntcs::Errc::not_found, std::string(field));
  if (const auto* p = std::get_if<std::uint64_t>(&values_[*idx])) return *p;
  return type_error(schema_->fields()[*idx], "unsigned");
}

ntcs::Result<std::int64_t> Record::get_i64(std::string_view field) const {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Error(ntcs::Errc::not_found, std::string(field));
  if (const auto* p = std::get_if<std::int64_t>(&values_[*idx])) return *p;
  return type_error(schema_->fields()[*idx], "i64");
}

ntcs::Result<double> Record::get_f64(std::string_view field) const {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Error(ntcs::Errc::not_found, std::string(field));
  if (const auto* p = std::get_if<double>(&values_[*idx])) return *p;
  return type_error(schema_->fields()[*idx], "f64");
}

ntcs::Result<std::string> Record::get_string(std::string_view field) const {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Error(ntcs::Errc::not_found, std::string(field));
  if (const auto* p = std::get_if<std::string>(&values_[*idx])) return *p;
  return type_error(schema_->fields()[*idx], "string");
}

ntcs::Result<ntcs::Bytes> Record::get_bytes(std::string_view field) const {
  auto idx = schema_->field_index(field);
  if (!idx) return ntcs::Error(ntcs::Errc::not_found, std::string(field));
  if (const auto* p = std::get_if<ntcs::Bytes>(&values_[*idx])) return *p;
  return type_error(schema_->fields()[*idx], "bytes");
}

MessageSchema::MessageSchema(std::string name, std::vector<FieldSpec> fields)
    : name_(std::move(name)), fields_(std::move(fields)) {
  fixed_size_ = true;
  image_size_ = 0;
  for (const auto& f : fields_) {
    if (!field_fixed(f)) fixed_size_ = false;
    image_size_ += field_image_size(f);
  }
}

std::optional<std::size_t> MessageSchema::field_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

ntcs::Result<ntcs::Bytes> MessageSchema::pack(const Record& r) const {
  if (&r.schema() != this) {
    return ntcs::Error(ntcs::Errc::bad_argument, "record/schema mismatch");
  }
  Packer p;
  p.put_string(name_);  // self-describing: message 'type' in the stream
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    const auto& v = r.values()[i];
    switch (f.type) {
      case FieldType::u8:
      case FieldType::u16:
      case FieldType::u32:
      case FieldType::u64:
        p.put_u64(std::get<std::uint64_t>(v));
        break;
      case FieldType::i64:
        p.put_i64(std::get<std::int64_t>(v));
        break;
      case FieldType::f64:
        p.put_f64(std::get<double>(v));
        break;
      case FieldType::chars:
      case FieldType::string:
        p.put_string(std::get<std::string>(v));
        break;
      case FieldType::bytes:
        p.put_bytes(std::get<ntcs::Bytes>(v));
        break;
    }
  }
  return std::move(p).take();
}

ntcs::Result<Record> MessageSchema::unpack(ntcs::BytesView in) const {
  Unpacker u(in);
  auto tag = u.get_string();
  if (!tag) return tag.error();
  if (tag.value() != name_) {
    return ntcs::Error(ntcs::Errc::conversion_error,
                       "message type mismatch: expected '" + name_ +
                           "', got '" + tag.value() + "'");
  }
  Record r(*this);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    switch (f.type) {
      case FieldType::u8:
      case FieldType::u16:
      case FieldType::u32:
      case FieldType::u64: {
        auto v = u.get_u64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::i64: {
        auto v = u.get_i64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::f64: {
        auto v = u.get_f64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::chars:
      case FieldType::string: {
        auto v = u.get_string();
        if (!v) return v.error();
        r.values_[i] = std::move(v.value());
        break;
      }
      case FieldType::bytes: {
        auto v = u.get_bytes();
        if (!v) return v.error();
        r.values_[i] = std::move(v.value());
        break;
      }
    }
  }
  return r;
}

ntcs::Result<ntcs::Bytes> MessageSchema::to_image(const Record& r,
                                                  Arch arch) const {
  if (&r.schema() != this) {
    return ntcs::Error(ntcs::Errc::bad_argument, "record/schema mismatch");
  }
  if (!fixed_size_) {
    return ntcs::Error(ntcs::Errc::unsupported,
                       "schema '" + name_ +
                           "' has variable-size fields; not a contiguous "
                           "struct (image mode requires one)");
  }
  ImageWriter w(arch);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    const auto& v = r.values()[i];
    switch (f.type) {
      case FieldType::u8:
        w.put_u8(static_cast<std::uint8_t>(std::get<std::uint64_t>(v)));
        break;
      case FieldType::u16:
        w.put_u16(static_cast<std::uint16_t>(std::get<std::uint64_t>(v)));
        break;
      case FieldType::u32:
        w.put_u32(static_cast<std::uint32_t>(std::get<std::uint64_t>(v)));
        break;
      case FieldType::u64:
        w.put_u64(std::get<std::uint64_t>(v));
        break;
      case FieldType::i64:
        w.put_i64(std::get<std::int64_t>(v));
        break;
      case FieldType::f64:
        w.put_f64(std::get<double>(v));
        break;
      case FieldType::chars:
        w.put_chars(std::get<std::string>(v), f.size);
        break;
      case FieldType::string:
      case FieldType::bytes:
        break;  // unreachable: fixed_size_ is false for these
    }
  }
  return std::move(w).take();
}

ntcs::Result<Record> MessageSchema::from_image(ntcs::BytesView in,
                                               Arch arch) const {
  if (!fixed_size_) {
    return ntcs::Error(ntcs::Errc::unsupported,
                       "schema '" + name_ + "' is not image-compatible");
  }
  if (in.size() != image_size_) {
    return ntcs::Error(ntcs::Errc::conversion_error,
                       "image size mismatch for '" + name_ + "'");
  }
  ImageReader rd(in, arch);
  Record r(*this);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const auto& f = fields_[i];
    switch (f.type) {
      case FieldType::u8: {
        auto v = rd.get_u8();
        if (!v) return v.error();
        r.values_[i] = static_cast<std::uint64_t>(v.value());
        break;
      }
      case FieldType::u16: {
        auto v = rd.get_u16();
        if (!v) return v.error();
        r.values_[i] = static_cast<std::uint64_t>(v.value());
        break;
      }
      case FieldType::u32: {
        auto v = rd.get_u32();
        if (!v) return v.error();
        r.values_[i] = static_cast<std::uint64_t>(v.value());
        break;
      }
      case FieldType::u64: {
        auto v = rd.get_u64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::i64: {
        auto v = rd.get_i64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::f64: {
        auto v = rd.get_f64();
        if (!v) return v.error();
        r.values_[i] = v.value();
        break;
      }
      case FieldType::chars: {
        auto v = rd.get_chars(f.size);
        if (!v) return v.error();
        r.values_[i] = std::move(v.value());
        break;
      }
      case FieldType::string:
      case FieldType::bytes:
        break;  // unreachable
    }
  }
  return r;
}

}  // namespace ntcs::convert
