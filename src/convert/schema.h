// schema.h — schema-driven automatic pack/unpack (paper §5.1).
//
// "One member of the URSA project implemented an automatic code generating
// mechanism which builds these pack/unpack routines directly from the
// message structure definitions."
//
// A MessageSchema is the runtime equivalent of that generator: declare the
// message structure once and get pack/unpack (packed mode) and
// image-serialise/deserialise (image mode, in any machine representation)
// for free — the two encodings an NTCS message body may travel in.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "convert/image.h"
#include "convert/machine.h"
#include "convert/packed.h"

namespace ntcs::convert {

enum class FieldType : std::uint8_t {
  u8,
  u16,
  u32,
  u64,
  i64,
  f64,
  chars,   // fixed-size char[n] — image-mode compatible
  string,  // variable length — packed mode only
  bytes,   // variable length — packed mode only
};

std::string_view field_type_name(FieldType t);

/// One field of a message structure.
struct FieldSpec {
  std::string name;
  FieldType type;
  std::size_t size = 0;  // for FieldType::chars: the char[n] width
};

/// A field value. Unsigned integer widths all travel as u64.
using Value = std::variant<std::uint64_t, std::int64_t, double, std::string,
                           ntcs::Bytes>;

class MessageSchema;

/// A message instance conforming to a schema. Values are stored in field
/// order; named setters/getters validate the field type against the schema.
class Record {
 public:
  explicit Record(const MessageSchema& schema);

  ntcs::Status set_u64(std::string_view field, std::uint64_t v);
  ntcs::Status set_i64(std::string_view field, std::int64_t v);
  ntcs::Status set_f64(std::string_view field, double v);
  ntcs::Status set_string(std::string_view field, std::string v);
  ntcs::Status set_bytes(std::string_view field, ntcs::Bytes v);

  ntcs::Result<std::uint64_t> get_u64(std::string_view field) const;
  ntcs::Result<std::int64_t> get_i64(std::string_view field) const;
  ntcs::Result<double> get_f64(std::string_view field) const;
  ntcs::Result<std::string> get_string(std::string_view field) const;
  ntcs::Result<ntcs::Bytes> get_bytes(std::string_view field) const;

  const MessageSchema& schema() const { return *schema_; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Record& other) const;

 private:
  friend class MessageSchema;

  const MessageSchema* schema_;
  std::vector<Value> values_;
};

/// The message structure definition plus its generated codecs.
class MessageSchema {
 public:
  MessageSchema(std::string name, std::vector<FieldSpec> fields);

  const std::string& name() const { return name_; }
  const std::vector<FieldSpec>& fields() const { return fields_; }
  std::optional<std::size_t> field_index(std::string_view name) const;

  /// True when every field has a fixed in-memory size, i.e. the message can
  /// be a contiguous C struct and thus travel in image mode.
  bool fixed_size() const { return fixed_size_; }

  /// Size of the memory image (only meaningful when fixed_size()).
  std::size_t image_size() const { return image_size_; }

  Record make_record() const { return Record(*this); }

  /// Packed mode: the generated pack routine.
  ntcs::Result<ntcs::Bytes> pack(const Record& r) const;
  /// Packed mode: the generated unpack routine.
  ntcs::Result<Record> unpack(ntcs::BytesView in) const;

  /// Image mode: lay the record out exactly as `arch` would in memory.
  ntcs::Result<ntcs::Bytes> to_image(const Record& r, Arch arch) const;
  /// Image mode: interpret bytes as `arch`'s memory layout of this struct.
  ntcs::Result<Record> from_image(ntcs::BytesView in, Arch arch) const;

 private:
  std::string name_;
  std::vector<FieldSpec> fields_;
  bool fixed_size_;
  std::size_t image_size_;
};

}  // namespace ntcs::convert
