#include "convert/shift.h"

namespace ntcs::convert {

void ShiftWriter::put_u32(std::uint32_t v) {
  out_.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  written_ += 4;
}

void ShiftWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
}

void ShiftWriter::put_i32(std::int32_t v) {
  put_u32(static_cast<std::uint32_t>(v));
}

void ShiftWriter::put_raw(ntcs::BytesView b) {
  out_.insert(out_.end(), b.begin(), b.end());
  written_ += b.size();
}

void ShiftWriter::put_raw(std::string_view s) {
  out_.insert(out_.end(), s.begin(), s.end());
  written_ += s.size();
}

ntcs::Result<ntcs::Bytes> ShiftReader::get_raw(std::size_t n) {
  if (in_.size() - off_ < n) {
    return ntcs::Error(ntcs::Errc::bad_message, "shift stream underrun");
  }
  ntcs::Bytes b(in_.begin() + static_cast<long>(off_),
                in_.begin() + static_cast<long>(off_ + n));
  off_ += n;
  return b;
}

ntcs::Result<std::string> ShiftReader::get_raw_string(std::size_t n) {
  if (in_.size() - off_ < n) {
    return ntcs::Error(ntcs::Errc::bad_message, "shift stream underrun");
  }
  std::string s(reinterpret_cast<const char*>(in_.data() + off_), n);
  off_ += n;
  return s;
}

ntcs::Result<std::uint32_t> ShiftReader::get_u32() {
  if (in_.size() - off_ < 4) {
    return ntcs::Error(ntcs::Errc::bad_message, "shift stream underrun");
  }
  std::uint32_t v = (static_cast<std::uint32_t>(in_[off_]) << 24) |
                    (static_cast<std::uint32_t>(in_[off_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(in_[off_ + 2]) << 8) |
                    static_cast<std::uint32_t>(in_[off_ + 3]);
  off_ += 4;
  return v;
}

ntcs::Result<std::uint64_t> ShiftReader::get_u64() {
  auto hi = get_u32();
  if (!hi) return hi.error();
  auto lo = get_u32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

ntcs::Result<std::int32_t> ShiftReader::get_i32() {
  auto v = get_u32();
  if (!v) return v.error();
  return static_cast<std::int32_t>(v.value());
}

std::uint32_t field_get(std::uint32_t word, unsigned shift, unsigned width) {
  const std::uint32_t mask =
      width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return (word >> shift) & mask;
}

std::uint32_t field_set(std::uint32_t word, unsigned shift, unsigned width,
                        std::uint32_t value) {
  const std::uint32_t mask =
      width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
  return (word & ~(mask << shift)) | ((value & mask) << shift);
}

}  // namespace ntcs::convert
