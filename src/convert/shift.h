// shift.h — NTCS "shift mode" (paper §5.2).
//
// "All message headers are built with structures of four byte integers,
// which can be bit field divided as required. ... Message header information
// is transferred by byte shifting each header integer sequentially into the
// final message, using standard high level shift and mask routines. ...
// Byte ordering problems are hidden by the high level shift/mask routines,
// and by transmitting the values as a byte stream."
//
// The canonical stream layout is most-significant byte first, produced and
// consumed purely with shifts — never with memcpy of a native integer — so
// it is identical on every machine representation.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"

namespace ntcs::convert {

/// Serialises 32-bit header words (and 64-bit values as two words) into a
/// canonical byte stream.
class ShiftWriter {
 public:
  /// Append to an existing buffer (headers are usually built in front of a
  /// payload already placed in `out`’s final message).
  explicit ShiftWriter(ntcs::Bytes& out) : out_(out) {}

  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);  // two header words, high first
  void put_i32(std::int32_t v);
  /// Raw byte run (length-prefixed string/blob fields inside a header;
  /// bytes need no conversion, §5.2 transmits them as a byte stream).
  void put_raw(ntcs::BytesView b);
  void put_raw(std::string_view s);

  std::size_t bytes_written() const { return written_; }

 private:
  ntcs::Bytes& out_;
  std::size_t written_ = 0;
};

/// Reads canonical header words back into native integers.
class ShiftReader {
 public:
  explicit ShiftReader(ntcs::BytesView in) : in_(in) {}

  ntcs::Result<std::uint32_t> get_u32();
  ntcs::Result<std::uint64_t> get_u64();
  ntcs::Result<std::int32_t> get_i32();
  ntcs::Result<ntcs::Bytes> get_raw(std::size_t n);
  ntcs::Result<std::string> get_raw_string(std::size_t n);

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return in_.size() - off_; }
  /// The unread tail of the buffer (the payload after a header).
  ntcs::BytesView rest() const { return in_.subspan(off_); }

 private:
  ntcs::BytesView in_;
  std::size_t off_ = 0;
};

/// Bit-field helpers for dividing a header word ("which can be bit field
/// divided as required"). `width` bits starting at bit `shift` (LSB = 0).
std::uint32_t field_get(std::uint32_t word, unsigned shift, unsigned width);
std::uint32_t field_set(std::uint32_t word, unsigned shift, unsigned width,
                        std::uint32_t value);

}  // namespace ntcs::convert
