#include "core/addr.h"

namespace ntcs::core {

std::string UAdd::to_string() const {
  if (!valid()) return "U#invalid";
  if (is_temporary()) {
    return "T#" + std::to_string(raw_ & ~kTempBit);
  }
  return "U#" + std::to_string(raw_);
}

}  // namespace ntcs::core
