// addr.h — the NTCS addressing levels (paper §2.3, §3.4).
//
// Three levels:
//   * logical names      — application-dependent strings (+ attributes),
//                          resolved by the naming service;
//   * UAdds              — flat, network- and location-independent unique
//                          addresses, assigned by the naming service. All
//                          communication primitives are based on these;
//   * physical addresses — network-dependent (TCP ports, MBX pathnames),
//                          carried *uninterpreted* everywhere except the
//                          ND-Layer.
//
// TAdds (§3.4) are temporary addresses, identical to UAdds "except they are
// only unique locally to the module that assigned them"; they bridge the
// bootstrap gap before the Name Server has assigned a real UAdd and are
// purged from all tables within the first two Name Server exchanges.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ntcs::core {

/// A unique address (or temporary address — see is_temporary()).
class UAdd {
 public:
  constexpr UAdd() = default;

  static constexpr UAdd permanent(std::uint64_t value) {
    return UAdd(value & ~kTempBit);
  }
  static constexpr UAdd temporary(std::uint64_t value) {
    return UAdd(value | kTempBit);
  }

  constexpr bool valid() const { return raw_ != 0; }
  constexpr bool is_temporary() const { return (raw_ & kTempBit) != 0; }
  constexpr std::uint64_t raw() const { return raw_; }
  static constexpr UAdd from_raw(std::uint64_t raw) { return UAdd(raw); }

  std::string to_string() const;

  friend constexpr bool operator==(UAdd a, UAdd b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(UAdd a, UAdd b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(UAdd a, UAdd b) { return a.raw_ < b.raw_; }

 private:
  explicit constexpr UAdd(std::uint64_t raw) : raw_(raw) {}

  static constexpr std::uint64_t kTempBit = 1ULL << 63;
  std::uint64_t raw_ = 0;
};

/// The Name Server's well-known UAdd (paper §3.4: well-known addresses are
/// "loaded into the ComMod address tables when each module is initialized").
inline constexpr UAdd kNameServerUAdd = UAdd::permanent(1);

/// Prime gateways get well-known UAdds in [2, 99]; the Name Server assigns
/// ordinary modules UAdds from 1000 upward.
inline constexpr std::uint64_t kFirstPrimeGatewayUAdd = 2;
inline constexpr std::uint64_t kFirstDynamicUAdd = 1000;

/// A network-dependent physical address, uninterpreted above the ND-Layer.
struct PhysAddr {
  std::string blob;

  bool valid() const { return !blob.empty(); }
  friend bool operator==(const PhysAddr&, const PhysAddr&) = default;
};

/// Logical network identifier (portable; only the ND-Layer ever maps it to
/// anything concrete).
using NetName = std::string;

/// What every module knows about one prime gateway before the naming
/// service is reachable (§3.4: gateway addresses "may be required to reach
/// the Name Server").
struct PrimeGatewayInfo {
  UAdd uadd;
  std::string name;
  std::vector<NetName> networks;
  std::vector<PhysAddr> phys;  // parallel to `networks`
};

/// A Name Server replica's location (§7: the naming service implementation
/// "will be replicated for failure resiliency").
struct NsReplicaInfo {
  PhysAddr phys;
  NetName net;
};

/// One shard of the sharded naming service: its primary's location plus an
/// optional warm standby that takes over when the primary dies. Shard 0's
/// primary is the classic well-known Name Server (UAdd 1); shard s > 0
/// answers at ns_shard_uadd(s).
struct NsShardInfo {
  PhysAddr primary_phys;
  NetName primary_net;
  PhysAddr standby_phys;  // invalid = shard runs without a standby
  NetName standby_net;
};

/// The well-known address table loaded into every ComMod at initialization.
struct WellKnownTable {
  PhysAddr name_server_phys;
  NetName name_server_net;
  std::vector<NsReplicaInfo> name_server_replicas;
  std::vector<PrimeGatewayInfo> prime_gateways;
  /// Sharded naming service (empty = classic single Name Server at UAdd 1).
  /// When present, entry 0 describes the same servers as name_server_phys /
  /// name_server_replicas — both views are kept filled so pre-shard code
  /// paths keep working.
  std::vector<NsShardInfo> shards;
};

/// Reserved UAdds the primary Name Server uses to address its replicas on
/// the replication link (never visible to applications).
inline constexpr std::uint64_t kReplicaLinkUAddBase = 100;

/// Name Server shards s >= 1 answer at well-known UAdd kNsShardUAddBase + s
/// (shard 0 is kNameServerUAdd itself, for compatibility with every
/// pre-shard table). The range is bounded so is_ns_shard_uadd stays a pure
/// range check.
inline constexpr std::uint64_t kNsShardUAddBase = 300;
inline constexpr std::uint64_t kMaxNsShards = 64;

constexpr UAdd ns_shard_uadd(std::size_t shard) {
  return shard == 0 ? kNameServerUAdd
                    : UAdd::permanent(kNsShardUAddBase + shard);
}

constexpr bool is_ns_shard_uadd(UAdd u) {
  return u == kNameServerUAdd ||
         (u.raw() > kNsShardUAddBase && u.raw() < kNsShardUAddBase +
                                                      kMaxNsShards);
}

/// Inverse of ns_shard_uadd (precondition: is_ns_shard_uadd(u)).
constexpr std::size_t ns_shard_of_uadd(UAdd u) {
  return u == kNameServerUAdd
             ? 0
             : static_cast<std::size_t>(u.raw() - kNsShardUAddBase);
}

}  // namespace ntcs::core

template <>
struct std::hash<ntcs::core::UAdd> {
  std::size_t operator()(ntcs::core::UAdd a) const noexcept {
    return std::hash<std::uint64_t>{}(a.raw());
  }
};
