#include "core/ali/commod.h"

#include "common/metrics.h"
#include "common/trace.h"

namespace ntcs::core {

ComMod::ComMod(LcmLayer& lcm, NspLayer& nsp,
               std::shared_ptr<Identity> identity)
    : lcm_(lcm), nsp_(nsp), identity_(std::move(identity)) {}

ntcs::Status ComMod::check_dst(UAdd dst, std::size_t size) const {
  if (!dst.valid()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "invalid destination UAdd");
  }
  if (size > kMaxAppMessage) {
    return ntcs::Status(ntcs::Errc::too_big,
                        "message exceeds ALI maximum (" +
                            std::to_string(kMaxAppMessage) + " bytes)");
  }
  return ntcs::Status::success();
}

ntcs::Result<UAdd> ComMod::register_self(const nsp::AttrMap& attrs) {
  if (identity_->name().empty()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "module has no logical name");
  }
  RegistrationInfo info;
  info.attrs = attrs;
  return nsp_.register_module(info);
}

ntcs::Result<UAdd> ComMod::locate(std::string_view name) {
  if (name.empty()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "empty logical name");
  }
  return nsp_.lookup(std::string(name));
}

ntcs::Result<std::vector<UAdd>> ComMod::locate_attrs(
    const nsp::AttrMap& attrs) {
  if (attrs.empty()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "empty attribute set");
  }
  return nsp_.lookup_attrs(attrs);
}

ntcs::Result<std::vector<ntcs::Result<UAdd>>> ComMod::locate_many(
    const std::vector<std::string>& names) {
  if (names.empty()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "empty name list");
  }
  for (const std::string& name : names) {
    if (name.empty()) {
      return ntcs::Error(ntcs::Errc::bad_argument, "empty logical name");
    }
  }
  return nsp_.lookup_many(names);
}

ntcs::Status ComMod::deregister() { return nsp_.deregister(identity_->uadd()); }

ntcs::Status ComMod::send(UAdd dst, ntcs::BytesView bytes) {
  if (auto st = check_dst(dst, bytes.size()); !st.ok()) return st;
  trace::RootSpan root("ali", "send", identity_->name());
  return lcm_.send(dst, Payload::raw(ntcs::Bytes(bytes.begin(), bytes.end())));
}

ntcs::Status ComMod::send(UAdd dst, const Payload& p) {
  if (auto st = check_dst(dst, p.image.size()); !st.ok()) return st;
  trace::RootSpan root("ali", "send", identity_->name());
  return lcm_.send(dst, p);
}

ntcs::Result<Reply> ComMod::request(UAdd dst, ntcs::BytesView bytes,
                                    std::chrono::nanoseconds timeout) {
  if (auto st = check_dst(dst, bytes.size()); !st.ok()) return st.error();
  SendOptions opts;
  opts.timeout = timeout;
  trace::RootSpan root("ali", "request", identity_->name());
  return lcm_.request(dst,
                      Payload::raw(ntcs::Bytes(bytes.begin(), bytes.end())),
                      opts);
}

ntcs::Result<Reply> ComMod::request(UAdd dst, const Payload& p,
                                    std::chrono::nanoseconds timeout) {
  if (auto st = check_dst(dst, p.image.size()); !st.ok()) return st.error();
  SendOptions opts;
  opts.timeout = timeout;
  trace::RootSpan root("ali", "request", identity_->name());
  return lcm_.request(dst, p, opts);
}

ntcs::Result<RequestTicket> ComMod::request_async(
    UAdd dst, ntcs::BytesView bytes, std::chrono::nanoseconds timeout) {
  if (auto st = check_dst(dst, bytes.size()); !st.ok()) return st.error();
  SendOptions opts;
  opts.timeout = timeout;
  // The root covers the *issue* leg only; the reply's arrival is traced by
  // the receive-side complete event (the ticket carries the context for
  // the await/retry path).
  trace::RootSpan root("ali", "request_async", identity_->name());
  return lcm_.request_async(
      dst, Payload::raw(ntcs::Bytes(bytes.begin(), bytes.end())), opts);
}

ntcs::Result<RequestTicket> ComMod::request_async(
    UAdd dst, const Payload& p, std::chrono::nanoseconds timeout) {
  if (auto st = check_dst(dst, p.image.size()); !st.ok()) return st.error();
  SendOptions opts;
  opts.timeout = timeout;
  trace::RootSpan root("ali", "request_async", identity_->name());
  return lcm_.request_async(dst, p, opts);
}

ntcs::Result<Reply> ComMod::await(const RequestTicket& t) {
  return lcm_.await(t);
}

ntcs::Result<Incoming> ComMod::receive(std::chrono::nanoseconds timeout) {
  // How long modules sit blocked at the ALI is the paper's headline latency
  // number (§7); the histogram shape tells polling from event-driven apart.
  static metrics::Histogram& m_wait = metrics::histogram("ali.recv_wait_ns");
  metrics::ScopedTimer timer(m_wait);
  return lcm_.receive(timeout);
}

ntcs::Status ComMod::reply(const ReplyCtx& ctx, ntcs::BytesView bytes) {
  if (bytes.size() > kMaxAppMessage) {
    return ntcs::Status(ntcs::Errc::too_big, "reply exceeds ALI maximum");
  }
  return lcm_.reply(ctx,
                    Payload::raw(ntcs::Bytes(bytes.begin(), bytes.end())));
}

ntcs::Status ComMod::reply(const ReplyCtx& ctx, const Payload& p) {
  if (p.image.size() > kMaxAppMessage) {
    return ntcs::Status(ntcs::Errc::too_big, "reply exceeds ALI maximum");
  }
  return lcm_.reply(ctx, p);
}

ntcs::Status ComMod::dgram(UAdd dst, ntcs::BytesView bytes) {
  if (auto st = check_dst(dst, bytes.size()); !st.ok()) return st;
  return lcm_.dgram(dst,
                    Payload::raw(ntcs::Bytes(bytes.begin(), bytes.end())));
}

ntcs::Result<Payload> ComMod::payload_for(const convert::Record& rec) const {
  const convert::MessageSchema& schema = rec.schema();
  Payload p;
  if (schema.fixed_size()) {
    // A contiguous struct: the image is this machine's memory layout and
    // the pack routine is schema-generated.
    auto image = schema.to_image(rec, identity_->arch());
    if (!image) return image.error();
    p.image = std::move(image.value());
    convert::Record copy = rec;
    p.pack = [schema_ptr = &schema, copy = std::move(copy)] {
      return schema_ptr->pack(copy);
    };
    return p;
  }
  // Variable-size messages are "not a contiguous block of memory" in the
  // paper's sense; they always travel packed, so the packed stream *is*
  // the image (characters are representation-free on every machine).
  auto packed = schema.pack(rec);
  if (!packed) return packed.error();
  p.image = std::move(packed.value());
  return p;
}

ntcs::Result<convert::Record> ComMod::decode_body(
    ntcs::BytesView payload, convert::XferMode mode, convert::Arch src_arch,
    const convert::MessageSchema& s) const {
  if (mode == convert::XferMode::packed || !s.fixed_size()) {
    return s.unpack(payload);
  }
  // Image mode: the sender's layout — chosen precisely because it is
  // compatible with ours.
  return s.from_image(payload, src_arch);
}

ntcs::Result<convert::Record> ComMod::decode(
    const Incoming& in, const convert::MessageSchema& s) const {
  return decode_body(in.payload, in.mode, in.src_arch, s);
}

ntcs::Result<convert::Record> ComMod::decode(
    const Reply& r, const convert::MessageSchema& s) const {
  return decode_body(r.payload, r.mode, r.src_arch, s);
}

ntcs::Status ComMod::ping_name_server() { return nsp_.ping(); }

}  // namespace ntcs::core
