// commod.h — the Application Level Interface / ComMod (paper §2.1, §2.4).
//
// "Each application process must bind with a passive communication module
// (ComMod), which is the only aspect of the NTCS visible to the
// application. To the application, the ComMod is the NTCS."
//
// The ALI-Layer "simply provides the application interface primitives from
// the Nucleus and NSP-Layer services, tailors the error returns, and
// performs parameter checking. It may be better described as a thin
// veneer." Three primitive classes (§1.3): basic communication (async
// send, sync send/receive/reply, datagrams), resource location
// (register/locate), and utilities (stats, ping, schema payload helpers).
//
// Concurrency (DESIGN.md §6): the ComMod is deliberately the one layer
// with no lock of its own — it holds no mutable shared state (identity
// updates are atomic swaps inside Identity). Every guarded table it
// touches lives in the LCM/NSP layers below, so ALI calls enter the lock
// hierarchy at lcm.state/nsp.state rank with nothing held above them.
#pragma once

#include <chrono>
#include <memory>
#include <string_view>

#include "common/bytes.h"
#include "common/error.h"
#include "convert/schema.h"
#include "core/lcm/lcm_layer.h"
#include "core/nsp/nsp_layer.h"

namespace ntcs::core {

/// Largest application message the ALI-Layer accepts.
inline constexpr std::size_t kMaxAppMessage = 1 << 20;

class ComMod {
 public:
  ComMod(LcmLayer& lcm, NspLayer& nsp, std::shared_ptr<Identity> identity);

  ComMod(const ComMod&) = delete;
  ComMod& operator=(const ComMod&) = delete;

  // ---- resource location primitives -------------------------------------
  /// Register this module with the naming service; returns its new UAdd.
  ntcs::Result<UAdd> register_self(const nsp::AttrMap& attrs = {});
  /// Logical name -> UAdd. "An application module need only obtain an
  /// address once; module relocation will then occur as required, during
  /// all communication, transparent at this interface."
  ntcs::Result<UAdd> locate(std::string_view name);
  /// Attribute-based location (all matches).
  ntcs::Result<std::vector<UAdd>> locate_attrs(const nsp::AttrMap& attrs);
  /// Batch location: all names resolved in one pipelined sweep over the
  /// Name Server circuit. Result i answers names[i].
  ntcs::Result<std::vector<ntcs::Result<UAdd>>> locate_many(
      const std::vector<std::string>& names);
  ntcs::Status deregister();

  // ---- basic communication primitives ------------------------------------
  /// Asynchronous send of representation-free bytes (image mode).
  ntcs::Status send(UAdd dst, ntcs::BytesView bytes);
  /// Asynchronous send with application pack/unpack (§5.1).
  ntcs::Status send(UAdd dst, const Payload& p);
  /// Synchronous send/receive/reply round trip. Under destination
  /// overload the call can fail fast with Errc::overloaded — either
  /// rejected locally (the queue-depth wait estimate already exceeds
  /// `timeout`, or the peer's busy signal is still in force) or shed
  /// remotely (the peer's inbound queue was full and it answered with a
  /// busy frame). overloaded is retriable: nothing was partially applied;
  /// back off and try again.
  ntcs::Result<Reply> request(UAdd dst, ntcs::BytesView bytes,
                              std::chrono::nanoseconds timeout =
                                  std::chrono::seconds(5));
  ntcs::Result<Reply> request(UAdd dst, const Payload& p,
                              std::chrono::nanoseconds timeout =
                                  std::chrono::seconds(5));
  /// Pipelined request issue: returns immediately with a ticket; up to the
  /// Nucleus' window depth of requests ride one circuit concurrently.
  /// Subject to the same admission control as request(): fails (here or at
  /// await()) with the retriable Errc::overloaded when the destination
  /// cannot serve the request within its deadline.
  ntcs::Result<RequestTicket> request_async(UAdd dst, ntcs::BytesView bytes,
                                            std::chrono::nanoseconds timeout =
                                                std::chrono::seconds(5));
  ntcs::Result<RequestTicket> request_async(UAdd dst, const Payload& p,
                                            std::chrono::nanoseconds timeout =
                                                std::chrono::seconds(5));
  /// Redeem a request_async ticket (once): blocks until the reply or the
  /// ticket's deadline.
  ntcs::Result<Reply> await(const RequestTicket& t);
  /// Blocking receive of the next message addressed to this module.
  ntcs::Result<Incoming> receive(std::chrono::nanoseconds timeout);
  ntcs::Status reply(const ReplyCtx& ctx, ntcs::BytesView bytes);
  ntcs::Status reply(const ReplyCtx& ctx, const Payload& p);
  /// Connectionless best-effort datagram.
  ntcs::Status dgram(UAdd dst, ntcs::BytesView bytes);

  // ---- schema helpers (the §5.1 "automatic code generator" in use) -------
  /// Build an outbound payload from a schema record: the memory image in
  /// this machine's representation plus the generated pack routine. The
  /// Nucleus picks image or packed per destination (§5).
  ntcs::Result<Payload> payload_for(const convert::Record& rec) const;
  ntcs::Result<convert::Record> decode(const Incoming& in,
                                       const convert::MessageSchema& s) const;
  ntcs::Result<convert::Record> decode(const Reply& r,
                                       const convert::MessageSchema& s) const;

  // ---- utilities -----------------------------------------------------------
  UAdd self() const { return identity_->uadd(); }
  const std::string& name() const { return identity_->name(); }
  convert::Arch arch() const { return identity_->arch(); }
  ntcs::Status ping_name_server();
  LcmLayer& lcm() { return lcm_; }
  NspLayer& nsp() { return nsp_; }

 private:
  ntcs::Status check_dst(UAdd dst, std::size_t size) const;
  ntcs::Result<convert::Record> decode_body(ntcs::BytesView payload,
                                            convert::XferMode mode,
                                            convert::Arch src_arch,
                                            const convert::MessageSchema& s)
      const;

  LcmLayer& lcm_;
  NspLayer& nsp_;
  std::shared_ptr<Identity> identity_;
};

}  // namespace ntcs::core
