// identity.h — a module's own addressing state, shared across its layers.
//
// Every module starts life with a self-assigned TAdd (paper §3.4: "Each
// module assigns itself one initially") and trades it for a real UAdd on
// its first registration with the Name Server. The ND-Layer reads this
// state during channel-open exchanges; the LCM-Layer stamps it into every
// message header; the ALI-Layer updates it after registration.
#pragma once

#include <atomic>
#include <string>

#include "common/annotated.h"
#include "convert/machine.h"
#include "core/addr.h"

namespace ntcs::core {

class Identity {
 public:
  Identity(std::string module_name, convert::Arch arch, NetName net)
      : name_(std::move(module_name)),
        arch_(arch),
        net_(std::move(net)),
        uadd_raw_(UAdd::temporary(next_tadd()).raw()) {}

  UAdd uadd() const { return UAdd::from_raw(uadd_raw_.load()); }
  void set_uadd(UAdd u) { uadd_raw_.store(u.raw()); }

  const std::string& name() const { return name_; }
  convert::Arch arch() const { return arch_; }
  const NetName& net() const { return net_; }

  PhysAddr phys() const {
    ntcs::LockGuard lk(mu_);
    return phys_;
  }
  void set_phys(PhysAddr p) {
    ntcs::LockGuard lk(mu_);
    phys_ = std::move(p);
  }

 private:
  // TAdds need only *local* uniqueness (§3.4); a process-wide counter keeps
  // distinct in-process modules distinguishable in logs as well.
  static std::uint64_t next_tadd() {
    // sync: process-wide allocator; fetch_add is the whole contract.
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1);
  }

  std::string name_;
  convert::Arch arch_;
  NetName net_;
  // sync: written once at checkin (0 before), read lock-free on every
  // send; readers treat 0 as "not checked in yet".
  std::atomic<std::uint64_t> uadd_raw_;
  // Leaf below the layer locks: phys() is read during sends with no other
  // lock held; set_phys comes from bind(), also lock-free above.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kIdentity, "core.identity"};
  PhysAddr phys_ GUARDED_BY(mu_);
};

}  // namespace ntcs::core
