#include "core/ip/gateway.h"

#include "common/health.h"
#include "common/metrics.h"

namespace ntcs::core {

namespace {
// Bound on the pending-EXTEND backlog. Establishment is the slow path (a
// worker round trip per job); 1024 queued opens is already far beyond any
// healthy burst, and past it an attacker-shaped storm must be refused, not
// buffered into process memory.
constexpr std::size_t kExtendBacklog = 1024;
}  // namespace

Gateway::Gateway(std::string name, std::vector<Attachment> attachments,
                 std::optional<UAdd> prime_uadd)
    : name_(std::move(name)),
      attachments_(std::move(attachments)),
      prime_uadd_(prime_uadd),
      jobs_(kExtendBacklog) {
  if (prime_uadd_) uadd_ = *prime_uadd_;
  // Health-plane pair: EXTEND backlog depth against its bound. All
  // gateways in a process share one aggregate depth gauge (delta-based),
  // which cannot overstate utilization against the per-queue bound.
  static metrics::Gauge& g_depth = metrics::gauge("gw.extend_backlog.depth");
  static metrics::Gauge& g_bound = metrics::gauge("gw.extend_backlog.bound");
  jobs_.set_depth_gauge(&g_depth, &g_bound);
}

Gateway::~Gateway() { stop(); }

ntcs::Status Gateway::start() {
  if (running_) return ntcs::Status::success();
  for (std::size_t i = 0; i < attachments_.size(); ++i) {
    const Attachment& a = attachments_[i];
    NodeConfig cfg;
    cfg.name = name_ + "." + a.net;  // one ComMod per network (Fig. 2-2)
    cfg.backend = a.backend;
    cfg.net = a.net;
    auto node = std::make_unique<Node>(cfg);
    if (prime_uadd_) node->identity().set_uadd(*prime_uadd_);
    if (auto st = node->start(); !st.ok()) return st;
    node->ip().set_gateway(this);
    nodes_.push_back(std::move(node));
  }
  worker_ = std::jthread([this](std::stop_token st) { worker_main(st); });
  running_ = true;
  return ntcs::Status::success();
}

ntcs::Status Gateway::register_with_ns(const WellKnownTable& wk) {
  if (nodes_.empty()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "gateway not started");
  }
  for (auto& node : nodes_) node->install_well_known(wk);
  RegistrationInfo info;
  info.attrs = {{"type", "gateway"}};
  info.name_override = name_;
  info.is_gateway = true;
  if (prime_uadd_) info.requested_uadd = prime_uadd_->raw();
  for (auto& node : nodes_) {
    info.gw_nets.push_back(node->config().net);
    info.gw_phys.push_back(node->phys());
  }
  // §4.1: gateways register "the same as any application module" — through
  // one of their own ComMods, over the Nucleus they themselves support.
  // Pick an attachment whose route to the Name Server does not lead back
  // through this very gateway (a circuit through oneself is never needed:
  // the attachment on the nearer network can always go directly).
  Node* via = nodes_[0].get();
  ResolvedDest ns_dest{kNameServerUAdd, wk.name_server_phys,
                       wk.name_server_net};
  for (auto& node : nodes_) {
    auto route = node->ip().compute_route(ns_dest);
    if (!route || route.value().empty()) continue;
    const std::string& first = route.value().front().phys;
    bool through_self = false;
    for (auto& other : nodes_) {
      if (other->phys().blob == first) {
        through_self = true;
        break;
      }
    }
    if (!through_self) {
      via = node.get();
      break;
    }
  }
  auto uadd = via->nsp().register_module(info);
  if (!uadd) return uadd.error();
  {
    ntcs::LockGuard lk(mu_);
    uadd_ = uadd.value();
  }
  // All attachments share the gateway's single identity.
  for (auto& node : nodes_) node->identity().set_uadd(uadd.value());
  return ntcs::Status::success();
}

void Gateway::stop() {
  if (!running_) return;
  running_ = false;
  jobs_.close();
  worker_.request_stop();
  if (worker_.joinable()) worker_.join();
  for (auto& node : nodes_) node->stop();
  health::heartbeat("gw." + name_).retire();
  health::journal_note(health::EventKind::transition, "gw", "stop");
}

GatewayRecord Gateway::record() const {
  GatewayRecord g;
  {
    ntcs::LockGuard lk(mu_);
    g.uadd = uadd_;
  }
  g.name = name_;
  for (const auto& node : nodes_) {
    g.nets.push_back(node->config().net);
    g.phys.push_back(node->phys());
  }
  return g;
}

PrimeGatewayInfo Gateway::prime_info() const {
  GatewayRecord g = record();
  PrimeGatewayInfo p;
  p.uadd = g.uadd;
  p.name = g.name;
  p.networks = g.nets;
  p.phys = g.phys;
  return p;
}

UAdd Gateway::uadd() const {
  ntcs::LockGuard lk(mu_);
  return uadd_;
}

void Gateway::on_extend(IpLayer* in, LvcId in_lvc, std::uint64_t ivc,
                        wire::ExtendBody body) {
  ExtendJob job;
  job.in = in;
  job.in_lvc = in_lvc;
  job.ivc = ivc;
  job.body = std::move(body);
  auto st = jobs_.push(std::move(job));  // worker picks it up; pump returns
  if (!st.ok() && st.code() == ntcs::Errc::no_resource) {
    // Backlog full: refuse the establishment instead of buffering without
    // bound. The originator sees a retriable overloaded extend-failure.
    // fail() only sends one frame on the inbound LVC — pump-safe.
    static metrics::Counter& m_shed = metrics::counter("gw.extend_shed");
    m_shed.inc();
    health::journal_note(health::EventKind::shed, "gw", "extend_shed",
                         kExtendBacklog);
    ExtendJob shed;  // fail() only reads the reply coordinates
    shed.in = in;
    shed.in_lvc = in_lvc;
    shed.ivc = ivc;
    fail(shed, ntcs::Errc::overloaded,
         "gateway '" + name_ + "' extend backlog full");
  }
}

void Gateway::worker_main(const std::stop_token& st) {
  using namespace std::chrono_literals;
  // The worker iterates at least every 250ms (pop timeout) when idle; a
  // single wedged establishment round trip must not read as a stall, so
  // the stall window is generous.
  health::Heartbeat& hb =
      health::heartbeat("gw." + name_, std::chrono::seconds(2));
  while (!st.stop_requested()) {
    hb.beat();
    auto job = jobs_.pop_for(250ms);
    if (!job) {
      if (job.code() == ntcs::Errc::timeout) continue;
      break;  // queue closed
    }
    process(job.value());
  }
}

void Gateway::fail(const ExtendJob& job, ntcs::Errc code,
                   const std::string& text) {
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.extends_failed;
  }
  (void)job.in->nd().send(
      job.in_lvc, wire::encode_ip_extend_fail(
                      job.ivc, static_cast<std::uint32_t>(code), text));
}

void Gateway::process(const ExtendJob& job) {
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.extends_handled;
  }
  if (job.body.route.empty()) {
    fail(job, ntcs::Errc::bad_message, "EXTEND with empty route at gateway");
    return;
  }
  const wire::RouteHop hop = job.body.route.front();
  // Pick the attachment on the route's next network.
  Node* out_node = nullptr;
  for (auto& node : nodes_) {
    if (node->config().net == hop.net) {
      out_node = node.get();
      break;
    }
  }
  if (out_node == nullptr) {
    fail(job, ntcs::Errc::no_route,
         "gateway '" + name_ + "' has no attachment on " + hop.net);
    return;
  }
  auto out_lvc = out_node->nd().open(PhysAddr{hop.phys});
  if (!out_lvc) {
    fail(job, out_lvc.error().code(), out_lvc.error().what());
    return;
  }
  IvcHandle out_h{out_lvc.value(), job.ivc};
  auto waiter = out_node->ip().register_extend_waiter(out_h);
  wire::ExtendBody onward;
  onward.final_uadd = job.body.final_uadd;
  onward.route.assign(job.body.route.begin() + 1, job.body.route.end());
  auto sent = out_node->nd().send(out_h.lvc,
                                  wire::encode_ip_extend(job.ivc, onward));
  ntcs::Status outcome = ntcs::Status::success();
  if (!sent.ok()) {
    outcome = sent;
  } else {
    ntcs::UniqueLock wl(waiter->mu);
    if (!waiter->cv.wait_for(wl, std::chrono::seconds(8),
                             [&] { return waiter->result.has_value(); })) {
      outcome = ntcs::Status(ntcs::Errc::timeout, "onward EXTEND timed out");
    } else {
      outcome = *waiter->result;
    }
  }
  out_node->ip().unregister_extend_waiter(out_h);
  if (!outcome.ok()) {
    fail(job, outcome.error().code(), outcome.error().what());
    return;
  }
  // Splice: both directions of the chain relay through us from now on.
  const IvcHandle in_h{job.in_lvc, job.ivc};
  job.in->add_relay(in_h, &out_node->ip(), out_h);
  out_node->ip().add_relay(out_h, job.in, in_h);
  (void)job.in->nd().send(job.in_lvc, wire::encode_ip_extend_ok(job.ivc));
}

Gateway::Stats Gateway::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

}  // namespace ntcs::core
