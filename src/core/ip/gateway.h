// gateway.h — the Gateway module (paper §4).
//
// "The ability for each Gateway module to communicate with different
// networks is handled by the independent ComMods with which it binds. Each
// ComMod is bound with an ND-Layer designed for one of the networks. Thus,
// no network-dependent issues are visible within the Gateway."
//
// A Gateway owns one full Node per attached network and splices IVCs
// across them. Circuit establishment is autonomous per hop: an EXTEND
// arriving on one attachment is handed (by the pump, non-blocking) to the
// gateway worker, which opens the next LVC on the attachment named by the
// route's front hop, forwards the EXTEND, waits for the onward EXTEND_OK,
// installs the relay mapping in both attachments' IP-Layers, and answers
// backward. Data then relays on the pump's fast path with no gateway
// involvement. "No inter-gateway communication ever takes place" beyond
// the circuits themselves (§4.2).
//
// Gateways are also ordinary naming-service clients (§4.1): they register
// their name and connected networks "the same as any application module".
// Prime gateways additionally carry a well-known UAdd so they can be used
// before — or without — the Name Server.
#pragma once

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotated.h"
#include "common/queue.h"
#include "core/node.h"

namespace ntcs::core {

class Gateway : public GatewayHook {
 public:
  struct Attachment {
    /// Backend the attachment's Node binds through ("each ComMod is
    /// bound with an ND-Layer designed for one of the networks" — the
    /// backends of one gateway may even be different substrates, which
    /// is how a simnet network gateways to a real-TCP one).
    std::shared_ptr<IpcsBackend> backend;
    NetName net;
  };

  Gateway(std::string name, std::vector<Attachment> attachments,
          std::optional<UAdd> prime_uadd = std::nullopt);
  ~Gateway() override;

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Bind and start all attachment nodes and the extend worker. After this
  /// the gateway can relay, and record() describes it.
  ntcs::Status start();

  /// Register with the naming service (installs the well-known table into
  /// every attachment first). Prime gateways request their fixed UAdd.
  ntcs::Status register_with_ns(const WellKnownTable& wk);

  void stop();

  /// This gateway's registry entry (valid after start()).
  GatewayRecord record() const;
  /// Description for a WellKnownTable (prime gateways, §3.4).
  PrimeGatewayInfo prime_info() const;

  UAdd uadd() const;
  const std::string& name() const { return name_; }
  std::size_t attachment_count() const { return nodes_.size(); }
  Node& attachment(std::size_t i) { return *nodes_.at(i); }

  // GatewayHook — called on an attachment's pump thread; must not block.
  void on_extend(IpLayer* in, LvcId in_lvc, std::uint64_t ivc,
                 wire::ExtendBody body) override;

  struct Stats {
    std::uint64_t extends_handled = 0;
    std::uint64_t extends_failed = 0;
  };
  Stats stats() const;

 private:
  struct ExtendJob {
    IpLayer* in = nullptr;
    LvcId in_lvc = 0;
    std::uint64_t ivc = 0;
    wire::ExtendBody body;
  };

  void worker_main(const std::stop_token& st);
  void process(const ExtendJob& job);
  void fail(const ExtendJob& job, ntcs::Errc code, const std::string& text);

  std::string name_;
  std::vector<Attachment> attachments_;
  std::optional<UAdd> prime_uadd_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // bound: kExtendBacklog (gateway.cpp) — an overflowing EXTEND is failed
  // back to its originator with overloaded, never silently queued forever.
  ntcs::BlockingQueue<ExtendJob> jobs_;
  std::jthread worker_;
  // gateway.state: leaf-scoped (uadd/stats snapshots only), but ranked
  // near the top because it sits beside the DRTS module locks.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kGatewayState, "gateway.state"};
  UAdd uadd_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  bool running_ GUARDED_BY(mu_) = false;
};

}  // namespace ntcs::core
