#include "core/ip/ip_layer.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "common/metrics.h"
#include "common/trace.h"

namespace ntcs::core {

IpLayer::IpLayer(NdLayer& nd, std::shared_ptr<Identity> identity,
                 NetName local_net, IpConfig cfg)
    : nd_(nd),
      identity_(std::move(identity)),
      local_net_(std::move(local_net)),
      cfg_(cfg),
      log_("ip", identity_->name()),
      rng_(ntcs::seed_from(identity_->name(), 0x49504C59ULL /* "IPLY" */)) {
  relay_fair_rate_.store(cfg_.relay_fair_rate, std::memory_order_relaxed);
}

namespace {

/// Spend one token from a relayed circuit's bucket, refilling it first
/// from wall-clock progress. Pure atomics (pump fast path). The burst cap
/// (rate/10, floor 32) bounds both how far a bucket can save up and how
/// deep into debt racing spenders can briefly drive it.
bool relay_admit(IpLayer::RelayMeter& m, std::uint64_t rate,
                 std::int64_t now_ns) {
  const auto burst = static_cast<std::int64_t>(
      std::max<std::uint64_t>(rate / 10, 32));
  std::int64_t last = m.last_refill_ns.load(std::memory_order_relaxed);
  if (last == 0) {
    // First frame on this circuit: prime a full bucket.
    if (m.last_refill_ns.compare_exchange_strong(last, now_ns,
                                                 std::memory_order_relaxed)) {
      m.tokens.store(burst, std::memory_order_relaxed);
    }
  } else if (now_ns > last) {
    // Gap clamped to 1s: anything longer refills to the burst cap anyway,
    // and the clamp keeps the multiplication overflow-proof.
    const auto gap = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(now_ns - last), 1000000000u);
    const auto add = static_cast<std::int64_t>(gap * rate / 1000000000u);
    if (add > 0 &&
        m.last_refill_ns.compare_exchange_strong(last, now_ns,
                                                 std::memory_order_relaxed)) {
      std::int64_t cur = m.tokens.load(std::memory_order_relaxed);
      std::int64_t want;
      do {
        want = std::min(burst, cur + add);
      } while (!m.tokens.compare_exchange_weak(cur, want,
                                               std::memory_order_relaxed));
    }
  }
  if (m.tokens.fetch_sub(1, std::memory_order_relaxed) > 0) return true;
  m.tokens.fetch_add(1, std::memory_order_relaxed);  // no deep debt
  return false;
}

}  // namespace

void IpLayer::set_topology_source(TopologySource src) {
  ntcs::LockGuard lk(mu_);
  topo_source_ = std::move(src);
}

void IpLayer::set_gateway(GatewayHook* gw) {
  ntcs::LockGuard lk(mu_);
  gateway_ = gw;
}

void IpLayer::invalidate_topology() {
  ntcs::LockGuard lk(mu_);
  topo_cache_.reset();
}

void IpLayer::set_prime_gateways(std::vector<GatewayRecord> primes) {
  ntcs::LockGuard lk(mu_);
  static_gws_ = std::move(primes);
}

ntcs::Result<std::vector<GatewayRecord>> IpLayer::topology(bool static_only) {
  TopologySource src;
  {
    ntcs::LockGuard lk(mu_);
    if (static_only) return static_gws_;
    if (topo_cache_) return *topo_cache_;
    src = topo_source_;
  }
  std::vector<GatewayRecord> merged;
  {
    ntcs::LockGuard lk(mu_);
    merged = static_gws_;
  }
  if (src) {
    auto got = src();  // blocking naming-service query — app thread only
    if (got) {
      // Dynamic registrations shadow static entries with the same UAdd.
      for (GatewayRecord& g : got.value()) {
        bool replaced = false;
        for (GatewayRecord& m : merged) {
          if (m.uadd == g.uadd) {
            m = g;
            replaced = true;
            break;
          }
        }
        if (!replaced) merged.push_back(std::move(g));
      }
      static metrics::Counter& m_topo = metrics::counter("ip.topology_fetches");
      m_topo.inc();
      ntcs::LockGuard lk(mu_);
      ++stats_.topology_fetches;
      topo_cache_ = merged;
      return merged;
    }
    // Naming service unreachable: fall back to the static table, which is
    // enough to reach the Name Server and the primes.
  }
  if (merged.empty()) {
    return ntcs::Error(ntcs::Errc::no_route,
                       "no topology source (naming service unavailable)");
  }
  return merged;
}

void IpLayer::blacklist_hop(const std::string& phys) {
  ntcs::LockGuard lk(mu_);
  hop_blacklist_[phys] =
      std::chrono::steady_clock::now() + cfg_.gateway_blacklist;
}

bool IpLayer::hop_blacklisted(const std::string& phys) const {
  ntcs::LockGuard lk(mu_);
  auto it = hop_blacklist_.find(phys);
  return it != hop_blacklist_.end() &&
         it->second > std::chrono::steady_clock::now();
}

ntcs::Result<std::vector<wire::RouteHop>> IpLayer::compute_route(
    const ResolvedDest& dst) {
  // Same network (or unspecified): the IVC is a single LVC.
  if (dst.net.empty() || dst.net == local_net_) {
    return std::vector<wire::RouteHop>{{local_net_, dst.phys.blob}};
  }
  const bool static_only =
      dst.uadd.valid() && !dst.uadd.is_temporary() &&
      dst.uadd.raw() < kFirstDynamicUAdd;
  auto gws = topology(static_only);
  if (!gws) return gws.error();

  // Breadth-first search over networks; gateways are the edges. The route
  // is computed here, autonomously (§4.2: establishment decentralised,
  // topology centralised).
  struct Step {
    NetName net;
    int via_gw;       // index into gws
    NetName via_net;  // network we were on when taking via_gw
  };
  std::unordered_map<std::string, Step> visited;
  // bound: |networks| — each net enters the frontier at most once (visited
  // gate below).
  std::deque<NetName> frontier;
  visited[local_net_] = Step{local_net_, -1, {}};
  frontier.push_back(local_net_);
  while (!frontier.empty() && visited.find(dst.net) == visited.end()) {
    const NetName cur = frontier.front();
    frontier.pop_front();
    for (std::size_t g = 0; g < gws.value().size(); ++g) {
      const GatewayRecord& gw = gws.value()[g];
      const bool on_cur = std::find(gw.nets.begin(), gw.nets.end(), cur) !=
                          gw.nets.end();
      if (!on_cur) continue;
      // Route around attachments that just failed to open (failover).
      auto cur_it = std::find(gw.nets.begin(), gw.nets.end(), cur);
      const auto cur_idx = static_cast<std::size_t>(cur_it - gw.nets.begin());
      if (hop_blacklisted(gw.phys[cur_idx].blob)) continue;
      for (const NetName& next : gw.nets) {
        if (next == cur || visited.count(next) != 0) continue;
        visited[next] = Step{next, static_cast<int>(g), cur};
        frontier.push_back(next);
      }
    }
  }
  auto it = visited.find(dst.net);
  if (it == visited.end()) {
    return ntcs::Error(ntcs::Errc::no_route,
                       "no gateway path from " + local_net_ + " to " + dst.net);
  }
  // Reconstruct the gateway chain destination-first.
  std::vector<wire::RouteHop> hops;
  hops.push_back({dst.net, dst.phys.blob});
  NetName cur = dst.net;
  while (cur != local_net_) {
    const Step& step = visited.at(cur);
    const GatewayRecord& gw = gws.value()[static_cast<std::size_t>(step.via_gw)];
    // The hop is taken *on* step.via_net, connecting to the gateway's
    // attachment there.
    auto nit = std::find(gw.nets.begin(), gw.nets.end(), step.via_net);
    const std::size_t idx = static_cast<std::size_t>(nit - gw.nets.begin());
    hops.push_back({step.via_net, gw.phys[idx].blob});
    cur = step.via_net;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

ntcs::Result<IvcHandle> IpLayer::open_ivc(const ResolvedDest& dst) {
  static metrics::Histogram& m_open_ns = metrics::histogram("ip.open_ivc_ns");
  static metrics::Counter& m_transient =
      metrics::counter("ip.extend_transient_retries");
  metrics::ScopedTimer open_timer(m_open_ns);
  trace::ScopedSpan open_span("ip", "open_ivc", identity_->name());
  // Transient failures (a flapping or congested link) retry the same route
  // after a backoff; permanent ones (dead gateway, stale registry) get at
  // most one topology refresh before the error goes upward.
  ntcs::Backoff backoff(cfg_.extend_backoff);
  bool topo_refreshed = false;
  ntcs::Error last(ntcs::Errc::no_route, "IVC open never attempted");
  for (int attempt = 0; attempt < std::max(cfg_.extend_attempts, 1);
       ++attempt) {
    if (attempt != 0) {
      std::chrono::nanoseconds delay;
      {
        ntcs::LockGuard lk(mu_);
        delay = backoff.next(rng_);
      }
      std::this_thread::sleep_for(delay);
    }
    auto route = compute_route(dst);
    if (!route) return route.error();
    auto& hops = route.value();
    const wire::RouteHop first = hops.front();
    hops.erase(hops.begin());

    auto lvc = nd_.open(PhysAddr{first.phys});
    if (!lvc) {
      last = lvc.error();
      const ntcs::Errc code = last.code();
      if (code == ntcs::Errc::timeout || code == ntcs::Errc::partitioned) {
        // The hop is reachable in principle — the link is misbehaving.
        // Blacklisting it would punish a healthy gateway for its wire.
        m_transient.inc();
        continue;
      }
      // A dead first-hop *gateway* is routed around: blacklist the
      // attachment, refresh the registry, recompute (§4.2 failover).
      if (!topo_refreshed && !hops.empty()) {
        blacklist_hop(first.phys);
        invalidate_topology();
        topo_refreshed = true;
        continue;
      }
      return lvc.error();
    }
    IvcHandle h;
    h.lvc = lvc.value();
    std::shared_ptr<ExtendWait> waiter;
    {
      ntcs::LockGuard lk(mu_);
      h.ivc = next_ivc_++;
      ivcs_[h] = IvcState{IvcRole::originator, false};
    }
    waiter = register_extend_waiter(h);
    wire::ExtendBody body;
    body.final_uadd = dst.uadd;
    body.route = hops;
    auto sent = nd_.send(h.lvc, wire::encode_ip_extend(h.ivc, body));
    ntcs::Status outcome = ntcs::Status::success();
    if (!sent.ok()) {
      outcome = sent;
    } else {
      ntcs::UniqueLock wl(waiter->mu);
      if (!waiter->cv.wait_for(wl, cfg_.extend_timeout,
                               [&] { return waiter->result.has_value(); })) {
        outcome = ntcs::Status(ntcs::Errc::timeout, "IVC extend timed out");
      } else {
        outcome = *waiter->result;
      }
    }
    unregister_extend_waiter(h);
    if (outcome.ok()) {
      {
        ntcs::LockGuard lk(mu_);
        auto it = ivcs_.find(h);
        if (it != ivcs_.end()) it->second.established = true;
        ++stats_.ivcs_opened;
      }
      static metrics::Counter& m_opened = metrics::counter("ip.ivcs_opened");
      m_opened.inc();
      log_.debug("IVC open to " + dst.uadd.to_string() + " via " +
                 std::to_string(hops.size()) + " onward hop(s)");
      return h;
    }
    {
      ntcs::LockGuard lk(mu_);
      ivcs_.erase(h);
      ++stats_.extend_failures;
    }
    static metrics::Counter& m_efail = metrics::counter("ip.extend_failures");
    m_efail.inc();
    // Do not leave a useless LVC behind if this node opened it just now
    // and nothing else multiplexes on it yet.
    bool lvc_in_use = false;
    {
      ntcs::LockGuard lk(mu_);
      for (const auto& [other, st] : ivcs_) {
        if (other.lvc == h.lvc) {
          lvc_in_use = true;
          break;
        }
      }
    }
    if (!lvc_in_use) (void)nd_.close(h.lvc);
    last = outcome.error();
    if (outcome.code() == ntcs::Errc::no_route) {
      if (topo_refreshed) return outcome.error();
      invalidate_topology();  // stale gateway registry: refresh and retry
      topo_refreshed = true;
      continue;
    }
    if (outcome.code() == ntcs::Errc::timeout ||
        outcome.code() == ntcs::Errc::partitioned ||
        outcome.code() == ntcs::Errc::address_fault) {
      // The extend died en route (flap mid-handshake, circuit killed):
      // transient — the same route may well work on the next try.
      m_transient.inc();
      continue;
    }
    return outcome.error();
  }
  return last;
}

ntcs::Status IpLayer::send(IvcHandle h, ntcs::BytesView lcm_msg) {
  {
    ntcs::LockGuard lk(mu_);
    auto it = ivcs_.find(h);
    if (it == ivcs_.end() || !it->second.established) {
      return ntcs::Status(ntcs::Errc::address_fault, "IVC is gone");
    }
  }
  const trace::TraceContext tctx =
      trace::enabled() ? trace::current() : trace::TraceContext{};
  const std::int64_t hop_start = tctx.valid() ? trace::now_ns() : 0;
  auto st = nd_.send(h.lvc, wire::encode_ip_data(h.ivc, lcm_msg));
  if (tctx.valid()) {
    // The origin's own hop onto the wire; each traversed gateway records
    // its forwarding hop in on_envelope, completing the per-hop chain.
    trace::record_child(tctx, "ip", "hop", identity_->name(), hop_start,
                        trace::now_ns());
  }
  if (!st.ok() && st.code() != ntcs::Errc::too_big) {
    // The circuit is dead; forget it so the LCM-Layer re-establishes.
    ntcs::LockGuard lk(mu_);
    ivcs_.erase(h);
  }
  return st;
}

ntcs::Status IpLayer::close_ivc(IvcHandle h) {
  {
    ntcs::LockGuard lk(mu_);
    if (ivcs_.erase(h) == 0) {
      return ntcs::Status(ntcs::Errc::not_found, "no such IVC");
    }
    ++stats_.ivcs_closed;
  }
  (void)nd_.send(h.lvc, wire::encode_ip_teardown(h.ivc));
  return ntcs::Status::success();
}

std::shared_ptr<IpLayer::ExtendWait> IpLayer::register_extend_waiter(
    IvcHandle h) {
  auto w = std::make_shared<ExtendWait>();
  ntcs::LockGuard lk(mu_);
  extend_waiters_[h] = w;
  return w;
}

void IpLayer::unregister_extend_waiter(IvcHandle h) {
  ntcs::LockGuard lk(mu_);
  extend_waiters_.erase(h);
}

void IpLayer::add_relay(IvcHandle in, IpLayer* out_ip, IvcHandle out) {
  ntcs::LockGuard lk(mu_);
  relays_[in] = RelayTarget{out_ip, out, std::make_shared<RelayMeter>()};
}

void IpLayer::mark_established(IvcHandle h) {
  ntcs::LockGuard lk(mu_);
  auto it = ivcs_.find(h);
  if (it != ivcs_.end()) it->second.established = true;
}

void IpLayer::remove_relay_entry(IvcHandle h) {
  ntcs::LockGuard lk(mu_);
  relays_.erase(h);
}

std::vector<IpEvent> IpLayer::on_nd_event(const NdEvent& ev) {
  switch (ev.kind) {
    case NdEvent::Kind::opened:
      return {};
    case NdEvent::Kind::closed:
      return on_lvc_closed(ev.lvc);
    case NdEvent::Kind::message: {
      auto env = wire::decode_ip(ev.message);
      if (!env) {
        static metrics::Counter& m_decode_drops =
            metrics::counter("ip.decode_drops");
        m_decode_drops.inc();
        log_.warn("dropping undecodable IP envelope: " +
                  env.error().to_string());
        return {};
      }
      return on_envelope(ev.lvc, env.value());
    }
  }
  return {};
}

std::vector<IpEvent> IpLayer::on_lvc_closed(LvcId lvc) {
  // §4.3: "Module death is detected by the ND-layer in any connected module
  // and the physical channel is closed. ... This process continues until
  // the originating module is eventually reached."
  std::vector<IpEvent> events;
  std::vector<std::pair<RelayTarget, IvcHandle>> dead_relays;
  std::vector<std::shared_ptr<ExtendWait>> failed_waiters;
  {
    ntcs::LockGuard lk(mu_);
    for (auto it = ivcs_.begin(); it != ivcs_.end();) {
      if (it->first.lvc == lvc) {
        IpEvent e;
        e.kind = IpEvent::Kind::ivc_closed;
        e.via = it->first;
        events.push_back(std::move(e));
        ++stats_.ivcs_closed;
        it = ivcs_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = relays_.begin(); it != relays_.end();) {
      if (it->first.lvc == lvc) {
        dead_relays.emplace_back(it->second, it->first);
        it = relays_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = extend_waiters_.begin(); it != extend_waiters_.end();) {
      if (it->first.lvc == lvc) {
        failed_waiters.push_back(it->second);
        it = extend_waiters_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& w : failed_waiters) {
    ntcs::LockGuard wl(w->mu);
    w->result = ntcs::Status(ntcs::Errc::address_fault, "LVC died");
    w->cv.notify_all();
  }
  for (auto& [target, in_h] : dead_relays) {
    // Instruct the far side to close the associated IVC; its own teardown
    // cascades onward (§4.3). Frames in flight on the dead circuit are
    // gone — make the teardown (and thus the loss) observable.
    static metrics::Counter& m_teardowns =
        metrics::counter("ip.relay_teardowns");
    m_teardowns.inc();
    (void)target.out->nd().send(target.out_h.lvc,
                                wire::encode_ip_teardown(target.out_h.ivc));
    target.out->remove_relay_entry(target.out_h);
  }
  return events;
}

std::vector<IpEvent> IpLayer::on_envelope(LvcId lvc,
                                          const wire::IpEnvelope& env) {
  const IvcHandle h{lvc, env.ivc};
  switch (env.kind) {
    case wire::IpKind::data: {
      RelayTarget relay{};
      bool is_relay = false;
      bool is_local = false;
      {
        ntcs::LockGuard lk(mu_);
        auto rit = relays_.find(h);
        if (rit != relays_.end()) {
          relay = rit->second;
          is_relay = true;
          ++stats_.messages_relayed;
        } else if (ivcs_.count(h) != 0) {
          is_local = true;
        }
      }
      if (is_relay) {
        // A relayed message's context is only on the wire: peek the LCM
        // trace words so gateway decisions land on the request's trace.
        std::optional<wire::LcmTraceWords> tw;
        if (trace::enabled()) tw = wire::peek_lcm_trace(env.body);
        // Per-peer fairness metering: one hot circuit must not starve the
        // relay. Control-class frames bypass — the control plane survives
        // the very overload the meter exists to manage.
        const std::uint64_t rate =
            relay_fair_rate_.load(std::memory_order_relaxed);
        if (rate != 0 && relay.meter) {
          const auto flags = wire::peek_lcm_flags(env.body);
          const bool control =
              flags && (*flags & wire::kLcmFlagInternal) != 0;
          if (!control &&
              !relay_admit(*relay.meter, rate,
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch())
                               .count())) {
            static metrics::Counter& m_fair =
                metrics::counter("gw.fairness_drops");
            m_fair.inc();
            if (tw) {
              trace::record_event(
                  trace::TraceContext{tw->hi, tw->lo, tw->parent}, "gw",
                  "fairness_drop", identity_->name());
            }
            return {};
          }
        }
        // The fast path through a Gateway: forward on the chained LVC. Each
        // traversed gateway bumps the hop counter once per data message, so
        // an N-hop send adds N to ip.hops_forwarded process-wide.
        static metrics::Counter& m_hops =
            metrics::counter("ip.hops_forwarded");
        m_hops.inc();
        const std::int64_t relay_start = tw ? trace::now_ns() : 0;
        auto st = relay.out->nd().send(
            relay.out_h.lvc, wire::encode_ip_data(relay.out_h.ivc, env.body));
        if (!st.ok()) {
          // The onward LVC refused the frame (dying circuit, backend
          // overload): the message is lost here. Never silently — count
          // it and pin the loss on the sender's trace.
          static metrics::Counter& m_relay_drops =
              metrics::counter("ip.relay_drops");
          m_relay_drops.inc();
          if (tw) {
            trace::record_event(
                trace::TraceContext{tw->hi, tw->lo, tw->parent}, "ip",
                "relay_drop", identity_->name());
          }
          return {};
        }
        if (tw) {
          trace::record_child(
              trace::TraceContext{tw->hi, tw->lo, tw->parent}, "ip", "hop",
              identity_->name(), relay_start, trace::now_ns());
        }
        return {};
      }
      if (is_local) {
        IpEvent e;
        e.kind = IpEvent::Kind::message;
        e.via = h;
        e.lcm_msg = env.body;
        return {std::move(e)};
      }
      // Data for an IVC this node no longer knows (raced teardown, stale
      // chain): dropped, visibly.
      static metrics::Counter& m_stray = metrics::counter("ip.stray_drops");
      m_stray.inc();
      log_.debug("stray data for unknown IVC " + std::to_string(env.ivc));
      return {};
    }
    case wire::IpKind::extend: {
      if (env.extend.route.empty()) {
        // We are the destination: accept the inbound circuit.
        {
          ntcs::LockGuard lk(mu_);
          ivcs_[h] = IvcState{IvcRole::terminal, true};
          ++stats_.ivcs_accepted;
        }
        (void)nd_.send(lvc, wire::encode_ip_extend_ok(env.ivc));
        return {};
      }
      GatewayHook* gw = nullptr;
      {
        ntcs::LockGuard lk(mu_);
        gw = gateway_;
      }
      if (gw == nullptr) {
        (void)nd_.send(lvc,
                       wire::encode_ip_extend_fail(
                           env.ivc,
                           static_cast<std::uint32_t>(ntcs::Errc::no_route),
                           "module '" + identity_->name() +
                               "' is not a gateway"));
        return {};
      }
      gw->on_extend(this, lvc, env.ivc, env.extend);  // enqueue; non-blocking
      return {};
    }
    case wire::IpKind::extend_ok:
    case wire::IpKind::extend_fail: {
      std::shared_ptr<ExtendWait> waiter;
      {
        ntcs::LockGuard lk(mu_);
        auto it = extend_waiters_.find(h);
        if (it != extend_waiters_.end()) waiter = it->second;
      }
      if (waiter) {
        ntcs::LockGuard wl(waiter->mu);
        if (env.kind == wire::IpKind::extend_ok) {
          waiter->result = ntcs::Status::success();
        } else {
          auto code = static_cast<ntcs::Errc>(env.errc);
          waiter->result = ntcs::Status(code, env.text);
        }
        waiter->cv.notify_all();
      }
      return {};
    }
    case wire::IpKind::teardown: {
      RelayTarget relay{};
      bool is_relay = false;
      bool was_local = false;
      {
        ntcs::LockGuard lk(mu_);
        auto rit = relays_.find(h);
        if (rit != relays_.end()) {
          relay = rit->second;
          is_relay = true;
          relays_.erase(rit);
        } else if (ivcs_.erase(h) != 0) {
          was_local = true;
          ++stats_.ivcs_closed;
        }
      }
      if (is_relay) {
        (void)relay.out->nd().send(
            relay.out_h.lvc, wire::encode_ip_teardown(relay.out_h.ivc));
        relay.out->remove_relay_entry(relay.out_h);
        return {};
      }
      if (was_local) {
        IpEvent e;
        e.kind = IpEvent::Kind::ivc_closed;
        e.via = h;
        return {std::move(e)};
      }
      return {};
    }
  }
  return {};
}

IpLayer::Stats IpLayer::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

}  // namespace ntcs::core
