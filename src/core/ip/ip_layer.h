// ip_layer.h — the Internet Protocol Layer (paper §2.2, §4).
//
// "The Internet Protocol Layer, in conjunction with one or more Gateway
// modules, provides internet virtual circuits (IVCs) across disjoint
// networks and machines. IVCs are established either as a single LVC on
// the local network, or as a chained set of LVCs linked through one or
// more Gateways as required."
//
// The internet scheme (§4.2) decentralises circuit routing and
// establishment while centralising topology in the naming service: this
// layer fetches the gateway registry through an injected topology source
// (the NSP-Layer — the recursion of §4.1), computes the route itself, and
// establishes the chain hop-by-hop with EXTEND messages. "No inter-gateway
// communication ever takes place" beyond the circuits themselves.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotated.h"
#include "common/backoff.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "core/nd/nd_layer.h"
#include "core/wire/frames.h"

namespace ntcs::core {

/// An internet virtual circuit endpoint at this node: the local LVC it
/// rides plus the originator-chosen circuit id (unique per LVC).
struct IvcHandle {
  LvcId lvc = 0;
  std::uint64_t ivc = 0;

  bool valid() const { return lvc != 0 && ivc != 0; }
  friend bool operator==(const IvcHandle&, const IvcHandle&) = default;
};

struct IvcHandleHash {
  std::size_t operator()(const IvcHandle& h) const noexcept {
    return std::hash<std::uint64_t>{}(h.lvc * 0x9E3779B97F4A7C15ULL ^ h.ivc);
  }
};

/// Destination info the LCM-Layer resolved through the naming service.
struct ResolvedDest {
  UAdd uadd;
  PhysAddr phys;
  NetName net;
};

/// One gateway as registered with the naming service (§4.1): its logical
/// name, its UAdd, and the networks it connects with a physical address on
/// each.
struct GatewayRecord {
  UAdd uadd;
  std::string name;
  std::vector<NetName> nets;
  std::vector<PhysAddr> phys;  // parallel to nets
};

/// What the IP-Layer reports upward to the LCM-Layer.
struct IpEvent {
  enum class Kind : std::uint8_t { message, ivc_closed };
  Kind kind;
  IvcHandle via;
  ntcs::Bytes lcm_msg;  // kind == message
};

class IpLayer;

/// Implemented by the Gateway module (gateway.h). The pump thread hands
/// EXTEND requests here and the gateway's worker thread (which may block)
/// takes over — the pump itself must never block.
class GatewayHook {
 public:
  virtual ~GatewayHook() = default;
  virtual void on_extend(IpLayer* in, LvcId in_lvc, std::uint64_t ivc,
                         wire::ExtendBody body) = 0;
};

struct IpConfig {
  std::chrono::nanoseconds extend_timeout{std::chrono::seconds(10)};
  /// How long a gateway attachment that failed to open stays out of route
  /// computation (decentralised failover: the route is recomputed around
  /// it, §4.2).
  std::chrono::nanoseconds gateway_blacklist{std::chrono::seconds(5)};
  /// Total open attempts per open_ivc call. Transient failures (timeout,
  /// partition — e.g. a flapping link) retry the same route after a
  /// backoff; permanent ones (refused, address fault on the first hop)
  /// blacklist the hop, refresh the topology and route around it.
  int extend_attempts = 3;
  BackoffPolicy extend_backoff{std::chrono::milliseconds(1),
                               std::chrono::milliseconds(16), 2.0, 0.5};
  /// Per-peer fairness at a gateway: each relayed circuit gets its own
  /// token bucket of this many data frames per second, so one hot peer
  /// cannot starve the relay for everyone else. Control-class frames
  /// (kLcmFlagInternal — NSP, DRTS, replies) bypass the meter. 0 disables
  /// metering (the default; overload deployments turn it on, also at
  /// runtime via set_relay_fair_rate).
  std::uint64_t relay_fair_rate = 0;
};

class IpLayer {
 public:
  IpLayer(NdLayer& nd, std::shared_ptr<Identity> identity, NetName local_net,
          IpConfig cfg = {});

  IpLayer(const IpLayer&) = delete;
  IpLayer& operator=(const IpLayer&) = delete;

  /// The naming-service topology query, injected by the Node (recursion:
  /// the layer below the naming service uses the naming service, §4.1).
  using TopologySource =
      std::function<ntcs::Result<std::vector<GatewayRecord>>()>;
  void set_topology_source(TopologySource src);

  /// The well-known prime gateways (§3.4: they "may be required to reach
  /// the Name Server"). Routes toward well-known UAdds (the Name Server
  /// and the primes themselves) are computed from this static table only,
  /// so bootstrap never recurses into the naming service.
  void set_prime_gateways(std::vector<GatewayRecord> primes);

  /// Make this attachment part of a Gateway module.
  void set_gateway(GatewayHook* gw);

  /// Establish an IVC to a resolved destination. Blocking (app threads and
  /// gateway workers only — never the pump).
  ntcs::Result<IvcHandle> open_ivc(const ResolvedDest& dst);

  /// Send one LCM message down an established IVC. Non-blocking.
  ntcs::Status send(IvcHandle h, ntcs::BytesView lcm_msg);

  /// Tear down an IVC (propagates along the chain).
  ntcs::Status close_ivc(IvcHandle h);

  /// Pump integration: translate one ND event into zero or more LCM-facing
  /// events, performing relaying and circuit management on the way.
  std::vector<IpEvent> on_nd_event(const NdEvent& ev);

  // ---- gateway support (called from Gateway worker threads) -------------
  struct ExtendWait {
    // ip.extend_wait: the gateway worker holds it across the whole EXTEND
    // round trip, during which relay state is installed under ip.state.
    ntcs::Mutex mu{ntcs::lockrank::kIpExtendWait, "ip.extend_wait"};
    ntcs::CondVar cv;
    std::optional<ntcs::Status> result GUARDED_BY(mu);
  };
  /// Per-relayed-circuit token bucket (fairness metering). Refilled and
  /// spent with plain atomics on the pump fast path — no lock is ever
  /// taken for a metering decision.
  struct RelayMeter {
    // sync: relaxed token-bucket words; the pump is the only spender and
    // a racing refill can at worst round a debit in the peer's favor.
    std::atomic<std::int64_t> tokens{0};
    std::atomic<std::int64_t> last_refill_ns{0};  // 0 = not yet primed
  };

  std::shared_ptr<ExtendWait> register_extend_waiter(IvcHandle h);
  void unregister_extend_waiter(IvcHandle h);
  /// Install a relay mapping: traffic on `in` is forwarded to `out` on
  /// `out_ip` (and the gateway installs the mirror mapping on `out_ip`).
  void add_relay(IvcHandle in, IpLayer* out_ip, IvcHandle out);
  /// Mark an inbound circuit terminal (used for gateway-originated opens).
  void mark_established(IvcHandle h);

  NdLayer& nd() { return nd_; }
  const NetName& local_net() const { return local_net_; }

  /// Drop the cached gateway registry (after a routing failure, §4.2:
  /// "locally cached values will likely be correct since reconfiguration
  /// is infrequent" — but when they are not, refresh).
  void invalidate_topology();

  /// Route computation, exposed for tests: the full hop list including the
  /// final destination hop.
  ntcs::Result<std::vector<wire::RouteHop>> compute_route(
      const ResolvedDest& dst);

  /// Failover: exclude a gateway attachment from route computation for a
  /// while (open_ivc does this automatically after a dead first hop).
  void blacklist_hop(const std::string& phys);
  bool hop_blacklisted(const std::string& phys) const;

  /// Change the per-peer relay fairness rate at runtime (frames/s per
  /// relayed circuit; 0 disables). Lock-free; takes effect on the next
  /// relayed frame.
  void set_relay_fair_rate(std::uint64_t per_circuit_fps) {
    relay_fair_rate_.store(per_circuit_fps, std::memory_order_relaxed);
  }

  struct Stats {
    std::uint64_t ivcs_opened = 0;
    std::uint64_t ivcs_accepted = 0;
    std::uint64_t ivcs_closed = 0;
    std::uint64_t messages_relayed = 0;
    std::uint64_t topology_fetches = 0;
    std::uint64_t extend_failures = 0;
  };
  Stats stats() const;

 private:
  enum class IvcRole : std::uint8_t { originator, terminal };
  struct IvcState {
    IvcRole role;
    bool established = false;
  };
  struct RelayTarget {
    IpLayer* out = nullptr;
    IvcHandle out_h;
    std::shared_ptr<RelayMeter> meter;
  };

  ntcs::Result<std::vector<GatewayRecord>> topology(bool static_only);
  std::vector<IpEvent> on_lvc_closed(LvcId lvc);
  std::vector<IpEvent> on_envelope(LvcId lvc, const wire::IpEnvelope& env);
  void remove_relay_entry(IvcHandle h);

  NdLayer& nd_;
  std::shared_ptr<Identity> identity_;
  NetName local_net_;
  IpConfig cfg_;
  ntcs::LayerLog log_;

  // ip.state: leaf within the Nucleus proper — never held across ND-Layer
  // calls (routes are computed from copies; sends happen after release).
  mutable ntcs::Mutex mu_{ntcs::lockrank::kIpState, "ip.state"};
  ntcs::Rng rng_ GUARDED_BY(mu_);  // extend-retry jitter
  std::unordered_map<IvcHandle, IvcState, IvcHandleHash> ivcs_ GUARDED_BY(mu_);
  std::unordered_map<IvcHandle, RelayTarget, IvcHandleHash> relays_
      GUARDED_BY(mu_);
  std::unordered_map<IvcHandle, std::shared_ptr<ExtendWait>, IvcHandleHash>
      extend_waiters_ GUARDED_BY(mu_);
  TopologySource topo_source_ GUARDED_BY(mu_);
  std::vector<GatewayRecord> static_gws_ GUARDED_BY(mu_);
  std::optional<std::vector<GatewayRecord>> topo_cache_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::chrono::steady_clock::time_point>
      hop_blacklist_ GUARDED_BY(mu_);
  GatewayHook* gateway_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t next_ivc_ GUARDED_BY(mu_) = 1;
  // sync: config word read on the relay fast path without mu_; a stale
  // rate meters one frame under the old policy.
  std::atomic<std::uint64_t> relay_fair_rate_{0};
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace ntcs::core
