#include "core/lcm/lcm_layer.h"

#include <algorithm>
#include <deque>
#include <thread>

#include "common/health.h"
#include "common/metrics.h"

namespace ntcs::core {

namespace {

/// Aggregate live occupancy across every send window in the process (adds
/// on admission, subtracts on release, so it reads as the layer's total
/// in-flight pipeline). Deliberately NOT named `lcm.window.depth`/`.bound`:
/// a full window is normal pipelining, not distress, so it must not trip
/// the health plane's `.depth`/`.bound` utilization rule.
metrics::Gauge& window_inflight_gauge() {
  static metrics::Gauge& g = metrics::gauge("lcm.window.in_flight");
  return g;
}

/// The LCM wedge beacon: the deadline of the oldest parked window waiter
/// (0 = nobody parked). Last-writer-wins across windows — a wedged window
/// keeps republishing a past deadline while healthy windows clear or
/// advance theirs, which is exactly the signal the watchdog needs.
health::Beacon& window_beacon() {
  static health::Beacon& b = health::beacon("lcm.window");
  return b;
}

std::int64_t deadline_ns(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

/// Per-destination sliding send window. Admission is strictly FIFO: a
/// caller that finds the window full (or other callers already queued)
/// parks a waiter node at the back of the queue; each completed request
/// admits the front waiter. Every waiter carries its request's own
/// deadline, so a stalled window times out per request, never per circuit.
struct LcmSendWindow {
  struct Waiter {
    bool admitted = false;
    /// Set by the sweeper in grant_locked: this waiter's deadline passed
    /// while it was parked; it was removed from the queue and must not be
    /// admitted. Its owner observes the flag and reports timeout.
    bool expired = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  // lcm.window: taken strictly after lcm.state is released and never
  // nested with the per-request lock — admission and completion touch the
  // two sequentially.
  ntcs::Mutex mu{ntcs::lockrank::kLcmWindow, "lcm.window"};
  ntcs::CondVar cv;
  int depth GUARDED_BY(mu) = 1;
  int in_flight GUARDED_BY(mu) = 0;
  bool closed GUARDED_BY(mu) = false;
  // bound: depth admitted + one parked waiter per caller thread (callers
  // block here, so the queue cannot outgrow the thread population).
  std::deque<std::shared_ptr<Waiter>> queue GUARDED_BY(mu);
  /// Back-pressure gate: the destination shed one of our requests; no new
  /// non-internal request is admitted before this instant.
  std::chrono::steady_clock::time_point busy_until GUARDED_BY(mu){};
  /// EWMA of slot-hold time (admission -> release, ≈ one request's full
  /// service incl. reply wait), feeding the deadline-aware admission
  /// estimate. 0 until the first request completes, so a fresh circuit
  /// never false-rejects.
  std::uint64_t avg_service_ns GUARDED_BY(mu) = 0;

  /// Admit queued waiters while capacity remains, sweeping expired ones:
  /// a waiter whose deadline has passed must not absorb a grant (its owner
  /// is timing out), and must not linger ahead of live waiters wedging the
  /// depth accounting.
  std::uint64_t grant_locked(metrics::Histogram& depth_h,
                             std::chrono::steady_clock::time_point now)
      REQUIRES(mu) {
    std::uint64_t swept = 0;
    while (!queue.empty()) {
      const std::shared_ptr<Waiter>& front = queue.front();
      if (front->deadline <= now) {
        front->expired = true;
        queue.pop_front();
        ++swept;
        continue;
      }
      if (in_flight >= depth) break;
      front->admitted = true;
      queue.pop_front();
      ++in_flight;
      window_inflight_gauge().add(1);
      depth_h.record(static_cast<std::uint64_t>(in_flight));
    }
    publish_beacon_locked();
    return swept;
  }

  /// Republish the wedge beacon after any queue mutation: the oldest
  /// parked waiter's deadline, or clear when nobody is parked.
  void publish_beacon_locked() REQUIRES(mu) {
    window_beacon().set(queue.empty() ? 0
                                      : deadline_ns(queue.front()->deadline));
  }
};

/// One entry of the pending-request table. The immutable half (dst,
/// payload, options, deadline) survives retries; the live half (the
/// correlation ID, the circuit it went out on, the result slot) is
/// re-armed each time the §3.5 machinery re-sends the request.
struct PendingRequest {
  UAdd dst;
  Payload payload;
  SendOptions opts;
  std::chrono::steady_clock::time_point deadline;
  int retries_left = 0;
  bool awaited = false;  // single-await guard; touched by the owner only
  std::int64_t ts = 0;   // monitor timestamp taken at issue (§6.1)
  // Issuer's trace context, captured at request_async: retries run on the
  // awaiting thread, which must re-enter it for the re-sent frames to stay
  // on the original trace.
  trace::TraceContext trace;

  std::uint32_t req_id = 0;  // current correlation ID (fresh per retry)
  // When this request was admitted through the send window; the hold time
  // (admission -> release) feeds the window's service-time EWMA. Written
  // before window_held is set, read after it is cleared — the atomic
  // exchange orders the two.
  std::chrono::steady_clock::time_point admitted_at{};

  // lcm.request: the reply rendezvous; leaf among the LCM locks.
  ntcs::Mutex mu{ntcs::lockrank::kLcmRequest, "lcm.request"};
  ntcs::CondVar cv;
  std::optional<ntcs::Result<Reply>> result GUARDED_BY(mu);
  // sync: routing breadcrumbs stamped by the send path and read by the
  // teardown sweep without the ticket lock; 0 means "not routed that way".
  std::atomic<std::uint64_t> via_lvc{0};
  std::atomic<std::uint64_t> via_ivc{0};

  std::shared_ptr<LcmSendWindow> window;
  // sync: exchange() gives exactly-once release of the window slot when
  // await/teardown race.
  std::atomic<bool> window_held{false};
};

namespace {

metrics::Histogram& pipeline_depth_hist() {
  static metrics::Histogram& h = metrics::histogram("lcm.pipeline_depth");
  return h;
}

/// Counters of *monitored* (application) traffic. NTCS/DRTS-internal sends
/// — NSP queries, monitor samples, time-service exchanges — are excluded,
/// the same exemption §6.1 applies to the monitor hook itself: metrics
/// about monitored sends must not be moved by the machinery that observes
/// them, or observing the system changes the numbers it reports.
/// Internal traffic is counted separately under lcm.internal_sends.
void count_app_send(metrics::Counter& app, bool internal) {
  if (internal) {
    static metrics::Counter& c = metrics::counter("lcm.internal_sends");
    c.inc();
  } else {
    app.inc();
  }
}

/// Per-thread NTCS recursion depth (§6.1/§6.3). The paper's layers recurse
/// on one stack; so do ours — hooks and resolver calls run on the sending
/// thread, and this counter bounds the dead-circuit loop.
thread_local int g_recursion_depth = 0;

class RecursionScope {
 public:
  RecursionScope() { ++g_recursion_depth; }
  ~RecursionScope() { --g_recursion_depth; }
  RecursionScope(const RecursionScope&) = delete;
  RecursionScope& operator=(const RecursionScope&) = delete;
};

}  // namespace

LcmLayer::LcmLayer(IpLayer& ip, std::shared_ptr<Identity> identity,
                   LcmConfig cfg)
    : ip_(ip),
      identity_(std::move(identity)),
      cfg_(cfg),
      log_("lcm", identity_->name()),
      rng_(ntcs::seed_from(identity_->name(), 0x4C434D4CULL /* "LCML" */)),
      app_queue_(cfg_.max_inbound_queue, cfg_.control_reserve) {
  // Health-plane pair: live inbound depth against the configured bound
  // (data class sheds at bound - control_reserve, i.e. just above the
  // watchdog's 90% utilization line).
  static metrics::Gauge& g_depth = metrics::gauge("lcm.app_queue.depth");
  static metrics::Gauge& g_bound = metrics::gauge("lcm.app_queue.bound");
  app_queue_.set_depth_gauge(&g_depth, &g_bound);
}

void LcmLayer::set_resolver(Resolver* r) {
  ntcs::LockGuard lk(mu_);
  resolver_ = r;
}

void LcmLayer::set_time_source(TimeSource t) {
  ntcs::LockGuard lk(mu_);
  time_source_ = std::move(t);
}

void LcmLayer::set_monitor_hook(MonitorHook m) {
  ntcs::LockGuard lk(mu_);
  monitor_hook_ = std::move(m);
}

void LcmLayer::set_error_hook(ErrorHook e) {
  ntcs::LockGuard lk(mu_);
  error_hook_ = std::move(e);
}

void LcmLayer::preload_well_known(const WellKnownTable& wk) {
  ntcs::LockGuard lk(mu_);
  if (wk.name_server_phys.valid()) {
    NsCandidateSet set;
    set.dests.push_back(
        ResolvedDest{kNameServerUAdd, wk.name_server_phys, wk.name_server_net});
    for (const NsReplicaInfo& rep : wk.name_server_replicas) {
      set.dests.push_back(ResolvedDest{kNameServerUAdd, rep.phys, rep.net});
    }
    ns_candidates_[kNameServerUAdd] = std::move(set);
  }
  // Sharded naming service: one candidate set per shard UAdd (primary
  // first, warm standby second). The shard entry for UAdd 1 supersedes
  // the legacy single-server entry above.
  for (std::size_t s = 0; s < wk.shards.size(); ++s) {
    const NsShardInfo& sh = wk.shards[s];
    if (!sh.primary_phys.valid()) continue;
    const UAdd u = ns_shard_uadd(s);
    NsCandidateSet set;
    set.dests.push_back(ResolvedDest{u, sh.primary_phys, sh.primary_net});
    if (sh.standby_phys.valid()) {
      set.dests.push_back(ResolvedDest{u, sh.standby_phys, sh.standby_net});
    }
    ns_candidates_[u] = std::move(set);
  }
  for (auto& [u, set] : ns_candidates_) {
    if (set.dests.empty()) continue;
    set.idx = 0;
    resolved_cache_[u] = set.dests.front();
    ip_.nd().cache_phys(u, set.dests.front().phys);
  }
  for (const PrimeGatewayInfo& gw : wk.prime_gateways) {
    if (gw.phys.empty()) continue;
    resolved_cache_[gw.uadd] = ResolvedDest{gw.uadd, gw.phys[0],
                                            gw.networks.empty()
                                                ? NetName{}
                                                : gw.networks[0]};
    ip_.nd().cache_phys(gw.uadd, gw.phys[0]);
  }
}

void LcmLayer::cache_destination(UAdd uadd, ResolvedDest dest) {
  ntcs::LockGuard lk(mu_);
  ip_.nd().cache_phys(uadd, dest.phys);
  resolved_cache_[uadd] = std::move(dest);
}

UAdd LcmLayer::chase_forward(UAdd dst) {
  ntcs::LockGuard lk(mu_);
  UAdd cur = dst;
  for (int hops = 0; hops < 16; ++hops) {
    auto it = forwards_.find(cur);
    if (it == forwards_.end()) break;
    cur = it->second;
  }
  // Path compression: future sends jump straight to the live end.
  if (cur != dst) forwards_[dst] = cur;
  return cur;
}

ntcs::Result<ResolvedDest> LcmLayer::resolved_for(UAdd dst) {
  // UAdd -> destination memoization. (The name -> UAdd lease cache, with
  // its nsp.cache_* counters, lives in the NSP layer; these count the
  // LCM's own resolved-destination reuse.)
  static metrics::Counter& m_hits = metrics::counter("lcm.resolve_hits");
  static metrics::Counter& m_misses = metrics::counter("lcm.resolve_misses");
  Resolver* resolver = nullptr;
  {
    ntcs::LockGuard lk(mu_);
    auto it = resolved_cache_.find(dst);
    if (it != resolved_cache_.end()) {
      m_hits.inc();
      return it->second;
    }
    resolver = resolver_;
  }
  m_misses.inc();
  if (resolver == nullptr) {
    return ntcs::Error(ntcs::Errc::not_found,
                       "no resolver and " + dst.to_string() +
                           " is not well-known");
  }
  auto rd = resolver->resolve(dst);  // recursive naming-service call (§3.1)
  if (!rd) return rd.error();
  ntcs::LockGuard lk(mu_);
  resolved_cache_[dst] = rd.value();
  ip_.nd().cache_phys(dst, rd.value().phys);
  return rd.value();
}

ntcs::Result<ntcs::Bytes> LcmLayer::encode_body(const Payload& p,
                                                convert::Arch peer_arch,
                                                convert::XferMode& mode_out) {
  // §5: the decision to convert is taken here, at the lowest layer where
  // the destination machine type is visible. No pack routine means the
  // application vouches for representation independence.
  if (p.pack &&
      convert::choose_mode(identity_->arch(), peer_arch) ==
          convert::XferMode::packed) {
    mode_out = convert::XferMode::packed;
    return p.pack();
  }
  mode_out = convert::XferMode::image;
  return p.image;
}

ntcs::Result<IvcHandle> LcmLayer::send_message(UAdd dst, wire::LcmKind kind,
                                               std::uint32_t req_id,
                                               const Payload& p,
                                               const SendOptions& opts,
                                               int fault_retries) {
  if (g_recursion_depth > cfg_.max_recursion_depth) {
    static metrics::Counter& m_trips = metrics::counter("lcm.recursion_trips");
    m_trips.inc();
    ErrorHook hook;
    {
      ntcs::LockGuard lk(mu_);
      ++stats_.recursion_trips;
      hook = error_hook_;
    }
    if (hook) {
      hook("lcm", ntcs::Errc::recursion_limit, "recursion guard tripped");
    }
    return ntcs::Error(ntcs::Errc::recursion_limit,
                       "NTCS recursion depth exceeded (see paper §6.3)");
  }
  RecursionScope scope;

  ntcs::Error last(ntcs::Errc::address_fault, "send never attempted");
  ntcs::Backoff backoff(cfg_.fault_backoff);
  for (int attempt = 0; attempt <= fault_retries; ++attempt) {
    if (attempt != 0) {
      // Pace the §3.5 recovery loop: the destination may be mid-move or
      // behind a flapping link, and an instant reconnect mostly re-runs
      // into the same fault.
      static metrics::Counter& m_backoffs =
          metrics::counter("lcm.fault_backoffs");
      m_backoffs.inc();
      health::journal_note(health::EventKind::retry, "lcm", "fault_retry",
                           static_cast<std::uint64_t>(attempt));
      if (trace::enabled()) {
        const trace::TraceContext tctx = trace::current();
        if (tctx.valid()) {
          trace::record_event(tctx, "lcm", "fault_retry", identity_->name(),
                              static_cast<std::uint32_t>(attempt));
        }
      }
      std::chrono::nanoseconds delay;
      {
        ntcs::LockGuard lk(mu_);
        delay = backoff.next(rng_);
      }
      std::this_thread::sleep_for(delay);
    }
    const UAdd cur = chase_forward(dst);

    // Establish (or reuse) the circuit — "with the underlying IVCs being
    // established as needed".
    IvcHandle h;
    bool have = false;
    {
      ntcs::LockGuard lk(mu_);
      auto it = conns_.find(cur);
      if (it != conns_.end()) {
        h = it->second;
        have = true;
      }
    }
    if (!have) {
      auto rd = resolved_for(cur);
      if (!rd) {
        last = rd.error();
        // An unknown UAdd is not necessarily the end: the module may have
        // died and been REPLACED since the naming service answered us last
        // (its old record is retired the moment anyone's forwarding query
        // confirms the death). Treat it as an address fault so the
        // forwarding determination below gets its chance (§3.5).
        if (last.code() != ntcs::Errc::not_found) return last;
      } else {
        auto opened = ip_.open_ivc(rd.value());
        if (!opened) {
          last = opened.error();
          if (last.code() == ntcs::Errc::no_route) return last;
          // Address fault during establishment: fall through to the fault
          // handler below.
        } else {
          h = opened.value();
          have = true;
          // A reconnect is any re-establishment toward a destination we
          // already had a circuit to: either this very send failed on the
          // stale handle (attempt > 0), or the ivc_closed notification got
          // here first and left the destination in reconnect_pending_.
          bool reconnected = attempt > 0;
          {
            ntcs::LockGuard lk(mu_);
            conns_[cur] = h;
            if (reconnect_pending_.erase(cur) > 0) reconnected = true;
            if (reconnected) ++stats_.reconnects;
          }
          if (reconnected) {
            static metrics::Counter& m_reconnects =
                metrics::counter("lcm.reconnects");
            m_reconnects.inc();
          }
        }
      }
    }

    if (have) {
      // Conversion-mode decision needs the peer machine type, learned in
      // the channel-open exchange (§3.3).
      auto peer = ip_.nd().peer(h.lvc);
      const convert::Arch peer_arch =
          peer ? peer->arch : identity_->arch();
      convert::XferMode mode = convert::XferMode::image;
      auto body = encode_body(p, peer_arch, mode);
      if (!body) return body.error();

      wire::LcmHeader hdr;
      hdr.kind = kind;
      hdr.flags = opts.internal ? wire::kLcmFlagInternal : 0;
      hdr.src = identity_->uadd();
      hdr.dst = cur;
      hdr.req_id = req_id;
      hdr.mode = convert::xfer_mode_wire_id(mode);
      hdr.src_arch = convert::arch_wire_id(identity_->arch());
      // Application traffic carries the caller's trace context on the wire
      // (§6.1-style monitoring recursion exemption: internal/DRTS traffic
      // stays untraced).
      if (!opts.internal && trace::enabled()) {
        const trace::TraceContext tctx = trace::current();
        if (tctx.valid()) {
          hdr.flags |= wire::kLcmFlagTraced;
          hdr.trace_hi = tctx.hi;
          hdr.trace_lo = tctx.lo;
          hdr.trace_parent = tctx.span;
        }
      }

      auto st = ip_.send(h, wire::encode_lcm(hdr, body.value()));
      if (st.ok()) return h;
      last = st.error();
      if (last.code() == ntcs::Errc::too_big) return last;
    }

    // ---- address-fault handler (§3.5) --------------------------------
    static metrics::Counter& m_faults = metrics::counter("lcm.address_faults");
    m_faults.inc();
    health::journal_note(health::EventKind::failover, "lcm", "addr_fault");
    ErrorHook error_hook;
    {
      ntcs::LockGuard lk(mu_);
      ++stats_.address_faults;
      conns_.erase(cur);
      resolved_cache_.erase(cur);
      error_hook = error_hook_;
    }
    ip_.nd().uncache_phys(cur);
    log_.debug("address fault toward " + cur.to_string() + ": " +
               last.to_string());
    if (error_hook && !opts.internal) {
      // Report into the running table of errors (§6.3) — internal traffic
      // is exempt so a fault while reporting a fault cannot loop.
      error_hook("lcm", last.code(),
                 "address fault toward " + cur.to_string());
    }

    if (!cfg_.reproduce_ns_fault_bug) {
      // The §6.3 patch: "Since layers below the NSP-Layer know nothing of
      // the Name Server, they are unable to stop this problem." This layer
      // — which also "should not know of the Name Server" — breaks the
      // loop by never consulting the naming service about the naming
      // service; the well-known physical addresses are authoritative.
      // Re-install a well-known entry so the reconnect can proceed
      // without a resolver — rotating to the shard's next candidate
      // (primary, then standby/replicas) on each fault. This rotation IS
      // the shard failover: a dead primary faults, the retry lands on the
      // warm standby, whose first write-triggered promotion makes it the
      // new primary.
      bool rotated = false;
      {
        ntcs::LockGuard lk(mu_);
        auto nsit = ns_candidates_.find(cur);
        if (nsit != ns_candidates_.end() && !nsit->second.dests.empty()) {
          if (attempt > 0) ++nsit->second.idx;
          const ResolvedDest& cand =
              nsit->second.dests[nsit->second.idx %
                                 nsit->second.dests.size()];
          resolved_cache_[cur] = cand;
          ip_.nd().cache_phys(cur, cand.phys);
          rotated = true;
        }
      }
      if (rotated) {
        health::journal_note(health::EventKind::failover, "lcm", "ns_rotate",
                             static_cast<std::uint64_t>(attempt));
        continue;  // plain reconnect retry via ND retry-on-open
      }
    }

    Resolver* resolver = nullptr;
    {
      ntcs::LockGuard lk(mu_);
      resolver = resolver_;
    }
    if (resolver == nullptr) return last;
    auto fwd = resolver->forward(cur);  // recursive naming-service call
    if (fwd) {
      static metrics::Counter& m_reloc = metrics::counter("lcm.relocations");
      m_reloc.inc();
      ntcs::LockGuard lk(mu_);
      forwards_[cur] = fwd.value();
      ++stats_.relocations;
      log_.info("relocated " + cur.to_string() + " -> " +
                fwd.value().to_string());
      continue;
    }
    if (fwd.code() == ntcs::Errc::still_alive) {
      continue;  // module lives; re-establish "exactly as during an
                 // initial connection" (§3.5)
    }
    return fwd.error();
  }
  return last;
}

ntcs::Status LcmLayer::send(UAdd dst, const Payload& p, SendOptions opts) {
  if (!dst.valid()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "invalid destination");
  }
  static metrics::Counter& m_sends = metrics::counter("lcm.sends");
  count_app_send(m_sends, opts.internal);
  TimeSource time_source;
  MonitorHook monitor;
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.sends;
    if (!opts.internal) {
      time_source = time_source_;
      monitor = monitor_hook_;
    }
  }
  // §6.1: "As the application level Send is initiated, control passes to
  // the LCM-layer, which generates a time stamp for monitor data" — which
  // may itself communicate, recursively.
  const std::int64_t ts = time_source ? time_source() : 0;
  auto sent = send_message(dst, wire::LcmKind::data, 0, p, opts,
                           cfg_.fault_retries);
  if (!sent) return sent.error();
  if (monitor) {
    MonitorSample s;
    s.src = identity_->uadd();
    s.dst = dst;
    s.bytes = p.image.size();
    s.timestamp_ns = ts;
    s.request = false;
    monitor(s);  // "the LCM-layer sends data to the monitor by calling
                 // itself" — the hook recurses into dgram() below.
  }
  return ntcs::Status::success();
}

std::shared_ptr<LcmSendWindow> LcmLayer::window_for(UAdd dst) {
  ntcs::LockGuard lk(mu_);
  auto& w = windows_[dst];
  if (!w) {
    w = std::make_shared<LcmSendWindow>();
    w->depth = std::max(1, cfg_.window_depth);
    // Per-circuit configured depth (same for every window; set, not add,
    // so circuit churn cannot inflate it).
    static metrics::Gauge& g_depth = metrics::gauge("lcm.window.depth");
    g_depth.set(w->depth);
  }
  return w;
}

ntcs::Status LcmLayer::acquire_window(PendingRequest& req) {
  static metrics::Counter& m_stalls = metrics::counter("lcm.window_stalls");
  static metrics::Counter& m_rejects =
      metrics::counter("lcm.admission_rejects");
  static metrics::Counter& m_pauses = metrics::counter("lcm.busy_pauses");
  LcmSendWindow& w = *req.window;
  ntcs::UniqueLock lk(w.mu);
  if (w.closed) {
    return ntcs::Status(ntcs::Errc::shutdown, "module shutting down");
  }
  // ---- admission control (overload control; non-internal only — the
  // control plane must keep flowing while the data plane is paused) ------
  if (!req.opts.internal) {
    auto now = std::chrono::steady_clock::now();
    if (w.busy_until > now) {
      // The destination shed a request of ours: honor its busy frame by
      // pausing admission instead of hammering it with retries. A caller
      // whose deadline falls inside the pause cannot be served — reject
      // fast with the retriable overloaded.
      if (w.busy_until >= req.deadline) {
        m_rejects.inc();
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        return ntcs::Status(ntcs::Errc::overloaded,
                            "destination busy past request deadline");
      }
      m_pauses.inc();
      busy_pauses_.fetch_add(1, std::memory_order_relaxed);
      health::journal_note(health::EventKind::busy, "lcm", "busy_pause");
      while (!w.closed) {
        now = std::chrono::steady_clock::now();
        if (w.busy_until <= now) break;
        if (w.busy_until >= req.deadline) {
          m_rejects.inc();
          admission_rejects_.fetch_add(1, std::memory_order_relaxed);
          return ntcs::Status(ntcs::Errc::overloaded,
                              "destination busy past request deadline");
        }
        w.cv.wait_until(lk, w.busy_until);
      }
      if (w.closed) {
        return ntcs::Status(ntcs::Errc::shutdown, "module shutting down");
      }
    }
    // Deadline-aware fast reject: with `backlog` requests ahead of us and
    // `depth` served concurrently at ~avg_service_ns each, the expected
    // wait is avg * backlog / depth. When that already overshoots the
    // caller's deadline, parking the caller only manufactures a timeout —
    // reject now, retriably, while the caller can still do something else.
    if (w.avg_service_ns != 0) {
      const std::uint64_t backlog =
          w.queue.size() + static_cast<std::uint64_t>(w.in_flight);
      const std::uint64_t est_ns =
          w.avg_service_ns * backlog / static_cast<std::uint64_t>(w.depth);
      if (now + std::chrono::nanoseconds(est_ns) > req.deadline) {
        m_rejects.inc();
        admission_rejects_.fetch_add(1, std::memory_order_relaxed);
        return ntcs::Status(ntcs::Errc::overloaded,
                            "queue-depth wait estimate exceeds deadline");
      }
    }
  }
  if (w.queue.empty() && w.in_flight < w.depth) {
    ++w.in_flight;
    window_inflight_gauge().add(1);
    pipeline_depth_hist().record(static_cast<std::uint64_t>(w.in_flight));
    req.admitted_at = std::chrono::steady_clock::now();
    req.window_held.store(true);
    return ntcs::Status::success();
  }
  // Full window (or earlier arrivals still queued — no overtaking): park
  // at the back and wait to be admitted, bounded by this request's own
  // deadline. A caller already past its deadline is not parked at all —
  // an expired waiter can only wedge the queue.
  if (std::chrono::steady_clock::now() >= req.deadline) {
    return ntcs::Status(ntcs::Errc::timeout,
                        "send window full until request deadline");
  }
  m_stalls.inc();
  window_stalls_.fetch_add(1, std::memory_order_relaxed);
  const bool stall_traced = trace::enabled() && req.trace.valid();
  const std::int64_t stall_start = stall_traced ? trace::now_ns() : 0;
  auto node = std::make_shared<LcmSendWindow::Waiter>();
  node->deadline = req.deadline;
  w.queue.push_back(node);
  w.publish_beacon_locked();
  while (!node->admitted && !node->expired && !w.closed) {
    if (w.cv.wait_until(lk, req.deadline) == std::cv_status::timeout &&
        !node->admitted) {
      // The sweeper may have removed the node already (expired); only
      // erase what is still queued.
      auto it = std::find(w.queue.begin(), w.queue.end(), node);
      if (it != w.queue.end()) w.queue.erase(it);
      w.publish_beacon_locked();
      return ntcs::Status(ntcs::Errc::timeout,
                          "send window full until request deadline");
    }
  }
  if (node->expired) {  // swept by grant_locked at our deadline
    return ntcs::Status(ntcs::Errc::timeout,
                        "send window full until request deadline");
  }
  if (!node->admitted) {  // window closed by shutdown
    auto it = std::find(w.queue.begin(), w.queue.end(), node);
    if (it != w.queue.end()) w.queue.erase(it);
    w.publish_beacon_locked();
    return ntcs::Status(ntcs::Errc::shutdown, "module shutting down");
  }
  req.admitted_at = std::chrono::steady_clock::now();
  req.window_held.store(true);
  if (stall_traced) {
    trace::record_child(req.trace, "lcm", "window_stall", identity_->name(),
                        stall_start, trace::now_ns());
  }
  return ntcs::Status::success();
}

void LcmLayer::release_window(PendingRequest& req) {
  if (!req.window || !req.window_held.exchange(false)) return;
  static metrics::Counter& m_sweeps = metrics::counter("lcm.waiter_sweeps");
  LcmSendWindow& w = *req.window;
  const auto now = std::chrono::steady_clock::now();
  const auto held = now - req.admitted_at;
  std::uint64_t swept = 0;
  {
    ntcs::LockGuard lk(w.mu);
    --w.in_flight;
    window_inflight_gauge().sub(1);
    if (held.count() > 0) {
      // Slot-hold EWMA (alpha 1/8): the admission estimate's denominator.
      const auto e = static_cast<std::uint64_t>(held.count());
      w.avg_service_ns =
          w.avg_service_ns == 0 ? e : (7 * w.avg_service_ns + e) / 8;
    }
    swept = w.grant_locked(pipeline_depth_hist(), now);
  }
  if (swept != 0) {
    m_sweeps.inc(swept);
    waiter_sweeps_.fetch_add(swept, std::memory_order_relaxed);
  }
  w.cv.notify_all();
}

ntcs::Status LcmLayer::issue(const RequestTicket& t) {
  if (auto st = acquire_window(*t); !st.ok()) return st;
  const std::uint32_t req_id = next_req_id_.fetch_add(1);
  {
    ntcs::LockGuard sl(t->mu);
    t->result.reset();
  }
  t->req_id = req_id;
  t->via_lvc.store(0);
  t->via_ivc.store(0);
  {
    ntcs::LockGuard lk(mu_);
    pending_[req_id] = t;
  }
  auto sent = send_message(t->dst, wire::LcmKind::request, req_id, t->payload,
                           t->opts, cfg_.fault_retries);
  if (!sent) {
    {
      ntcs::LockGuard lk(mu_);
      pending_.erase(req_id);
    }
    release_window(*t);
    return sent.error();
  }
  t->via_lvc.store(sent.value().lvc);
  t->via_ivc.store(sent.value().ivc);
  return ntcs::Status::success();
}

ntcs::Result<RequestTicket> LcmLayer::request_async(UAdd dst, const Payload& p,
                                                    SendOptions opts) {
  if (!dst.valid()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "invalid destination");
  }
  static metrics::Counter& m_requests = metrics::counter("lcm.requests");
  count_app_send(m_requests, opts.internal);
  TimeSource time_source;
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.requests;
    if (!opts.internal) time_source = time_source_;
  }
  auto t = std::make_shared<PendingRequest>();
  t->dst = dst;
  t->payload = p;
  t->opts = opts;
  // The deadline is absolute from the moment of issue and is shared by
  // every retry; nanosecond-resolution arithmetic end to end, so sub-ms
  // timeouts are honoured exactly (never truncated to 0 = instant or
  // rounded into a coarser unit).
  const auto timeout =
      opts.timeout.count() != 0 ? opts.timeout : cfg_.request_timeout;
  t->deadline = std::chrono::steady_clock::now() + timeout;
  t->retries_left = cfg_.fault_retries;
  t->ts = time_source ? time_source() : 0;
  t->trace = trace::current();
  t->window = window_for(dst);
  if (auto st = issue(t); !st.ok()) return st.error();
  return t;
}

ntcs::Result<Reply> LcmLayer::await(const RequestTicket& t) {
  if (!t || t->awaited) {
    return ntcs::Error(ntcs::Errc::bad_argument, "invalid request ticket");
  }
  t->awaited = true;
  for (;;) {
    ntcs::Result<Reply> outcome =
        ntcs::Error(ntcs::Errc::timeout, "reply timed out");
    {
      ntcs::UniqueLock sl(t->mu);
      if (t->cv.wait_until(sl, t->deadline,
                           [&] { return t->result.has_value(); })) {
        outcome = std::move(*t->result);
      }
    }
    release_window(*t);
    {
      ntcs::LockGuard lk(mu_);
      pending_.erase(t->req_id);
    }
    if (outcome.ok()) {
      MonitorHook monitor;
      if (!t->opts.internal) {
        ntcs::LockGuard lk(mu_);
        monitor = monitor_hook_;
      }
      if (monitor) {
        MonitorSample s;
        s.src = identity_->uadd();
        s.dst = t->dst;
        s.bytes = t->payload.image.size();
        s.timestamp_ns = t->ts;
        s.request = true;
        monitor(s);
      }
      return outcome;
    }
    const ntcs::Error last = outcome.error();
    // The circuit died while this request was pending: run the §3.5
    // fault/relocation machinery once more — for this request alone, with
    // a fresh correlation ID, under the original deadline. Other requests
    // multiplexed on the same circuit recover (or fail) independently. A
    // plain timeout is surfaced to the caller — the peer may simply be
    // slow, and retrying a non-idempotent request is the transaction
    // manager's business, not ours (§3.5).
    if (last.code() != ntcs::Errc::address_fault || t->retries_left <= 0 ||
        std::chrono::steady_clock::now() >= t->deadline) {
      return last;
    }
    --t->retries_left;
    {
      // The awaiting thread is not the issuing thread's call stack: re-
      // enter the request's context so the re-sent frame (and every span
      // below it) stays on the original trace.
      trace::ContextScope tscope(t->trace);
      if (trace::enabled() && t->trace.valid()) {
        trace::record_event(t->trace, "lcm", "reissue", identity_->name(),
                            static_cast<std::uint32_t>(t->retries_left));
      }
      if (auto st = issue(t); !st.ok()) return st.error();
    }
  }
}

ntcs::Result<Reply> LcmLayer::request(UAdd dst, const Payload& p,
                                      SendOptions opts) {
  static metrics::Histogram& m_rtt = metrics::histogram("lcm.request_rtt_ns");
  metrics::ScopedTimer rtt_timer(m_rtt);
  auto t = request_async(dst, p, opts);
  if (!t) return t.error();
  return await(t.value());
}

ntcs::Status LcmLayer::reply(const ReplyCtx& ctx, const Payload& p) {
  if (!ctx.valid()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "invalid reply context");
  }
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.replies;
  }
  static metrics::Counter& m_replies = metrics::counter("lcm.replies");
  m_replies.inc();
  auto peer = ip_.nd().peer(ctx.via.lvc);
  const convert::Arch peer_arch = peer ? peer->arch : identity_->arch();
  convert::XferMode mode = convert::XferMode::image;
  auto body = encode_body(p, peer_arch, mode);
  if (!body) return body.error();

  wire::LcmHeader hdr;
  hdr.kind = wire::LcmKind::reply;
  hdr.flags = wire::kLcmFlagInternal;
  hdr.src = identity_->uadd();
  hdr.dst = ctx.requester;
  hdr.req_id = ctx.req_id;
  hdr.mode = convert::xfer_mode_wire_id(mode);
  hdr.src_arch = convert::arch_wire_id(identity_->arch());
  // Replies always carry kLcmFlagInternal (they are circuit bookkeeping,
  // not new application traffic), so trace stamping keys on the request's
  // context, never on the internal bit: a traced request gets a traced
  // reply riding the same trace ID back.
  if (trace::enabled() && ctx.trace.valid()) {
    hdr.flags |= wire::kLcmFlagTraced;
    hdr.trace_hi = ctx.trace.hi;
    hdr.trace_lo = ctx.trace.lo;
    hdr.trace_parent = ctx.trace.span;
    trace::ContextScope tscope(ctx.trace);
    const std::int64_t reply_start = trace::now_ns();
    // Replies ride the inbound circuit; if it died the requester recovers.
    auto st = ip_.send(ctx.via, wire::encode_lcm(hdr, body.value()));
    trace::record_child(ctx.trace, "lcm", "reply", identity_->name(),
                        reply_start, trace::now_ns());
    return st;
  }
  // Replies ride the inbound circuit; if it died the requester recovers.
  return ip_.send(ctx.via, wire::encode_lcm(hdr, body.value()));
}

ntcs::Status LcmLayer::dgram(UAdd dst, const Payload& p, SendOptions opts) {
  if (!dst.valid()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "invalid destination");
  }
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.dgrams;
  }
  static metrics::Counter& m_dgrams = metrics::counter("lcm.dgrams");
  count_app_send(m_dgrams, opts.internal);
  // Connectionless: one resolution attempt, no relocation recovery.
  auto sent = send_message(dst, wire::LcmKind::dgram, 0, p, opts, 1);
  if (!sent) return sent.error();
  return ntcs::Status::success();
}

ntcs::Result<Incoming> LcmLayer::receive(std::chrono::nanoseconds timeout) {
  return app_queue_.pop_for(timeout);
}

void LcmLayer::on_ip_event(IpEvent ev) {
  switch (ev.kind) {
    case IpEvent::Kind::message: {
      auto decoded = wire::decode_lcm(ev.lcm_msg);
      if (!decoded) {
        static metrics::Counter& m_decode_drops =
            metrics::counter("lcm.decode_drops");
        m_decode_drops.inc();
        log_.warn("dropping undecodable LCM message: " +
                  decoded.error().to_string());
        return;
      }
      wire::LcmMessage& m = decoded.value();

      // TAdd purge (§3.4): a peer that introduced itself with a TAdd is
      // re-keyed the moment a message carries its real UAdd.
      if (m.header.src.valid() && !m.header.src.is_temporary()) {
        auto peer = ip_.nd().peer(ev.via.lvc);
        if (peer && peer->uadd.is_temporary()) {
          ip_.nd().promote_peer(ev.via.lvc, m.header.src);
          ntcs::LockGuard lk(mu_);
          ++stats_.tadds_promoted;
        }
        // Cache the reverse mapping so sends to this peer reuse the
        // inbound circuit (and pick up its post-relocation incarnation).
        ntcs::LockGuard lk(mu_);
        conns_[m.header.src] = ev.via;
      }

      Incoming in;
      in.src = m.header.src;
      in.payload = std::move(m.payload);
      in.mode = static_cast<convert::XferMode>(m.header.mode);
      in.src_arch = convert::arch_from_wire_id(m.header.src_arch)
                        .value_or(convert::Arch::vax780);
      in.internal = (m.header.flags & wire::kLcmFlagInternal) != 0;
      if ((m.header.flags & wire::kLcmFlagTraced) != 0) {
        in.trace = trace::TraceContext{m.header.trace_hi, m.header.trace_lo,
                                       m.header.trace_parent};
      }

      static metrics::Counter& m_received = metrics::counter("lcm.received");
      static metrics::Counter& m_shed = metrics::counter("lcm.shed");
      switch (m.header.kind) {
        case wire::LcmKind::data:
        case wire::LcmKind::dgram: {
          {
            ntcs::LockGuard lk(mu_);
            ++stats_.received;
          }
          m_received.inc();
          if (trace::enabled() && in.trace.valid()) {
            trace::record_event(in.trace, "lcm", "deliver",
                                identity_->name());
          }
          const trace::TraceContext tctx = in.trace;
          const bool internal = in.internal;
          auto st = internal ? app_queue_.push_control(std::move(in))
                             : app_queue_.push(std::move(in));
          if (!st.ok() && st.code() == ntcs::Errc::no_resource) {
            // Bounded queue full: shed. Data and dgrams have no reply
            // channel to signal on — the drop is visible in the metric and
            // the sender's trace (like a frame lost in transit; dgrams are
            // best-effort by contract anyway).
            m_shed.inc();
            shed_.fetch_add(1, std::memory_order_relaxed);
            health::journal_note(health::EventKind::shed, "lcm", "shed_data",
                                 cfg_.max_inbound_queue);
            if (trace::enabled() && tctx.valid()) {
              trace::record_event(tctx, "lcm", "shed", identity_->name());
            }
          }
          return;
        }
        case wire::LcmKind::request: {
          in.is_request = true;
          in.reply_ctx =
              ReplyCtx{ev.via, m.header.req_id, m.header.src, in.trace};
          {
            ntcs::LockGuard lk(mu_);
            ++stats_.received;
          }
          m_received.inc();
          if (trace::enabled() && in.trace.valid()) {
            trace::record_event(in.trace, "lcm", "deliver",
                                identity_->name());
          }
          const trace::TraceContext tctx = in.trace;
          const bool internal = in.internal;
          const std::uint32_t req_id = m.header.req_id;
          const UAdd requester = m.header.src;
          auto st = internal ? app_queue_.push_control(std::move(in))
                             : app_queue_.push(std::move(in));
          if (!st.ok() && st.code() == ntcs::Errc::no_resource) {
            // Bounded queue full: shed the request and tell the sender so
            // with a busy reply — it pauses admission toward us instead of
            // retrying, and its caller gets the retriable overloaded.
            m_shed.inc();
            shed_.fetch_add(1, std::memory_order_relaxed);
            health::journal_note(health::EventKind::shed, "lcm", "shed_req",
                                 cfg_.max_inbound_queue);
            if (trace::enabled() && tctx.valid()) {
              trace::record_event(tctx, "lcm", "shed", identity_->name());
            }
            wire::LcmHeader bh;
            bh.kind = wire::LcmKind::reply;
            bh.flags = wire::kLcmFlagInternal | wire::kLcmFlagBusy;
            bh.src = identity_->uadd();
            bh.dst = requester;
            bh.req_id = req_id;
            bh.mode = convert::xfer_mode_wire_id(convert::XferMode::image);
            bh.src_arch = convert::arch_wire_id(identity_->arch());
            if ((ip_.send(ev.via, wire::encode_lcm(bh, {}))).ok()) {
              static metrics::Counter& m_busy =
                  metrics::counter("lcm.busy_frames");
              m_busy.inc();
              busy_frames_.fetch_add(1, std::memory_order_relaxed);
            }
          }
          return;
        }
        case wire::LcmKind::reply: {
          if ((m.header.flags & wire::kLcmFlagBusy) != 0) {
            // The peer shed our request (back-pressure): pause admission
            // toward it and fail the request retriably — await() does NOT
            // re-send (only address faults retry; hammering an overloaded
            // peer is exactly what the busy frame asks us not to do).
            static metrics::Counter& m_busy_recv =
                metrics::counter("lcm.busy_received");
            m_busy_recv.inc();
            health::journal_note(health::EventKind::busy, "lcm", "busy_recv");
            RequestTicket t;
            {
              ntcs::LockGuard lk(mu_);
              auto it = pending_.find(m.header.req_id);
              if (it != pending_.end()) t = it->second;
            }
            if (t && t->window) {
              ntcs::LockGuard wl(t->window->mu);
              t->window->busy_until =
                  std::chrono::steady_clock::now() + cfg_.busy_pause;
            }
            complete(m.header.req_id,
                     ntcs::Error(ntcs::Errc::overloaded,
                                 "request shed by overloaded receiver"));
            return;
          }
          Reply r;
          r.payload = std::move(in.payload);
          r.mode = in.mode;
          r.src_arch = in.src_arch;
          if (trace::enabled() && in.trace.valid()) {
            trace::record_event(in.trace, "lcm", "complete",
                                identity_->name());
          }
          // Correlation: the reply finds its request by ID, regardless of
          // how many requests are interleaved on this circuit.
          complete(m.header.req_id, std::move(r));
          return;
        }
      }
      return;
    }
    case IpEvent::Kind::ivc_closed: {
      // Every request pending on the dead circuit faults *individually*:
      // each awaiter observes address_fault on its own ticket and drives
      // its own §3.5 retry — there is no per-circuit failure sweep that
      // could cross-wire or double-complete requests.
      std::vector<RequestTicket> broken;
      {
        ntcs::LockGuard lk(mu_);
        for (auto it = conns_.begin(); it != conns_.end();) {
          if (it->second == ev.via) {
            reconnect_pending_.insert(it->first);
            it = conns_.erase(it);
          } else {
            ++it;
          }
        }
        for (auto& [id, t] : pending_) {
          if (t->via_lvc.load() == ev.via.lvc &&
              t->via_ivc.load() == ev.via.ivc) {
            broken.push_back(t);
          }
        }
      }
      for (auto& t : broken) {
        {
          ntcs::LockGuard sl(t->mu);
          if (!t->result) {
            t->result = ntcs::Error(ntcs::Errc::address_fault,
                                    "circuit closed while awaiting reply");
            t->cv.notify_all();
          }
        }
        release_window(*t);
      }
      return;
    }
  }
}

void LcmLayer::complete(std::uint32_t req_id, ntcs::Result<Reply> result) {
  RequestTicket t;
  {
    ntcs::LockGuard lk(mu_);
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // late reply after timeout: dropped
    t = it->second;
  }
  {
    ntcs::LockGuard sl(t->mu);
    if (!t->result) {
      t->result = std::move(result);
      t->cv.notify_all();
    }
  }
  // The request is finished the moment its result exists — its window slot
  // frees immediately, not when the awaiter gets scheduled.
  release_window(*t);
}

void LcmLayer::shutdown() {
  health::journal_note(health::EventKind::transition, "lcm", "shutdown");
  app_queue_.close();
  std::vector<RequestTicket> pending;
  std::vector<std::shared_ptr<LcmSendWindow>> windows;
  {
    ntcs::LockGuard lk(mu_);
    for (auto& [id, t] : pending_) pending.push_back(t);
    for (auto& [dst, w] : windows_) windows.push_back(w);
  }
  // Wake window waiters first so nobody blocks on a slot that a dying
  // request will never free.
  for (auto& w : windows) {
    {
      ntcs::LockGuard lk(w->mu);
      w->closed = true;
    }
    w->cv.notify_all();
  }
  for (auto& t : pending) {
    {
      ntcs::LockGuard sl(t->mu);
      if (!t->result) {
        t->result =
            ntcs::Error(ntcs::Errc::shutdown, "module shutting down");
        t->cv.notify_all();
      }
    }
    release_window(*t);
  }
}

UAdd LcmLayer::current_target(UAdd dst) { return chase_forward(dst); }

LcmLayer::Stats LcmLayer::stats() const {
  ntcs::LockGuard lk(mu_);
  Stats out = stats_;
  out.window_stalls = window_stalls_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.busy_frames = busy_frames_.load(std::memory_order_relaxed);
  out.busy_pauses = busy_pauses_.load(std::memory_order_relaxed);
  out.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  out.waiter_sweeps = waiter_sweeps_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ntcs::core
