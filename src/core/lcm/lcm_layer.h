// lcm_layer.h — the Logical Connection Maintenance Layer (paper §2.2, §3.5).
//
// "Support for dynamic reconfiguration is handled by the Logical Connection
// Maintenance Layer. Its primary function is to relocate modules which may
// have moved, and to recover from broken connections, though it also
// provides a connectionless protocol. No explicit open or close primitives
// are provided at the Nucleus interface; messages are simply sent/received
// directly to/from the desired destinations, with the underlying IVCs
// being established as needed."
//
// The address-fault path (§3.5): a failed send closes the circuit; the
// LCM-Layer consults its local forwarding-address table, then the
// NSP-Layer (an address-fault handler querying the naming service for a
// forwarding UAdd), installs the new mapping, re-establishes the circuit
// exactly as an initial connection, and resends.
//
// This layer also hosts the two recursion hooks of §6.1 — the distributed
// time stamp taken on every monitored send, and the monitor record emitted
// after it — plus the recursion guard that patches the Name-Server
// dead-circuit loop of §6.3 (reproducible by setting
// LcmConfig::reproduce_ns_fault_bug).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/annotated.h"
#include "common/backoff.h"
#include "common/trace.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/log.h"
#include "common/queue.h"
#include "common/rng.h"
#include "convert/mode.h"
#include "core/identity.h"
#include "core/ip/ip_layer.h"

namespace ntcs::core {

/// Outbound message body: the contiguous memory image plus the
/// application-supplied pack routine (§5.1). When `pack` is empty the
/// payload is treated as representation-free bytes and always travels in
/// image mode (the application asserts compatibility).
struct Payload {
  ntcs::Bytes image;
  std::function<ntcs::Result<ntcs::Bytes>()> pack;

  static Payload raw(ntcs::Bytes bytes) {
    Payload p;
    p.image = std::move(bytes);
    return p;
  }
};

/// Context needed to answer a request: replies travel back down the
/// circuit the request arrived on — no address resolution involved.
struct ReplyCtx {
  IvcHandle via;
  std::uint32_t req_id = 0;
  UAdd requester;
  /// The requester's trace context as carried in the request's wire header
  /// (invalid when the request was untraced). reply() re-enters it so the
  /// reply leg joins the requester's trace.
  trace::TraceContext trace;

  bool valid() const { return via.valid(); }
};

/// One received message, as handed to the application (or the Name Server,
/// or a DRTS service — they all use the same interface).
struct Incoming {
  UAdd src;
  ntcs::Bytes payload;
  convert::XferMode mode = convert::XferMode::image;
  convert::Arch src_arch = convert::Arch::vax780;
  bool is_request = false;
  bool internal = false;
  ReplyCtx reply_ctx;
  /// Trace context from the wire header (invalid when untraced); lets a
  /// receiving module parent further work on the sender's trace.
  trace::TraceContext trace;
};

/// A synchronous request's answer.
struct Reply {
  ntcs::Bytes payload;
  convert::XferMode mode = convert::XferMode::image;
  convert::Arch src_arch = convert::Arch::vax780;
};

struct SendOptions {
  /// NTCS/DRTS-internal traffic: suppresses the monitoring and time hooks
  /// (§6.1: "time correction and monitoring are disabled here, to avoid
  /// the obvious infinite recursion").
  bool internal = false;
  std::chrono::nanoseconds timeout{std::chrono::seconds(5)};
};

/// One in-flight pipelined request: an entry in the LCM-Layer's
/// pending-request table, keyed by the correlation ID stamped into the
/// LCM wire header. Opaque to callers — obtained from request_async(),
/// redeemed with await().
struct PendingRequest;
using RequestTicket = std::shared_ptr<PendingRequest>;

/// Per-destination sliding send window (internal).
struct LcmSendWindow;

/// The naming-service face the LCM-Layer sees (implemented by the
/// NSP-Layer — the recursion of §3.1).
class Resolver {
 public:
  virtual ~Resolver() = default;
  /// UAdd -> physical address + logical network.
  virtual ntcs::Result<ResolvedDest> resolve(UAdd uadd) = 0;
  /// Address-fault query (§3.5): has `old` been replaced? Errors:
  /// still_alive (reconnect to the same module), not_found (no successor).
  virtual ntcs::Result<UAdd> forward(UAdd old) = 0;
};

/// Corrected-time source (DRTS time service; §6.1).
using TimeSource = std::function<std::int64_t()>;

/// One monitor data point, emitted after each successful monitored send.
struct MonitorSample {
  UAdd src;
  UAdd dst;
  std::uint64_t bytes = 0;
  std::int64_t timestamp_ns = 0;
  bool request = false;
};
using MonitorHook = std::function<void(const MonitorSample&)>;

/// Exception reporting (§6.3: "a running table of errors could be
/// maintained and monitored"). Called on every handled address fault and
/// recursion-guard trip; the DRTS error-log client is the usual sink.
using ErrorHook =
    std::function<void(std::string_view layer, ntcs::Errc code,
                       std::string_view text)>;

struct LcmConfig {
  std::chrono::nanoseconds request_timeout{std::chrono::seconds(5)};
  /// Address-fault recovery attempts per send.
  int fault_retries = 3;
  /// Sliding send-window depth per destination circuit: how many requests
  /// may be outstanding toward one destination before further callers
  /// block (fair FIFO wakeup). Values below 1 are clamped to 1.
  int window_depth = 32;
  /// Backoff between recovery attempts: re-establishment "exactly as an
  /// initial connection" (§3.5) against a flapping or mid-reconfiguration
  /// destination should not spin at full speed.
  BackoffPolicy fault_backoff{std::chrono::milliseconds(1),
                              std::chrono::milliseconds(16), 2.0, 0.5};
  /// Depth bound on NTCS-internal recursion (the §6.3 patch).
  int max_recursion_depth = 8;
  /// Re-enable the paper's Name-Server dead-circuit recursion bug (§6.3)
  /// for demonstration: the fault handler consults the naming service
  /// even when the faulted destination *is* the Name Server.
  bool reproduce_ns_fault_bug = false;
  /// Bound on the inbound application-message queue (messages). At the
  /// bound further data-plane deliveries are shed: data/dgrams are dropped
  /// (counted in lcm.shed), requests additionally earn a busy reply frame
  /// that pauses the sender's admission. 0 = unbounded (tests only).
  std::size_t max_inbound_queue = 4096;
  /// Slots of max_inbound_queue reserved for control-class traffic —
  /// NSP lookups, DRTS harvests, anything sent with opts.internal — so a
  /// data-plane overload storm cannot starve the control plane of queue
  /// admission.
  std::size_t control_reserve = 256;
  /// How long a sender pauses request admission toward a destination after
  /// that destination sheds one of its requests (busy-frame back-pressure,
  /// wire::kLcmFlagBusy). Admission resumes automatically; callers whose
  /// deadline falls inside the pause are rejected fast with overloaded.
  std::chrono::nanoseconds busy_pause{std::chrono::milliseconds(2)};
};

class LcmLayer {
 public:
  LcmLayer(IpLayer& ip, std::shared_ptr<Identity> identity,
           LcmConfig cfg = {});

  LcmLayer(const LcmLayer&) = delete;
  LcmLayer& operator=(const LcmLayer&) = delete;

  void set_resolver(Resolver* r);
  void set_time_source(TimeSource t);
  void set_monitor_hook(MonitorHook m);
  void set_error_hook(ErrorHook e);

  /// Load the well-known address table (§3.4) so the Name Server and prime
  /// gateways are reachable before — and without — any naming service.
  /// Replica entries become failover candidates: when the circuit to the
  /// Name Server faults, the patched handler (§6.3) rotates to the next
  /// candidate's physical address.
  void preload_well_known(const WellKnownTable& wk);

  /// Pre-resolve a destination (infrastructure use: the primary Name
  /// Server addresses its replicas this way; no resolver could).
  void cache_destination(UAdd uadd, ResolvedDest dest);

  /// Asynchronous send on a (virtual) conversation.
  ntcs::Status send(UAdd dst, const Payload& p, SendOptions opts = {});

  /// Synchronous send/receive/reply: send a request, wait for the reply.
  /// Equivalent to request_async() + await().
  ntcs::Result<Reply> request(UAdd dst, const Payload& p,
                              SendOptions opts = {});

  /// Pipelined request issue: stamps a fresh correlation ID, admits the
  /// request through the destination's send window (blocking fairly when
  /// the window is full), sends it, and returns without waiting for the
  /// reply — so N independent requests ride one IVC concurrently. The
  /// request's deadline is fixed here (opts.timeout from now, with the
  /// configured default when zero) and covers admission, transmission,
  /// retries, and the reply wait.
  ntcs::Result<RequestTicket> request_async(UAdd dst, const Payload& p,
                                            SendOptions opts = {});

  /// Redeem a ticket: wait for the reply (or the ticket's deadline). If
  /// the circuit faults while the request is pending, the §3.5 recovery
  /// machinery runs *for this request alone* — it is re-sent with a fresh
  /// correlation ID against the relocated destination, under the same
  /// deadline — while other requests on the circuit fail and retry
  /// independently. await() may be called once per ticket.
  ntcs::Result<Reply> await(const RequestTicket& t);

  /// Answer a received request.
  ntcs::Status reply(const ReplyCtx& ctx, const Payload& p);

  /// Connectionless protocol: best effort, no relocation recovery.
  ntcs::Status dgram(UAdd dst, const Payload& p, SendOptions opts = {});

  /// Blocking receive of the next application-bound message.
  ntcs::Result<Incoming> receive(std::chrono::nanoseconds timeout);

  /// Pump integration (never blocks).
  void on_ip_event(IpEvent ev);

  /// Fail all waiters and close the receive queue.
  void shutdown();

  /// Where sends to `dst` currently go after forwarding (for tests).
  UAdd current_target(UAdd dst);

  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t requests = 0;
    std::uint64_t replies = 0;
    std::uint64_t dgrams = 0;
    std::uint64_t received = 0;
    std::uint64_t address_faults = 0;
    std::uint64_t relocations = 0;     // forwarding entries installed
    std::uint64_t reconnects = 0;      // circuit re-establishments
    std::uint64_t recursion_trips = 0; // guard rejections
    std::uint64_t tadds_promoted = 0;
    std::uint64_t window_stalls = 0;   // callers that blocked on a full window
    std::uint64_t shed = 0;            // inbound messages dropped at the bound
    std::uint64_t busy_frames = 0;     // busy replies sent back to requesters
    std::uint64_t busy_pauses = 0;     // admissions paused by a peer's busy
    std::uint64_t admission_rejects = 0;  // overloaded fast-rejects
    std::uint64_t waiter_sweeps = 0;   // expired waiters swept from windows
  };
  Stats stats() const;

 private:
  /// Follow the forwarding-address table (§3.5).
  UAdd chase_forward(UAdd dst);
  ntcs::Result<ResolvedDest> resolved_for(UAdd dst);
  /// Core send with circuit establishment and address-fault recovery.
  /// On success returns the IVC used.
  ntcs::Result<IvcHandle> send_message(UAdd dst, wire::LcmKind kind,
                                       std::uint32_t req_id, const Payload& p,
                                       const SendOptions& opts,
                                       int fault_retries);
  ntcs::Result<ntcs::Bytes> encode_body(const Payload& p,
                                        convert::Arch peer_arch,
                                        convert::XferMode& mode_out);
  /// (Re-)issue a pending request: window admission, fresh correlation ID,
  /// table insert, send.
  ntcs::Status issue(const RequestTicket& t);
  /// Deliver a result to the pending request with this correlation ID (or
  /// drop it if the request already finished) and free its window slot.
  void complete(std::uint32_t req_id, ntcs::Result<Reply> result);
  std::shared_ptr<LcmSendWindow> window_for(UAdd dst);
  ntcs::Status acquire_window(PendingRequest& req);
  void release_window(PendingRequest& req);

  IpLayer& ip_;
  std::shared_ptr<Identity> identity_;
  LcmConfig cfg_;
  ntcs::LayerLog log_;

  // lcm.state: outermost Nucleus lock — held while resolution results are
  // seeded into the ND physical cache (lcm.state < nd.state); never held
  // across IP-Layer opens/sends or window/request waits.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kLcmState, "lcm.state"};
  ntcs::Rng rng_ GUARDED_BY(mu_);  // fault-retry jitter
  std::unordered_map<UAdd, IvcHandle> conns_ GUARDED_BY(mu_);
  // Destinations whose circuit died underneath us (ivc_closed): the next
  // successful open toward one of these counts as a reconnect even when the
  // closed notification beat the send to the conns_ cleanup.
  std::unordered_set<UAdd> reconnect_pending_ GUARDED_BY(mu_);
  std::unordered_map<UAdd, UAdd> forwards_ GUARDED_BY(mu_);
  std::unordered_map<UAdd, ResolvedDest> resolved_cache_ GUARDED_BY(mu_);
  /// The pending-request table: correlation ID -> in-flight request. A
  /// retried request re-enters under its fresh ID; await() removes it.
  std::unordered_map<std::uint32_t, RequestTicket> pending_ GUARDED_BY(mu_);
  /// Per-destination send windows (a destination ≈ one circuit; conns_
  /// is keyed the same way).
  std::unordered_map<UAdd, std::shared_ptr<LcmSendWindow>> windows_
      GUARDED_BY(mu_);
  // sync: relaxed stat counter (bumped under window locks where taking
  // lcm.state would invert the rank order).
  std::atomic<std::uint64_t> window_stalls_{0};
  // sync: overload-control counters, relaxed — bumped on the pump thread
  // and under window locks, where taking lcm.state would invert the lock
  // order; same contract as window_stalls_.
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> busy_frames_{0};       // sync: as above
  std::atomic<std::uint64_t> busy_pauses_{0};       // sync: as above
  std::atomic<std::uint64_t> admission_rejects_{0};  // sync: as above
  std::atomic<std::uint64_t> waiter_sweeps_{0};      // sync: as above
  /// Name-Server candidates per well-known NS UAdd (the classic server
  /// plus one entry per shard): primary first, then standby/replicas. The
  /// address-fault path rotates through them instead of consulting the
  /// resolver — the §6.3 rule that the stack never asks the naming
  /// service about the naming service.
  struct NsCandidateSet {
    std::vector<ResolvedDest> dests;
    std::size_t idx = 0;
  };
  std::unordered_map<UAdd, NsCandidateSet> ns_candidates_ GUARDED_BY(mu_);
  Resolver* resolver_ = nullptr;
  TimeSource time_source_;
  MonitorHook monitor_hook_;
  ErrorHook error_hook_;
  // sync: request-ID allocator, relaxed fetch_add; IDs only need process
  // uniqueness within the pending_ window.
  std::atomic<std::uint32_t> next_req_id_{1};
  // bound: LcmConfig::max_inbound_queue, with control_reserve slots kept
  // for internal-class deliveries (overload control).
  ntcs::BlockingQueue<Incoming> app_queue_;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace ntcs::core
