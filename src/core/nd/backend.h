// backend.h — the STD-IF: the uniform virtual-circuit interface between
// the ND-Layer and a native IPCS (paper §2.2).
//
// "All machine and network communication dependencies are localized
// [in the ND-Layer], providing a uniform virtual circuit interface
// (STD-IF) for the remainder of the NTCS."
//
// This header is that localization boundary made explicit: everything the
// Nucleus needs from a native IPCS is expressed as the two abstract
// classes below, and nothing above the ND-Layer may name a concrete
// substrate type (lint.sh enforces the include discipline). Two backends
// implement it:
//
//   * simnet  (src/simnet/backend.h)  — the simulated fabric: in-process
//     machines/networks with latency, partitions and fault injection.
//   * realnet (src/realnet/tcp_backend.h) — real loopback TCP sockets:
//     one OS listener per port, one OS connection per channel,
//     length-prefixed frames, `host:port` physical addresses.
//
// The contract a backend must honour (exercised by the backend-
// parameterized conformance suite in tests/nd_test.cpp and
// tests/integration_test.cpp):
//
//   * bind() creates the communication resource and yields a port whose
//     phys() other modules can connect() to.
//   * connect() to an address nobody is bound at fails with a retryable
//     error (Errc::refused / timeout / address_fault); a malformed
//     address fails with Errc::bad_argument (open() aborts its retry
//     loop only for bad_argument/unsupported).
//   * A successful connect() is surfaced to the acceptor as an `opened`
//     delivery; each gather-sent frame arrives exactly once as a `data`
//     delivery, in send order per channel (absent injected faults);
//     close_channel()/port teardown surfaces as `closed` at the peer.
//   * After close(), pending and future recv_for() calls fail with
//     Errc::closed; every OS resource (socket, fd, thread) is released.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "convert/machine.h"

namespace ntcs::core {

/// A backend channel id. Node-local; the ND-Layer uses it verbatim as the
/// LVC id.
using IpcsChannelId = std::uint64_t;

enum class IpcsDeliveryKind : std::uint8_t {
  opened,  // a peer connected; payload empty, peer_phys = connector address
  data,    // one message frame
  closed,  // the peer (or the substrate) closed this channel
};

/// One item received from the IPCS through the STD-IF.
struct IpcsDelivery {
  IpcsDeliveryKind kind = IpcsDeliveryKind::data;
  IpcsChannelId chan = 0;
  ntcs::Bytes payload;
  std::string peer_phys;  // set for `opened` (advisory; the ND open
                          // exchange supersedes it with the peer's own
                          // published address)
};

/// A bound communication resource — "a TCP/IP port, or an Apollo MBX
/// server mailbox" (§3.2). Thread-safe; obtained from
/// IpcsBackend::bind(); must not outlive its backend.
class IpcsPort {
 public:
  virtual ~IpcsPort() = default;

  /// The port's physical address, in the backend's native format.
  virtual std::string phys() const = 0;

  /// Largest frame send() accepts (the ND-Layer fragments above this).
  virtual std::size_t mtu() const = 0;

  /// Open a channel to another bound port. Synchronous; the callee
  /// learns of the connection via an `opened` delivery.
  virtual ntcs::Result<IpcsChannelId> connect(const std::string& dst_phys) = 0;

  /// Gather-send one frame given as header + body, concatenated by the
  /// backend directly into its transmit path (the zero-copy
  /// fragmentation exit — the caller never materialises the frame).
  virtual ntcs::Status send(IpcsChannelId chan, ntcs::BytesView header,
                            ntcs::BytesView body) = 0;

  /// Receive the next delivery, waiting at most `timeout`. Errors:
  /// Errc::timeout (nothing arrived), Errc::closed (port torn down).
  virtual ntcs::Result<IpcsDelivery> recv_for(
      std::chrono::nanoseconds timeout) = 0;

  /// Close one channel; the peer gets a `closed` delivery.
  virtual ntcs::Status close_channel(IpcsChannelId chan) = 0;

  /// Unbind: all channels close (peers notified), pending receives drain
  /// then report Errc::closed. Idempotent.
  virtual void close() = 0;
};

/// One module's window onto a native IPCS: the factory for ports plus the
/// three environment facts the Nucleus needs from the machine it runs on
/// (architecture for the conversion layer, the local clock for the DRTS
/// time service, address liveness for the Name Server's purge check).
class IpcsBackend {
 public:
  virtual ~IpcsBackend() = default;

  /// Substrate name for logs/metrics/benches ("simnet.tcp", "simnet.mbx",
  /// "realnet.tcp").
  virtual std::string kind_name() const = 0;

  /// The local machine's data architecture (feeds Identity and the
  /// conversion layer's heterogeneity handling).
  virtual convert::Arch arch() const = 0;

  /// The local machine's clock (simnet: skewed virtual clock; realnet:
  /// the OS steady clock). Feeds the DRTS time service.
  virtual std::chrono::nanoseconds now() const = 0;

  /// Create the module's communication resource. `local_name` is
  /// advisory for TCP-like backends (a fresh port is assigned) and the
  /// mailbox pathname for MBX-like ones.
  virtual ntcs::Result<std::shared_ptr<IpcsPort>> bind(
      const std::string& local_name) = 0;

  /// Is anything currently bound at this physical address? (The OS-level
  /// liveness check the Name Server uses to decide whether an old
  /// address is "really inactive", §3.5.)
  virtual bool probe(const std::string& phys) = 0;
};

}  // namespace ntcs::core
