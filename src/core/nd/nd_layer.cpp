#include "core/nd/nd_layer.h"

#include <thread>

#include "common/health.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace ntcs::core {

namespace {

/// Live LVC count for the health plane; republished (set, not delta) after
/// every lvcs_ mutation while the layer lock is still held, so the gauge
/// can never drift from the table.
void publish_channels(std::size_t n) {
  static metrics::Gauge& g = metrics::gauge("nd.channels");
  g.set(static_cast<std::int64_t>(n));
}

}  // namespace

NdLayer::NdLayer(IpcsBackend& backend, std::string local_name,
                 std::shared_ptr<Identity> identity, NdConfig cfg)
    : backend_(backend),
      local_name_(std::move(local_name)),
      identity_(std::move(identity)),
      cfg_(cfg),
      log_("nd", identity_->name()),
      rng_(ntcs::seed_from(local_name_, 0x4E444C59ULL /* "NDLY" */)) {}

NdLayer::~NdLayer() { shutdown(); }

ntcs::Status NdLayer::bind() {
  auto port = backend_.bind(local_name_);
  if (!port) return port.error();
  port_ = std::move(port.value());
  identity_->set_phys(PhysAddr{port_->phys()});
  log_.debug("bound at " + port_->phys());
  return ntcs::Status::success();
}

PhysAddr NdLayer::local_phys() const {
  return port_ ? PhysAddr{port_->phys()} : PhysAddr{};
}

ntcs::Result<LvcId> NdLayer::open(const PhysAddr& dst) {
  if (!port_) {
    return ntcs::Error(ntcs::Errc::bad_argument, "ND-Layer not bound");
  }
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.opens_initiated;
  }
  static metrics::Counter& m_opens = metrics::counter("nd.opens");
  static metrics::Counter& m_retries = metrics::counter("nd.open_retries");
  static metrics::Histogram& m_open_ns = metrics::histogram("nd.open_ns");
  m_opens.inc();
  metrics::ScopedTimer open_timer(m_open_ns);
  // Retry on open (§2.2: "no automatic relocation or recovery from failed
  // channels (except for retry on open)"), spacing attempts with capped
  // exponential backoff + jitter so a flapping link is eventually caught
  // in its up phase and concurrent openers don't retry in lockstep.
  ntcs::Backoff backoff(cfg_.open_backoff);
  ntcs::Error last(ntcs::Errc::address_fault, "open never attempted");
  for (int attempt = 0; attempt < cfg_.open_attempts; ++attempt) {
    if (attempt != 0) {
      std::chrono::nanoseconds delay;
      {
        ntcs::LockGuard lk(mu_);
        delay = backoff.next(rng_);
        ++stats_.open_retries;
        health::journal_note(health::EventKind::retry, "nd", "open_retry",
                             static_cast<std::uint64_t>(attempt));
      }
      m_retries.inc();
      std::this_thread::sleep_for(delay);
    }
    auto chan = port_->connect(dst.blob);
    if (!chan) {
      last = chan.error();
      // A partitioned network will not heal within the retry window; a
      // malformed address never will.
      if (last.code() == ntcs::Errc::bad_argument ||
          last.code() == ntcs::Errc::unsupported) {
        return last;
      }
      continue;
    }
    const LvcId lvc = chan.value();
    auto waiter = std::make_shared<OpenWaiter>();
    {
      ntcs::LockGuard lk(mu_);
      LvcState st;
      st.initiated_by_us = true;
      st.peer.phys = dst;
      lvcs_[lvc] = std::move(st);
      open_waiters_[lvc] = waiter;
      publish_channels(lvcs_.size());
    }
    // The open exchange (§3.3): introduce ourselves; the pump thread fills
    // the waiter when the peer's ack arrives.
    wire::NdOpen intro;
    intro.src_uadd = identity_->uadd();
    intro.src_arch = convert::arch_wire_id(identity_->arch());
    intro.src_phys = port_->phys();
    auto sent = send_raw(lvc, wire::encode_nd_open(intro));
    if (!sent.ok()) {
      last = sent.error();
      {
        ntcs::LockGuard lk(mu_);
        lvcs_.erase(lvc);
        open_waiters_.erase(lvc);
        publish_channels(lvcs_.size());
      }
      // The IPCS channel exists even though the introduction never made
      // it out; without this close it would linger in the substrate (a
      // real socket fd, on the realnet backend) until port teardown.
      (void)port_->close_channel(lvc);
      continue;
    }
    ntcs::UniqueLock wl(waiter->mu);
    const bool got = waiter->cv.wait_for(
        wl, cfg_.open_ack_timeout, [&] { return waiter->result.has_value(); });
    {
      ntcs::LockGuard lk(mu_);
      open_waiters_.erase(lvc);
    }
    if (!got) {
      last = ntcs::Error(ntcs::Errc::timeout, "open ack timed out");
      (void)close(lvc);
      continue;
    }
    if (!waiter->result->ok()) {
      last = waiter->result->error();
      {
        ntcs::LockGuard lk(mu_);
        lvcs_.erase(lvc);
        publish_channels(lvcs_.size());
      }
      // Usually the channel died (the waiter was failed by a `closed`
      // delivery) and this is a no-op, but a nacked-yet-alive channel
      // must not be stranded in the substrate.
      (void)port_->close_channel(lvc);
      continue;
    }
    const PeerInfo& peer = waiter->result->value();
    if (peer.uadd.valid() && !peer.uadd.is_temporary()) {
      cache_phys(peer.uadd, dst);
    }
    log_.debug("opened LVC " + std::to_string(lvc) + " to " + dst.blob +
               " peer=" + peer.uadd.to_string());
    return lvc;
  }
  return last;
}

ntcs::Status NdLayer::send(LvcId lvc, ntcs::BytesView ip_envelope) {
  if (!port_) {
    return ntcs::Status(ntcs::Errc::bad_argument, "ND-Layer not bound");
  }
  {
    ntcs::LockGuard lk(mu_);
    auto it = lvcs_.find(lvc);
    if (it == lvcs_.end()) {
      return ntcs::Status(ntcs::Errc::address_fault, "LVC is gone");
    }
    ++stats_.messages_sent;
  }
  static metrics::Counter& m_sent = metrics::counter("nd.msgs_sent");
  m_sent.inc();
  return send_raw(lvc, wire::encode_nd_payload(ip_envelope));
}

ntcs::Status NdLayer::send_raw(LvcId lvc, ntcs::BytesView nd_message) {
  // Hold the circuit's transmit lock across all fragments so concurrent
  // senders on the same LVC cannot interleave mid-message, and stamp each
  // fragment with the circuit's running frame number.
  std::shared_ptr<TxState> tx_state;
  {
    ntcs::LockGuard lk(mu_);
    auto it = lvcs_.find(lvc);
    if (it != lvcs_.end()) tx_state = it->second.tx;
  }
  if (!tx_state) {
    // The circuit vanished between lookup and here (or this is the open
    // handshake racing creation); private state preserves the invariant.
    tx_state = std::make_shared<TxState>();
  }
  static metrics::Counter& m_no_copy =
      metrics::counter("nd.frag_copies_avoided");
  const trace::TraceContext tctx =
      trace::enabled() ? trace::current() : trace::TraceContext{};
  const std::int64_t frag_start = tctx.valid() ? trace::now_ns() : 0;
  std::size_t frames = 0;
  {
    ntcs::LockGuard tx(tx_state->mu);
    // Zero-copy fragmentation: each frame is a small stack-encoded header
    // plus a view into the original message, gathered by the IPCS into the
    // delivery buffer. No per-fragment Bytes is ever materialised.
    for (const wire::FragSpan& s :
         wire::fragment_spans(nd_message, port_->mtu(), tx_state->seq)) {
      std::uint8_t hdr[wire::kFragHeaderMax];
      const std::size_t hn = wire::encode_frag_header(s, hdr);
      auto st = port_->send(lvc, ntcs::BytesView(hdr, hn), s.chunk);
      if (!st.ok()) {
        // Normalise the two IPCSs' failure vocabulary to an address fault,
        // except for conditions the layers above treat specially.
        if (st.code() == ntcs::Errc::partitioned ||
            st.code() == ntcs::Errc::too_big) {
          return st;
        }
        return ntcs::Status(ntcs::Errc::address_fault, st.error().what());
      }
      ++frames;
    }
  }
  m_no_copy.inc(frames);
  if (tctx.valid()) {
    trace::record_child(tctx, "nd", "fragment", identity_->name(), frag_start,
                        trace::now_ns(), static_cast<std::uint32_t>(frames));
  }
  {
    ntcs::LockGuard lk(mu_);
    stats_.frag_copies_avoided += frames;
  }
  return ntcs::Status::success();
}

ntcs::Status NdLayer::close(LvcId lvc) {
  {
    ntcs::LockGuard lk(mu_);
    if (lvcs_.erase(lvc) == 0) {
      return ntcs::Status(ntcs::Errc::not_found, "no such LVC");
    }
    ++stats_.lvcs_closed;
    publish_channels(lvcs_.size());
  }
  if (port_) (void)port_->close_channel(lvc);
  return ntcs::Status::success();
}

ntcs::Result<std::optional<NdEvent>> NdLayer::pump(
    std::chrono::nanoseconds timeout) {
  if (!port_) return ntcs::Error(ntcs::Errc::closed, "not bound");
  auto d = port_->recv_for(timeout);
  if (!d) return d.error();
  return handle_delivery(std::move(d.value()));
}

ntcs::Result<std::optional<NdEvent>> NdLayer::handle_delivery(IpcsDelivery d) {
  switch (d.kind) {
    case IpcsDeliveryKind::opened: {
      // IPCS-level connection; the NTCS-level open completes when the
      // peer's NdOpen arrives. On a self-connect (a module opening a
      // circuit to its own endpoint) the channel already has state created
      // by open() — overwriting it here would reset the transmit sequence
      // counter and the reassembler mid-handshake, so only create state
      // for channels some other endpoint initiated.
      ntcs::LockGuard lk(mu_);
      auto [it, inserted] = lvcs_.try_emplace(d.chan);
      if (inserted) it->second.peer.phys = PhysAddr{d.peer_phys};
      publish_channels(lvcs_.size());
      return std::optional<NdEvent>{};
    }
    case IpcsDeliveryKind::closed: {
      std::shared_ptr<OpenWaiter> waiter;
      bool known = false;
      {
        ntcs::LockGuard lk(mu_);
        known = lvcs_.erase(d.chan) != 0;
        if (known) ++stats_.lvcs_closed;
        publish_channels(lvcs_.size());
        auto wit = open_waiters_.find(d.chan);
        if (wit != open_waiters_.end()) {
          waiter = wit->second;
          open_waiters_.erase(wit);
        }
      }
      if (waiter) {
        ntcs::LockGuard wl(waiter->mu);
        waiter->result =
            ntcs::Error(ntcs::Errc::address_fault, "channel died during open");
        waiter->cv.notify_all();
      }
      if (!known) return std::optional<NdEvent>{};
      NdEvent ev;
      ev.kind = NdEvent::Kind::closed;
      ev.lvc = d.chan;
      return std::optional<NdEvent>{std::move(ev)};
    }
    case IpcsDeliveryKind::data: {
      static metrics::Counter& m_dedup = metrics::counter("nd.frames_deduped");
      static metrics::Counter& m_resync =
          metrics::counter("nd.frames_resynced");
      ntcs::Bytes complete;
      {
        ntcs::LockGuard lk(mu_);
        auto it = lvcs_.find(d.chan);
        if (it == lvcs_.end()) {
          return std::optional<NdEvent>{};  // stray frame after close
        }
        auto fed = it->second.reassembler.feed(d.payload);
        if (!fed) {
          log_.warn("dropping malformed frame: " + fed.error().to_string());
          return std::optional<NdEvent>{};
        }
        if (fed.value().dropped) {
          // Duplicate or stale frame from a misbehaving substrate — the
          // application must never see it twice (or late).
          ++stats_.frames_deduped;
          m_dedup.inc();
          if (trace::enabled()) {
            // A dropped frame never reassembles, so its trace context is
            // unrecoverable: a context-free event marks where dedup work
            // happened (exempt from the orphan check by its zero trace ID).
            trace::record_event(trace::TraceContext{}, "nd", "dedup",
                                identity_->name());
          }
          return std::optional<NdEvent>{};
        }
        if (fed.value().resynced || fed.value().orphan) {
          // Frames went missing mid-stream; that message is lost (ND
          // offers no retransmission — failures are "simply passed
          // upward") but the stream continues cleanly from here. Orphan
          // continuations (head frame lost before the resync point) are
          // part of the same loss event.
          ++stats_.frames_resynced;
          m_resync.inc();
          if (trace::enabled()) {
            trace::record_event(trace::TraceContext{}, "nd", "resync",
                                identity_->name());
          }
        }
        if (!fed.value().complete) return std::optional<NdEvent>{};
        complete = it->second.reassembler.take();
      }
      if (trace::enabled()) {
        // Receive side has no thread-local context: peek it out of the
        // reassembled frame (ND prologue -> IP data -> LCM trace words).
        if (auto tw = wire::peek_nd_trace(complete)) {
          trace::record_event(
              trace::TraceContext{tw->hi, tw->lo, tw->parent}, "nd",
              "reassemble", identity_->name(),
              static_cast<std::uint32_t>(complete.size()));
        }
      }
      return handle_message(d.chan, std::move(complete));
    }
  }
  return std::optional<NdEvent>{};
}

ntcs::Result<std::optional<NdEvent>> NdLayer::handle_message(LvcId lvc,
                                                             ntcs::Bytes msg) {
  auto decoded = wire::decode_nd(msg);
  if (!decoded) {
    log_.warn("dropping undecodable ND message: " +
              decoded.error().to_string());
    return std::optional<NdEvent>{};
  }
  wire::NdMessage& m = decoded.value();
  switch (m.kind) {
    case wire::NdKind::open: {
      {
        ntcs::LockGuard lk(mu_);
        auto it = lvcs_.find(lvc);
        if (it == lvcs_.end()) return std::optional<NdEvent>{};
        it->second.peer.uadd = m.open.src_uadd;
        auto arch = convert::arch_from_wire_id(m.open.src_arch);
        it->second.peer.arch = arch.value_or(convert::Arch::vax780);
        it->second.peer.phys = PhysAddr{m.open.src_phys};
        it->second.open_complete = true;
        ++stats_.opens_accepted;
        // Cache the peer's UAdd -> phys mapping learned from the exchange
        // (§3.3) — unless it is a TAdd, which has no meaning for location.
        if (m.open.src_uadd.valid() && !m.open.src_uadd.is_temporary()) {
          phys_cache_[m.open.src_uadd] = PhysAddr{m.open.src_phys};
        }
      }
      wire::NdOpenAck ack;
      ack.uadd = identity_->uadd();
      ack.arch = convert::arch_wire_id(identity_->arch());
      (void)send_raw(lvc, wire::encode_nd_open_ack(ack));
      NdEvent ev;
      ev.kind = NdEvent::Kind::opened;
      ev.lvc = lvc;
      return std::optional<NdEvent>{std::move(ev)};
    }
    case wire::NdKind::open_ack: {
      std::shared_ptr<OpenWaiter> waiter;
      PeerInfo info;
      {
        ntcs::LockGuard lk(mu_);
        auto it = lvcs_.find(lvc);
        if (it == lvcs_.end()) return std::optional<NdEvent>{};
        it->second.peer.uadd = m.ack.uadd;
        auto arch = convert::arch_from_wire_id(m.ack.arch);
        it->second.peer.arch = arch.value_or(convert::Arch::vax780);
        it->second.open_complete = true;
        info = it->second.peer;
        auto wit = open_waiters_.find(lvc);
        if (wit != open_waiters_.end()) waiter = wit->second;
      }
      if (waiter) {
        ntcs::LockGuard wl(waiter->mu);
        waiter->result = info;
        waiter->cv.notify_all();
      }
      return std::optional<NdEvent>{};
    }
    case wire::NdKind::payload: {
      {
        ntcs::LockGuard lk(mu_);
        ++stats_.messages_received;
      }
      static metrics::Counter& m_recv = metrics::counter("nd.msgs_received");
      m_recv.inc();
      NdEvent ev;
      ev.kind = NdEvent::Kind::message;
      ev.lvc = lvc;
      ev.message = std::move(m.body);
      return std::optional<NdEvent>{std::move(ev)};
    }
  }
  return std::optional<NdEvent>{};
}

std::optional<PeerInfo> NdLayer::peer(LvcId lvc) const {
  ntcs::LockGuard lk(mu_);
  auto it = lvcs_.find(lvc);
  if (it == lvcs_.end() || !it->second.open_complete) return std::nullopt;
  return it->second.peer;
}

void NdLayer::promote_peer(LvcId lvc, UAdd real) {
  ntcs::LockGuard lk(mu_);
  auto it = lvcs_.find(lvc);
  if (it == lvcs_.end()) return;
  if (it->second.peer.uadd.is_temporary() && !real.is_temporary()) {
    it->second.peer.uadd = real;
    if (it->second.peer.phys.valid()) {
      phys_cache_[real] = it->second.peer.phys;
    }
    ++stats_.tadds_promoted;
    log_.debug("promoted peer TAdd to " + real.to_string() + " on LVC " +
               std::to_string(lvc));
  }
}

void NdLayer::cache_phys(UAdd uadd, PhysAddr phys) {
  if (!uadd.valid() || uadd.is_temporary()) return;
  ntcs::LockGuard lk(mu_);
  phys_cache_[uadd] = std::move(phys);
}

std::optional<PhysAddr> NdLayer::cached_phys(UAdd uadd) const {
  ntcs::LockGuard lk(mu_);
  auto it = phys_cache_.find(uadd);
  if (it == phys_cache_.end()) return std::nullopt;
  return it->second;
}

void NdLayer::uncache_phys(UAdd uadd) {
  ntcs::LockGuard lk(mu_);
  phys_cache_.erase(uadd);
}

void NdLayer::shutdown() {
  if (port_) port_->close();
}

NdLayer::Stats NdLayer::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

}  // namespace ntcs::core
