// nd_layer.h — the Network Dependent Layer (paper §2.2).
//
// "The lowest layer in the NTCS is the Network Dependent Layer. All machine
// and network communication dependencies are localized here, providing a
// uniform virtual circuit interface (STD-IF) for the remainder of the NTCS.
// Everything above the ND-Layer is portable."
//
// Responsibilities:
//   * bind a native IPCS endpoint (TCP-like or MBX-like) and hide its
//     address format, MTU and error conventions behind the STD-IF;
//   * the channel-open protocol: exchange UAdd/architecture/physical
//     address with the peer on every new local virtual circuit (§3.3), and
//     cache the results;
//   * message fragmentation/reassembly over the IPCS frame size;
//   * retry on open — the only recovery the ND-Layer performs; every other
//     failure is "simply passed upward";
//   * TAdd bookkeeping on a per-channel basis (§3.4): a peer that
//     introduced itself with a TAdd is re-identified ("promoted") when its
//     real UAdd is learned.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/annotated.h"
#include "common/backoff.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "convert/machine.h"
#include "core/addr.h"
#include "core/identity.h"
#include "core/nd/backend.h"
#include "core/wire/frames.h"

namespace ntcs::core {

/// A local virtual circuit id (node-local; equal to the underlying IPCS
/// channel id in this implementation).
using LvcId = IpcsChannelId;

/// What the ND-Layer reports upward to the IP-Layer.
struct NdEvent {
  enum class Kind : std::uint8_t {
    opened,   // a peer completed the open protocol toward us
    message,  // a reassembled payload message (an IP envelope)
    closed,   // the LVC died (peer close, module death, channel kill)
  };
  Kind kind;
  LvcId lvc = 0;
  ntcs::Bytes message;  // kind == message
};

/// Cached per-peer information from the channel-open exchange.
struct PeerInfo {
  UAdd uadd;
  convert::Arch arch = convert::Arch::vax780;
  PhysAddr phys;
};

/// Tunables for the open retry loop. Retries back off exponentially with
/// jitter (a fixed delay synchronises retry storms and keeps losing the
/// same race against a flapping link); observable via `nd.open_retries`.
struct NdConfig {
  int open_attempts = 5;
  BackoffPolicy open_backoff{std::chrono::milliseconds(1),
                             std::chrono::milliseconds(32), 2.0, 0.5};
  std::chrono::nanoseconds open_ack_timeout{std::chrono::seconds(5)};
};

class NdLayer {
 public:
  NdLayer(IpcsBackend& backend, std::string local_name,
          std::shared_ptr<Identity> identity, NdConfig cfg = {});
  ~NdLayer();

  NdLayer(const NdLayer&) = delete;
  NdLayer& operator=(const NdLayer&) = delete;

  /// Create the IPCS communication resource. Must be called before any
  /// open/send and before the pump starts.
  ntcs::Status bind();

  /// The module's own physical address (valid after bind()).
  PhysAddr local_phys() const;

  /// Open an LVC to a physical address, running the open protocol
  /// (with retry-on-open). Blocking; never call from the pump thread.
  ntcs::Result<LvcId> open(const PhysAddr& dst);

  /// Send one message (fragmenting to the IPCS MTU). Thread-safe,
  /// non-blocking.
  ntcs::Status send(LvcId lvc, ntcs::BytesView ip_envelope);

  /// Close an LVC; the peer sees an NdEvent::closed.
  ntcs::Status close(LvcId lvc);

  /// Pump one IPCS delivery. Returns an event for the IP-Layer, or
  /// std::nullopt when the delivery was internal to the ND-Layer (open
  /// protocol, mid-message fragment). Errors: timeout, closed (endpoint
  /// gone — pump loop should exit).
  ntcs::Result<std::optional<NdEvent>> pump(std::chrono::nanoseconds timeout);

  /// Peer info learned during the open exchange.
  std::optional<PeerInfo> peer(LvcId lvc) const;

  /// Replace a peer's TAdd with its real UAdd (§3.4 purge). No-op if the
  /// channel is gone.
  void promote_peer(LvcId lvc, UAdd real);

  /// UAdd -> physical address cache (fed by open exchanges, naming-service
  /// resolutions, and the well-known table).
  void cache_phys(UAdd uadd, PhysAddr phys);
  std::optional<PhysAddr> cached_phys(UAdd uadd) const;
  /// Drop a cache entry (it produced an address fault).
  void uncache_phys(UAdd uadd);

  /// Tear down the endpoint; the pump sees Errc::closed.
  void shutdown();

  IpcsBackend& backend() { return backend_; }

  /// Counters for tests/benches.
  struct Stats {
    std::uint64_t opens_initiated = 0;
    std::uint64_t open_retries = 0;
    std::uint64_t opens_accepted = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t lvcs_closed = 0;
    std::uint64_t tadds_promoted = 0;
    std::uint64_t frames_deduped = 0;   // duplicate/stale frames suppressed
    std::uint64_t frames_resynced = 0;  // reassembly resyncs after a gap
    // Frames sent as header+chunk gathers straight from the message buffer
    // — each one a per-fragment Bytes materialisation that no longer
    // happens.
    std::uint64_t frag_copies_avoided = 0;
  };
  Stats stats() const;

 private:
  /// Per-circuit transmit state: the lock serialises multi-fragment
  /// transmissions (a message's frames must stay contiguous on the circuit
  /// or the peer's reassembler would interleave concurrent senders'
  /// fragments), and `seq` is the running frame number stamped into each
  /// fragment word for the receiver's duplicate/overtake detection.
  struct TxState {
    // nd.tx: held across IpcsPort::send for a whole fragment train, so it
    // orders before the substrate locks and after nd.state.
    ntcs::Mutex mu{ntcs::lockrank::kNdTx, "nd.tx"};
    std::uint32_t seq GUARDED_BY(mu) = 0;
  };
  struct LvcState {
    PeerInfo peer;
    bool open_complete = false;
    bool initiated_by_us = false;
    wire::Reassembler reassembler;
    std::shared_ptr<TxState> tx = std::make_shared<TxState>();
  };
  struct OpenWaiter {
    // nd.open_wait: held across a whole open attempt, during which the
    // state lock is taken (twice) and stale channels are closed through
    // the backend — hence ranked before both.
    ntcs::Mutex mu{ntcs::lockrank::kNdOpenWait, "nd.open_wait"};
    ntcs::CondVar cv;
    std::optional<ntcs::Result<PeerInfo>> result GUARDED_BY(mu);
  };

  ntcs::Result<std::optional<NdEvent>> handle_delivery(IpcsDelivery d);
  ntcs::Result<std::optional<NdEvent>> handle_message(LvcId lvc,
                                                      ntcs::Bytes msg);
  ntcs::Status send_raw(LvcId lvc, ntcs::BytesView nd_message);

  IpcsBackend& backend_;
  std::string local_name_;
  std::shared_ptr<Identity> identity_;
  NdConfig cfg_;
  ntcs::LayerLog log_;

  std::shared_ptr<IpcsPort> port_;

  // nd.state: ordered after lcm.state (the LCM-Layer seeds the phys cache
  // while holding its table lock) and before the substrate locks; never
  // held across IpcsPort::send/connect.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kNdState, "nd.state"};
  ntcs::Rng rng_ GUARDED_BY(mu_);  // retry jitter
  std::unordered_map<LvcId, LvcState> lvcs_ GUARDED_BY(mu_);
  std::unordered_map<LvcId, std::shared_ptr<OpenWaiter>> open_waiters_
      GUARDED_BY(mu_);
  std::unordered_map<UAdd, PhysAddr> phys_cache_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace ntcs::core
