#include "core/node.h"

#include "common/health.h"

namespace ntcs::core {

std::vector<GatewayRecord> prime_gateway_records(const WellKnownTable& wk) {
  std::vector<GatewayRecord> out;
  out.reserve(wk.prime_gateways.size());
  for (const PrimeGatewayInfo& p : wk.prime_gateways) {
    GatewayRecord g;
    g.uadd = p.uadd;
    g.name = p.name;
    g.nets = p.networks;
    g.phys = p.phys;
    out.push_back(std::move(g));
  }
  return out;
}

Node::Node(NodeConfig cfg)
    : cfg_(std::move(cfg)),
      identity_(std::make_shared<Identity>(cfg_.name, cfg_.backend->arch(),
                                           cfg_.net)),
      nd_(*cfg_.backend, cfg_.name, identity_, cfg_.nd),
      ip_(nd_, identity_, cfg_.net, cfg_.ip),
      lcm_(ip_, identity_, cfg_.lcm),
      nsp_(lcm_, identity_),
      commod_(lcm_, nsp_, identity_) {}

Node::~Node() { stop(); }

ntcs::Status Node::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = nd_.bind(); !st.ok()) return st;
  install_well_known(cfg_.well_known);
  // The recursion wiring (§3.1/§4.1): the Nucleus layers call *up* into the
  // naming service they carry.
  lcm_.set_resolver(&nsp_);
  ip_.set_topology_source([this] { return nsp_.gateways(); });
  pump_ = std::jthread([this](std::stop_token st) { pump_main(st); });
  running_ = true;
  health::journal_note(health::EventKind::transition, "node", "start");
  return ntcs::Status::success();
}

void Node::install_well_known(const WellKnownTable& wk) {
  lcm_.preload_well_known(wk);
  nsp_.configure_shards(wk);
  ip_.set_prime_gateways(prime_gateway_records(wk));
}

void Node::pump_main(const std::stop_token& st) {
  using namespace std::chrono_literals;
  // The pump iterates at least every 50ms (pump timeout), so a 1s
  // stall_after gives the watchdog ~20 missed iterations of slack before
  // declaring the dispatch loop stalled.
  health::Heartbeat& hb = health::heartbeat("pump." + cfg_.name);
  while (!st.stop_requested()) {
    hb.beat();
    auto ev = nd_.pump(50ms);
    if (!ev) {
      if (ev.code() == ntcs::Errc::timeout) continue;
      break;  // endpoint closed: module is going away
    }
    if (!ev.value()) continue;  // internal to the ND-Layer
    for (IpEvent& ipev : ip_.on_nd_event(*ev.value())) {
      lcm_.on_ip_event(std::move(ipev));
    }
  }
}

void Node::stop() {
  if (!running_) return;
  running_ = false;
  nd_.shutdown();  // pump sees closed and exits
  pump_.request_stop();
  if (pump_.joinable()) pump_.join();
  lcm_.shutdown();
  // A cleanly stopped pump must not read as a stalled one.
  health::heartbeat("pump." + cfg_.name).retire();
  health::journal_note(health::EventKind::transition, "node", "stop");
}

}  // namespace ntcs::core
