// node.h — one NTCS module instance: Nucleus + ComMod bound together.
//
// A Node is the in-process equivalent of the paper's "process bound with a
// ComMod" (Fig. 2-1): it owns the module's Identity, the three Nucleus
// layers (ND, IP, LCM), the ComMod layers (NSP, ALI) and the pump thread
// that drives deliveries upward through them. The layers themselves stay
// passive, exactly as in the paper; the pump is the modern stand-in for
// the original's in-process upcall path, and it NEVER blocks — every
// blocking primitive runs on application/service threads.
#pragma once

#include <memory>
#include <thread>

#include "core/ali/commod.h"
#include "core/identity.h"
#include "core/ip/ip_layer.h"
#include "core/lcm/lcm_layer.h"
#include "core/nd/backend.h"
#include "core/nd/nd_layer.h"
#include "core/nsp/nsp_layer.h"

namespace ntcs::core {

struct NodeConfig {
  std::string name;  // logical module name
  /// The STD-IF backend this module's ND-Layer binds through (a
  /// simnet::SimnetBackend or realnet::TcpBackend; built by Testbed or
  /// by hand). Must outlive the Node.
  std::shared_ptr<IpcsBackend> backend;
  NetName net;  // logical network identifier this module reports
  WellKnownTable well_known;
  NdConfig nd;
  IpConfig ip;
  LcmConfig lcm;
};

class Node {
 public:
  explicit Node(NodeConfig cfg);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Bind the IPCS endpoint, preload the well-known address table, wire
  /// the recursive naming-service hooks, and start the pump.
  ntcs::Status start();

  /// Stop the pump and tear down the endpoint. Idempotent.
  void stop();

  /// Install (or replace) the well-known table after construction — used
  /// when a testbed builds the Name Server and prime gateways first and
  /// only then knows their physical addresses.
  void install_well_known(const WellKnownTable& wk);

  Identity& identity() { return *identity_; }
  std::shared_ptr<Identity> identity_ptr() { return identity_; }
  NdLayer& nd() { return nd_; }
  IpLayer& ip() { return ip_; }
  LcmLayer& lcm() { return lcm_; }
  NspLayer& nsp() { return nsp_; }
  ComMod& commod() { return commod_; }
  IpcsBackend& backend() { return *cfg_.backend; }
  const NodeConfig& config() const { return cfg_; }
  PhysAddr phys() const { return nd_.local_phys(); }
  /// The local machine's clock, via the backend (simnet: the machine's
  /// skewed virtual clock; realnet: the OS steady clock).
  std::chrono::nanoseconds now() const { return cfg_.backend->now(); }
  bool running() const { return running_; }

 private:
  void pump_main(const std::stop_token& st);

  NodeConfig cfg_;
  std::shared_ptr<Identity> identity_;
  NdLayer nd_;
  IpLayer ip_;
  LcmLayer lcm_;
  NspLayer nsp_;
  ComMod commod_;
  std::jthread pump_;
  bool running_ = false;
};

/// Build the IP-Layer's static gateway table from a well-known table.
std::vector<GatewayRecord> prime_gateway_records(const WellKnownTable& wk);

}  // namespace ntcs::core
