#include "core/nsp/name_server.h"

#include "common/metrics.h"

namespace ntcs::core {

NameServer::NameServer(NodeConfig cfg, NsRole role, NsShardConfig shard)
    : shard_cfg_(shard),
      shard_map_(shard.num_shards == 0 ? 1 : shard.num_shards),
      role_(role) {
  shard_cfg_.num_shards = shard_map_.size();
  if (cfg.name.empty()) {
    cfg.name = "name-server";
    if (shard_cfg_.shard != 0) {
      cfg.name += "-" + std::to_string(shard_cfg_.shard);
    }
    if (role == NsRole::replica) cfg.name += "-replica";
    if (role == NsRole::standby) cfg.name += "-standby";
  }
  node_ = std::make_unique<Node>(std::move(cfg));
  // The server *is* the well-known UAdd — it never registers with itself
  // over the wire (it could not: §3.4, it "can not provide its own"
  // address prior to connection). A standby answers on the same UAdd as
  // the primary it shadows: clients reach whichever is alive via the
  // LCM-Layer's candidate rotation.
  node_->identity().set_uadd(ns_shard_uadd(shard_cfg_.shard));
  // Start the monotone counter on this shard's residue so every shard
  // mints from a disjoint stripe of the dynamic UAdd space.
  next_uadd_ = kFirstDynamicUAdd + shard_cfg_.shard;
  // cached: per-shard counter resolved once at construction (the name is
  // dynamic, so a static local cannot cache it).
  m_shard_lookups_ = &metrics::counter("ns.shard_lookups.s" +
                                       std::to_string(shard_cfg_.shard));
}

NameServer::~NameServer() { stop(); }

ntcs::Status NameServer::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = node_->start(); !st.ok()) return st;
  // Complete the well-known table with our own freshly bound address so
  // the node's own stack treats the shard's UAdd as local-resolvable.
  WellKnownTable wk = node_->config().well_known;
  if (shard_cfg_.shard == 0) {
    wk.name_server_phys = node_->phys();
    wk.name_server_net = node_->config().net;
  }
  node_->install_well_known(wk);
  node_->lcm().cache_destination(
      ns_shard_uadd(shard_cfg_.shard),
      ResolvedDest{ns_shard_uadd(shard_cfg_.shard), node_->phys(),
                   node_->config().net});
  // Self-entry in the database so the server is locatable by name.
  // Replicas and standbys start empty; the primary's stream fills them.
  {
    ntcs::LockGuard lk(mu_);
    if (role_ == NsRole::primary) {
      DbRecord self;
      self.uadd = ns_shard_uadd(shard_cfg_.shard);
      self.name = node_->identity().name();
      self.phys = node_->phys().blob;
      self.net = node_->config().net;
      self.arch = convert::arch_wire_id(node_->identity().arch());
      self.seq = next_seq_++;
      by_name_[self.name] = self.uadd;
      db_[self.uadd] = std::move(self);
    }
  }
  server_ = std::jthread([this](std::stop_token st) { serve(st); });
  running_ = true;
  return ntcs::Status::success();
}

void NameServer::stop() {
  if (!running_) return;
  running_ = false;
  server_.request_stop();
  node_->stop();  // closes the receive queue; serve() drains and exits
  if (server_.joinable()) server_.join();
}

NsRole NameServer::role() const {
  ntcs::LockGuard lk(mu_);
  return role_;
}

std::uint64_t NameServer::epoch() const {
  ntcs::LockGuard lk(mu_);
  return epoch_;
}

void NameServer::serve(const std::stop_token& st) {
  using namespace std::chrono_literals;
  while (!st.stop_requested()) {
    auto in = node_->lcm().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;  // queue closed
    }
    if (!in.value().is_request) {
      // Datagrams: replication traffic from the primary.
      auto req = nsp::decode_request(in.value().payload);
      if (req && req.value().op == nsp::NsOp::replicate) {
        apply_replica_update(req.value().update);
      }
      continue;
    }
    auto req = nsp::decode_request(in.value().payload);
    ntcs::Bytes response;
    if (!req) {
      ntcs::LockGuard lk(mu_);
      ++stats_.bad_requests;
      response = nsp::encode_error_response(ntcs::Errc::bad_message,
                                            req.error().to_string());
    } else {
      response = handle(req.value());
    }
    (void)node_->lcm().reply(in.value().reply_ctx,
                             Payload::raw(std::move(response)));
    flush_replication();
  }
}

nsp::ReplicaUpdate NameServer::update_for_locked(const DbRecord& rec) const {
  nsp::ReplicaUpdate u;
  u.reg.name = rec.name;
  u.reg.attrs = rec.attrs;
  u.reg.phys = rec.phys;
  u.reg.net = rec.net;
  u.reg.arch = rec.arch;
  u.reg.is_gateway = rec.is_gateway;
  u.reg.gw_nets = rec.gw_nets;
  u.reg.gw_phys = rec.gw_phys;
  u.uadd_raw = rec.uadd.raw();
  u.seq = rec.seq;
  u.deregistered = rec.deregistered;
  u.epoch = epoch_;
  return u;
}

void NameServer::apply_replica_update(const nsp::ReplicaUpdate& u) {
  ntcs::LockGuard lk(mu_);
  DbRecord rec;
  rec.uadd = UAdd::from_raw(u.uadd_raw);
  rec.name = u.reg.name;
  rec.attrs = u.reg.attrs;
  rec.phys = u.reg.phys;
  rec.net = u.reg.net;
  rec.arch = u.reg.arch;
  rec.is_gateway = u.reg.is_gateway;
  rec.gw_nets = u.reg.gw_nets;
  rec.gw_phys = u.reg.gw_phys;
  rec.seq = u.seq;
  rec.deregistered = u.deregistered;
  if (rec.seq >= next_seq_) next_seq_ = rec.seq + 1;
  // Keep the striped UAdd counter ahead of everything the primary minted,
  // so a promoted standby never re-issues a UAdd that is already bound.
  const std::uint64_t raw = rec.uadd.raw();
  if (raw >= kFirstDynamicUAdd && raw >= next_uadd_ &&
      (raw - kFirstDynamicUAdd) % shard_cfg_.num_shards == shard_cfg_.shard) {
    next_uadd_ = raw + shard_cfg_.num_shards;
  }
  // Track the primary's epoch so a promotion bump supersedes every lease
  // the primary ever granted, not just those since we last reset.
  if (u.epoch > epoch_) epoch_ = u.epoch;
  // Last-writer-wins by registration sequence.
  auto it = db_.find(rec.uadd);
  if (it == db_.end() || it->second.seq <= rec.seq) {
    if (rec.deregistered) {
      auto idx = by_name_.find(rec.name);
      if (idx != by_name_.end() && idx->second == rec.uadd) {
        by_name_.erase(idx);
      }
    } else {
      by_name_[rec.name] = rec.uadd;
    }
    db_[rec.uadd] = std::move(rec);
  }
  ++stats_.replications_applied;
}

void NameServer::flush_replication() {
  std::vector<nsp::ReplicaUpdate> updates;
  std::vector<UAdd> links;
  {
    ntcs::LockGuard lk(mu_);
    if (pending_updates_.empty() || replica_links_.empty()) {
      pending_updates_.clear();
      return;
    }
    updates.swap(pending_updates_);
    links = replica_links_;
  }
  SendOptions opts;
  opts.internal = true;
  for (const auto& u : updates) {
    const ntcs::Bytes body = nsp::encode_replicate(u);
    for (UAdd link : links) {
      (void)node_->lcm().dgram(link, Payload::raw(body), opts);
      ntcs::LockGuard lk(mu_);
      ++stats_.replications_sent;
    }
  }
}

ntcs::Status NameServer::add_replica(const NsReplicaInfo& info,
                                     bool send_snapshot) {
  UAdd link;
  {
    ntcs::LockGuard lk(mu_);
    if (role_ != NsRole::primary) {
      return ntcs::Status(ntcs::Errc::unsupported, "replicas cannot chain");
    }
    link = UAdd::permanent(kReplicaLinkUAddBase + replica_links_.size());
    replica_links_.push_back(link);
  }
  // The replica is addressed directly by physical address — it could not
  // be resolved through the service it backs.
  node_->lcm().cache_destination(link,
                                 ResolvedDest{link, info.phys, info.net});
  if (!send_snapshot) return ntcs::Status::success();
  // Full snapshot, then the serve loop streams increments.
  std::vector<nsp::ReplicaUpdate> snapshot;
  {
    ntcs::LockGuard lk(mu_);
    snapshot.reserve(db_.size());
    for (const auto& [uadd, rec] : db_) {
      snapshot.push_back(update_for_locked(rec));
    }
  }
  SendOptions opts;
  opts.internal = true;
  for (const auto& u : snapshot) {
    auto st = node_->lcm().dgram(link, Payload::raw(nsp::encode_replicate(u)),
                                 opts);
    if (!st.ok()) return st;
    ntcs::LockGuard lk(mu_);
    ++stats_.replications_sent;
  }
  return ntcs::Status::success();
}

std::size_t NameServer::load_records(const std::string& prefix,
                                     std::size_t count,
                                     const std::string& phys,
                                     const std::string& net) {
  ntcs::LockGuard lk(mu_);
  const std::size_t n = shard_cfg_.num_shards;
  std::size_t loaded = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = prefix + std::to_string(i);
    if (shard_map_.sharded() &&
        shard_map_.shard_of(name) != shard_cfg_.shard) {
      continue;
    }
    DbRecord rec;
    rec.uadd = UAdd::permanent(kFirstDynamicUAdd + i * n + shard_cfg_.shard);
    rec.phys = phys;
    rec.net = net;
    rec.seq = next_seq_++;
    by_name_[name] = rec.uadd;
    rec.name = std::move(name);
    db_[rec.uadd] = std::move(rec);
    ++loaded;
  }
  // The striped counter resumes past every record we just minted.
  const std::uint64_t past = kFirstDynamicUAdd + count * n + shard_cfg_.shard;
  if (next_uadd_ < past) next_uadd_ = past;
  return loaded;
}

ntcs::Bytes NameServer::handle(const nsp::Request& req) {
  static metrics::Counter& m_requests = metrics::counter("nsp.ns_requests");
  m_requests.inc();
  switch (req.op) {
    case nsp::NsOp::register_module:
      return handle_register(req.reg);
    case nsp::NsOp::lookup:
      return handle_lookup(req.name);
    case nsp::NsOp::lookup_attrs:
      return handle_lookup_attrs(req.attrs);
    case nsp::NsOp::resolve:
      return handle_resolve(UAdd::from_raw(req.uadd_raw));
    case nsp::NsOp::forward:
      return handle_forward(UAdd::from_raw(req.uadd_raw));
    case nsp::NsOp::gateways:
      return handle_gateways();
    case nsp::NsOp::deregister:
      return handle_deregister(UAdd::from_raw(req.uadd_raw));
    case nsp::NsOp::ping:
      return nsp::encode_ok_response();
    case nsp::NsOp::replicate:
      // Replication rides datagrams, never requests; a replicate request
      // is a protocol violation.
      break;
  }
  ntcs::LockGuard lk(mu_);
  ++stats_.bad_requests;
  return nsp::encode_error_response(ntcs::Errc::bad_message, "unknown op");
}

const NameServer::DbRecord* NameServer::find_by_name_locked(
    const std::string& name) {
  auto idx = by_name_.find(name);
  if (idx != by_name_.end()) {
    auto it = db_.find(idx->second);
    if (it != db_.end() && !it->second.deregistered &&
        it->second.name == name) {
      return &it->second;
    }
  }
  // Indexed record died (forward/deregister) — fall back to the scan and
  // repair the index.
  const DbRecord* best = nullptr;
  for (const auto& [uadd, rec] : db_) {
    if (rec.deregistered || rec.name != name) continue;
    if (best == nullptr || rec.seq > best->seq) best = &rec;
  }
  if (best != nullptr) {
    by_name_[name] = best->uadd;
  } else {
    by_name_.erase(name);
  }
  return best;
}

void NameServer::bump_epoch_locked() {
  static metrics::Counter& m_bumps = metrics::counter("ns.epoch_bumps");
  ++epoch_;
  ++stats_.epoch_bumps;
  m_bumps.inc();
}

bool NameServer::writable_locked(ntcs::Bytes* reject) {
  if (role_ == NsRole::primary) return true;
  if (role_ == NsRole::replica) {
    ++stats_.writes_rejected;
    *reject = nsp::encode_error_response(
        ntcs::Errc::unsupported,
        "name-server replica is read-only; register with the primary");
    return false;
  }
  // Standby: the §3.5 "really inactive?" determination, applied to the
  // naming service itself. A write reaching us means a client's candidate
  // rotation gave up on the primary — verify before usurping it.
  ++stats_.liveness_probes;
  if (shard_cfg_.primary_phys.valid() &&
      node_->backend().probe(shard_cfg_.primary_phys.blob)) {
    ++stats_.writes_rejected;
    *reject = nsp::encode_error_response(
        ntcs::Errc::unsupported,
        "standby: shard primary still reachable; retry there");
    return false;
  }
  // The primary is gone: promote. The epoch bump invalidates every lease
  // it ever granted, so no client keeps acting on its answers.
  static metrics::Counter& m_failovers = metrics::counter("ns.failovers");
  role_ = NsRole::primary;
  ++stats_.promotions;
  bump_epoch_locked();
  m_failovers.inc();
  return true;
}

ntcs::Bytes NameServer::handle_register(const nsp::RegisterRequest& r) {
  ntcs::LockGuard lk(mu_);
  ++stats_.registers;
  ntcs::Bytes reject;
  if (!writable_locked(&reject)) return reject;
  if (r.name.empty()) {
    return nsp::encode_error_response(ntcs::Errc::bad_argument,
                                      "empty module name");
  }
  if (r.is_gateway && r.gw_nets.size() != r.gw_phys.size()) {
    return nsp::encode_error_response(ntcs::Errc::bad_argument,
                                      "gateway nets/phys mismatch");
  }
  if (shard_map_.sharded() &&
      shard_map_.shard_of(r.name) != shard_cfg_.shard) {
    ++stats_.wrong_shard;
    return nsp::encode_error_response(
        ntcs::Errc::wrong_shard,
        "name '" + r.name + "' belongs to shard " +
            std::to_string(shard_map_.shard_of(r.name)));
  }
  UAdd uadd;
  if (r.requested_uadd != 0) {
    uadd = UAdd::from_raw(r.requested_uadd);
    if (uadd.is_temporary() || !uadd.valid() ||
        uadd.raw() >= kFirstDynamicUAdd) {
      return nsp::encode_error_response(ntcs::Errc::bad_argument,
                                        "requested UAdd not well-known");
    }
    auto it = db_.find(uadd);
    if (it != db_.end() && !it->second.deregistered &&
        it->second.name != r.name) {
      return nsp::encode_error_response(ntcs::Errc::already_exists,
                                        "well-known UAdd held by '" +
                                            it->second.name + "'");
    }
  } else {
    // §3.2: "UAdds are currently generated by a simple monotonically
    // increasing counter" — striped so every shard mints from a disjoint
    // residue class and clients can route resolve/forward by UAdd alone.
    uadd = UAdd::permanent(next_uadd_);
    next_uadd_ += shard_cfg_.num_shards;
  }
  // A live record under the same name means this is a module *move*
  // (§3.5): the old address data cached anywhere is now wrong. Bump the
  // shard epoch so every outstanding lease dies with the old location.
  if (find_by_name_locked(r.name) != nullptr) bump_epoch_locked();
  DbRecord rec;
  rec.uadd = uadd;
  rec.name = r.name;
  rec.attrs = r.attrs;
  rec.phys = r.phys;
  rec.net = r.net;
  rec.arch = r.arch;
  rec.is_gateway = r.is_gateway;
  rec.gw_nets = r.gw_nets;
  rec.gw_phys = r.gw_phys;
  rec.seq = next_seq_++;
  by_name_[rec.name] = uadd;
  db_[uadd] = std::move(rec);
  pending_updates_.push_back(update_for_locked(db_[uadd]));
  return nsp::encode_uadd_response(uadd);
}

ntcs::Bytes NameServer::handle_lookup(const std::string& name) {
  static metrics::Counter& m_lookups = metrics::counter("ns.shard_lookups");
  m_lookups.inc();
  m_shard_lookups_->inc();
  ntcs::LockGuard lk(mu_);
  ++stats_.lookups;
  const DbRecord* best = find_by_name_locked(name);
  if (best == nullptr) {
    // Names we own are authoritatively absent; anything else is the
    // caller's routing error (stale shard count) — retriable, never a
    // silent wrong answer.
    if (shard_map_.sharded() &&
        shard_map_.shard_of(name) != shard_cfg_.shard) {
      ++stats_.wrong_shard;
      return nsp::encode_error_response(
          ntcs::Errc::wrong_shard,
          "name '" + name + "' belongs to shard " +
              std::to_string(shard_map_.shard_of(name)));
    }
    return nsp::encode_error_response(ntcs::Errc::not_found,
                                      "no module named '" + name + "'");
  }
  nsp::LookupResponse resp;
  resp.uadd_raw = best->uadd.raw();
  resp.epoch = epoch_;
  resp.lease_ms = shard_cfg_.lease_ms;
  resp.shard = shard_cfg_.shard;
  return nsp::encode_lookup_response(resp);
}

ntcs::Bytes NameServer::handle_lookup_attrs(const nsp::AttrMap& attrs) {
  ntcs::LockGuard lk(mu_);
  ++stats_.lookups;
  std::vector<UAdd> matches;
  for (const auto& [uadd, rec] : db_) {
    if (rec.deregistered) continue;
    bool all = true;
    for (const auto& [k, v] : attrs) {
      auto it = rec.attrs.find(k);
      if (it == rec.attrs.end() || it->second != v) {
        all = false;
        break;
      }
    }
    if (all) matches.push_back(uadd);
  }
  // Sharded: these are only the local shard's matches; the NSP-Layer
  // fans the query out and merges.
  return nsp::encode_uadds_response(matches);
}

/// True if a dynamic UAdd belongs to another shard's stripe (well-known
/// UAdds are not striped: whichever shard holds the record answers).
static bool foreign_stripe(UAdd uadd, const NsShardConfig& cfg) {
  if (cfg.num_shards <= 1 || uadd.raw() < kFirstDynamicUAdd) return false;
  return (uadd.raw() - kFirstDynamicUAdd) % cfg.num_shards != cfg.shard;
}

ntcs::Bytes NameServer::handle_resolve(UAdd uadd) {
  ntcs::LockGuard lk(mu_);
  ++stats_.resolves;
  if (foreign_stripe(uadd, shard_cfg_)) {
    ++stats_.wrong_shard;
    return nsp::encode_error_response(
        ntcs::Errc::wrong_shard,
        "UAdd " + uadd.to_string() + " lives on another shard's stripe");
  }
  auto it = db_.find(uadd);
  if (it == db_.end() || it->second.deregistered) {
    return nsp::encode_error_response(
        ntcs::Errc::not_found, "unknown UAdd " + uadd.to_string());
  }
  nsp::ResolveResponse resp;
  resp.name = it->second.name;
  resp.phys = it->second.phys;
  resp.net = it->second.net;
  resp.arch = it->second.arch;
  return nsp::encode_resolve_response(resp);
}

ntcs::Bytes NameServer::handle_forward(UAdd old_uadd) {
  // §3.5: "This requires some intelligence in the naming service, first
  // determining whether the old UAdd is really inactive, mapping the old
  // UAdd to its name, and then looking for a similar name in a newer
  // module."
  ntcs::LockGuard lk(mu_);
  ++stats_.forwards;
  if (foreign_stripe(old_uadd, shard_cfg_)) {
    ++stats_.wrong_shard;
    return nsp::encode_error_response(
        ntcs::Errc::wrong_shard,
        "UAdd " + old_uadd.to_string() + " lives on another shard's stripe");
  }
  auto it = db_.find(old_uadd);
  if (it == db_.end()) {
    return nsp::encode_error_response(
        ntcs::Errc::not_found, "unknown UAdd " + old_uadd.to_string());
  }
  DbRecord& old = it->second;
  if (!old.deregistered) {
    ++stats_.liveness_probes;
    if (node_->backend().probe(old.phys)) {
      // "the original module is still alive" — the caller should simply
      // reconnect.
      return nsp::encode_error_response(ntcs::Errc::still_alive,
                                        "module still reachable");
    }
    old.deregistered = true;  // confirmed inactive
    if (role_ == NsRole::primary) {
      pending_updates_.push_back(update_for_locked(old));
    }
  }
  // A "similar name" in a newer module: same logical name first, then the
  // attribute-based fallback ("with our new attribute-based naming, this
  // is more involved") — a module announcing the same "role" attribute.
  const DbRecord* best = nullptr;
  for (const auto& [uadd, rec] : db_) {
    if (rec.deregistered || rec.seq <= old.seq) continue;
    if (rec.name == old.name) {
      if (best == nullptr || rec.seq > best->seq) best = &rec;
    }
  }
  if (best == nullptr) {
    auto role = old.attrs.find("role");
    if (role != old.attrs.end()) {
      for (const auto& [uadd, rec] : db_) {
        if (rec.deregistered || rec.seq <= old.seq) continue;
        auto r2 = rec.attrs.find("role");
        if (r2 != rec.attrs.end() && r2->second == role->second) {
          if (best == nullptr || rec.seq > best->seq) best = &rec;
        }
      }
    }
  }
  if (best == nullptr) {
    return nsp::encode_error_response(ntcs::Errc::not_found,
                                      "no replacement module located");
  }
  ++stats_.forward_hits;
  return nsp::encode_uadd_response(best->uadd);
}

ntcs::Bytes NameServer::handle_gateways() {
  ntcs::LockGuard lk(mu_);
  std::vector<GatewayRecord> gws;
  for (auto& [uadd, rec] : db_) {
    if (rec.deregistered || !rec.is_gateway) continue;
    // The same "really inactive?" intelligence applied to the topology
    // registry (§3.5): a gateway none of whose attachments probe alive is
    // dead and must not appear on routes.
    bool any_alive = false;
    for (const auto& phys : rec.gw_phys) {
      ++stats_.liveness_probes;
      if (node_->backend().probe(phys)) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      rec.deregistered = true;
      if (role_ == NsRole::primary) {
        pending_updates_.push_back(update_for_locked(rec));
      }
      continue;
    }
    GatewayRecord g;
    g.uadd = rec.uadd;
    g.name = rec.name;
    for (std::size_t i = 0; i < rec.gw_nets.size(); ++i) {
      g.nets.push_back(rec.gw_nets[i]);
      g.phys.push_back(PhysAddr{rec.gw_phys[i]});
    }
    gws.push_back(std::move(g));
  }
  return nsp::encode_gateways_response(gws);
}

ntcs::Bytes NameServer::handle_deregister(UAdd uadd) {
  ntcs::LockGuard lk(mu_);
  ntcs::Bytes reject;
  if (!writable_locked(&reject)) return reject;
  if (foreign_stripe(uadd, shard_cfg_)) {
    ++stats_.wrong_shard;
    return nsp::encode_error_response(
        ntcs::Errc::wrong_shard,
        "UAdd " + uadd.to_string() + " lives on another shard's stripe");
  }
  auto it = db_.find(uadd);
  if (it == db_.end()) {
    return nsp::encode_error_response(
        ntcs::Errc::not_found, "unknown UAdd " + uadd.to_string());
  }
  it->second.deregistered = true;
  auto idx = by_name_.find(it->second.name);
  if (idx != by_name_.end() && idx->second == uadd) by_name_.erase(idx);
  pending_updates_.push_back(update_for_locked(it->second));
  return nsp::encode_ok_response();
}

std::size_t NameServer::record_count() const {
  ntcs::LockGuard lk(mu_);
  return db_.size();
}

std::optional<ResolveInfo> NameServer::db_lookup(UAdd uadd) const {
  ntcs::LockGuard lk(mu_);
  auto it = db_.find(uadd);
  if (it == db_.end() || it->second.deregistered) return std::nullopt;
  ResolveInfo info;
  info.name = it->second.name;
  info.phys = PhysAddr{it->second.phys};
  info.net = it->second.net;
  info.arch = convert::arch_from_wire_id(it->second.arch)
                  .value_or(convert::Arch::vax780);
  return info;
}

NameServer::Stats NameServer::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

}  // namespace ntcs::core
