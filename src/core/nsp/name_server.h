// name_server.h — the Name Server module (paper §3).
//
// "For all practical purposes, the naming service is nothing more than an
// application built on the Nucleus; however, it is also used by the
// Nucleus, forcing the Nucleus to operate recursively."
//
// The server keeps the name/address database: logical name + attribute set
// -> UAdd -> uninterpreted physical address, logical network id and
// machine type (§3.2). It answers NSP requests over its own ordinary NTCS
// stack, generates UAdds (monotone counter, §3.2), honours the well-known
// UAdds of itself and the prime gateways, performs the forwarding
// determination of §3.5 ("first determining whether the old UAdd is really
// inactive, mapping the old UAdd to its name, and then looking for a
// similar name in a newer module"), and serves the gateway/topology
// registry of §4.
#pragma once

#include <optional>
#include <thread>
#include <unordered_map>

#include "common/annotated.h"
#include "core/node.h"
#include "core/nsp/protocol.h"

namespace ntcs::core {

/// Replication role (§7: the naming service implementation "will be
/// replicated for failure resiliency"). A primary pushes every database
/// mutation to its replicas over the NTCS itself; replicas serve reads
/// (lookup / resolve / forward / gateways) and reject writes. Clients fail
/// over via the LCM-Layer's Name-Server candidate rotation.
enum class NsRole : std::uint8_t { primary, replica };

class NameServer {
 public:
  /// cfg.name defaults to "name-server" when empty; cfg.well_known is
  /// completed with the server's own physical address after bind.
  explicit NameServer(NodeConfig cfg, NsRole role = NsRole::primary);
  ~NameServer();

  NameServer(const NameServer&) = delete;
  NameServer& operator=(const NameServer&) = delete;

  ntcs::Status start();
  void stop();

  NsRole role() const { return role_; }

  /// Primary only: attach a replica (already started and pumping). Sends a
  /// full database snapshot, then every subsequent mutation incrementally.
  ntcs::Status add_replica(const NsReplicaInfo& info);

  Node& node() { return *node_; }
  PhysAddr phys() const { return node_->phys(); }
  const NetName& net() const { return node_->config().net; }

  /// Database introspection (tests / monitoring).
  std::size_t record_count() const;
  std::optional<ResolveInfo> db_lookup(UAdd uadd) const;

  struct Stats {
    std::uint64_t registers = 0;
    std::uint64_t lookups = 0;
    std::uint64_t resolves = 0;
    std::uint64_t forwards = 0;
    std::uint64_t forward_hits = 0;     // a successor was found
    std::uint64_t liveness_probes = 0;  // §3.5 "really inactive?" checks
    std::uint64_t bad_requests = 0;
    std::uint64_t replications_sent = 0;
    std::uint64_t replications_applied = 0;
    std::uint64_t writes_rejected = 0;  // writes arriving at a replica
  };
  Stats stats() const;

 private:
  struct DbRecord {
    UAdd uadd;
    std::string name;
    nsp::AttrMap attrs;
    std::string phys;
    std::string net;
    std::uint32_t arch = 0;
    bool is_gateway = false;
    std::vector<std::string> gw_nets;
    std::vector<std::string> gw_phys;
    std::uint64_t seq = 0;  // registration order: newer wins
    bool deregistered = false;
  };

  void serve(const std::stop_token& st);
  ntcs::Bytes handle(const nsp::Request& req);
  void apply_replica_update(const nsp::ReplicaUpdate& u);
  nsp::ReplicaUpdate update_for_locked(const DbRecord& rec) const
      REQUIRES(mu_);
  /// Ship queued mutations to every replica (serve-thread only).
  void flush_replication();
  ntcs::Bytes handle_register(const nsp::RegisterRequest& r);
  ntcs::Bytes handle_lookup(const std::string& name);
  ntcs::Bytes handle_lookup_attrs(const nsp::AttrMap& attrs);
  ntcs::Bytes handle_resolve(UAdd uadd);
  ntcs::Bytes handle_forward(UAdd old_uadd);
  ntcs::Bytes handle_gateways();
  ntcs::Bytes handle_deregister(UAdd uadd);

  std::unique_ptr<Node> node_;
  NsRole role_;
  std::vector<UAdd> replica_links_;
  std::vector<nsp::ReplicaUpdate> pending_updates_ GUARDED_BY(mu_);
  // Leaf-scoped: requests mutate the db under it and reply outside.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kNameServerDb, "nsp.name_server"};
  std::unordered_map<UAdd, DbRecord> db_ GUARDED_BY(mu_);
  std::uint64_t next_uadd_ GUARDED_BY(mu_) = kFirstDynamicUAdd;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  Stats stats_ GUARDED_BY(mu_);
  std::jthread server_;
  bool running_ = false;
};

}  // namespace ntcs::core
