// name_server.h — the Name Server module (paper §3).
//
// "For all practical purposes, the naming service is nothing more than an
// application built on the Nucleus; however, it is also used by the
// Nucleus, forcing the Nucleus to operate recursively."
//
// The server keeps the name/address database: logical name + attribute set
// -> UAdd -> uninterpreted physical address, logical network id and
// machine type (§3.2). It answers NSP requests over its own ordinary NTCS
// stack, generates UAdds (monotone counter, §3.2), honours the well-known
// UAdds of itself and the prime gateways, performs the forwarding
// determination of §3.5 ("first determining whether the old UAdd is really
// inactive, mapping the old UAdd to its name, and then looking for a
// similar name in a newer module"), and serves the gateway/topology
// registry of §4.
//
// Scale extension: the name space shards across N such servers by
// consistent hash of the logical name (shard_map.h). Each shard owns the
// names its ring segment covers plus a stripe of the dynamic UAdd space
// ((raw - kFirstDynamicUAdd) % num_shards == shard), answers lookups with
// a lease + epoch, and rejects traffic for names it does not own with the
// retriable Errc::wrong_shard — a client holding a stale shard count gets
// an error it can recover from, never a silent wrong answer.
#pragma once

#include <optional>
#include <thread>
#include <unordered_map>

#include "common/annotated.h"
#include "common/metrics.h"
#include "core/node.h"
#include "core/nsp/protocol.h"
#include "core/nsp/shard_map.h"

namespace ntcs::core {

/// Replication role (§7: the naming service implementation "will be
/// replicated for failure resiliency"). A primary pushes every database
/// mutation to its replicas/standby over the NTCS itself.
///
///  - replica: read-only mirror, serves lookup/resolve/forward/gateways,
///    rejects writes forever. Clients fail over to it for reads via the
///    LCM-Layer's candidate rotation.
///  - standby: a replica that can take over. On receiving a write it
///    probes the primary's physical address (the §3.5 "really inactive?"
///    determination applied to the naming service itself); if the primary
///    is dead it promotes itself — becoming the shard primary under a
///    bumped epoch so every lease the old primary granted dies with it.
enum class NsRole : std::uint8_t { primary, replica, standby };

/// Placement of one NameServer instance in the sharded name space.
/// Default-constructed = the classic single unsharded server.
struct NsShardConfig {
  std::size_t shard = 0;
  std::size_t num_shards = 1;
  /// Lease granted on lookup replies; 0 disables client caching.
  std::uint64_t lease_ms = 2000;
  /// For a standby: the primary it watches (probe target for promotion).
  PhysAddr primary_phys;
};

class NameServer {
 public:
  /// cfg.name defaults to "name-server[-<shard>][-replica|-standby]" when
  /// empty; cfg.well_known is completed with the server's own physical
  /// address after bind.
  explicit NameServer(NodeConfig cfg, NsRole role = NsRole::primary,
                      NsShardConfig shard = {});
  ~NameServer();

  NameServer(const NameServer&) = delete;
  NameServer& operator=(const NameServer&) = delete;

  ntcs::Status start();
  void stop();

  /// Current role — a standby flips to primary on promotion.
  NsRole role() const;
  const NsShardConfig& shard_config() const { return shard_cfg_; }
  /// The shard's reconfiguration epoch (starts at 1; bumps on module
  /// moves and on standby promotion).
  std::uint64_t epoch() const;

  /// Primary only: attach a replica/standby (already started and
  /// pumping). With send_snapshot it ships the full database first; a
  /// warm standby that bulk-loaded the same records skips the snapshot
  /// and receives only increments.
  ntcs::Status add_replica(const NsReplicaInfo& info,
                           bool send_snapshot = true);

  /// Bulk-load `count` synthetic records named "<prefix><i>" (scale
  /// benches / tests). Names not owned by this shard are skipped; owned
  /// names get deterministic striped UAdds (kFirstDynamicUAdd +
  /// i*num_shards + shard) so a primary and its standby load byte-for-byte
  /// identical databases without a million-record snapshot. Returns the
  /// number actually loaded.
  std::size_t load_records(const std::string& prefix, std::size_t count,
                           const std::string& phys, const std::string& net);

  Node& node() { return *node_; }
  PhysAddr phys() const { return node_->phys(); }
  const NetName& net() const { return node_->config().net; }

  /// Database introspection (tests / monitoring).
  std::size_t record_count() const;
  std::optional<ResolveInfo> db_lookup(UAdd uadd) const;

  struct Stats {
    std::uint64_t registers = 0;
    std::uint64_t lookups = 0;
    std::uint64_t resolves = 0;
    std::uint64_t forwards = 0;
    std::uint64_t forward_hits = 0;     // a successor was found
    std::uint64_t liveness_probes = 0;  // §3.5 "really inactive?" checks
    std::uint64_t bad_requests = 0;
    std::uint64_t replications_sent = 0;
    std::uint64_t replications_applied = 0;
    std::uint64_t writes_rejected = 0;  // writes arriving at a replica
    std::uint64_t wrong_shard = 0;      // traffic for a shard we don't own
    std::uint64_t promotions = 0;       // standby -> primary takeovers
    std::uint64_t epoch_bumps = 0;      // moves + promotions
  };
  Stats stats() const;

 private:
  struct DbRecord {
    UAdd uadd;
    std::string name;
    nsp::AttrMap attrs;
    std::string phys;
    std::string net;
    std::uint32_t arch = 0;
    bool is_gateway = false;
    std::vector<std::string> gw_nets;
    std::vector<std::string> gw_phys;
    std::uint64_t seq = 0;  // registration order: newer wins
    bool deregistered = false;
  };

  void serve(const std::stop_token& st);
  ntcs::Bytes handle(const nsp::Request& req);
  void apply_replica_update(const nsp::ReplicaUpdate& u);
  nsp::ReplicaUpdate update_for_locked(const DbRecord& rec) const
      REQUIRES(mu_);
  /// Ship queued mutations to every replica (serve-thread only).
  void flush_replication();
  /// The newest live record with this name, via the by-name index (O(1));
  /// falls back to a scan + index repair if the indexed record died.
  const DbRecord* find_by_name_locked(const std::string& name) REQUIRES(mu_);
  /// Write barrier: true if this instance may apply the write. A standby
  /// probes the primary and self-promotes when it is gone.
  bool writable_locked(ntcs::Bytes* reject) REQUIRES(mu_);
  void bump_epoch_locked() REQUIRES(mu_);
  ntcs::Bytes handle_register(const nsp::RegisterRequest& r);
  ntcs::Bytes handle_lookup(const std::string& name);
  ntcs::Bytes handle_lookup_attrs(const nsp::AttrMap& attrs);
  ntcs::Bytes handle_resolve(UAdd uadd);
  ntcs::Bytes handle_forward(UAdd old_uadd);
  ntcs::Bytes handle_gateways();
  ntcs::Bytes handle_deregister(UAdd uadd);

  std::unique_ptr<Node> node_;
  NsShardConfig shard_cfg_;
  nsp::ShardMap shard_map_;  // immutable after construction
  metrics::Counter* m_shard_lookups_ = nullptr;  // per-shard series
  std::vector<UAdd> replica_links_;
  std::vector<nsp::ReplicaUpdate> pending_updates_ GUARDED_BY(mu_);
  // Leaf-scoped: requests mutate the db under it and reply outside. The
  // §3.5 liveness probe (backend().probe) is a non-blocking STD-IF call,
  // not an NTCS send, so holding mu_ across it cannot deadlock the stack.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kNameServerDb, "nsp.name_server"};
  NsRole role_ GUARDED_BY(mu_);
  std::unordered_map<UAdd, DbRecord> db_ GUARDED_BY(mu_);
  // name -> newest live record's UAdd; lookup fast path for big shards.
  std::unordered_map<std::string, UAdd> by_name_ GUARDED_BY(mu_);
  std::uint64_t next_uadd_ GUARDED_BY(mu_) = kFirstDynamicUAdd;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::uint64_t epoch_ GUARDED_BY(mu_) = 1;
  Stats stats_ GUARDED_BY(mu_);
  std::jthread server_;
  bool running_ = false;
};

}  // namespace ntcs::core
