#include "core/nsp/nsp_layer.h"

#include "common/metrics.h"

namespace ntcs::core {

namespace {
metrics::Counter& m_cache_hits() {
  static metrics::Counter& c = metrics::counter("nsp.cache_hits");
  return c;
}
metrics::Counter& m_cache_misses() {
  static metrics::Counter& c = metrics::counter("nsp.cache_misses");
  return c;
}
metrics::Counter& m_cache_invalidations() {
  static metrics::Counter& c = metrics::counter("nsp.cache_invalidations");
  return c;
}
/// Live lease-cache size for the health plane; republished (set) after
/// every mutation while lease_mu_ is still held, so it cannot drift. No
/// `.bound` sibling: the cache is capped by the namespace, not a queue
/// bound, and must not trip the utilization rule.
void publish_lease_cache(std::size_t n) {
  static metrics::Gauge& g = metrics::gauge("nsp.lease_cache.size");
  g.set(static_cast<std::int64_t>(n));
}
}  // namespace

NspLayer::NspLayer(LcmLayer& lcm, std::shared_ptr<Identity> identity,
                   std::chrono::nanoseconds request_timeout)
    : lcm_(lcm),
      identity_(std::move(identity)),
      timeout_(request_timeout),
      log_("nsp", identity_->name()) {}

void NspLayer::configure_shards(const WellKnownTable& wk) {
  ntcs::LockGuard lk(lease_mu_);
  const std::size_t n = wk.shards.empty() ? 1 : wk.shards.size();
  if (n == shard_map_.size()) return;  // same topology: leases stay good
  shard_map_ = nsp::ShardMap(n);
  lease_cache_.clear();
  publish_lease_cache(0);
  shard_epochs_.assign(n, 0);
}

UAdd NspLayer::target_for_name(const std::string& name) const {
  ntcs::LockGuard lk(lease_mu_);
  return ns_shard_uadd(shard_map_.shard_of(name));
}

std::vector<UAdd> NspLayer::all_shard_targets() const {
  std::size_t n;
  {
    ntcs::LockGuard lk(lease_mu_);
    n = shard_map_.size();
  }
  std::vector<UAdd> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) out.push_back(ns_shard_uadd(s));
  return out;
}

std::vector<UAdd> NspLayer::targets_for_uadd(UAdd uadd) const {
  std::size_t n;
  {
    ntcs::LockGuard lk(lease_mu_);
    n = shard_map_.size();
  }
  if (n <= 1) return {kNameServerUAdd};
  if (uadd.raw() >= kFirstDynamicUAdd) {
    // Dynamic UAdds are minted striped: the residue names the shard.
    return {ns_shard_uadd((uadd.raw() - kFirstDynamicUAdd) % n)};
  }
  return all_shard_targets();  // well-known: whichever shard holds it
}

ntcs::Result<RequestTicket> NspLayer::call_async(UAdd target,
                                                 ntcs::Bytes request_body) {
  static metrics::Counter& m_queries = metrics::counter("nsp.queries");
  m_queries.inc();
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.queries;
  }
  // Packed-mode characters are representation-free, so the body needs no
  // pack routine; internal = no monitoring/time recursion on NSP traffic.
  SendOptions opts;
  opts.internal = true;
  opts.timeout = timeout_;
  return lcm_.request_async(target, Payload::raw(std::move(request_body)),
                            opts);
}

ntcs::Result<ntcs::Bytes> NspLayer::await_call(
    const ntcs::Result<RequestTicket>& ticket) {
  ntcs::Result<Reply> reply =
      ticket ? lcm_.await(ticket.value())
             : ntcs::Result<Reply>(ticket.error());
  if (!reply) {
    static metrics::Counter& m_failures = metrics::counter("nsp.failures");
    m_failures.inc();
    ntcs::LockGuard lk(mu_);
    ++stats_.failures;
    return reply.error();
  }
  return std::move(reply.value().payload);
}

ntcs::Result<ntcs::Bytes> NspLayer::call(UAdd target,
                                         ntcs::Bytes request_body) {
  return await_call(call_async(target, std::move(request_body)));
}

ntcs::Result<ntcs::Bytes> NspLayer::call_targets(
    const std::vector<UAdd>& targets, const ntcs::Bytes& request_body) {
  ntcs::Result<ntcs::Bytes> last =
      ntcs::Error(ntcs::Errc::not_found, "no shard answered");
  for (UAdd target : targets) {
    auto body = call(target, ntcs::Bytes(request_body));
    if (!body) {
      last = std::move(body);  // transport trouble: try the next shard
      continue;
    }
    const ntcs::Errc code = nsp::response_status(body.value());
    if (code == ntcs::Errc::not_found || code == ntcs::Errc::wrong_shard) {
      last = std::move(body);  // this shard doesn't hold it; keep probing
      continue;
    }
    return body;  // authoritative (ok, still_alive, ...)
  }
  return last;
}

ntcs::Result<UAdd> NspLayer::register_module(const RegistrationInfo& info) {
  nsp::RegisterRequest req;
  req.name = info.name_override.empty() ? identity_->name()
                                        : info.name_override;
  req.attrs = info.attrs;
  req.phys = identity_->phys().blob;
  req.net = identity_->net();
  req.arch = convert::arch_wire_id(identity_->arch());
  req.requested_uadd = info.requested_uadd;
  req.is_gateway = info.is_gateway;
  for (const NetName& n : info.gw_nets) req.gw_nets.push_back(n);
  for (const PhysAddr& p : info.gw_phys) req.gw_phys.push_back(p.blob);

  auto body = call(target_for_name(req.name), nsp::encode_register(req));
  if (!body) return body.error();
  auto uadd = nsp::decode_uadd_response(body.value());
  if (!uadd) return uadd.error();
  // The TAdd has served its purpose; from now on every message carries the
  // real UAdd and peers purge the TAdd from their tables (§3.4).
  identity_->set_uadd(uadd.value());
  log_.info("registered as " + uadd.value().to_string());
  return uadd;
}

void NspLayer::note_epoch_locked(std::size_t shard, std::uint64_t epoch) {
  if (shard >= shard_epochs_.size()) shard_epochs_.resize(shard + 1, 0);
  if (epoch <= shard_epochs_[shard]) return;
  shard_epochs_[shard] = epoch;
  // Reconfiguration happened (module move or shard failover): every lease
  // this shard granted under an older epoch may name a dead location.
  for (auto it = lease_cache_.begin(); it != lease_cache_.end();) {
    if (it->second.shard == shard && it->second.epoch < epoch) {
      it = lease_cache_.erase(it);
      m_cache_invalidations().inc();
      ++lease_stats_.lease_invalidations;
    } else {
      ++it;
    }
  }
  publish_lease_cache(lease_cache_.size());
}

ntcs::Result<UAdd> NspLayer::accept_lookup_reply(const std::string& name,
                                                 ntcs::BytesView body) {
  auto resp = nsp::decode_lookup_response(body);
  if (!resp) return resp.error();
  const UAdd uadd = UAdd::from_raw(resp.value().uadd_raw);
  if (resp.value().lease_ms > 0) {
    const auto expiry = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(resp.value().lease_ms);
    ntcs::LockGuard lk(lease_mu_);
    note_epoch_locked(resp.value().shard, resp.value().epoch);
    // Only a lease minted under the current epoch may enter the cache; a
    // reordered stale reply must not resurrect a dead location.
    if (resp.value().shard < shard_epochs_.size() &&
        resp.value().epoch == shard_epochs_[resp.value().shard]) {
      lease_cache_[name] =
          Lease{uadd, resp.value().epoch, expiry, resp.value().shard};
      publish_lease_cache(lease_cache_.size());
    }
  }
  return uadd;
}

ntcs::Result<UAdd> NspLayer::lookup(const std::string& name) {
  {
    ntcs::LockGuard lk(lease_mu_);
    auto it = lease_cache_.find(name);
    if (it != lease_cache_.end() &&
        std::chrono::steady_clock::now() < it->second.expiry &&
        it->second.shard < shard_epochs_.size() &&
        it->second.epoch == shard_epochs_[it->second.shard]) {
      m_cache_hits().inc();
      ++lease_stats_.lease_hits;
      return it->second.uadd;
    }
    m_cache_misses().inc();
    ++lease_stats_.lease_misses;
  }
  auto body = call(target_for_name(name), nsp::encode_lookup(name));
  if (!body) return body.error();
  return accept_lookup_reply(name, body.value());
}

std::vector<ntcs::Result<UAdd>> NspLayer::lookup_many(
    const std::vector<std::string>& names) {
  std::vector<std::optional<ntcs::Result<UAdd>>> done(names.size());
  {
    ntcs::LockGuard lk(lease_mu_);
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < names.size(); ++i) {
      auto it = lease_cache_.find(names[i]);
      if (it != lease_cache_.end() && now < it->second.expiry &&
          it->second.shard < shard_epochs_.size() &&
          it->second.epoch == shard_epochs_[it->second.shard]) {
        m_cache_hits().inc();
        ++lease_stats_.lease_hits;
        done[i] = ntcs::Result<UAdd>(it->second.uadd);
      } else {
        m_cache_misses().inc();
        ++lease_stats_.lease_misses;
      }
    }
  }
  // Issue phase: every uncached query goes out before any reply is
  // awaited, so the batch costs ~one round trip instead of one each.
  std::vector<ntcs::Result<RequestTicket>> tickets;
  std::vector<std::size_t> ticket_slot;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (done[i].has_value()) continue;
    tickets.push_back(
        call_async(target_for_name(names[i]), nsp::encode_lookup(names[i])));
    ticket_slot.push_back(i);
  }
  for (std::size_t t = 0; t < tickets.size(); ++t) {
    const std::size_t i = ticket_slot[t];
    auto body = await_call(tickets[t]);
    if (!body) {
      done[i] = ntcs::Result<UAdd>(body.error());
      continue;
    }
    done[i] = accept_lookup_reply(names[i], body.value());
  }
  std::vector<ntcs::Result<UAdd>> out;
  out.reserve(names.size());
  for (auto& d : done) out.push_back(std::move(*d));
  return out;
}

ntcs::Result<std::vector<UAdd>> NspLayer::lookup_attrs(
    const nsp::AttrMap& attrs) {
  const ntcs::Bytes req = nsp::encode_lookup_attrs(attrs);
  std::vector<UAdd> merged;
  ntcs::Result<std::vector<UAdd>> last_err =
      ntcs::Error(ntcs::Errc::not_found, "no shard answered");
  bool any_ok = false;
  for (UAdd target : all_shard_targets()) {
    auto body = call(target, ntcs::Bytes(req));
    if (!body) {
      last_err = body.error();
      continue;
    }
    auto part = nsp::decode_uadds_response(body.value());
    if (!part) {
      last_err = part.error();
      continue;
    }
    any_ok = true;
    merged.insert(merged.end(), part.value().begin(), part.value().end());
  }
  if (!any_ok) return last_err;
  return merged;
}

ntcs::Result<ResolveInfo> NspLayer::resolve_info(UAdd uadd) {
  auto body = call_targets(targets_for_uadd(uadd), nsp::encode_resolve(uadd));
  if (!body) return body.error();
  auto resp = nsp::decode_resolve_response(body.value());
  if (!resp) return resp.error();
  ResolveInfo out;
  out.name = std::move(resp.value().name);
  out.phys = PhysAddr{std::move(resp.value().phys)};
  out.net = std::move(resp.value().net);
  out.arch = convert::arch_from_wire_id(resp.value().arch)
                 .value_or(convert::Arch::vax780);
  return out;
}

ntcs::Result<std::vector<GatewayRecord>> NspLayer::gateways() {
  const ntcs::Bytes req = nsp::encode_gateways();
  std::vector<GatewayRecord> merged;
  ntcs::Result<std::vector<GatewayRecord>> last_err =
      ntcs::Error(ntcs::Errc::not_found, "no shard answered");
  bool any_ok = false;
  for (UAdd target : all_shard_targets()) {
    auto body = call(target, ntcs::Bytes(req));
    if (!body) {
      last_err = body.error();
      continue;
    }
    auto part = nsp::decode_gateways_response(body.value());
    if (!part) {
      last_err = part.error();
      continue;
    }
    any_ok = true;
    for (auto& g : part.value()) {
      bool dup = false;
      for (const auto& have : merged) dup = dup || have.uadd == g.uadd;
      if (!dup) merged.push_back(std::move(g));
    }
  }
  if (!any_ok) return last_err;
  return merged;
}

ntcs::Status NspLayer::deregister(UAdd uadd) {
  auto body = call_targets(targets_for_uadd(uadd), nsp::encode_deregister(uadd));
  if (!body) return body.error();
  return nsp::decode_ok_response(body.value());
}

ntcs::Status NspLayer::ping() {
  auto body = call(kNameServerUAdd, nsp::encode_ping());
  if (!body) return body.error();
  return nsp::decode_ok_response(body.value());
}

ntcs::Result<ResolvedDest> NspLayer::resolve(UAdd uadd) {
  auto info = resolve_info(uadd);
  if (!info) return info.error();
  return ResolvedDest{uadd, info.value().phys, info.value().net};
}

ntcs::Result<UAdd> NspLayer::forward(UAdd old_uadd) {
  // The caller just took an address fault on old_uadd: any lease naming
  // it is wrong by observation, whether or not its TTL or epoch agree.
  // Purging here makes the §3.5 per-request retry also the cache's
  // invalidation path — a stale hit costs one extra round trip, never a
  // silent wrong answer.
  {
    ntcs::LockGuard lk(lease_mu_);
    for (auto it = lease_cache_.begin(); it != lease_cache_.end();) {
      if (it->second.uadd == old_uadd) {
        it = lease_cache_.erase(it);
        m_cache_invalidations().inc();
        ++lease_stats_.lease_invalidations;
      } else {
        ++it;
      }
    }
    publish_lease_cache(lease_cache_.size());
  }
  auto body = call_targets(targets_for_uadd(old_uadd),
                           nsp::encode_forward(old_uadd));
  if (!body) return body.error();
  return nsp::decode_uadd_response(body.value());
}

NspLayer::Stats NspLayer::stats() const {
  Stats out;
  {
    ntcs::LockGuard lk(mu_);
    out = stats_;
  }
  {
    // kNspState(200) -> kNspLease(205): increasing rank, legal.
    ntcs::LockGuard lk(lease_mu_);
    out.lease_hits = lease_stats_.lease_hits;
    out.lease_misses = lease_stats_.lease_misses;
    out.lease_invalidations = lease_stats_.lease_invalidations;
  }
  return out;
}

std::optional<NspLayer::LeaseView> NspLayer::lease_peek(
    const std::string& name) const {
  ntcs::LockGuard lk(lease_mu_);
  auto it = lease_cache_.find(name);
  if (it == lease_cache_.end()) return std::nullopt;
  return LeaseView{it->second.uadd, it->second.epoch, it->second.expiry,
                   it->second.shard};
}

void NspLayer::debug_force_expire(const std::string& name) {
  ntcs::LockGuard lk(lease_mu_);
  auto it = lease_cache_.find(name);
  if (it != lease_cache_.end()) {
    it->second.expiry = std::chrono::steady_clock::now();
  }
}

}  // namespace ntcs::core
