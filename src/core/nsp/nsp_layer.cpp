#include "core/nsp/nsp_layer.h"

#include "common/metrics.h"

namespace ntcs::core {

NspLayer::NspLayer(LcmLayer& lcm, std::shared_ptr<Identity> identity,
                   std::chrono::nanoseconds request_timeout)
    : lcm_(lcm),
      identity_(std::move(identity)),
      timeout_(request_timeout),
      log_("nsp", identity_->name()) {}

ntcs::Result<RequestTicket> NspLayer::call_async(ntcs::Bytes request_body) {
  static metrics::Counter& m_queries = metrics::counter("nsp.queries");
  m_queries.inc();
  {
    ntcs::LockGuard lk(mu_);
    ++stats_.queries;
  }
  // Packed-mode characters are representation-free, so the body needs no
  // pack routine; internal = no monitoring/time recursion on NSP traffic.
  SendOptions opts;
  opts.internal = true;
  opts.timeout = timeout_;
  return lcm_.request_async(kNameServerUAdd,
                            Payload::raw(std::move(request_body)), opts);
}

ntcs::Result<ntcs::Bytes> NspLayer::await_call(
    const ntcs::Result<RequestTicket>& ticket) {
  ntcs::Result<Reply> reply =
      ticket ? lcm_.await(ticket.value())
             : ntcs::Result<Reply>(ticket.error());
  if (!reply) {
    static metrics::Counter& m_failures = metrics::counter("nsp.failures");
    m_failures.inc();
    ntcs::LockGuard lk(mu_);
    ++stats_.failures;
    return reply.error();
  }
  return std::move(reply.value().payload);
}

ntcs::Result<ntcs::Bytes> NspLayer::call(ntcs::Bytes request_body) {
  return await_call(call_async(std::move(request_body)));
}

ntcs::Result<UAdd> NspLayer::register_module(const RegistrationInfo& info) {
  nsp::RegisterRequest req;
  req.name = info.name_override.empty() ? identity_->name()
                                        : info.name_override;
  req.attrs = info.attrs;
  req.phys = identity_->phys().blob;
  req.net = identity_->net();
  req.arch = convert::arch_wire_id(identity_->arch());
  req.requested_uadd = info.requested_uadd;
  req.is_gateway = info.is_gateway;
  for (const NetName& n : info.gw_nets) req.gw_nets.push_back(n);
  for (const PhysAddr& p : info.gw_phys) req.gw_phys.push_back(p.blob);

  auto body = call(nsp::encode_register(req));
  if (!body) return body.error();
  auto uadd = nsp::decode_uadd_response(body.value());
  if (!uadd) return uadd.error();
  // The TAdd has served its purpose; from now on every message carries the
  // real UAdd and peers purge the TAdd from their tables (§3.4).
  identity_->set_uadd(uadd.value());
  log_.info("registered as " + uadd.value().to_string());
  return uadd;
}

ntcs::Result<UAdd> NspLayer::lookup(const std::string& name) {
  auto body = call(nsp::encode_lookup(name));
  if (!body) return body.error();
  return nsp::decode_uadd_response(body.value());
}

std::vector<ntcs::Result<UAdd>> NspLayer::lookup_many(
    const std::vector<std::string>& names) {
  // Issue phase: every query goes out before any reply is awaited, so the
  // batch costs ~one round trip instead of names.size() of them.
  std::vector<ntcs::Result<RequestTicket>> tickets;
  tickets.reserve(names.size());
  for (const std::string& name : names) {
    tickets.push_back(call_async(nsp::encode_lookup(name)));
  }
  std::vector<ntcs::Result<UAdd>> out;
  out.reserve(names.size());
  for (const auto& ticket : tickets) {
    auto body = await_call(ticket);
    if (!body) {
      out.push_back(body.error());
      continue;
    }
    out.push_back(nsp::decode_uadd_response(body.value()));
  }
  return out;
}

ntcs::Result<std::vector<UAdd>> NspLayer::lookup_attrs(
    const nsp::AttrMap& attrs) {
  auto body = call(nsp::encode_lookup_attrs(attrs));
  if (!body) return body.error();
  return nsp::decode_uadds_response(body.value());
}

ntcs::Result<ResolveInfo> NspLayer::resolve_info(UAdd uadd) {
  auto body = call(nsp::encode_resolve(uadd));
  if (!body) return body.error();
  auto resp = nsp::decode_resolve_response(body.value());
  if (!resp) return resp.error();
  ResolveInfo out;
  out.name = std::move(resp.value().name);
  out.phys = PhysAddr{std::move(resp.value().phys)};
  out.net = std::move(resp.value().net);
  out.arch = convert::arch_from_wire_id(resp.value().arch)
                 .value_or(convert::Arch::vax780);
  return out;
}

ntcs::Result<std::vector<GatewayRecord>> NspLayer::gateways() {
  auto body = call(nsp::encode_gateways());
  if (!body) return body.error();
  return nsp::decode_gateways_response(body.value());
}

ntcs::Status NspLayer::deregister(UAdd uadd) {
  auto body = call(nsp::encode_deregister(uadd));
  if (!body) return body.error();
  return nsp::decode_ok_response(body.value());
}

ntcs::Status NspLayer::ping() {
  auto body = call(nsp::encode_ping());
  if (!body) return body.error();
  return nsp::decode_ok_response(body.value());
}

ntcs::Result<ResolvedDest> NspLayer::resolve(UAdd uadd) {
  auto info = resolve_info(uadd);
  if (!info) return info.error();
  return ResolvedDest{uadd, info.value().phys, info.value().net};
}

ntcs::Result<UAdd> NspLayer::forward(UAdd old_uadd) {
  auto body = call(nsp::encode_forward(old_uadd));
  if (!body) return body.error();
  return nsp::decode_uadd_response(body.value());
}

NspLayer::Stats NspLayer::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

}  // namespace ntcs::core
