// nsp_layer.h — the Name Service Protocol Layer (paper §2.4, §3).
//
// "The NSP-Layer is the single naming service access point for all layers
// within the ComMod. Its purpose is to fully isolate the ComMod from the
// naming service implementation." It talks to the Name Server module over
// the very Nucleus it serves — the central recursion of the paper (§3.1):
// every call here is an ordinary LCM request to the well-known Name Server
// UAdd, flagged internal so it is never monitored or time-stamped.
#pragma once

#include <chrono>
#include <memory>

#include "common/annotated.h"
#include "common/error.h"
#include "common/log.h"
#include "convert/machine.h"
#include "core/lcm/lcm_layer.h"
#include "core/nsp/protocol.h"

namespace ntcs::core {

/// Full resolution record (name + location + machine type) for one UAdd.
struct ResolveInfo {
  std::string name;
  PhysAddr phys;
  NetName net;
  convert::Arch arch = convert::Arch::vax780;
};

/// Registration parameters beyond what Identity already carries.
struct RegistrationInfo {
  nsp::AttrMap attrs;
  /// Register under this logical name instead of the Identity's (used by
  /// Gateway modules, whose per-network attachment ComMods carry derived
  /// names but whose registry entry is the gateway itself).
  std::string name_override;
  std::uint64_t requested_uadd = 0;  // for well-known modules only
  bool is_gateway = false;
  std::vector<NetName> gw_nets;
  std::vector<PhysAddr> gw_phys;
};

class NspLayer : public Resolver {
 public:
  NspLayer(LcmLayer& lcm, std::shared_ptr<Identity> identity,
           std::chrono::nanoseconds request_timeout =
               std::chrono::seconds(5));

  /// Register this module (paper §3.2): ships the logical name, attribute
  /// set, uninterpreted physical address and logical network id; on success
  /// updates the module Identity from its TAdd to the assigned UAdd —
  /// after which the TAdd is purged from peers' tables within two
  /// exchanges (§3.4).
  ntcs::Result<UAdd> register_module(const RegistrationInfo& info);

  /// Resource-location: logical name -> UAdd.
  ntcs::Result<UAdd> lookup(const std::string& name);

  /// Pipelined resource-location: issue every lookup over the Name Server
  /// circuit at once (correlation-ID multiplexed through the LCM send
  /// window), then collect the replies. Result i answers names[i]; one
  /// name failing does not disturb the others.
  std::vector<ntcs::Result<UAdd>> lookup_many(
      const std::vector<std::string>& names);

  /// Attribute-value naming (§7 extension): all matching modules.
  ntcs::Result<std::vector<UAdd>> lookup_attrs(const nsp::AttrMap& attrs);

  /// UAdd -> everything the naming service holds about it.
  ntcs::Result<ResolveInfo> resolve_info(UAdd uadd);

  /// The gateway/topology registry (§4.1, used by the IP-Layer).
  ntcs::Result<std::vector<GatewayRecord>> gateways();

  ntcs::Status deregister(UAdd uadd);
  ntcs::Status ping();

  // --- Resolver (the LCM-Layer's upcalls; §3.5) --------------------------
  ntcs::Result<ResolvedDest> resolve(UAdd uadd) override;
  ntcs::Result<UAdd> forward(UAdd old_uadd) override;

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t failures = 0;
  };
  Stats stats() const;

 private:
  ntcs::Result<ntcs::Bytes> call(ntcs::Bytes request_body);
  ntcs::Result<RequestTicket> call_async(ntcs::Bytes request_body);
  ntcs::Result<ntcs::Bytes> await_call(
      const ntcs::Result<RequestTicket>& ticket);

  LcmLayer& lcm_;
  std::shared_ptr<Identity> identity_;
  std::chrono::nanoseconds timeout_;
  ntcs::LayerLog log_;
  mutable ntcs::Mutex mu_{ntcs::lockrank::kNspState, "nsp.state"};
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace ntcs::core
