// nsp_layer.h — the Name Service Protocol Layer (paper §2.4, §3).
//
// "The NSP-Layer is the single naming service access point for all layers
// within the ComMod. Its purpose is to fully isolate the ComMod from the
// naming service implementation." It talks to the Name Server module over
// the very Nucleus it serves — the central recursion of the paper (§3.1):
// every call here is an ordinary LCM request to a well-known Name Server
// UAdd, flagged internal so it is never monitored or time-stamped.
//
// Sharded naming (scale extension): when the WellKnownTable carries shard
// locations, the layer computes each name's owning shard from the same
// consistent-hash ring every module shares (shard_map.h) and routes the
// request there; requests keyed by UAdd route by the stripe the UAdd was
// minted from, and well-known UAdds fan out. Lookup answers carry a lease
// (TTL) and the shard's reconfiguration epoch; the layer caches them in
// lease_cache_ and serves repeats locally until the lease expires or the
// shard's epoch moves — at which point every cached entry minted under the
// old epoch is dropped. The cache is therefore *correct under churn*: a
// stale entry can at worst yield an address fault, and the LCM-Layer's
// per-request forward() retry (§3.5) lands back here, where the dead
// lease is purged before the caller retries.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/annotated.h"
#include "common/error.h"
#include "common/log.h"
#include "convert/machine.h"
#include "core/lcm/lcm_layer.h"
#include "core/nsp/protocol.h"
#include "core/nsp/shard_map.h"

namespace ntcs::core {

/// Full resolution record (name + location + machine type) for one UAdd.
struct ResolveInfo {
  std::string name;
  PhysAddr phys;
  NetName net;
  convert::Arch arch = convert::Arch::vax780;
};

/// Registration parameters beyond what Identity already carries.
struct RegistrationInfo {
  nsp::AttrMap attrs;
  /// Register under this logical name instead of the Identity's (used by
  /// Gateway modules, whose per-network attachment ComMods carry derived
  /// names but whose registry entry is the gateway itself).
  std::string name_override;
  std::uint64_t requested_uadd = 0;  // for well-known modules only
  bool is_gateway = false;
  std::vector<NetName> gw_nets;
  std::vector<PhysAddr> gw_phys;
};

class NspLayer : public Resolver {
 public:
  NspLayer(LcmLayer& lcm, std::shared_ptr<Identity> identity,
           std::chrono::nanoseconds request_timeout =
               std::chrono::seconds(5));

  /// Install the shard topology from the well-known table (empty shards =
  /// the classic single Name Server) and reset the lease cache — a new
  /// topology invalidates every lease by definition. Called by
  /// Node::install_well_known.
  void configure_shards(const WellKnownTable& wk);

  /// Register this module (paper §3.2): ships the logical name, attribute
  /// set, uninterpreted physical address and logical network id; on success
  /// updates the module Identity from its TAdd to the assigned UAdd —
  /// after which the TAdd is purged from peers' tables within two
  /// exchanges (§3.4).
  ntcs::Result<UAdd> register_module(const RegistrationInfo& info);

  /// Resource-location: logical name -> UAdd. Served from the lease cache
  /// when a fresh, epoch-current lease exists; otherwise one round trip to
  /// the name's owning shard.
  ntcs::Result<UAdd> lookup(const std::string& name);

  /// Pipelined resource-location: issue every lookup over the Name Server
  /// circuit at once (correlation-ID multiplexed through the LCM send
  /// window), then collect the replies. Result i answers names[i]; one
  /// name failing does not disturb the others. Cached names cost nothing.
  std::vector<ntcs::Result<UAdd>> lookup_many(
      const std::vector<std::string>& names);

  /// Attribute-value naming (§7 extension): all matching modules. Sharded:
  /// the query fans out to every shard and the matches merge.
  ntcs::Result<std::vector<UAdd>> lookup_attrs(const nsp::AttrMap& attrs);

  /// UAdd -> everything the naming service holds about it.
  ntcs::Result<ResolveInfo> resolve_info(UAdd uadd);

  /// The gateway/topology registry (§4.1, used by the IP-Layer). Sharded:
  /// merged from every shard.
  ntcs::Result<std::vector<GatewayRecord>> gateways();

  ntcs::Status deregister(UAdd uadd);
  ntcs::Status ping();

  // --- Resolver (the LCM-Layer's upcalls; §3.5) --------------------------
  ntcs::Result<ResolvedDest> resolve(UAdd uadd) override;
  /// The per-request address-fault retry path. Also the cache's safety
  /// net: every lease naming old_uadd is purged here, so a client that was
  /// acting on a stale lease self-corrects on its very next attempt.
  ntcs::Result<UAdd> forward(UAdd old_uadd) override;

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t failures = 0;
    std::uint64_t lease_hits = 0;
    std::uint64_t lease_misses = 0;
    std::uint64_t lease_invalidations = 0;
  };
  Stats stats() const;

  /// Test introspection: the cached lease for a name, if any (fresh or
  /// not), and a hook that retires a lease to exactly "now" so the TTL
  /// boundary (valid strictly before expiry) is testable without sleeping.
  struct LeaseView {
    UAdd uadd;
    std::uint64_t epoch = 0;
    std::chrono::steady_clock::time_point expiry;
    std::size_t shard = 0;
  };
  std::optional<LeaseView> lease_peek(const std::string& name) const;
  void debug_force_expire(const std::string& name);

 private:
  struct Lease {
    UAdd uadd;
    std::uint64_t epoch = 0;
    std::chrono::steady_clock::time_point expiry;
    std::size_t shard = 0;
  };

  ntcs::Result<ntcs::Bytes> call(UAdd target, ntcs::Bytes request_body);
  ntcs::Result<RequestTicket> call_async(UAdd target,
                                         ntcs::Bytes request_body);
  ntcs::Result<ntcs::Bytes> await_call(
      const ntcs::Result<RequestTicket>& ticket);
  /// Try each target until one answers authoritatively (anything but
  /// not_found / wrong_shard / a transport failure).
  ntcs::Result<ntcs::Bytes> call_targets(const std::vector<UAdd>& targets,
                                         const ntcs::Bytes& request_body);
  /// The shard UAdd owning a logical name.
  UAdd target_for_name(const std::string& name) const;
  /// Probe order for a UAdd-keyed request: the minting shard for dynamic
  /// UAdds, every shard for well-known ones.
  std::vector<UAdd> targets_for_uadd(UAdd uadd) const;
  std::vector<UAdd> all_shard_targets() const;
  /// Record a shard epoch observed on a reply; a newer epoch purges every
  /// lease the shard granted under older ones.
  void note_epoch_locked(std::size_t shard, std::uint64_t epoch)
      REQUIRES(lease_mu_);
  /// Decode a lookup reply and (if cacheable) install the lease.
  ntcs::Result<UAdd> accept_lookup_reply(const std::string& name,
                                         ntcs::BytesView body);

  LcmLayer& lcm_;
  std::shared_ptr<Identity> identity_;
  std::chrono::nanoseconds timeout_;
  ntcs::LayerLog log_;
  mutable ntcs::Mutex mu_{ntcs::lockrank::kNspState, "nsp.state"};
  Stats stats_ GUARDED_BY(mu_);
  // Lease-cache state. CONTRACT (PR 4 shape): lease_mu_ is leaf-scoped —
  // check under it, RELEASE, then issue the LCM request, re-lock to
  // insert. Holding it across call()/call_async()/await_call() would
  // invert the kNspLease(205) -> kNspState(200) rank the moment the call
  // path touches stats_, and the runtime validator flags it.
  mutable ntcs::Mutex lease_mu_{ntcs::lockrank::kNspLease, "nsp.lease"};
  nsp::ShardMap shard_map_ GUARDED_BY(lease_mu_);
  std::unordered_map<std::string, Lease> lease_cache_ GUARDED_BY(lease_mu_);
  std::vector<std::uint64_t> shard_epochs_ GUARDED_BY(lease_mu_);
  // Only the lease_* fields are used; stats() merges them into stats_.
  Stats lease_stats_ GUARDED_BY(lease_mu_);
};

}  // namespace ntcs::core
