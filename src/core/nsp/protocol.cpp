#include "core/nsp/protocol.h"

#include "convert/packed.h"

namespace ntcs::core::nsp {

using convert::Packer;
using convert::Unpacker;

namespace {

void put_attrs(Packer& p, const AttrMap& attrs) {
  p.put_u64(attrs.size());
  for (const auto& [k, v] : attrs) {
    p.put_string(k);
    p.put_string(v);
  }
}

ntcs::Result<AttrMap> get_attrs(Unpacker& u) {
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 1024) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd attribute count");
  }
  AttrMap attrs;
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto k = u.get_string();
    if (!k) return k.error();
    auto v = u.get_string();
    if (!v) return v.error();
    attrs.emplace(std::move(k.value()), std::move(v.value()));
  }
  return attrs;
}

void put_strings(Packer& p, const std::vector<std::string>& v) {
  p.put_u64(v.size());
  for (const auto& s : v) p.put_string(s);
}

ntcs::Result<std::vector<std::string>> get_strings(Unpacker& u) {
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 1024) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd string count");
  }
  std::vector<std::string> v;
  v.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto s = u.get_string();
    if (!s) return s.error();
    v.push_back(std::move(s.value()));
  }
  return v;
}

Packer request_prologue(NsOp op) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(op));
  return p;
}

/// Responses: status envelope first.
Packer ok_prologue() {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(ntcs::Errc::ok));
  p.put_string("");
  return p;
}

/// Consume the status envelope; empty optional = success.
std::optional<ntcs::Error> check_status(Unpacker& u) {
  auto code = u.get_u64();
  if (!code) return code.error();
  auto text = u.get_string();
  if (!text) return text.error();
  if (code.value() == static_cast<std::uint64_t>(ntcs::Errc::ok)) {
    return std::nullopt;
  }
  return ntcs::Error(static_cast<ntcs::Errc>(code.value()), text.value());
}

}  // namespace

namespace {

void put_register_body(Packer& p, const RegisterRequest& r) {
  p.put_string(r.name);
  put_attrs(p, r.attrs);
  p.put_string(r.phys);
  p.put_string(r.net);
  p.put_u64(r.arch);
  p.put_u64(r.requested_uadd);
  p.put_bool(r.is_gateway);
  put_strings(p, r.gw_nets);
  put_strings(p, r.gw_phys);
}

ntcs::Result<RegisterRequest> get_register_body(Unpacker& u) {
  RegisterRequest reg;
  auto name = u.get_string();
  if (!name) return name.error();
  reg.name = std::move(name.value());
  auto attrs = get_attrs(u);
  if (!attrs) return attrs.error();
  reg.attrs = std::move(attrs.value());
  auto phys = u.get_string();
  if (!phys) return phys.error();
  reg.phys = std::move(phys.value());
  auto net = u.get_string();
  if (!net) return net.error();
  reg.net = std::move(net.value());
  auto arch = u.get_u64();
  if (!arch) return arch.error();
  reg.arch = static_cast<std::uint32_t>(arch.value());
  auto requested = u.get_u64();
  if (!requested) return requested.error();
  reg.requested_uadd = requested.value();
  auto is_gw = u.get_bool();
  if (!is_gw) return is_gw.error();
  reg.is_gateway = is_gw.value();
  auto nets = get_strings(u);
  if (!nets) return nets.error();
  reg.gw_nets = std::move(nets.value());
  auto phys_list = get_strings(u);
  if (!phys_list) return phys_list.error();
  reg.gw_phys = std::move(phys_list.value());
  return reg;
}

}  // namespace

ntcs::Bytes encode_register(const RegisterRequest& r) {
  Packer p = request_prologue(NsOp::register_module);
  put_register_body(p, r);
  return std::move(p).take();
}

ntcs::Bytes encode_replicate(const ReplicaUpdate& u) {
  Packer p = request_prologue(NsOp::replicate);
  put_register_body(p, u.reg);
  p.put_u64(u.uadd_raw);
  p.put_u64(u.seq);
  p.put_bool(u.deregistered);
  p.put_u64(u.epoch);
  return std::move(p).take();
}

ntcs::Bytes encode_lookup(const std::string& name) {
  Packer p = request_prologue(NsOp::lookup);
  p.put_string(name);
  return std::move(p).take();
}

ntcs::Bytes encode_lookup_attrs(const AttrMap& attrs) {
  Packer p = request_prologue(NsOp::lookup_attrs);
  put_attrs(p, attrs);
  return std::move(p).take();
}

namespace {
ntcs::Bytes encode_uadd_request(NsOp op, UAdd uadd) {
  Packer p = request_prologue(op);
  p.put_u64(uadd.raw());
  return std::move(p).take();
}
}  // namespace

ntcs::Bytes encode_resolve(UAdd uadd) {
  return encode_uadd_request(NsOp::resolve, uadd);
}
ntcs::Bytes encode_forward(UAdd old_uadd) {
  return encode_uadd_request(NsOp::forward, old_uadd);
}
ntcs::Bytes encode_deregister(UAdd uadd) {
  return encode_uadd_request(NsOp::deregister, uadd);
}

ntcs::Bytes encode_gateways() {
  return std::move(request_prologue(NsOp::gateways)).take();
}
ntcs::Bytes encode_ping() {
  return std::move(request_prologue(NsOp::ping)).take();
}

ntcs::Result<Request> decode_request(ntcs::BytesView body) {
  Unpacker u(body);
  auto op = u.get_u64();
  if (!op) return op.error();
  Request req;
  req.op = static_cast<NsOp>(op.value());
  switch (req.op) {
    case NsOp::register_module: {
      auto reg = get_register_body(u);
      if (!reg) return reg.error();
      req.reg = std::move(reg.value());
      return req;
    }
    case NsOp::replicate: {
      auto reg = get_register_body(u);
      if (!reg) return reg.error();
      req.update.reg = std::move(reg.value());
      auto uadd = u.get_u64();
      if (!uadd) return uadd.error();
      req.update.uadd_raw = uadd.value();
      auto seq = u.get_u64();
      if (!seq) return seq.error();
      req.update.seq = seq.value();
      auto dereg = u.get_bool();
      if (!dereg) return dereg.error();
      req.update.deregistered = dereg.value();
      auto epoch = u.get_u64();
      if (!epoch) return epoch.error();
      req.update.epoch = epoch.value();
      return req;
    }
    case NsOp::lookup: {
      auto name = u.get_string();
      if (!name) return name.error();
      req.name = std::move(name.value());
      return req;
    }
    case NsOp::lookup_attrs: {
      auto attrs = get_attrs(u);
      if (!attrs) return attrs.error();
      req.attrs = std::move(attrs.value());
      return req;
    }
    case NsOp::resolve:
    case NsOp::forward:
    case NsOp::deregister: {
      auto uadd = u.get_u64();
      if (!uadd) return uadd.error();
      req.uadd_raw = uadd.value();
      return req;
    }
    case NsOp::gateways:
    case NsOp::ping:
      return req;
  }
  return ntcs::Error(ntcs::Errc::bad_message, "unknown NSP op");
}

ntcs::Bytes encode_error_response(ntcs::Errc code, const std::string& text) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(code));
  p.put_string(text);
  return std::move(p).take();
}

ntcs::Bytes encode_uadd_response(UAdd uadd) {
  Packer p = ok_prologue();
  p.put_u64(uadd.raw());
  return std::move(p).take();
}

ntcs::Bytes encode_lookup_response(const LookupResponse& r) {
  Packer p = ok_prologue();
  p.put_u64(r.uadd_raw);
  p.put_u64(r.epoch);
  p.put_u64(r.lease_ms);
  p.put_u64(r.shard);
  return std::move(p).take();
}

ntcs::Bytes encode_uadds_response(const std::vector<UAdd>& uadds) {
  Packer p = ok_prologue();
  p.put_u64(uadds.size());
  for (UAdd u : uadds) p.put_u64(u.raw());
  return std::move(p).take();
}

ntcs::Bytes encode_resolve_response(const ResolveResponse& r) {
  Packer p = ok_prologue();
  p.put_string(r.name);
  p.put_string(r.phys);
  p.put_string(r.net);
  p.put_u64(r.arch);
  return std::move(p).take();
}

ntcs::Bytes encode_gateways_response(const std::vector<GatewayRecord>& gws) {
  Packer p = ok_prologue();
  p.put_u64(gws.size());
  for (const GatewayRecord& g : gws) {
    p.put_u64(g.uadd.raw());
    p.put_string(g.name);
    p.put_u64(g.nets.size());
    for (std::size_t i = 0; i < g.nets.size(); ++i) {
      p.put_string(g.nets[i]);
      p.put_string(g.phys[i].blob);
    }
  }
  return std::move(p).take();
}

ntcs::Bytes encode_ok_response() { return std::move(ok_prologue()).take(); }

ntcs::Errc response_status(ntcs::BytesView body) {
  Unpacker u(body);
  auto code = u.get_u64();
  if (!code) return ntcs::Errc::bad_message;
  return static_cast<ntcs::Errc>(code.value());
}

ntcs::Result<UAdd> decode_uadd_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto raw = u.get_u64();
  if (!raw) return raw.error();
  return UAdd::from_raw(raw.value());
}

ntcs::Result<LookupResponse> decode_lookup_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  LookupResponse r;
  auto raw = u.get_u64();
  if (!raw) return raw.error();
  r.uadd_raw = raw.value();
  auto epoch = u.get_u64();
  if (!epoch) return epoch.error();
  r.epoch = epoch.value();
  auto lease = u.get_u64();
  if (!lease) return lease.error();
  r.lease_ms = lease.value();
  auto shard = u.get_u64();
  if (!shard) return shard.error();
  r.shard = shard.value();
  return r;
}

ntcs::Result<std::vector<UAdd>> decode_uadds_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 100000) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd UAdd count");
  }
  std::vector<UAdd> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto raw = u.get_u64();
    if (!raw) return raw.error();
    out.push_back(UAdd::from_raw(raw.value()));
  }
  return out;
}

ntcs::Result<ResolveResponse> decode_resolve_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  ResolveResponse r;
  auto name = u.get_string();
  if (!name) return name.error();
  r.name = std::move(name.value());
  auto phys = u.get_string();
  if (!phys) return phys.error();
  r.phys = std::move(phys.value());
  auto net = u.get_string();
  if (!net) return net.error();
  r.net = std::move(net.value());
  auto arch = u.get_u64();
  if (!arch) return arch.error();
  r.arch = static_cast<std::uint32_t>(arch.value());
  return r;
}

ntcs::Result<std::vector<GatewayRecord>> decode_gateways_response(
    ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 10000) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd gateway count");
  }
  std::vector<GatewayRecord> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    GatewayRecord g;
    auto raw = u.get_u64();
    if (!raw) return raw.error();
    g.uadd = UAdd::from_raw(raw.value());
    auto name = u.get_string();
    if (!name) return name.error();
    g.name = std::move(name.value());
    auto nn = u.get_u64();
    if (!nn) return nn.error();
    if (nn.value() > 64) {
      return ntcs::Error(ntcs::Errc::bad_message, "absurd net count");
    }
    for (std::uint64_t j = 0; j < nn.value(); ++j) {
      auto net = u.get_string();
      if (!net) return net.error();
      auto phys = u.get_string();
      if (!phys) return phys.error();
      g.nets.push_back(std::move(net.value()));
      g.phys.push_back(PhysAddr{std::move(phys.value())});
    }
    out.push_back(std::move(g));
  }
  return out;
}

ntcs::Status decode_ok_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  return ntcs::Status::success();
}

}  // namespace ntcs::core::nsp
