// protocol.h — the Name Service Protocol messages (paper §3).
//
// NSP requests and responses travel as ordinary NTCS messages in packed
// mode (character transport format, §5.1) — the naming service "is nothing
// more than an application built on the Nucleus". The envelope of every
// response is a status (Errc + text) followed by an op-specific body.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "convert/machine.h"
#include "core/addr.h"
#include "core/ip/ip_layer.h"

namespace ntcs::core::nsp {

enum class NsOp : std::uint64_t {
  register_module = 1,
  lookup = 2,
  lookup_attrs = 3,
  resolve = 4,
  forward = 5,
  gateways = 6,
  deregister = 7,
  ping = 8,
  /// Primary -> replica state transfer (§7 replication extension): one
  /// full database record, sent as an internal datagram.
  replicate = 9,
};

/// Attribute set for the attribute-value naming scheme (the paper's §7
/// successor to plain string names; plain names are the attribute "name").
using AttrMap = std::map<std::string, std::string>;

struct RegisterRequest {
  std::string name;
  AttrMap attrs;
  std::string phys;  // uninterpreted (§3.2)
  std::string net;   // logical network identifier
  std::uint32_t arch = 0;
  std::uint64_t requested_uadd = 0;  // nonzero: well-known (NS, prime gws)
  bool is_gateway = false;
  std::vector<std::string> gw_nets;
  std::vector<std::string> gw_phys;
};

struct ResolveResponse {
  std::string name;
  std::string phys;
  std::string net;
  std::uint32_t arch = 0;
};

/// One replicated database record (NsOp::replicate).
struct ReplicaUpdate {
  RegisterRequest reg;  // the record's registration fields
  std::uint64_t uadd_raw = 0;
  std::uint64_t seq = 0;
  bool deregistered = false;
  /// The shard's reconfiguration epoch at the time of the mutation; a
  /// warm standby tracks the maximum so its promotion bump supersedes
  /// every lease the dead primary ever granted.
  std::uint64_t epoch = 0;
};

/// Lookup answer (name -> UAdd) plus the lease/epoch protocol words: the
/// client may cache the mapping for lease_ms, and must drop every cached
/// entry minted under an older epoch of this shard the moment a reply
/// carries a newer one (shard failover and module moves bump it).
struct LookupResponse {
  std::uint64_t uadd_raw = 0;
  std::uint64_t epoch = 1;
  std::uint64_t lease_ms = 0;  // 0 = not cacheable
  std::uint64_t shard = 0;     // answering shard (sanity/telemetry)
};

/// A decoded request (the op plus whichever body applies).
struct Request {
  NsOp op;
  RegisterRequest reg;          // register_module
  std::string name;             // lookup
  AttrMap attrs;                // lookup_attrs
  std::uint64_t uadd_raw = 0;   // resolve / forward / deregister
  ReplicaUpdate update;         // replicate
};

ntcs::Bytes encode_register(const RegisterRequest& r);
ntcs::Bytes encode_lookup(const std::string& name);
ntcs::Bytes encode_lookup_attrs(const AttrMap& attrs);
ntcs::Bytes encode_resolve(UAdd uadd);
ntcs::Bytes encode_forward(UAdd old_uadd);
ntcs::Bytes encode_gateways();
ntcs::Bytes encode_deregister(UAdd uadd);
ntcs::Bytes encode_ping();
ntcs::Bytes encode_replicate(const ReplicaUpdate& u);

ntcs::Result<Request> decode_request(ntcs::BytesView body);

// ---- responses ------------------------------------------------------------

ntcs::Bytes encode_error_response(ntcs::Errc code, const std::string& text);
ntcs::Bytes encode_uadd_response(UAdd uadd);  // register/forward
ntcs::Bytes encode_lookup_response(const LookupResponse& r);
ntcs::Bytes encode_uadds_response(const std::vector<UAdd>& uadds);
ntcs::Bytes encode_resolve_response(const ResolveResponse& r);
ntcs::Bytes encode_gateways_response(const std::vector<GatewayRecord>& gws);
ntcs::Bytes encode_ok_response();  // deregister/ping

/// Peek just the status code of a response envelope (bad_message if the
/// envelope itself is malformed). The sharded NSP-Layer uses it to decide
/// whether a fan-out should try the next shard (not_found / wrong_shard)
/// or stop at an authoritative answer.
ntcs::Errc response_status(ntcs::BytesView body);

/// Check the status envelope; on failure returns the carried error, on
/// success returns the body offset for the op-specific decoder.
ntcs::Result<UAdd> decode_uadd_response(ntcs::BytesView body);
ntcs::Result<LookupResponse> decode_lookup_response(ntcs::BytesView body);
ntcs::Result<std::vector<UAdd>> decode_uadds_response(ntcs::BytesView body);
ntcs::Result<ResolveResponse> decode_resolve_response(ntcs::BytesView body);
ntcs::Result<std::vector<GatewayRecord>> decode_gateways_response(
    ntcs::BytesView body);
ntcs::Status decode_ok_response(ntcs::BytesView body);

}  // namespace ntcs::core::nsp
