#include "core/nsp/shard_map.h"

#include <algorithm>
#include <string>

namespace ntcs::core::nsp {

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

ShardMap::ShardMap(std::size_t num_shards, int vnodes)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  if (num_shards_ == 1) return;  // ring unused: shard_of short-circuits
  ring_.reserve(num_shards_ * static_cast<std::size_t>(vnodes));
  for (std::size_t s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes; ++v) {
      const std::string label =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring_.push_back(Point{stable_hash(label), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard);
  });
}

std::size_t ShardMap::shard_of(std::string_view name) const {
  if (num_shards_ == 1) return 0;
  const std::uint64_t h = stable_hash(name);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  if (it == ring_.end()) it = ring_.begin();  // wrap: the ring is circular
  return it->shard;
}

}  // namespace ntcs::core::nsp
