// shard_map.h — consistent-hash placement of logical names onto Name
// Server shards.
//
// The ROADMAP's "millions of names" goal (and the Internames lesson that
// name resolution must itself be a distributed service) shards the name
// space across N Name Server modules. Placement is a classic
// consistent-hash ring: every shard contributes kVnodesPerShard virtual
// points hashed from (shard, vnode); a name lands on the first point
// clockwise from its own hash. Adding or removing one shard therefore
// remaps only ~1/N of the names — the ring-invariant property test pins
// that bound — and every ComMod computes the same placement from nothing
// but the shard count, so the map needs no distribution protocol: it
// travels implicitly in WellKnownTable::shards.
//
// The map is immutable after construction. Reconfiguration (a different
// shard count) builds a new map; correctness under such churn is the
// lease/epoch protocol's job (nsp_layer.h), not the ring's.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ntcs::core::nsp {

/// 64-bit FNV-1a — stable across platforms and runs; the ring and the
/// UAdd striping both depend on every module hashing identically.
std::uint64_t stable_hash(std::string_view s);

class ShardMap {
 public:
  static constexpr int kVnodesPerShard = 64;

  /// A single-shard map: every name belongs to shard 0 (the classic
  /// unsharded Name Server).
  ShardMap() : ShardMap(1) {}
  explicit ShardMap(std::size_t num_shards, int vnodes = kVnodesPerShard);

  std::size_t size() const { return num_shards_; }
  bool sharded() const { return num_shards_ > 1; }

  /// The shard owning a logical name.
  std::size_t shard_of(std::string_view name) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t num_shards_ = 1;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace ntcs::core::nsp
