#include "core/nsp/static_resolver.h"

#include "core/node.h"

namespace ntcs::core {

void StaticNameService::add(const std::string& name, UAdd uadd, PhysAddr phys,
                            NetName net) {
  ntcs::LockGuard lk(mu_);
  entries_[uadd] = Entry{name, ResolvedDest{uadd, std::move(phys),
                                            std::move(net)}};
}

void StaticNameService::add_gateway(GatewayRecord gw) {
  ntcs::LockGuard lk(mu_);
  gateways_.push_back(std::move(gw));
}

ntcs::Result<UAdd> StaticNameService::lookup(const std::string& name) const {
  ntcs::LockGuard lk(mu_);
  for (const auto& [uadd, entry] : entries_) {
    if (entry.name == name) return uadd;
  }
  return ntcs::Error(ntcs::Errc::not_found,
                     "no static entry named '" + name + "'");
}

ntcs::Result<std::vector<GatewayRecord>> StaticNameService::gateways() const {
  ntcs::LockGuard lk(mu_);
  return gateways_;
}

ntcs::Result<ResolvedDest> StaticNameService::resolve(UAdd uadd) {
  ntcs::LockGuard lk(mu_);
  auto it = entries_.find(uadd);
  if (it == entries_.end()) {
    return ntcs::Error(ntcs::Errc::not_found,
                       "no static entry for " + uadd.to_string());
  }
  return it->second.dest;
}

ntcs::Result<UAdd> StaticNameService::forward(UAdd old_uadd) {
  // A static scheme has no notion of newer generations.
  return ntcs::Error(ntcs::Errc::not_found,
                     "static naming has no forwarding for " +
                         old_uadd.to_string());
}

std::size_t StaticNameService::size() const {
  ntcs::LockGuard lk(mu_);
  return entries_.size();
}

void use_static_naming(Node& node, StaticNameService& svc) {
  node.lcm().set_resolver(&svc);
  node.ip().set_topology_source([&svc] { return svc.gateways(); });
}

}  // namespace ntcs::core
