// static_resolver.h — a second naming-service implementation (paper §3).
//
// "Currently, the NSP-Layer communicates with a single Name Server module
// ... However, other implementations are certainly possible, with no
// direct impact on the NTCS. ... the naming service implementation can be
// changed independently of the basic communication system."
//
// This is that claim made executable: a purely local, static name table
// for fixed deployments — no Name Server module, no naming traffic at all.
// It plugs into the very interfaces the dynamic service uses (the
// LCM-Layer's Resolver and the IP-Layer's topology source), so the entire
// Nucleus runs unchanged. Dynamic reconfiguration is naturally unavailable
// (forward() has nothing to consult) — the price of a static scheme.
#pragma once

#include <map>

#include "common/annotated.h"
#include "core/lcm/lcm_layer.h"

namespace ntcs::core {

class Node;

class StaticNameService : public Resolver {
 public:
  /// Register a module's full record (the deployer plays Name Server).
  void add(const std::string& name, UAdd uadd, PhysAddr phys, NetName net);

  /// Register a gateway for topology queries.
  void add_gateway(GatewayRecord gw);

  /// Logical name -> UAdd (local table lookup; no communication).
  ntcs::Result<UAdd> lookup(const std::string& name) const;

  ntcs::Result<std::vector<GatewayRecord>> gateways() const;

  // --- Resolver -----------------------------------------------------------
  ntcs::Result<ResolvedDest> resolve(UAdd uadd) override;
  ntcs::Result<UAdd> forward(UAdd old_uadd) override;

  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    ResolvedDest dest;
  };

  mutable ntcs::Mutex mu_{ntcs::lockrank::kStaticResolver,
                          "nsp.static_resolver"};
  std::map<UAdd, Entry> entries_ GUARDED_BY(mu_);
  std::vector<GatewayRecord> gateways_ GUARDED_BY(mu_);
};

/// Wire a node to a static naming service instead of the NSP/Name-Server
/// pair: resolver and topology source both point at the table. The service
/// must outlive the node.
void use_static_naming(Node& node, StaticNameService& svc);

}  // namespace ntcs::core
