#include "core/testbed.h"

namespace ntcs::core {

Testbed::Testbed(std::uint64_t seed, Substrate substrate)
    : substrate_(substrate), fabric_(seed) {
  if (substrate_ == Substrate::realnet) {
    tcp_backend_ = std::make_shared<realnet::TcpBackend>();
  }
}

Testbed::Testbed(realnet::TcpConfig tcp_cfg)
    : substrate_(Substrate::realnet),
      fabric_(1),
      tcp_backend_(std::make_shared<realnet::TcpBackend>(std::move(tcp_cfg))) {}

Testbed::~Testbed() {
  // Modules created through make_node/spawn_module are owned by callers and
  // must already be gone; tear down infrastructure in reverse order.
  for (auto& gw : gateways_) gw->stop();
  for (auto& rep : ns_replicas_) rep->stop();
  for (auto& sh : ns_shards_) {
    if (sh.standby) sh.standby->stop();
    if (sh.primary) sh.primary->stop();
  }
  if (ns_) ns_->stop();
}

simnet::NetworkId Testbed::net(const std::string& name,
                               simnet::NetConfig cfg) {
  auto it = nets_.find(name);
  if (it != nets_.end()) return it->second;
  const simnet::NetworkId id = fabric_.add_network(name, cfg);
  nets_[name] = id;
  return id;
}

simnet::MachineId Testbed::machine(const std::string& name,
                                   convert::Arch arch,
                                   const std::vector<std::string>& nets) {
  auto it = machines_.find(name);
  if (it != machines_.end()) return it->second;
  std::vector<simnet::NetworkId> ids;
  ids.reserve(nets.size());
  for (const std::string& n : nets) ids.push_back(net(n));
  const simnet::MachineId id = fabric_.add_machine(name, arch, ids);
  machines_[name] = id;
  return id;
}

simnet::MachineId Testbed::machine_id(const std::string& name) const {
  return machines_.at(name);
}

std::shared_ptr<IpcsBackend> Testbed::backend(const std::string& machine_name,
                                              simnet::IpcsKind ipcs) {
  if (substrate_ == Substrate::realnet) return tcp_backend_;
  return std::make_shared<simnet::SimnetBackend>(
      fabric_, machines_.at(machine_name), ipcs);
}

NodeConfig Testbed::node_config(const std::string& name,
                                const std::string& machine_name,
                                const std::string& net_name,
                                simnet::IpcsKind ipcs) {
  NodeConfig cfg;
  cfg.name = name;
  cfg.backend = backend(machine_name, ipcs);
  cfg.net = net_name;
  cfg.well_known = wk_;
  return cfg;
}

ntcs::Status Testbed::start_name_server(const std::string& machine_name,
                                        const std::string& net_name,
                                        simnet::IpcsKind ipcs) {
  if (!ns_shards_.empty()) {
    return ntcs::Status(ntcs::Errc::already_exists,
                        "a sharded name service is already running");
  }
  NodeConfig cfg = node_config("name-server", machine_name, net_name, ipcs);
  ns_ = std::make_unique<NameServer>(std::move(cfg));
  auto st = ns_->start();
  if (!st.ok()) return st;
  wk_.name_server_phys = ns_->phys();
  wk_.name_server_net = net_name;
  return ntcs::Status::success();
}

ntcs::Status Testbed::add_name_server_replica(const std::string& machine_name,
                                              const std::string& net_name,
                                              simnet::IpcsKind ipcs) {
  if (!ns_) {
    return ntcs::Status(ntcs::Errc::bad_argument,
                        "start the primary name server first");
  }
  NodeConfig cfg = node_config("", machine_name, net_name, ipcs);
  auto rep = std::make_unique<NameServer>(std::move(cfg), NsRole::replica);
  if (auto st = rep->start(); !st.ok()) return st;
  ns_replicas_.push_back(std::move(rep));
  return ntcs::Status::success();
}

ntcs::Status Testbed::start_name_service(
    std::size_t num_shards, const std::vector<std::string>& machine_names,
    const std::string& net_name, bool with_standbys, std::uint64_t lease_ms,
    simnet::IpcsKind ipcs) {
  if (ns_ || !ns_shards_.empty()) {
    return ntcs::Status(ntcs::Errc::already_exists,
                        "a name service is already running");
  }
  if (num_shards == 0 || num_shards > kMaxNsShards || machine_names.empty()) {
    return ntcs::Status(ntcs::Errc::bad_argument,
                        "need 1..kMaxNsShards shards and >=1 machine");
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    NsShard sh;
    NsShardConfig scfg;
    scfg.shard = s;
    scfg.num_shards = num_shards;
    scfg.lease_ms = lease_ms;
    const std::string& pri_machine =
        machine_names[s % machine_names.size()];
    NodeConfig cfg = node_config("", pri_machine, net_name, ipcs);
    sh.primary = std::make_unique<NameServer>(std::move(cfg),
                                              NsRole::primary, scfg);
    if (auto st = sh.primary->start(); !st.ok()) return st;
    if (with_standbys) {
      // The standby watches the primary's address: a write reaching it
      // while that address probes dead is its cue to take over.
      scfg.primary_phys = sh.primary->phys();
      const std::string& sb_machine =
          machine_names[(s + 1) % machine_names.size()];
      NodeConfig sb_cfg = node_config("", sb_machine, net_name, ipcs);
      sh.standby = std::make_unique<NameServer>(std::move(sb_cfg),
                                                NsRole::standby, scfg);
      if (auto st = sh.standby->start(); !st.ok()) return st;
    }
    ns_shards_.push_back(std::move(sh));
  }
  // Compatibility: shard 0's primary is the classic well-known Name
  // Server, so pre-finalize node_config() bootstraps keep working.
  wk_.name_server_phys = ns_shards_[0].primary->phys();
  wk_.name_server_net = net_name;
  return ntcs::Status::success();
}

void Testbed::kill_shard_primary(std::size_t i) {
  ns_shards_.at(i).primary->stop();
}

ntcs::Result<Gateway*> Testbed::add_gateway(
    const std::string& name,
    const std::vector<Gateway::Attachment>& attachments) {
  auto gw = std::make_unique<Gateway>(name, attachments,
                                      UAdd::permanent(next_prime_uadd_++));
  if (auto st = gw->start(); !st.ok()) return st.error();
  gateways_.push_back(std::move(gw));
  return gateways_.back().get();
}

ntcs::Result<Gateway*> Testbed::add_gateway(const std::string& name,
                                            const std::string& machine_name,
                                            const std::vector<std::string>& nets,
                                            simnet::IpcsKind ipcs) {
  std::vector<Gateway::Attachment> atts;
  for (const std::string& n : nets) {
    Gateway::Attachment a;
    a.backend = backend(machine_name, ipcs);
    a.net = n;
    atts.push_back(std::move(a));
  }
  return add_gateway(name, atts);
}

ntcs::Status Testbed::finalize() {
  if (finalized_) return ntcs::Status::success();
  if (!ns_ && ns_shards_.empty()) {
    return ntcs::Status(ntcs::Errc::bad_argument, "no name server started");
  }
  wk_.prime_gateways.clear();
  for (const auto& gw : gateways_) {
    wk_.prime_gateways.push_back(gw->prime_info());
  }
  if (!ns_shards_.empty()) {
    // Sharded service: publish the shard table, hand every server the
    // final topology, and wire primary -> standby replication.
    wk_.shards.clear();
    for (const auto& sh : ns_shards_) {
      NsShardInfo info;
      info.primary_phys = sh.primary->phys();
      info.primary_net = sh.primary->net();
      if (sh.standby) {
        info.standby_phys = sh.standby->phys();
        info.standby_net = sh.standby->net();
      }
      wk_.shards.push_back(std::move(info));
    }
    for (auto& sh : ns_shards_) {
      sh.primary->node().install_well_known(wk_);
      if (!sh.standby) continue;
      sh.standby->node().install_well_known(wk_);
      if (auto st = sh.primary->add_replica(
              NsReplicaInfo{sh.standby->phys(), sh.standby->net()});
          !st.ok()) {
        return st;
      }
    }
  } else {
    wk_.name_server_replicas.clear();
    for (const auto& rep : ns_replicas_) {
      wk_.name_server_replicas.push_back(
          NsReplicaInfo{rep->phys(), rep->net()});
    }
    ns_->node().install_well_known(wk_);
    for (auto& rep : ns_replicas_) {
      rep->node().install_well_known(wk_);
      if (auto st = ns_->add_replica(NsReplicaInfo{rep->phys(), rep->net()});
          !st.ok()) {
        return st;
      }
    }
  }
  for (auto& gw : gateways_) {
    if (auto st = gw->register_with_ns(wk_); !st.ok()) return st;
  }
  finalized_ = true;
  return ntcs::Status::success();
}

ntcs::Result<std::unique_ptr<Node>> Testbed::make_node(
    const std::string& name, const std::string& machine_name,
    const std::string& net_name, simnet::IpcsKind ipcs) {
  if (substrate_ == Substrate::simnet &&
      machines_.find(machine_name) == machines_.end()) {
    return ntcs::Error(ntcs::Errc::bad_argument,
                       "no machine named '" + machine_name + "'");
  }
  NodeConfig cfg = node_config(name, machine_name, net_name, ipcs);
  auto node = std::make_unique<Node>(std::move(cfg));
  if (auto st = node->start(); !st.ok()) return st.error();
  return node;
}

ntcs::Result<std::unique_ptr<Node>> Testbed::spawn_module(
    const std::string& name, const std::string& machine_name,
    const std::string& net_name, const nsp::AttrMap& attrs,
    simnet::IpcsKind ipcs) {
  auto node = make_node(name, machine_name, net_name, ipcs);
  if (!node) return node.error();
  auto uadd = node.value()->commod().register_self(attrs);
  if (!uadd) return uadd.error();
  return node;
}

}  // namespace ntcs::core
