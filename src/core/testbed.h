// testbed.h — convenience assembly of complete NTCS systems.
//
// The paper's deployments (three generations of URSA systems on Apollo,
// VAX and Sun machines across TCP and MBX) all follow the same bring-up
// order, which this helper encodes:
//
//   1. pick the substrate (a simulated fabric, or real loopback TCP) and
//      describe its topology (networks, machines);
//   2. start the Name Server (it owns well-known UAdd 1);
//   3. start prime gateways (well-known UAdds from 2);
//   4. finalize(): assemble the well-known address table, hand it to the
//      Name Server and gateways, and register the gateways;
//   5. spawn application modules, each of which registers itself.
//
// The Testbed is the *composition root*: the one place (outside the
// backends themselves) allowed to name concrete substrate types. Every
// Node it builds talks to its substrate through the STD-IF
// (core/nd/backend.h), so the same bring-up runs over simnet or over real
// sockets — which is exactly what the backend-parameterized conformance
// suite exercises.
//
// Used by tests, benches and the examples; applications embedding the NTCS
// can do all of this by hand with Node/NameServer/Gateway directly.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/ip/gateway.h"
#include "core/node.h"
#include "core/nsp/name_server.h"
#include "realnet/tcp_backend.h"
#include "simnet/backend.h"

namespace ntcs::core {

/// Which substrate a Testbed builds its backends on.
enum class Substrate : std::uint8_t { simnet, realnet };

class Testbed {
 public:
  explicit Testbed(std::uint64_t seed = 1,
                   Substrate substrate = Substrate::simnet);
  /// Real-TCP testbed with explicit backend knobs (well-known ports for
  /// multi-process bootstrap, etc.).
  explicit Testbed(realnet::TcpConfig tcp_cfg);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  Substrate substrate() const { return substrate_; }

  /// The simulated fabric. Valid in every mode (realnet testbeds simply
  /// never bind through it) so simnet-only fault/topology assertions can
  /// be written unconditionally in simnet-mode tests.
  simnet::Fabric& fabric() { return fabric_; }

  /// Create (or fetch) a named network. Realnet: logical only (every
  /// port lives on loopback; reachability is governed by NTCS routing).
  simnet::NetworkId net(const std::string& name, simnet::NetConfig cfg = {});

  /// Create a named machine attached to the given networks. Realnet: a
  /// logical label for the one real host.
  simnet::MachineId machine(const std::string& name, convert::Arch arch,
                            const std::vector<std::string>& nets);

  /// An STD-IF backend for a machine. Simnet: a SimnetBackend for
  /// (machine, ipcs); realnet: the process-wide TcpBackend (machine and
  /// ipcs are advisory).
  std::shared_ptr<IpcsBackend> backend(
      const std::string& machine_name,
      simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  /// A ready-to-construct NodeConfig: backend, net and the current
  /// well-known table filled in.
  NodeConfig node_config(const std::string& name,
                         const std::string& machine_name,
                         const std::string& net_name,
                         simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  /// Start the Name Server on a machine (step 2).
  ntcs::Status start_name_server(const std::string& machine_name,
                                 const std::string& net_name,
                                 simnet::IpcsKind ipcs =
                                     simnet::IpcsKind::tcp);

  /// Start a Name Server replica (§7 replication extension). The primary
  /// must already be running; finalize() wires the replication link and
  /// adds the replica to every module's well-known failover list.
  ntcs::Status add_name_server_replica(const std::string& machine_name,
                                       const std::string& net_name,
                                       simnet::IpcsKind ipcs =
                                           simnet::IpcsKind::tcp);

  /// Sharded alternative to start_name_server (step 2 at scale): bring up
  /// `num_shards` Name Server primaries round-robined over `machine_names`
  /// and, when with_standbys, a warm standby per shard on the next machine
  /// over. finalize() publishes the shard table in the well-known table
  /// and links each primary to its standby for replication. Mutually
  /// exclusive with start_name_server/add_name_server_replica.
  ntcs::Status start_name_service(
      std::size_t num_shards, const std::vector<std::string>& machine_names,
      const std::string& net_name, bool with_standbys = true,
      std::uint64_t lease_ms = 2000,
      simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  std::size_t shard_count() const { return ns_shards_.size(); }
  NameServer& shard(std::size_t i) { return *ns_shards_.at(i).primary; }
  bool shard_has_standby(std::size_t i) const {
    return ns_shards_.at(i).standby != nullptr;
  }
  NameServer& shard_standby(std::size_t i) {
    return *ns_shards_.at(i).standby;
  }
  /// Chaos: stop shard i's primary outright. Clients fault over to the
  /// standby via candidate rotation; the first write that reaches it
  /// triggers self-promotion.
  void kill_shard_primary(std::size_t i);

  /// Start a prime gateway spanning the given attachments (step 3).
  /// Prime UAdds are assigned sequentially.
  ntcs::Result<Gateway*> add_gateway(
      const std::string& name,
      const std::vector<Gateway::Attachment>& attachments);
  ntcs::Result<Gateway*> add_gateway(
      const std::string& name, const std::string& machine_name,
      const std::vector<std::string>& nets,
      simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  /// Step 4: build the well-known table and register the gateways.
  ntcs::Status finalize();

  const WellKnownTable& well_known() const { return wk_; }
  NameServer& name_server() { return *ns_; }
  bool has_name_server() const { return ns_ != nullptr; }
  std::size_t replica_count() const { return ns_replicas_.size(); }
  NameServer& replica(std::size_t i) { return *ns_replicas_.at(i); }
  std::size_t gateway_count() const { return gateways_.size(); }
  Gateway& gateway(std::size_t i) { return *gateways_.at(i); }

  /// Step 5: a started (but not yet registered) module node.
  ntcs::Result<std::unique_ptr<Node>> make_node(
      const std::string& name, const std::string& machine_name,
      const std::string& net_name,
      simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  /// A started *and registered* module node.
  ntcs::Result<std::unique_ptr<Node>> spawn_module(
      const std::string& name, const std::string& machine_name,
      const std::string& net_name, const nsp::AttrMap& attrs = {},
      simnet::IpcsKind ipcs = simnet::IpcsKind::tcp);

  simnet::MachineId machine_id(const std::string& name) const;

 private:
  Substrate substrate_ = Substrate::simnet;
  simnet::Fabric fabric_;
  std::shared_ptr<realnet::TcpBackend> tcp_backend_;
  std::map<std::string, simnet::NetworkId> nets_;
  std::map<std::string, simnet::MachineId> machines_;
  struct NsShard {
    std::unique_ptr<NameServer> primary;
    std::unique_ptr<NameServer> standby;  // null without a standby
  };
  std::unique_ptr<NameServer> ns_;
  std::vector<std::unique_ptr<NameServer>> ns_replicas_;
  std::vector<NsShard> ns_shards_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  WellKnownTable wk_;
  std::uint64_t next_prime_uadd_ = kFirstPrimeGatewayUAdd;
  bool finalized_ = false;
};

}  // namespace ntcs::core
