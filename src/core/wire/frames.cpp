#include "core/wire/frames.h"

#include "convert/mode.h"
#include "convert/shift.h"

namespace ntcs::core::wire {

using convert::ShiftReader;
using convert::ShiftWriter;

namespace {

constexpr std::uint32_t kFragMoreBit = 1u << 31;
constexpr std::uint32_t kFragFirstBit = 1u << 23;
/// Cap on how much a first frame's announced total may pre-reserve: a
/// corrupted total-length field must not allocate the machine away. Larger
/// (legitimate) messages still reassemble; the buffer just grows normally.
constexpr std::uint32_t kMaxReserve = 4u << 20;

void put_string(ShiftWriter& w, std::string_view s) {
  w.put_u32(static_cast<std::uint32_t>(s.size()));
  w.put_raw(s);
}

ntcs::Result<std::string> get_string(ShiftReader& r) {
  auto len = r.get_u32();
  if (!len) return len.error();
  return r.get_raw_string(len.value());
}

/// Common prologue of every ND message.
ntcs::Bytes nd_prologue(NdKind kind) {
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u32(static_cast<std::uint32_t>(kind));
  return out;
}

}  // namespace

// ---------------------------------------------------------------- fragments

std::uint32_t make_frag_word(bool more, std::uint32_t chunk_len,
                             std::uint32_t seq, bool first) {
  return (more ? kFragMoreBit : 0u) | ((seq & kFragSeqMask) << 24) |
         (first ? kFragFirstBit : 0u) | (chunk_len & kFragLenMask);
}

bool frag_more(std::uint32_t word) { return (word & kFragMoreBit) != 0; }

bool frag_first(std::uint32_t word) { return (word & kFragFirstBit) != 0; }

std::uint32_t frag_len(std::uint32_t word) { return word & kFragLenMask; }

std::uint32_t frag_seq(std::uint32_t word) { return (word >> 24) & kFragSeqMask; }

std::size_t encode_frag_header(const FragSpan& s,
                               std::uint8_t out[kFragHeaderMax]) {
  // Shift mode by hand (MSB first), matching ShiftWriter's stream layout.
  out[0] = static_cast<std::uint8_t>(s.word >> 24);
  out[1] = static_cast<std::uint8_t>(s.word >> 16);
  out[2] = static_cast<std::uint8_t>(s.word >> 8);
  out[3] = static_cast<std::uint8_t>(s.word);
  if (!s.first) return 4;
  out[4] = static_cast<std::uint8_t>(s.total >> 24);
  out[5] = static_cast<std::uint8_t>(s.total >> 16);
  out[6] = static_cast<std::uint8_t>(s.total >> 8);
  out[7] = static_cast<std::uint8_t>(s.total);
  return 8;
}

std::vector<FragSpan> fragment_spans(ntcs::BytesView msg, std::size_t mtu,
                                     std::uint32_t& seq) {
  std::vector<FragSpan> spans;
  const std::uint32_t total = static_cast<std::uint32_t>(msg.size());
  std::size_t off = 0;
  bool first = true;
  do {
    const std::size_t hdr = first ? 8 : 4;
    const std::size_t chunk_max = mtu > hdr ? mtu - hdr : 1;
    const std::size_t n =
        msg.size() - off < chunk_max ? msg.size() - off : chunk_max;
    FragSpan s;
    s.first = first;
    s.total = total;
    s.word = make_frag_word(/*more=*/off + n < msg.size(),
                            static_cast<std::uint32_t>(n), seq, first);
    seq = (seq + 1) & kFragSeqMask;
    s.chunk = msg.subspan(off, n);
    spans.push_back(s);
    off += n;
    first = false;
  } while (off < msg.size());
  return spans;
}

std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu,
                                  std::uint32_t& seq) {
  std::vector<ntcs::Bytes> frames;
  for (const FragSpan& s : fragment_spans(msg, mtu, seq)) {
    std::uint8_t hdr[kFragHeaderMax];
    const std::size_t hn = encode_frag_header(s, hdr);
    ntcs::Bytes frame;
    frame.reserve(hn + s.chunk.size());
    ntcs::append(frame, ntcs::BytesView(hdr, hn));
    ntcs::append(frame, s.chunk);
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu) {
  std::uint32_t seq = 0;
  return fragment(msg, mtu, seq);
}

ntcs::Result<Reassembler::FeedResult> Reassembler::feed(ntcs::BytesView frame) {
  ShiftReader r(frame);
  auto word = r.get_u32();
  if (!word) return word.error();
  const bool first = frag_first(word.value());
  std::uint32_t total = 0;
  if (first) {
    auto t = r.get_u32();
    if (!t) return t.error();
    total = t.value();
  }
  const std::uint32_t len = frag_len(word.value());
  if (r.remaining() != len) {
    return ntcs::Error(ntcs::Errc::bad_message,
                       "fragment length mismatches frame size");
  }
  FeedResult res;
  const std::uint32_t seq = frag_seq(word.value());
  // Wrap-aware forward distance from the last accepted frame. 1 is the
  // in-order successor; 0 a duplicate; just short of a full wrap is a late
  // straggler from behind (overtaken on the wire — reordering only shifts
  // frames by a handful of slots, so the stale zone is kept narrow: a
  // large "gap" after a loss burst must not read as staleness).
  const std::uint32_t dist = (seq - last_seq_) & kFragSeqMask;
  if (dist == 0 || dist > kFragSeqMask - kFragStaleWindow) {
    res.dropped = true;
    return res;
  }
  if (dist != 1) {
    // Frames went missing (lost, or overtaken and due to arrive stale):
    // whatever message they belonged to is unrecoverable. Resynchronise.
    acc_.clear();
    have_head_ = false;
    res.resynced = true;
  }
  last_seq_ = seq;
  if (first) {
    if (have_head_ || !acc_.empty()) {
      // The sender started a new message while we held a partial one —
      // its tail frames were lost without leaving a sequence gap we could
      // see (e.g. lost then resent range). The partial message is gone.
      acc_.clear();
      res.resynced = true;
    }
    have_head_ = true;
    expect_total_ = total;
    // The whole message's storage, reserved once; every chunk after this
    // appends in place.
    acc_.reserve(total < kMaxReserve ? total : kMaxReserve);
  } else if (!have_head_) {
    // Continuation of a message whose first frame we never accepted (it
    // was lost ahead of the resync point). The frame is sequence-valid —
    // consume its number — but its bytes belong to nothing.
    res.orphan = true;
    return res;
  }
  ntcs::append(acc_, r.rest());
  if (!frag_more(word.value())) {
    if (acc_.size() != expect_total_) {
      // Header corruption slipped past the length checks (a flipped bit
      // in a chunk-length or total-length field): the message cannot be
      // trusted. Drop it and restart cleanly at the next first frame.
      acc_.clear();
      have_head_ = false;
      res.resynced = true;
      return res;
    }
    res.complete = true;
  }
  return res;
}

ntcs::Bytes Reassembler::take() {
  ntcs::Bytes out;
  out.swap(acc_);
  have_head_ = false;
  expect_total_ = 0;
  return out;
}

// ---------------------------------------------------------------- ND layer

ntcs::Bytes encode_nd_open(const NdOpen& m) {
  ntcs::Bytes out = nd_prologue(NdKind::open);
  ShiftWriter w(out);
  w.put_u64(m.src_uadd.raw());
  w.put_u32(m.src_arch);
  put_string(w, m.src_phys);
  return out;
}

ntcs::Bytes encode_nd_open_ack(const NdOpenAck& m) {
  ntcs::Bytes out = nd_prologue(NdKind::open_ack);
  ShiftWriter w(out);
  w.put_u64(m.uadd.raw());
  w.put_u32(m.arch);
  return out;
}

ntcs::Bytes encode_nd_payload(ntcs::BytesView ip_envelope) {
  ntcs::Bytes out = nd_prologue(NdKind::payload);
  out.reserve(out.size() + ip_envelope.size());
  ntcs::append(out, ip_envelope);
  return out;
}

ntcs::Result<NdMessage> decode_nd(ntcs::BytesView msg) {
  ShiftReader r(msg);
  auto magic = r.get_u32();
  if (!magic) return magic.error();
  if (magic.value() != kMagic) {
    return ntcs::Error(ntcs::Errc::bad_message, "bad magic");
  }
  auto version = r.get_u32();
  if (!version) return version.error();
  if (version.value() != kVersion) {
    return ntcs::Error(ntcs::Errc::bad_message, "protocol version mismatch");
  }
  auto kind = r.get_u32();
  if (!kind) return kind.error();

  NdMessage out;
  switch (static_cast<NdKind>(kind.value())) {
    case NdKind::open: {
      out.kind = NdKind::open;
      auto uadd = r.get_u64();
      if (!uadd) return uadd.error();
      out.open.src_uadd = UAdd::from_raw(uadd.value());
      auto arch = r.get_u32();
      if (!arch) return arch.error();
      out.open.src_arch = arch.value();
      auto phys = get_string(r);
      if (!phys) return phys.error();
      out.open.src_phys = std::move(phys.value());
      return out;
    }
    case NdKind::open_ack: {
      out.kind = NdKind::open_ack;
      auto uadd = r.get_u64();
      if (!uadd) return uadd.error();
      out.ack.uadd = UAdd::from_raw(uadd.value());
      auto arch = r.get_u32();
      if (!arch) return arch.error();
      out.ack.arch = arch.value();
      return out;
    }
    case NdKind::payload: {
      out.kind = NdKind::payload;
      out.body = ntcs::Bytes(r.rest().begin(), r.rest().end());
      return out;
    }
    default:
      return ntcs::Error(ntcs::Errc::bad_message, "unknown ND message kind");
  }
}

// ---------------------------------------------------------------- IP layer

namespace {

ntcs::Bytes ip_prologue(IpKind kind, std::uint64_t ivc) {
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(static_cast<std::uint32_t>(kind));
  w.put_u64(ivc);
  return out;
}

}  // namespace

ntcs::Bytes encode_ip_data(std::uint64_t ivc, ntcs::BytesView lcm_msg) {
  ntcs::Bytes out = ip_prologue(IpKind::data, ivc);
  out.reserve(out.size() + lcm_msg.size());
  ntcs::append(out, lcm_msg);
  return out;
}

ntcs::Bytes encode_ip_extend(std::uint64_t ivc, const ExtendBody& b) {
  ntcs::Bytes out = ip_prologue(IpKind::extend, ivc);
  ShiftWriter w(out);
  w.put_u64(b.final_uadd.raw());
  w.put_u32(static_cast<std::uint32_t>(b.route.size()));
  for (const RouteHop& hop : b.route) {
    put_string(w, hop.net);
    put_string(w, hop.phys);
  }
  return out;
}

ntcs::Bytes encode_ip_extend_ok(std::uint64_t ivc) {
  return ip_prologue(IpKind::extend_ok, ivc);
}

ntcs::Bytes encode_ip_extend_fail(std::uint64_t ivc, std::uint32_t errc,
                                  const std::string& text) {
  ntcs::Bytes out = ip_prologue(IpKind::extend_fail, ivc);
  ShiftWriter w(out);
  w.put_u32(errc);
  put_string(w, text);
  return out;
}

ntcs::Bytes encode_ip_teardown(std::uint64_t ivc) {
  return ip_prologue(IpKind::teardown, ivc);
}

ntcs::Result<IpEnvelope> decode_ip(ntcs::BytesView envelope) {
  ShiftReader r(envelope);
  auto kind = r.get_u32();
  if (!kind) return kind.error();
  auto ivc = r.get_u64();
  if (!ivc) return ivc.error();

  IpEnvelope out;
  out.ivc = ivc.value();
  switch (static_cast<IpKind>(kind.value())) {
    case IpKind::data:
      out.kind = IpKind::data;
      out.body = ntcs::Bytes(r.rest().begin(), r.rest().end());
      return out;
    case IpKind::extend: {
      out.kind = IpKind::extend;
      auto final_uadd = r.get_u64();
      if (!final_uadd) return final_uadd.error();
      out.extend.final_uadd = UAdd::from_raw(final_uadd.value());
      auto count = r.get_u32();
      if (!count) return count.error();
      if (count.value() > 64) {
        return ntcs::Error(ntcs::Errc::bad_message, "absurd route length");
      }
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        RouteHop hop;
        auto net = get_string(r);
        if (!net) return net.error();
        hop.net = std::move(net.value());
        auto phys = get_string(r);
        if (!phys) return phys.error();
        hop.phys = std::move(phys.value());
        out.extend.route.push_back(std::move(hop));
      }
      return out;
    }
    case IpKind::extend_ok:
      out.kind = IpKind::extend_ok;
      return out;
    case IpKind::extend_fail: {
      out.kind = IpKind::extend_fail;
      auto errc = r.get_u32();
      if (!errc) return errc.error();
      out.errc = errc.value();
      auto text = get_string(r);
      if (!text) return text.error();
      out.text = std::move(text.value());
      return out;
    }
    case IpKind::teardown:
      out.kind = IpKind::teardown;
      return out;
    default:
      return ntcs::Error(ntcs::Errc::bad_message, "unknown IP envelope kind");
  }
}

// ---------------------------------------------------------------- LCM layer

ntcs::Bytes encode_lcm(const LcmHeader& h, ntcs::BytesView payload) {
  // Every NTCS header travels shift-encoded (§5.2); count it so the
  // convert.mode.* breakdown covers all three modes.
  convert::note_mode(convert::XferMode::shift);
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(static_cast<std::uint32_t>(h.kind));
  w.put_u32(h.flags);
  w.put_u64(h.src.raw());
  w.put_u64(h.dst.raw());
  w.put_u32(h.req_id);
  w.put_u32(h.mode);
  w.put_u32(h.src_arch);
  if ((h.flags & kLcmFlagTraced) != 0) {
    w.put_u64(h.trace_hi);
    w.put_u64(h.trace_lo);
    w.put_u64(h.trace_parent);
  }
  w.put_raw(payload);
  return out;
}

ntcs::Result<LcmMessage> decode_lcm(ntcs::BytesView msg) {
  ShiftReader r(msg);
  LcmMessage out;
  auto kind = r.get_u32();
  if (!kind) return kind.error();
  if (kind.value() < 1 || kind.value() > 4) {
    return ntcs::Error(ntcs::Errc::bad_message, "unknown LCM message kind");
  }
  out.header.kind = static_cast<LcmKind>(kind.value());
  auto flags = r.get_u32();
  if (!flags) return flags.error();
  out.header.flags = flags.value();
  auto src = r.get_u64();
  if (!src) return src.error();
  out.header.src = UAdd::from_raw(src.value());
  auto dst = r.get_u64();
  if (!dst) return dst.error();
  out.header.dst = UAdd::from_raw(dst.value());
  auto req = r.get_u32();
  if (!req) return req.error();
  out.header.req_id = req.value();
  auto mode = r.get_u32();
  if (!mode) return mode.error();
  out.header.mode = mode.value();
  auto arch = r.get_u32();
  if (!arch) return arch.error();
  out.header.src_arch = arch.value();
  if ((out.header.flags & kLcmFlagTraced) != 0) {
    auto hi = r.get_u64();
    if (!hi) return hi.error();
    out.header.trace_hi = hi.value();
    auto lo = r.get_u64();
    if (!lo) return lo.error();
    out.header.trace_lo = lo.value();
    auto parent = r.get_u64();
    if (!parent) return parent.error();
    out.header.trace_parent = parent.value();
  }
  out.payload = ntcs::Bytes(r.rest().begin(), r.rest().end());
  return out;
}

std::optional<LcmTraceWords> peek_lcm_trace(ntcs::BytesView lcm_msg) {
  // Fixed shift-mode layout: kind(4) flags(4) src(8) dst(8) req_id(4)
  // mode(4) src_arch(4) = 36 bytes, then the three trace words.
  constexpr std::size_t kFlagsOff = 4;
  constexpr std::size_t kTraceOff = 36;
  if (lcm_msg.size() < kTraceOff + 24) return std::nullopt;
  ShiftReader fr(lcm_msg.subspan(kFlagsOff));
  auto flags = fr.get_u32();
  if (!flags || (flags.value() & kLcmFlagTraced) == 0) return std::nullopt;
  ShiftReader tr(lcm_msg.subspan(kTraceOff));
  LcmTraceWords w;
  auto hi = tr.get_u64();
  auto lo = tr.get_u64();
  auto parent = tr.get_u64();
  if (!hi || !lo || !parent) return std::nullopt;
  w.hi = hi.value();
  w.lo = lo.value();
  w.parent = parent.value();
  if ((w.hi | w.lo) == 0) return std::nullopt;
  return w;
}

std::optional<std::uint32_t> peek_lcm_flags(ntcs::BytesView lcm_msg) {
  // Fixed shift-mode layout: kind(4), then the flags word. 36 bytes is the
  // smallest (untraced) complete header; anything shorter is not LCM.
  constexpr std::size_t kFlagsOff = 4;
  constexpr std::size_t kHeaderMin = 36;
  if (lcm_msg.size() < kHeaderMin) return std::nullopt;
  ShiftReader fr(lcm_msg.subspan(kFlagsOff));
  auto flags = fr.get_u32();
  if (!flags) return std::nullopt;
  return flags.value();
}

std::optional<LcmTraceWords> peek_nd_trace(ntcs::BytesView nd_msg) {
  // ND prologue: magic(4) version(4) kind(4); IP data envelope: kind(4)
  // ivc(8); the LCM message starts at byte 24.
  constexpr std::size_t kNdPrologue = 12;
  constexpr std::size_t kIpPrologue = 12;
  if (nd_msg.size() < kNdPrologue + kIpPrologue) return std::nullopt;
  ShiftReader nr(nd_msg);
  auto magic = nr.get_u32();
  auto version = nr.get_u32();
  auto nd_kind = nr.get_u32();
  if (!magic || magic.value() != kMagic) return std::nullopt;
  if (!version || version.value() != kVersion) return std::nullopt;
  if (!nd_kind ||
      nd_kind.value() != static_cast<std::uint32_t>(NdKind::payload)) {
    return std::nullopt;
  }
  auto ip_kind = nr.get_u32();
  if (!ip_kind || ip_kind.value() != static_cast<std::uint32_t>(IpKind::data)) {
    return std::nullopt;
  }
  if (!nr.get_u64()) return std::nullopt;  // ivc
  return peek_lcm_trace(nr.rest());
}

}  // namespace ntcs::core::wire
