#include "core/wire/frames.h"

#include "convert/mode.h"
#include "convert/shift.h"

namespace ntcs::core::wire {

using convert::ShiftReader;
using convert::ShiftWriter;

namespace {

constexpr std::uint32_t kFragMoreBit = 1u << 31;
constexpr std::uint32_t kFragLenMask = 0x00FFFFFFu;

void put_string(ShiftWriter& w, std::string_view s) {
  w.put_u32(static_cast<std::uint32_t>(s.size()));
  w.put_raw(s);
}

ntcs::Result<std::string> get_string(ShiftReader& r) {
  auto len = r.get_u32();
  if (!len) return len.error();
  return r.get_raw_string(len.value());
}

/// Common prologue of every ND message.
ntcs::Bytes nd_prologue(NdKind kind) {
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_u32(static_cast<std::uint32_t>(kind));
  return out;
}

}  // namespace

// ---------------------------------------------------------------- fragments

std::uint32_t make_frag_word(bool more, std::uint32_t chunk_len,
                             std::uint32_t seq) {
  return (more ? kFragMoreBit : 0u) | ((seq & kFragSeqMask) << 24) |
         (chunk_len & kFragLenMask);
}

bool frag_more(std::uint32_t word) { return (word & kFragMoreBit) != 0; }

std::uint32_t frag_len(std::uint32_t word) { return word & kFragLenMask; }

std::uint32_t frag_seq(std::uint32_t word) { return (word >> 24) & kFragSeqMask; }

std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu,
                                  std::uint32_t& seq) {
  std::vector<ntcs::Bytes> frames;
  const std::size_t chunk_max = mtu > 4 ? mtu - 4 : 1;
  std::size_t off = 0;
  do {
    const std::size_t n =
        msg.size() - off < chunk_max ? msg.size() - off : chunk_max;
    const bool more = off + n < msg.size();
    ntcs::Bytes frame;
    frame.reserve(n + 4);
    ShiftWriter w(frame);
    w.put_u32(make_frag_word(more, static_cast<std::uint32_t>(n), seq));
    seq = (seq + 1) & kFragSeqMask;
    w.put_raw(msg.subspan(off, n));
    frames.push_back(std::move(frame));
    off += n;
  } while (off < msg.size());
  return frames;
}

std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu) {
  std::uint32_t seq = 0;
  return fragment(msg, mtu, seq);
}

ntcs::Result<Reassembler::FeedResult> Reassembler::feed(ntcs::BytesView frame) {
  ShiftReader r(frame);
  auto word = r.get_u32();
  if (!word) return word.error();
  const std::uint32_t len = frag_len(word.value());
  if (r.remaining() != len) {
    return ntcs::Error(ntcs::Errc::bad_message,
                       "fragment length mismatches frame size");
  }
  FeedResult res;
  const std::uint32_t seq = frag_seq(word.value());
  // Wrap-aware forward distance from the last accepted frame. 1 is the
  // in-order successor; 0 a duplicate; just short of a full wrap is a late
  // straggler from behind (overtaken on the wire — reordering only shifts
  // frames by a handful of slots, so the stale zone is kept narrow: a
  // large "gap" after a loss burst must not read as staleness).
  const std::uint32_t dist = (seq - last_seq_) & kFragSeqMask;
  if (dist == 0 || dist > kFragSeqMask - kFragStaleWindow) {
    res.dropped = true;
    return res;
  }
  if (dist != 1) {
    // Frames went missing (lost, or overtaken and due to arrive stale):
    // whatever message they belonged to is unrecoverable. Resynchronise.
    acc_.clear();
    res.resynced = true;
  }
  last_seq_ = seq;
  ntcs::append(acc_, r.rest());
  res.complete = !frag_more(word.value());
  return res;
}

ntcs::Bytes Reassembler::take() {
  ntcs::Bytes out;
  out.swap(acc_);
  return out;
}

// ---------------------------------------------------------------- ND layer

ntcs::Bytes encode_nd_open(const NdOpen& m) {
  ntcs::Bytes out = nd_prologue(NdKind::open);
  ShiftWriter w(out);
  w.put_u64(m.src_uadd.raw());
  w.put_u32(m.src_arch);
  put_string(w, m.src_phys);
  return out;
}

ntcs::Bytes encode_nd_open_ack(const NdOpenAck& m) {
  ntcs::Bytes out = nd_prologue(NdKind::open_ack);
  ShiftWriter w(out);
  w.put_u64(m.uadd.raw());
  w.put_u32(m.arch);
  return out;
}

ntcs::Bytes encode_nd_payload(ntcs::BytesView ip_envelope) {
  ntcs::Bytes out = nd_prologue(NdKind::payload);
  out.reserve(out.size() + ip_envelope.size());
  ntcs::append(out, ip_envelope);
  return out;
}

ntcs::Result<NdMessage> decode_nd(ntcs::BytesView msg) {
  ShiftReader r(msg);
  auto magic = r.get_u32();
  if (!magic) return magic.error();
  if (magic.value() != kMagic) {
    return ntcs::Error(ntcs::Errc::bad_message, "bad magic");
  }
  auto version = r.get_u32();
  if (!version) return version.error();
  if (version.value() != kVersion) {
    return ntcs::Error(ntcs::Errc::bad_message, "protocol version mismatch");
  }
  auto kind = r.get_u32();
  if (!kind) return kind.error();

  NdMessage out;
  switch (static_cast<NdKind>(kind.value())) {
    case NdKind::open: {
      out.kind = NdKind::open;
      auto uadd = r.get_u64();
      if (!uadd) return uadd.error();
      out.open.src_uadd = UAdd::from_raw(uadd.value());
      auto arch = r.get_u32();
      if (!arch) return arch.error();
      out.open.src_arch = arch.value();
      auto phys = get_string(r);
      if (!phys) return phys.error();
      out.open.src_phys = std::move(phys.value());
      return out;
    }
    case NdKind::open_ack: {
      out.kind = NdKind::open_ack;
      auto uadd = r.get_u64();
      if (!uadd) return uadd.error();
      out.ack.uadd = UAdd::from_raw(uadd.value());
      auto arch = r.get_u32();
      if (!arch) return arch.error();
      out.ack.arch = arch.value();
      return out;
    }
    case NdKind::payload: {
      out.kind = NdKind::payload;
      out.body = ntcs::Bytes(r.rest().begin(), r.rest().end());
      return out;
    }
    default:
      return ntcs::Error(ntcs::Errc::bad_message, "unknown ND message kind");
  }
}

// ---------------------------------------------------------------- IP layer

namespace {

ntcs::Bytes ip_prologue(IpKind kind, std::uint64_t ivc) {
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(static_cast<std::uint32_t>(kind));
  w.put_u64(ivc);
  return out;
}

}  // namespace

ntcs::Bytes encode_ip_data(std::uint64_t ivc, ntcs::BytesView lcm_msg) {
  ntcs::Bytes out = ip_prologue(IpKind::data, ivc);
  out.reserve(out.size() + lcm_msg.size());
  ntcs::append(out, lcm_msg);
  return out;
}

ntcs::Bytes encode_ip_extend(std::uint64_t ivc, const ExtendBody& b) {
  ntcs::Bytes out = ip_prologue(IpKind::extend, ivc);
  ShiftWriter w(out);
  w.put_u64(b.final_uadd.raw());
  w.put_u32(static_cast<std::uint32_t>(b.route.size()));
  for (const RouteHop& hop : b.route) {
    put_string(w, hop.net);
    put_string(w, hop.phys);
  }
  return out;
}

ntcs::Bytes encode_ip_extend_ok(std::uint64_t ivc) {
  return ip_prologue(IpKind::extend_ok, ivc);
}

ntcs::Bytes encode_ip_extend_fail(std::uint64_t ivc, std::uint32_t errc,
                                  const std::string& text) {
  ntcs::Bytes out = ip_prologue(IpKind::extend_fail, ivc);
  ShiftWriter w(out);
  w.put_u32(errc);
  put_string(w, text);
  return out;
}

ntcs::Bytes encode_ip_teardown(std::uint64_t ivc) {
  return ip_prologue(IpKind::teardown, ivc);
}

ntcs::Result<IpEnvelope> decode_ip(ntcs::BytesView envelope) {
  ShiftReader r(envelope);
  auto kind = r.get_u32();
  if (!kind) return kind.error();
  auto ivc = r.get_u64();
  if (!ivc) return ivc.error();

  IpEnvelope out;
  out.ivc = ivc.value();
  switch (static_cast<IpKind>(kind.value())) {
    case IpKind::data:
      out.kind = IpKind::data;
      out.body = ntcs::Bytes(r.rest().begin(), r.rest().end());
      return out;
    case IpKind::extend: {
      out.kind = IpKind::extend;
      auto final_uadd = r.get_u64();
      if (!final_uadd) return final_uadd.error();
      out.extend.final_uadd = UAdd::from_raw(final_uadd.value());
      auto count = r.get_u32();
      if (!count) return count.error();
      if (count.value() > 64) {
        return ntcs::Error(ntcs::Errc::bad_message, "absurd route length");
      }
      for (std::uint32_t i = 0; i < count.value(); ++i) {
        RouteHop hop;
        auto net = get_string(r);
        if (!net) return net.error();
        hop.net = std::move(net.value());
        auto phys = get_string(r);
        if (!phys) return phys.error();
        hop.phys = std::move(phys.value());
        out.extend.route.push_back(std::move(hop));
      }
      return out;
    }
    case IpKind::extend_ok:
      out.kind = IpKind::extend_ok;
      return out;
    case IpKind::extend_fail: {
      out.kind = IpKind::extend_fail;
      auto errc = r.get_u32();
      if (!errc) return errc.error();
      out.errc = errc.value();
      auto text = get_string(r);
      if (!text) return text.error();
      out.text = std::move(text.value());
      return out;
    }
    case IpKind::teardown:
      out.kind = IpKind::teardown;
      return out;
    default:
      return ntcs::Error(ntcs::Errc::bad_message, "unknown IP envelope kind");
  }
}

// ---------------------------------------------------------------- LCM layer

ntcs::Bytes encode_lcm(const LcmHeader& h, ntcs::BytesView payload) {
  // Every NTCS header travels shift-encoded (§5.2); count it so the
  // convert.mode.* breakdown covers all three modes.
  convert::note_mode(convert::XferMode::shift);
  ntcs::Bytes out;
  ShiftWriter w(out);
  w.put_u32(static_cast<std::uint32_t>(h.kind));
  w.put_u32(h.flags);
  w.put_u64(h.src.raw());
  w.put_u64(h.dst.raw());
  w.put_u32(h.req_id);
  w.put_u32(h.mode);
  w.put_u32(h.src_arch);
  w.put_raw(payload);
  return out;
}

ntcs::Result<LcmMessage> decode_lcm(ntcs::BytesView msg) {
  ShiftReader r(msg);
  LcmMessage out;
  auto kind = r.get_u32();
  if (!kind) return kind.error();
  if (kind.value() < 1 || kind.value() > 4) {
    return ntcs::Error(ntcs::Errc::bad_message, "unknown LCM message kind");
  }
  out.header.kind = static_cast<LcmKind>(kind.value());
  auto flags = r.get_u32();
  if (!flags) return flags.error();
  out.header.flags = flags.value();
  auto src = r.get_u64();
  if (!src) return src.error();
  out.header.src = UAdd::from_raw(src.value());
  auto dst = r.get_u64();
  if (!dst) return dst.error();
  out.header.dst = UAdd::from_raw(dst.value());
  auto req = r.get_u32();
  if (!req) return req.error();
  out.header.req_id = req.value();
  auto mode = r.get_u32();
  if (!mode) return mode.error();
  out.header.mode = mode.value();
  auto arch = r.get_u32();
  if (!arch) return arch.error();
  out.header.src_arch = arch.value();
  out.payload = ntcs::Bytes(r.rest().begin(), r.rest().end());
  return out;
}

}  // namespace ntcs::core::wire
