// frames.h — the NTCS internal wire protocol.
//
// Everything here is encoded in shift mode (paper §5.2): headers are
// structures of four-byte integers moved to/from the byte stream with
// shift/mask routines, so they mean the same thing on every machine
// representation. Variable-length fields (physical address blobs, route
// lists) are length-prefixed byte strings — characters are single bytes on
// every testbed machine, so no conversion is needed for them either.
//
// Nesting on a local virtual circuit (one IPCS frame stream):
//
//   IPCS frame   = [frag word][chunk]                      (ND fragmentation)
//   ND message   = [magic][version][nd kind][body]          (after reassembly)
//     nd open     : body = NdOpen       (channel-open UAdd/arch exchange §3.3)
//     nd open ack : body = NdOpenAck
//     nd payload  : body = IP envelope
//   IP envelope  = [ip kind][ivc id][body]
//     data        : body = LCM message (opaque to gateways)
//     extend      : body = ExtendBody  (chained-circuit establishment §4)
//     extend ok   : body = empty
//     extend fail : body = [errc][text]
//     teardown    : body = empty
//   LCM message  = [lcm kind][flags][src][dst][req id][mode][src arch][payload]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "core/addr.h"

namespace ntcs::core::wire {

inline constexpr std::uint32_t kMagic = 0x4E544353;  // "NTCS"
inline constexpr std::uint32_t kVersion = 1;

// ---------------------------------------------------------------- fragments

/// Fragment word: bit 31 = more-fragments, bits 24..30 = a 7-bit frame
/// sequence number (mod 128, per circuit per direction), bit 23 =
/// first-fragment-of-message, bits 0..22 = chunk length. The sequence
/// number lets the receiver suppress duplicated frames and detect
/// overtaken/lost ones — the ND-Layer's end of hiding "IPCS error
/// conventions" when the substrate misbehaves. The first-fragment flag
/// marks where a message starts; the first frame additionally carries the
/// message's total length as a fourth header byte-quad so the reassembler
/// can reserve the whole buffer once and append chunks in place.
inline constexpr std::uint32_t kFragSeqMask = 0x7Fu;
inline constexpr std::uint32_t kFragLenMask = 0x007FFFFFu;
/// Frames up to this far *behind* the last accepted one are stale
/// stragglers (dropped); larger backward distances read as forward gaps
/// (lost frames) instead. Reordering shifts frames by a few slots, loss
/// bursts can span dozens — hence a narrow stale zone.
inline constexpr std::uint32_t kFragStaleWindow = 16u;
std::uint32_t make_frag_word(bool more, std::uint32_t chunk_len,
                             std::uint32_t seq = 0, bool first = false);
bool frag_more(std::uint32_t word);
bool frag_first(std::uint32_t word);
std::uint32_t frag_len(std::uint32_t word);
std::uint32_t frag_seq(std::uint32_t word);

/// One MTU-sized frame of a message, described without copying the chunk:
/// the header words plus a view into the original message. The frame on
/// the wire is [frag word][chunk] — or, when `first`,
/// [frag word][total len][chunk].
struct FragSpan {
  std::uint32_t word = 0;
  std::uint32_t total = 0;  // whole-message length; meaningful when first
  bool first = false;
  ntcs::BytesView chunk;

  std::size_t header_size() const { return first ? 8 : 4; }
};

/// Largest frame header a FragSpan can need.
inline constexpr std::size_t kFragHeaderMax = 8;

/// Serialise a span's frame header (shift mode: MSB first) into `out`;
/// returns the number of bytes written (4 or 8). The frame on the wire is
/// this header followed by the span's chunk bytes.
std::size_t encode_frag_header(const FragSpan& s,
                               std::uint8_t out[kFragHeaderMax]);

/// Split a message into MTU-sized frame descriptors whose chunks alias
/// `msg` — the zero-copy fragmentation path. `seq` is the running
/// per-circuit frame counter; it is stamped into each frame and advanced
/// past them. `msg` must outlive the spans.
std::vector<FragSpan> fragment_spans(ntcs::BytesView msg, std::size_t mtu,
                                     std::uint32_t& seq);

/// Split a message into MTU-sized IPCS frames (each a materialised
/// [header][chunk] buffer). Kept for tests and single-frame encodings; the
/// ND-Layer's hot path sends fragment_spans() directly.
std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu,
                                  std::uint32_t& seq);
/// Sequence-free convenience (tests, single-shot encodings): frames are
/// numbered from 0.
std::vector<ntcs::Bytes> fragment(ntcs::BytesView msg, std::size_t mtu);

/// Streaming reassembler for one virtual circuit. Frames normally arrive
/// in order; under fault injection they may be duplicated or overtaken,
/// and the sequence number sorts that out:
///   * a frame repeating the last sequence number is a duplicate — dropped;
///   * a frame a little behind (wrap-aware backward distance within
///     kFragStaleWindow) is stale — dropped;
///   * a small forward gap means frames were lost or overtaken — any
///     partial reassembly is discarded (that message is lost) and the
///     stream re-synchronises at the new frame.
class Reassembler {
 public:
  struct FeedResult {
    bool complete = false;  // this frame finished a message; call take()
    bool dropped = false;   // duplicate or stale frame, ignored
    bool resynced = false;  // forward gap: stream resynchronised
    bool orphan = false;    // continuation whose first frame was lost
  };

  /// Feed one IPCS frame. Errors indicate a malformed frame (protocol
  /// violation); fault-induced anomalies come back in the FeedResult.
  ntcs::Result<FeedResult> feed(ntcs::BytesView frame);

  /// The completed message after feed() reported complete.
  ntcs::Bytes take();

  std::size_t pending_bytes() const { return acc_.size(); }

 private:
  ntcs::Bytes acc_;
  bool have_head_ = false;         // saw the current message's first frame
  std::uint32_t expect_total_ = 0; // its announced total length
  // Last accepted sequence number; initialised so the first frame (seq 0)
  // is in-order.
  std::uint32_t last_seq_ = kFragSeqMask;
};

// ---------------------------------------------------------------- ND layer

enum class NdKind : std::uint32_t {
  open = 1,      // first message on a new channel
  open_ack = 2,  // acceptor's answer
  payload = 3,   // everything else: an IP envelope
};

/// Channel-open exchange (§3.3): "information exchanged between modules
/// during the channel open protocol ... is then locally cached".
struct NdOpen {
  UAdd src_uadd;           // may be a TAdd during bootstrap (§3.4)
  std::uint32_t src_arch;  // convert::arch_wire_id
  std::string src_phys;    // so the acceptor can cache UAdd -> phys
};

struct NdOpenAck {
  UAdd uadd;  // acceptor's UAdd (or TAdd)
  std::uint32_t arch;
};

ntcs::Bytes encode_nd_open(const NdOpen& m);
ntcs::Bytes encode_nd_open_ack(const NdOpenAck& m);
ntcs::Bytes encode_nd_payload(ntcs::BytesView ip_envelope);

struct NdMessage {
  NdKind kind;
  NdOpen open;        // when kind == open
  NdOpenAck ack;      // when kind == open_ack
  ntcs::Bytes body;   // when kind == payload: the IP envelope
};

ntcs::Result<NdMessage> decode_nd(ntcs::BytesView msg);

// ---------------------------------------------------------------- IP layer

enum class IpKind : std::uint32_t {
  data = 1,
  extend = 2,
  extend_ok = 3,
  extend_fail = 4,
  teardown = 5,
};

/// One hop of a source-computed route: which network to continue on and the
/// physical address to connect to there. The last hop is the destination
/// module itself.
struct RouteHop {
  std::string net;
  std::string phys;
};

struct ExtendBody {
  UAdd final_uadd;
  std::vector<RouteHop> route;  // remaining hops, front is next
};

struct IpEnvelope {
  IpKind kind = IpKind::data;
  std::uint64_t ivc = 0;
  ExtendBody extend;       // kind == extend
  std::uint32_t errc = 0;  // kind == extend_fail
  std::string text;        // kind == extend_fail
  ntcs::Bytes body;        // kind == data: the LCM message
};

ntcs::Bytes encode_ip_data(std::uint64_t ivc, ntcs::BytesView lcm_msg);
ntcs::Bytes encode_ip_extend(std::uint64_t ivc, const ExtendBody& b);
ntcs::Bytes encode_ip_extend_ok(std::uint64_t ivc);
ntcs::Bytes encode_ip_extend_fail(std::uint64_t ivc, std::uint32_t errc,
                                  const std::string& text);
ntcs::Bytes encode_ip_teardown(std::uint64_t ivc);

ntcs::Result<IpEnvelope> decode_ip(ntcs::BytesView envelope);

// ---------------------------------------------------------------- LCM layer

enum class LcmKind : std::uint32_t {
  data = 1,     // one-way message on a conversation
  request = 2,  // synchronous send: expects a reply
  reply = 3,
  dgram = 4,    // connectionless protocol (best effort)
};

/// Flag bits in the LCM header flags word.
inline constexpr std::uint32_t kLcmFlagInternal = 1u << 0;  // NTCS/DRTS traffic
/// Header carries three optional trace words (trace ID hi/lo + parent span
/// ID) between `src_arch` and the payload. Version-tolerant: frames without
/// the bit decode exactly as before, and decoders that predate the bit skip
/// nothing (the words only exist when the bit is set).
inline constexpr std::uint32_t kLcmFlagTraced = 1u << 1;
/// Back-pressure signal (overload control): set on a `reply` frame to tell
/// the requester its request was *shed* at the receiver — no application
/// reply is coming. The sender's window logic pauses admission toward that
/// destination for a configured interval instead of retrying, and the
/// request completes with the retriable Errc::overloaded. A busy frame is
/// also marked kLcmFlagInternal (it is circuit bookkeeping, not data).
inline constexpr std::uint32_t kLcmFlagBusy = 1u << 2;

struct LcmHeader {
  LcmKind kind = LcmKind::data;
  std::uint32_t flags = 0;
  UAdd src;
  UAdd dst;
  std::uint32_t req_id = 0;
  std::uint32_t mode = 0;      // convert::xfer_mode_wire_id of the payload
  std::uint32_t src_arch = 0;  // convert::arch_wire_id
  // Distributed-trace context, meaningful only when kLcmFlagTraced is set:
  // 128-bit trace ID plus the sender-side parent span ID (trace.h).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t trace_parent = 0;
};

ntcs::Bytes encode_lcm(const LcmHeader& h, ntcs::BytesView payload);

struct LcmMessage {
  LcmHeader header;
  ntcs::Bytes payload;
};

ntcs::Result<LcmMessage> decode_lcm(ntcs::BytesView msg);

/// The trace words of an LCM message, read without decoding the payload.
struct LcmTraceWords {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t parent = 0;
};

/// Cheap fixed-offset peek at an LCM message's trace words; nullopt when
/// the frame is untraced (or too short to carry the header). Used by
/// forwarding/reassembly sites that must attribute a span to in-flight
/// traffic without paying a full decode.
std::optional<LcmTraceWords> peek_lcm_trace(ntcs::BytesView lcm_msg);

/// Cheap fixed-offset peek at an LCM message's flags word; nullopt when
/// the buffer is too short to hold an LCM header. Gateways use it on the
/// relay fast path to classify control-class (kLcmFlagInternal) frames —
/// which bypass per-peer fairness metering — without a full decode.
std::optional<std::uint32_t> peek_lcm_flags(ntcs::BytesView lcm_msg);

/// Same peek through an ND payload frame: ND prologue -> IP data envelope
/// -> LCM header. nullopt for non-payload ND kinds, non-data IP envelopes
/// and untraced messages.
std::optional<LcmTraceWords> peek_nd_trace(ntcs::BytesView nd_msg);

}  // namespace ntcs::core::wire
