#include "drts/error_log.h"

#include "convert/packed.h"

namespace ntcs::drts {

using namespace std::chrono_literals;

ErrorLogServer::ErrorLogServer(core::NodeConfig cfg) {
  if (cfg.name.empty()) cfg.name = std::string(kErrorLogName);
  node_ = std::make_unique<core::Node>(std::move(cfg));
}

ErrorLogServer::~ErrorLogServer() { stop(); }

ntcs::Status ErrorLogServer::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = node_->start(); !st.ok()) return st;
  auto uadd = node_->commod().register_self({{"role", "error-log"}});
  if (!uadd) return uadd.error();
  server_ = std::jthread([this](std::stop_token st) { serve(st); });
  running_ = true;
  return ntcs::Status::success();
}

void ErrorLogServer::stop() {
  if (!running_) return;
  running_ = false;
  server_.request_stop();
  node_->stop();
  if (server_.joinable()) server_.join();
}

void ErrorLogServer::serve(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto in = node_->lcm().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;
    }
    if (in.value().is_request) {
      convert::Packer p;
      {
        ntcs::LockGuard lk(mu_);
        p.put_u64(total_);
      }
      (void)node_->lcm().reply(in.value().reply_ctx,
                               core::Payload::raw(std::move(p).take()));
      continue;
    }
    convert::Unpacker u(in.value().payload);
    auto module = u.get_string();
    auto layer = u.get_string();
    auto code = u.get_u64();
    auto text = u.get_string();
    if (!module || !layer || !code || !text) continue;
    ErrorKey key{std::move(module.value()), std::move(layer.value()),
                 static_cast<ntcs::Errc>(code.value())};
    ntcs::LockGuard lk(mu_);
    ++table_[key];
    ++total_;
  }
}

std::map<ErrorKey, std::uint64_t> ErrorLogServer::table() const {
  ntcs::LockGuard lk(mu_);
  return table_;
}

std::uint64_t ErrorLogServer::total() const {
  ntcs::LockGuard lk(mu_);
  return total_;
}

std::uint64_t ErrorLogServer::count_for(const std::string& module) const {
  ntcs::LockGuard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, count] : table_) {
    if (key.module == module) n += count;
  }
  return n;
}

ErrorLogClient::ErrorLogClient(core::Node& node) : node_(node) {}

core::ErrorHook ErrorLogClient::hook() {
  return [this](std::string_view layer, ntcs::Errc code,
                std::string_view text) { report(layer, code, text); };
}

void ErrorLogClient::report(std::string_view layer, ntcs::Errc code,
                            std::string_view text) {
  core::UAdd target = core::UAdd::from_raw(log_uadd_raw_.load());
  if (!target.valid()) {
    auto located = node_.nsp().lookup(std::string(kErrorLogName));
    if (!located) return;  // nowhere to report: swallow, never cascade
    target = located.value();
    log_uadd_raw_.store(target.raw());
  }
  convert::Packer p;
  p.put_string(node_.identity().name());
  p.put_string(std::string(layer));
  p.put_u64(static_cast<std::uint64_t>(code));
  p.put_string(std::string(text));
  core::SendOptions opts;
  opts.internal = true;
  if (node_.lcm()
          .dgram(target, core::Payload::raw(std::move(p).take()), opts)
          .ok()) {
    reported_.fetch_add(1);
  }
}

}  // namespace ntcs::drts
