// error_log.h — the DRTS error-logging service (paper §1.1, §6.3).
//
// §6.3 observes that a communication system is "inundated with the
// handling of unlikely exceptional conditions" and that "a running table
// of errors could be maintained and monitored". This service is that
// table, distributed: modules report (layer, code, text) triples as
// internal datagrams; the server keeps per-(module, layer, code) counters
// and answers summary queries — making the relentless exception handlers
// observable instead of silent.
#pragma once

#include <map>
#include <memory>
#include <thread>

#include "common/annotated.h"
#include "core/node.h"

namespace ntcs::drts {

inline constexpr std::string_view kErrorLogName = "error-log";

struct ErrorKey {
  std::string module;
  std::string layer;
  ntcs::Errc code = ntcs::Errc::ok;

  friend bool operator<(const ErrorKey& a, const ErrorKey& b) {
    if (a.module != b.module) return a.module < b.module;
    if (a.layer != b.layer) return a.layer < b.layer;
    return static_cast<int>(a.code) < static_cast<int>(b.code);
  }
};

class ErrorLogServer {
 public:
  explicit ErrorLogServer(core::NodeConfig cfg);
  ~ErrorLogServer();

  ErrorLogServer(const ErrorLogServer&) = delete;
  ErrorLogServer& operator=(const ErrorLogServer&) = delete;

  ntcs::Status start();
  void stop();

  core::Node& node() { return *node_; }

  /// The running table of errors.
  std::map<ErrorKey, std::uint64_t> table() const;
  std::uint64_t total() const;
  std::uint64_t count_for(const std::string& module) const;

 private:
  void serve(const std::stop_token& st);

  std::unique_ptr<core::Node> node_;
  mutable ntcs::Mutex mu_{ntcs::lockrank::kDrtsServer, "drts.error_log"};
  std::map<ErrorKey, std::uint64_t> table_ GUARDED_BY(mu_);
  std::uint64_t total_ GUARDED_BY(mu_) = 0;
  std::jthread server_;
  bool running_ = false;
};

class ErrorLogClient {
 public:
  explicit ErrorLogClient(core::Node& node);

  /// Report one exception occurrence. Best effort (a failing error report
  /// must never cascade).
  void report(std::string_view layer, ntcs::Errc code, std::string_view text);

  /// The hook to install via LcmLayer::set_error_hook: every handled
  /// address fault and recursion trip lands in the running table.
  core::ErrorHook hook();

  std::uint64_t reported() const { return reported_.load(); }

 private:
  core::Node& node_;
  // sync: resolved-once cache + stat counter, relaxed; readers tolerate a
  // stale 0 (they re-resolve) and the count is monotonic telemetry.
  std::atomic<std::uint64_t> log_uadd_raw_{0};
  std::atomic<std::uint64_t> reported_{0};
};

}  // namespace ntcs::drts
