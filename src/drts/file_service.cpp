#include "drts/file_service.h"

#include <algorithm>

#include "convert/packed.h"

namespace ntcs::drts {

using namespace std::chrono_literals;
using convert::Packer;
using convert::Unpacker;

namespace {

enum class FsOp : std::uint64_t {
  write = 1,
  append = 2,
  read = 3,
  read_range = 4,
  remove = 5,
  stat = 6,
  list = 7,
};

Packer ok_prologue() {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(ntcs::Errc::ok));
  p.put_string("");
  return p;
}

ntcs::Bytes error_response(ntcs::Errc code, const std::string& text) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(code));
  p.put_string(text);
  return std::move(p).take();
}

std::optional<ntcs::Error> check_status(Unpacker& u) {
  auto code = u.get_u64();
  if (!code) return code.error();
  auto text = u.get_string();
  if (!text) return text.error();
  if (code.value() == static_cast<std::uint64_t>(ntcs::Errc::ok)) {
    return std::nullopt;
  }
  return ntcs::Error(static_cast<ntcs::Errc>(code.value()), text.value());
}

void put_info(Packer& p, const std::string& path, std::uint64_t size,
              std::uint64_t version) {
  p.put_string(path);
  p.put_u64(size);
  p.put_u64(version);
}

ntcs::Result<FileInfo> get_info(Unpacker& u) {
  FileInfo info;
  auto path = u.get_string();
  if (!path) return path.error();
  info.path = std::move(path.value());
  auto size = u.get_u64();
  if (!size) return size.error();
  info.size = size.value();
  auto version = u.get_u64();
  if (!version) return version.error();
  info.version = version.value();
  return info;
}

}  // namespace

FileServer::FileServer(core::NodeConfig cfg) {
  if (cfg.name.empty()) cfg.name = std::string(kFileServiceName);
  node_ = std::make_unique<core::Node>(std::move(cfg));
}

FileServer::~FileServer() { stop(); }

ntcs::Status FileServer::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = node_->start(); !st.ok()) return st;
  auto uadd = node_->commod().register_self({{"role", "file"}});
  if (!uadd) return uadd.error();
  server_ = std::jthread([this](std::stop_token st) { serve(st); });
  running_ = true;
  return ntcs::Status::success();
}

void FileServer::stop() {
  if (!running_) return;
  running_ = false;
  server_.request_stop();
  node_->stop();
  if (server_.joinable()) server_.join();
}

void FileServer::serve(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto in = node_->lcm().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;
    }
    if (!in.value().is_request) continue;
    (void)node_->lcm().reply(in.value().reply_ctx,
                             core::Payload::raw(handle(in.value().payload)));
  }
}

ntcs::Bytes FileServer::handle(ntcs::BytesView request) {
  Unpacker u(request);
  auto op = u.get_u64();
  if (!op) return error_response(ntcs::Errc::bad_message, "missing op");
  auto path = u.get_string();
  if (!path) return error_response(ntcs::Errc::bad_message, "missing path");
  if (path.value().empty() &&
      static_cast<FsOp>(op.value()) != FsOp::list) {
    return error_response(ntcs::Errc::bad_argument, "empty path");
  }
  ntcs::LockGuard lk(mu_);
  switch (static_cast<FsOp>(op.value())) {
    case FsOp::write: {
      auto data = u.get_bytes();
      if (!data) return error_response(ntcs::Errc::bad_message, "no data");
      if (data.value().size() > kMaxFileSize) {
        return error_response(ntcs::Errc::too_big, "file too large");
      }
      Entry& e = files_[path.value()];
      e.data = std::move(data.value());
      ++e.version;
      return std::move(ok_prologue()).take();
    }
    case FsOp::append: {
      auto data = u.get_bytes();
      if (!data) return error_response(ntcs::Errc::bad_message, "no data");
      Entry& e = files_[path.value()];
      if (e.data.size() + data.value().size() > kMaxFileSize) {
        return error_response(ntcs::Errc::too_big, "file too large");
      }
      ntcs::append(e.data, data.value());
      ++e.version;
      return std::move(ok_prologue()).take();
    }
    case FsOp::read: {
      auto it = files_.find(path.value());
      if (it == files_.end()) {
        return error_response(ntcs::Errc::not_found, path.value());
      }
      Packer p = ok_prologue();
      p.put_bytes(it->second.data);
      return std::move(p).take();
    }
    case FsOp::read_range: {
      auto offset = u.get_u64();
      if (!offset) return error_response(ntcs::Errc::bad_message, "no offset");
      auto len = u.get_u64();
      if (!len) return error_response(ntcs::Errc::bad_message, "no length");
      auto it = files_.find(path.value());
      if (it == files_.end()) {
        return error_response(ntcs::Errc::not_found, path.value());
      }
      const ntcs::Bytes& d = it->second.data;
      if (offset.value() > d.size()) {
        return error_response(ntcs::Errc::bad_argument, "offset past end");
      }
      const std::uint64_t n =
          std::min<std::uint64_t>(len.value(), d.size() - offset.value());
      Packer p = ok_prologue();
      p.put_bytes(ntcs::BytesView(d).subspan(offset.value(), n));
      return std::move(p).take();
    }
    case FsOp::remove: {
      if (files_.erase(path.value()) == 0) {
        return error_response(ntcs::Errc::not_found, path.value());
      }
      return std::move(ok_prologue()).take();
    }
    case FsOp::stat: {
      auto it = files_.find(path.value());
      if (it == files_.end()) {
        return error_response(ntcs::Errc::not_found, path.value());
      }
      Packer p = ok_prologue();
      put_info(p, it->first, it->second.data.size(), it->second.version);
      return std::move(p).take();
    }
    case FsOp::list: {
      Packer p = ok_prologue();
      std::vector<const std::pair<const std::string, Entry>*> hits;
      for (const auto& kv : files_) {
        if (kv.first.rfind(path.value(), 0) == 0) hits.push_back(&kv);
      }
      p.put_u64(hits.size());
      for (const auto* kv : hits) {
        put_info(p, kv->first, kv->second.data.size(), kv->second.version);
      }
      return std::move(p).take();
    }
  }
  return error_response(ntcs::Errc::bad_message, "unknown file op");
}

std::size_t FileServer::file_count() const {
  ntcs::LockGuard lk(mu_);
  return files_.size();
}

std::uint64_t FileServer::bytes_stored() const {
  ntcs::LockGuard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [path, e] : files_) total += e.data.size();
  return total;
}

FileClient::FileClient(core::Node& node) : node_(node) {}

ntcs::Status FileClient::connect() {
  auto located = node_.nsp().lookup(std::string(kFileServiceName));
  if (!located) return located.error();
  server_ = located.value();
  return ntcs::Status::success();
}

ntcs::Result<ntcs::Bytes> FileClient::call(ntcs::Bytes request) {
  if (!server_.valid()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "file client not connected");
  }
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 5s;
  auto reply =
      node_.lcm().request(server_, core::Payload::raw(std::move(request)),
                          opts);
  if (!reply) return reply.error();
  return std::move(reply.value().payload);
}

namespace {
Packer fs_prologue(FsOp op, const std::string& path) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(op));
  p.put_string(path);
  return p;
}
}  // namespace

ntcs::Status FileClient::write(const std::string& path, ntcs::BytesView data) {
  Packer p = fs_prologue(FsOp::write, path);
  p.put_bytes(data);
  auto body = call(std::move(p).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return ntcs::Status::success();
}

ntcs::Status FileClient::append(const std::string& path,
                                ntcs::BytesView data) {
  Packer p = fs_prologue(FsOp::append, path);
  p.put_bytes(data);
  auto body = call(std::move(p).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return ntcs::Status::success();
}

ntcs::Result<ntcs::Bytes> FileClient::read(const std::string& path) {
  auto body = call(std::move(fs_prologue(FsOp::read, path)).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return u.get_bytes();
}

ntcs::Result<ntcs::Bytes> FileClient::read_range(const std::string& path,
                                                 std::uint64_t offset,
                                                 std::uint64_t len) {
  Packer p = fs_prologue(FsOp::read_range, path);
  p.put_u64(offset);
  p.put_u64(len);
  auto body = call(std::move(p).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return u.get_bytes();
}

ntcs::Status FileClient::remove(const std::string& path) {
  auto body = call(std::move(fs_prologue(FsOp::remove, path)).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return ntcs::Status::success();
}

ntcs::Result<FileInfo> FileClient::stat(const std::string& path) {
  auto body = call(std::move(fs_prologue(FsOp::stat, path)).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  return get_info(u);
}

ntcs::Result<std::vector<FileInfo>> FileClient::list(
    const std::string& prefix) {
  auto body = call(std::move(fs_prologue(FsOp::list, prefix)).take());
  if (!body) return body.error();
  Unpacker u(body.value());
  if (auto err = check_status(u)) return *err;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 1000000) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd listing");
  }
  std::vector<FileInfo> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto info = get_info(u);
    if (!info) return info.error();
    out.push_back(std::move(info.value()));
  }
  return out;
}

}  // namespace ntcs::drts
