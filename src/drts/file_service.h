// file_service.h — the DRTS distributed file service (paper §1.2).
//
// "This includes such services as distributed process management, file
// service, time service, and monitoring." The file service is the classic
// DRTS building block the URSA testbed used for document storage behind
// its servers: a flat in-memory store addressed by pathname, accessed over
// ordinary NTCS request/reply with a packed-mode protocol.
//
// Like every DRTS service it is an ordinary module: locatable by name,
// relocatable by the process controller (state is lost on relocation —
// recovery of module state belongs to transaction management, §3.5).
#pragma once

#include <map>
#include <memory>
#include <thread>

#include "common/annotated.h"
#include "core/node.h"

namespace ntcs::drts {

inline constexpr std::string_view kFileServiceName = "file-service";

/// Maximum size of a stored file (keeps a rogue client from ballooning the
/// in-memory store; generous for testbed use).
inline constexpr std::size_t kMaxFileSize = 4 << 20;

struct FileInfo {
  std::string path;
  std::uint64_t size = 0;
  std::uint64_t version = 0;  // bumped on every write
};

class FileServer {
 public:
  explicit FileServer(core::NodeConfig cfg);
  ~FileServer();

  FileServer(const FileServer&) = delete;
  FileServer& operator=(const FileServer&) = delete;

  ntcs::Status start();
  void stop();

  core::Node& node() { return *node_; }

  // Local introspection.
  std::size_t file_count() const;
  std::uint64_t bytes_stored() const;

 private:
  struct Entry {
    ntcs::Bytes data;
    std::uint64_t version = 0;
  };

  void serve(const std::stop_token& st);
  ntcs::Bytes handle(ntcs::BytesView request);

  std::unique_ptr<core::Node> node_;
  mutable ntcs::Mutex mu_{ntcs::lockrank::kDrtsServer, "drts.file_service"};
  std::map<std::string, Entry> files_ GUARDED_BY(mu_);
  std::jthread server_;
  bool running_ = false;
};

/// Client-side API bound to one module's Node.
class FileClient {
 public:
  explicit FileClient(core::Node& node);

  /// Resolve the file service by name (once; relocation is transparent).
  ntcs::Status connect();

  /// Create or overwrite a file.
  ntcs::Status write(const std::string& path, ntcs::BytesView data);
  /// Append to a file (creates it if absent).
  ntcs::Status append(const std::string& path, ntcs::BytesView data);
  ntcs::Result<ntcs::Bytes> read(const std::string& path);
  /// Read a byte range [offset, offset+len).
  ntcs::Result<ntcs::Bytes> read_range(const std::string& path,
                                       std::uint64_t offset,
                                       std::uint64_t len);
  ntcs::Status remove(const std::string& path);
  ntcs::Result<FileInfo> stat(const std::string& path);
  /// All paths with the given prefix.
  ntcs::Result<std::vector<FileInfo>> list(const std::string& prefix);

  bool connected() const { return server_.valid(); }

 private:
  ntcs::Result<ntcs::Bytes> call(ntcs::Bytes request);

  core::Node& node_;
  core::UAdd server_;
};

}  // namespace ntcs::drts
