#include "drts/monitor.h"

#include <cstdio>
#include <iterator>

#include "convert/packed.h"

namespace ntcs::drts {

using namespace std::chrono_literals;

namespace {

// Every harvest reply (metrics/traces/health/journal) leads with a u64
// truncated flag: 1 when the answering side clipped the harvest at its
// per-op cap, 0 when the reply is the whole story. Fleet mergers surface
// it so a clipped view is never silently presented as complete.

// Wire form of a metrics snapshot (packed mode, like every monitor
// message): u64 truncated, u64 entry count, then per entry: string name,
// u64 kind, u64 count, u64 sum, u64 max, i64 gauge, i64 gauge_peak,
// u64 bucket count, then that many u64 bucket values.
ntcs::Bytes encode_snapshot(const metrics::Snapshot& snap, bool truncated) {
  convert::Packer p;
  p.put_u64(truncated ? 1 : 0);
  p.put_u64(snap.values.size());
  for (const auto& [name, v] : snap.values) {
    p.put_string(name);
    p.put_u64(static_cast<std::uint64_t>(v.kind));
    p.put_u64(v.count);
    p.put_u64(v.sum);
    p.put_u64(v.max);
    p.put_i64(v.gauge);
    p.put_i64(v.gauge_peak);
    p.put_u64(v.buckets.size());
    for (std::uint64_t b : v.buckets) p.put_u64(b);
  }
  return std::move(p).take();
}

ntcs::Result<metrics::Snapshot> decode_snapshot(ntcs::BytesView bytes,
                                                bool* truncated) {
  convert::Unpacker u(bytes);
  auto trunc = u.get_u64();
  if (!trunc) return trunc.error();
  if (truncated != nullptr) *truncated = trunc.value() != 0;
  auto n = u.get_u64();
  if (!n) return n.error();
  metrics::Snapshot snap;
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto name = u.get_string();
    if (!name) return name.error();
    auto kind = u.get_u64();
    if (!kind) return kind.error();
    auto count = u.get_u64();
    if (!count) return count.error();
    auto sum = u.get_u64();
    if (!sum) return sum.error();
    auto max = u.get_u64();
    if (!max) return max.error();
    auto gauge = u.get_i64();
    if (!gauge) return gauge.error();
    auto peak = u.get_i64();
    if (!peak) return peak.error();
    auto nb = u.get_u64();
    if (!nb) return nb.error();
    if (nb.value() > metrics::kHistogramBuckets) {
      return ntcs::Error(ntcs::Errc::bad_message, "absurd bucket count");
    }
    metrics::MetricValue v;
    v.kind = static_cast<metrics::MetricKind>(kind.value());
    v.count = count.value();
    v.sum = sum.value();
    v.max = max.value();
    v.gauge = gauge.value();
    v.gauge_peak = peak.value();
    v.buckets.reserve(nb.value());
    for (std::uint64_t b = 0; b < nb.value(); ++b) {
      auto bv = u.get_u64();
      if (!bv) return bv.error();
      v.buckets.push_back(bv.value());
    }
    snap.values.emplace(std::move(name.value()), std::move(v));
  }
  return snap;
}

// Wire form of a span harvest (packed mode): u64 truncated, u64 span
// count, then per span: u64 trace_hi/trace_lo/span_id/parent_id, i64
// start/end, u64 flags, string layer/op/node.
ntcs::Bytes encode_spans(const std::vector<trace::Span>& spans,
                         bool truncated) {
  convert::Packer p;
  p.put_u64(truncated ? 1 : 0);
  p.put_u64(spans.size());
  for (const auto& s : spans) {
    p.put_u64(s.trace_hi);
    p.put_u64(s.trace_lo);
    p.put_u64(s.span_id);
    p.put_u64(s.parent_id);
    p.put_i64(s.start_ns);
    p.put_i64(s.end_ns);
    p.put_u64(s.flags);
    p.put_string(s.layer);
    p.put_string(s.op);
    p.put_string(s.node);
  }
  return std::move(p).take();
}

ntcs::Result<std::vector<trace::Span>> decode_spans(ntcs::BytesView bytes,
                                                    bool* truncated) {
  convert::Unpacker u(bytes);
  auto trunc = u.get_u64();
  if (!trunc) return trunc.error();
  if (truncated != nullptr) *truncated = trunc.value() != 0;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > kMaxTraceHarvest) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd span count");
  }
  std::vector<trace::Span> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    trace::Span s;
    auto hi = u.get_u64();
    auto lo = u.get_u64();
    auto id = u.get_u64();
    auto parent = u.get_u64();
    auto start = u.get_i64();
    auto end = u.get_i64();
    auto flags = u.get_u64();
    auto layer = u.get_string();
    auto op = u.get_string();
    auto node = u.get_string();
    if (!hi || !lo || !id || !parent || !start || !end || !flags || !layer ||
        !op || !node) {
      return ntcs::Error(ntcs::Errc::bad_message, "truncated span harvest");
    }
    s.trace_hi = hi.value();
    s.trace_lo = lo.value();
    s.span_id = id.value();
    s.parent_id = parent.value();
    s.start_ns = start.value();
    s.end_ns = end.value();
    s.flags = static_cast<std::uint32_t>(flags.value());
    s.layer = std::move(layer.value());
    s.op = std::move(op.value());
    s.node = std::move(node.value());
    out.push_back(std::move(s));
  }
  return out;
}

// Wire form of a health report (packed mode): u64 truncated (always 0 —
// reports are tiny; the flag exists for harvest-reply symmetry), i64
// sample timestamp, u64 overall state, u64 layer count, then per layer:
// string name, u64 state, string evidence.
ntcs::Bytes encode_health(const health::HealthReport& r) {
  convert::Packer p;
  p.put_u64(0);
  p.put_i64(r.ts_ns);
  p.put_u64(static_cast<std::uint64_t>(r.overall));
  p.put_u64(r.layers.size());
  for (const auto& l : r.layers) {
    p.put_string(l.name);
    p.put_u64(static_cast<std::uint64_t>(l.state));
    p.put_string(l.evidence);
  }
  return std::move(p).take();
}

ntcs::Result<health::HealthReport> decode_health(ntcs::BytesView bytes,
                                                 bool* truncated) {
  convert::Unpacker u(bytes);
  auto trunc = u.get_u64();
  if (!trunc) return trunc.error();
  if (truncated != nullptr) *truncated = trunc.value() != 0;
  auto ts = u.get_i64();
  if (!ts) return ts.error();
  auto overall = u.get_u64();
  if (!overall) return overall.error();
  if (overall.value() > static_cast<std::uint64_t>(health::HealthState::stalled)) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd health state");
  }
  auto n = u.get_u64();
  if (!n) return n.error();
  health::HealthReport r;
  r.ts_ns = ts.value();
  r.overall = static_cast<health::HealthState>(overall.value());
  r.layers.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto name = u.get_string();
    if (!name) return name.error();
    auto state = u.get_u64();
    if (!state) return state.error();
    if (state.value() >
        static_cast<std::uint64_t>(health::HealthState::stalled)) {
      return ntcs::Error(ntcs::Errc::bad_message, "absurd health state");
    }
    auto ev = u.get_string();
    if (!ev) return ev.error();
    health::LayerHealth l;
    l.name = std::move(name.value());
    l.state = static_cast<health::HealthState>(state.value());
    l.evidence = std::move(ev.value());
    r.layers.push_back(std::move(l));
  }
  return r;
}

// Wire form of a journal harvest (packed mode): u64 truncated, u64 event
// count, then per event: u64 seq, i64 ts, u64 trace_hi/trace_lo/a/b,
// u64 kind, string layer, string what.
ntcs::Bytes encode_journal(const std::vector<health::JournalEvent>& events,
                           bool truncated) {
  convert::Packer p;
  p.put_u64(truncated ? 1 : 0);
  p.put_u64(events.size());
  for (const auto& e : events) {
    p.put_u64(e.seq);
    p.put_i64(e.ts_ns);
    p.put_u64(e.trace_hi);
    p.put_u64(e.trace_lo);
    p.put_u64(e.a);
    p.put_u64(e.b);
    p.put_u64(static_cast<std::uint64_t>(e.kind));
    p.put_string(e.layer);
    p.put_string(e.what);
  }
  return std::move(p).take();
}

ntcs::Result<std::vector<health::JournalEvent>> decode_journal(
    ntcs::BytesView bytes, bool* truncated) {
  convert::Unpacker u(bytes);
  auto trunc = u.get_u64();
  if (!trunc) return trunc.error();
  if (truncated != nullptr) *truncated = trunc.value() != 0;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > kMaxJournalHarvest) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd event count");
  }
  std::vector<health::JournalEvent> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    health::JournalEvent e;
    auto seq = u.get_u64();
    auto ts = u.get_i64();
    auto hi = u.get_u64();
    auto lo = u.get_u64();
    auto a = u.get_u64();
    auto b = u.get_u64();
    auto kind = u.get_u64();
    auto layer = u.get_string();
    auto what = u.get_string();
    if (!seq || !ts || !hi || !lo || !a || !b || !kind || !layer || !what) {
      return ntcs::Error(ntcs::Errc::bad_message, "truncated journal harvest");
    }
    e.seq = seq.value();
    e.ts_ns = ts.value();
    e.trace_hi = hi.value();
    e.trace_lo = lo.value();
    e.a = a.value();
    e.b = b.value();
    e.kind = static_cast<health::EventKind>(kind.value());
    e.layer = std::move(layer.value());
    e.what = std::move(what.value());
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

MonitorServer::MonitorServer(core::NodeConfig cfg, std::size_t ring_capacity)
    : ring_capacity_(ring_capacity) {
  if (cfg.name.empty()) cfg.name = std::string(kMonitorName);
  node_ = std::make_unique<core::Node>(std::move(cfg));
  // Health-plane pair for the sample ring. Set-from-size under mu_ (not
  // delta-based): with several monitors in one process the last writer
  // wins, which is the per-ring depth either way — never an aggregate
  // drifting past the per-ring bound.
  metrics::gauge("drts.monitor_ring.bound")
      .set(static_cast<std::int64_t>(ring_capacity_));
}

MonitorServer::~MonitorServer() { stop(); }

ntcs::Status MonitorServer::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = node_->start(); !st.ok()) return st;
  auto uadd = node_->commod().register_self({{"role", "monitor"}});
  if (!uadd) return uadd.error();
  server_ = std::jthread([this](std::stop_token st) { serve(st); });
  running_ = true;
  return ntcs::Status::success();
}

void MonitorServer::stop() {
  if (!running_) return;
  running_ = false;
  server_.request_stop();
  node_->stop();
  if (server_.joinable()) server_.join();
  health::heartbeat("drts." + node_->config().name).retire();
}

void MonitorServer::serve(const std::stop_token& st) {
  // The serve loop iterates at least every 100ms (receive timeout), so
  // the default 1s stall window leaves ~10 missed iterations of slack.
  health::Heartbeat& hb = health::heartbeat("drts." + node_->config().name);
  while (!st.stop_requested()) {
    hb.beat();
    auto in = node_->lcm().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;
    }
    if (in.value().is_request) {
      // Statistics query. An empty payload is the original protocol
      // ("summary"); otherwise the payload selects the report.
      std::uint64_t op = kMonitorOpSummary;
      if (!in.value().payload.empty()) {
        convert::Unpacker u(in.value().payload);
        auto got = u.get_u64();
        if (got) op = got.value();
      }
      ntcs::Bytes body;
      if (op == kMonitorOpMetrics) {
        // The per-layer registry, served over the NTCS itself. This query
        // path is internal traffic end to end, so answering it perturbs
        // none of the monitored-send metrics it reports (§6.1).
        auto snap = metrics::MetricsRegistry::instance().snapshot();
        bool clipped = false;
        while (snap.values.size() > kMaxMetricsHarvest) {
          // Alphabetically-last entries lose; a registry this large is
          // itself a bug the truncated flag is there to surface.
          snap.values.erase(std::prev(snap.values.end()));
          clipped = true;
        }
        body = encode_snapshot(snap, clipped);
      } else if (op == kMonitorOpTraces) {
        // Span-buffer harvest: the same recursive monitor path, serving
        // the process's trace ring. Query traffic is internal, so the
        // harvest itself never appears in the spans it returns.
        TraceQuery q;
        convert::Unpacker tu(in.value().payload);
        (void)tu.get_u64();  // op, already decoded above
        auto kind = tu.get_u64();
        auto hi = tu.get_u64();
        auto lo = tu.get_u64();
        auto since = tu.get_i64();
        if (kind && hi && lo && since) {
          q.kind = static_cast<TraceQuery::Kind>(kind.value());
          q.trace_hi = hi.value();
          q.trace_lo = lo.value();
          q.since_ns = since.value();
        }
        std::vector<trace::Span> spans;
        switch (q.kind) {
          case TraceQuery::Kind::by_trace:
            spans = trace::spans_for_trace(q.trace_hi, q.trace_lo);
            break;
          case TraceQuery::Kind::since:
            spans = trace::spans_since(q.since_ns);
            break;
          case TraceQuery::Kind::all:
          default:
            spans = trace::snapshot_spans();
            break;
        }
        bool clipped = false;
        if (spans.size() > kMaxTraceHarvest) {
          // Newest spans win (the ring already discarded the oldest).
          spans.erase(spans.begin(),
                      spans.begin() +
                          static_cast<std::ptrdiff_t>(spans.size() -
                                                      kMaxTraceHarvest));
          clipped = true;
        }
        body = encode_spans(spans, clipped);
      } else if (op == kMonitorOpHealth) {
        // The latest watchdog verdict — or, when no watchdog thread runs
        // in this process, a fresh sample so the answer is never stale.
        auto& reg = health::HealthRegistry::instance();
        body = encode_health(reg.watchdog_running() ? reg.latest()
                                                    : reg.check_now());
      } else if (op == kMonitorOpJournal) {
        // Flight-recorder drain. The payload may carry a per-query cap
        // after the op; it is clamped to kMaxJournalHarvest either way.
        std::uint64_t max = kMaxJournalHarvest;
        convert::Unpacker ju(in.value().payload);
        (void)ju.get_u64();  // op, already decoded above
        if (auto m = ju.get_u64(); m && m.value() > 0) max = m.value();
        if (max > kMaxJournalHarvest) max = kMaxJournalHarvest;
        auto events = health::journal_snapshot();
        bool clipped = false;
        if (events.size() > max) {
          // Newest events win (the ring already overwrote the oldest).
          events.erase(events.begin(),
                       events.begin() + static_cast<std::ptrdiff_t>(
                                            events.size() - max));
          clipped = true;
        }
        body = encode_journal(events, clipped);
      } else {
        convert::Packer p;
        {
          ntcs::LockGuard lk(mu_);
          p.put_u64(count_);
          p.put_u64(total_bytes_);
        }
        body = std::move(p).take();
      }
      (void)node_->lcm().reply(in.value().reply_ctx,
                               core::Payload::raw(std::move(body)));
      continue;
    }
    // A sample datagram.
    convert::Unpacker u(in.value().payload);
    MonitorRecord rec;
    auto src = u.get_u64();
    auto dst = u.get_u64();
    auto bytes = u.get_u64();
    auto ts = u.get_i64();
    auto req = u.get_bool();
    if (!src || !dst || !bytes || !ts || !req) continue;  // malformed: drop
    rec.src = src.value();
    rec.dst = dst.value();
    rec.bytes = bytes.value();
    rec.timestamp_ns = ts.value();
    rec.request = req.value();
    ntcs::LockGuard lk(mu_);
    ring_.push_back(rec);
    while (ring_.size() > ring_capacity_) ring_.pop_front();
    static metrics::Gauge& g_depth = metrics::gauge("drts.monitor_ring.depth");
    g_depth.set(static_cast<std::int64_t>(ring_.size()));
    total_bytes_ += rec.bytes;
    ++count_;
    PairStats& ps = pairs_[{rec.src, rec.dst}];
    if (ps.count == 0) {
      ps.src = rec.src;
      ps.dst = rec.dst;
      ps.first_ts_ns = rec.timestamp_ns;
    }
    ++ps.count;
    ps.bytes += rec.bytes;
    ps.last_ts_ns = rec.timestamp_ns;
  }
}

std::uint64_t MonitorServer::sample_count() const {
  ntcs::LockGuard lk(mu_);
  return count_;
}

std::uint64_t MonitorServer::total_bytes() const {
  ntcs::LockGuard lk(mu_);
  return total_bytes_;
}

std::vector<MonitorRecord> MonitorServer::samples() const {
  ntcs::LockGuard lk(mu_);
  return {ring_.begin(), ring_.end()};
}

std::vector<MonitorServer::PairStats> MonitorServer::pair_stats() const {
  ntcs::LockGuard lk(mu_);
  std::vector<PairStats> out;
  out.reserve(pairs_.size());
  for (const auto& [key, ps] : pairs_) out.push_back(ps);
  return out;
}

std::optional<MonitorServer::PairStats> MonitorServer::pair(
    std::uint64_t src, std::uint64_t dst) const {
  ntcs::LockGuard lk(mu_);
  auto it = pairs_.find({src, dst});
  if (it == pairs_.end()) return std::nullopt;
  return it->second;
}

std::string MonitorServer::report() const {
  ntcs::LockGuard lk(mu_);
  std::string out = "conversation            msgs      bytes   rate(msg/s)\n";
  char line[128];
  for (const auto& [key, ps] : pairs_) {
    std::snprintf(line, sizeof line, "U#%-6llu -> U#%-6llu %7llu %10llu %12.1f\n",
                  static_cast<unsigned long long>(ps.src),
                  static_cast<unsigned long long>(ps.dst),
                  static_cast<unsigned long long>(ps.count),
                  static_cast<unsigned long long>(ps.bytes),
                  ps.rate_per_sec());
    out += line;
  }
  return out;
}

MonitorClient::MonitorClient(core::Node& node) : node_(node) {}

void MonitorClient::emit(const core::MonitorSample& s) {
  core::UAdd monitor = core::UAdd::from_raw(monitor_uadd_raw_.load());
  if (!monitor.valid()) {
    // "If this is the first such communication, the monitor is first
    // located, and the connection established" (§6.1) — recursive naming
    // service traffic on this very send path.
    auto located = node_.nsp().lookup(std::string(kMonitorName));
    if (!located) {
      dropped_.fetch_add(1);
      return;
    }
    monitor = located.value();
    monitor_uadd_raw_.store(monitor.raw());
  }
  convert::Packer p;
  p.put_u64(s.src.raw());
  p.put_u64(s.dst.raw());
  p.put_u64(s.bytes);
  p.put_i64(s.timestamp_ns);
  p.put_bool(s.request);
  core::SendOptions opts;
  opts.internal = true;  // do not monitor the monitor
  auto st = node_.lcm().dgram(monitor, core::Payload::raw(std::move(p).take()),
                              opts);
  if (st.ok()) {
    emitted_.fetch_add(1);
  } else {
    dropped_.fetch_add(1);
  }
}

core::MonitorHook MonitorClient::hook() {
  return [this](const core::MonitorSample& s) { emit(s); };
}

ntcs::Result<MonitorSummary> query_monitor(core::Node& via,
                                           core::UAdd monitor) {
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply =
      via.lcm().request(monitor, core::Payload::raw(ntcs::Bytes{}), opts);
  if (!reply) return reply.error();
  convert::Unpacker u(reply.value().payload);
  auto count = u.get_u64();
  if (!count) return count.error();
  auto bytes = u.get_u64();
  if (!bytes) return bytes.error();
  return MonitorSummary{count.value(), bytes.value()};
}

ntcs::Result<metrics::Snapshot> query_metrics(core::Node& via,
                                              core::UAdd monitor,
                                              bool* truncated) {
  convert::Packer p;
  p.put_u64(kMonitorOpMetrics);
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply = via.lcm().request(monitor,
                                 core::Payload::raw(std::move(p).take()), opts);
  if (!reply) return reply.error();
  return decode_snapshot(reply.value().payload, truncated);
}

ntcs::Result<std::vector<trace::Span>> query_traces(core::Node& via,
                                                    core::UAdd monitor,
                                                    const TraceQuery& q,
                                                    bool* truncated) {
  convert::Packer p;
  p.put_u64(kMonitorOpTraces);
  p.put_u64(static_cast<std::uint64_t>(q.kind));
  p.put_u64(q.trace_hi);
  p.put_u64(q.trace_lo);
  p.put_i64(q.since_ns);
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply = via.lcm().request(monitor,
                                 core::Payload::raw(std::move(p).take()), opts);
  if (!reply) return reply.error();
  return decode_spans(reply.value().payload, truncated);
}

ntcs::Result<health::HealthReport> query_health(core::Node& via,
                                                core::UAdd monitor,
                                                bool* truncated) {
  convert::Packer p;
  p.put_u64(kMonitorOpHealth);
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply = via.lcm().request(monitor,
                                 core::Payload::raw(std::move(p).take()), opts);
  if (!reply) return reply.error();
  return decode_health(reply.value().payload, truncated);
}

ntcs::Result<std::vector<health::JournalEvent>> query_journal(
    core::Node& via, core::UAdd monitor, std::size_t max, bool* truncated) {
  convert::Packer p;
  p.put_u64(kMonitorOpJournal);
  p.put_u64(max);
  core::SendOptions opts;
  opts.internal = true;
  opts.timeout = 2s;
  auto reply = via.lcm().request(monitor,
                                 core::Payload::raw(std::move(p).take()), opts);
  if (!reply) return reply.error();
  return decode_journal(reply.value().payload, truncated);
}

}  // namespace ntcs::drts
