// monitor.h — the DRTS distributed network monitor (paper §1.3, §6.1).
//
// The LCM-Layer emits one sample after every successful monitored send
// ("Upon success, the LCM-layer sends data to the monitor by calling
// itself", §6.1). Samples travel as connectionless datagrams flagged
// internal — monitoring the monitor would be "the obvious infinite
// recursion". The MonitorServer aggregates samples and answers statistics
// queries; it is how the original project measured and projected system
// performance [Wang 85].
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <memory>
#include <thread>

#include "common/health.h"
#include "common/metrics.h"
#include "common/annotated.h"
#include "common/trace.h"
#include "core/node.h"

namespace ntcs::drts {

inline constexpr std::string_view kMonitorName = "monitor";

// Statistics-query ops. A request with an *empty* payload is the original
// protocol and still means "summary"; a non-empty payload carries a
// packed-mode u64 selecting what to report.
inline constexpr std::uint64_t kMonitorOpSummary = 1;
inline constexpr std::uint64_t kMonitorOpMetrics = 2;
inline constexpr std::uint64_t kMonitorOpTraces = 3;
inline constexpr std::uint64_t kMonitorOpHealth = 4;
inline constexpr std::uint64_t kMonitorOpJournal = 5;

/// One sample as stored by the server.
struct MonitorRecord {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t bytes = 0;
  std::int64_t timestamp_ns = 0;
  bool request = false;
};

class MonitorServer {
 public:
  explicit MonitorServer(core::NodeConfig cfg,
                         std::size_t ring_capacity = 65536);
  ~MonitorServer();

  MonitorServer(const MonitorServer&) = delete;
  MonitorServer& operator=(const MonitorServer&) = delete;

  ntcs::Status start();
  void stop();

  core::Node& node() { return *node_; }

  // Local introspection (tests / reports).
  std::uint64_t sample_count() const;
  std::uint64_t total_bytes() const;
  std::vector<MonitorRecord> samples() const;

  /// Per-conversation aggregation (the Wang-style "performance monitoring
  /// and projection" use of the monitor, paper ref [27]).
  struct PairStats {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::int64_t first_ts_ns = 0;
    std::int64_t last_ts_ns = 0;

    /// Projected steady-state message rate from the observed window.
    double rate_per_sec() const {
      if (count < 2 || last_ts_ns <= first_ts_ns) return 0.0;
      return static_cast<double>(count - 1) * 1e9 /
             static_cast<double>(last_ts_ns - first_ts_ns);
    }
  };
  std::vector<PairStats> pair_stats() const;
  std::optional<PairStats> pair(std::uint64_t src, std::uint64_t dst) const;

  /// Human-readable traffic report (one line per conversation).
  std::string report() const;

 private:
  void serve(const std::stop_token& st);

  std::unique_ptr<core::Node> node_;
  std::size_t ring_capacity_;
  mutable ntcs::Mutex mu_{ntcs::lockrank::kDrtsServer, "drts.monitor"};
  // bound: ring_capacity_ — record() trims the front past it.
  std::deque<MonitorRecord> ring_ GUARDED_BY(mu_);
  std::map<std::pair<std::uint64_t, std::uint64_t>, PairStats> pairs_
      GUARDED_BY(mu_);
  std::uint64_t total_bytes_ GUARDED_BY(mu_) = 0;
  std::uint64_t count_ GUARDED_BY(mu_) = 0;
  std::jthread server_;
  bool running_ = false;
};

/// The sending-side half: builds the LCM monitor hook.
class MonitorClient {
 public:
  explicit MonitorClient(core::Node& node);

  /// The hook to install via LcmLayer::set_monitor_hook. Each invocation
  /// locates the monitor on first use (recursively, over the NTCS) and
  /// fires one internal datagram per sample.
  core::MonitorHook hook();

  std::uint64_t emitted() const { return emitted_.load(); }
  std::uint64_t dropped() const { return dropped_.load(); }

 private:
  void emit(const core::MonitorSample& s);

  core::Node& node_;
  // sync: resolved-once cache + stat counters, relaxed; a stale read only
  // re-resolves or under/over-counts telemetry by one sample.
  std::atomic<std::uint64_t> monitor_uadd_raw_{0};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};  // sync: relaxed stat, as above
};

/// Query a (possibly remote) monitor for its aggregate statistics.
struct MonitorSummary {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};
ntcs::Result<MonitorSummary> query_monitor(core::Node& via,
                                           core::UAdd monitor);

/// Harvest cap per query_metrics reply, counted in metric entries. A full
/// histogram entry is ~300 wire bytes, so the cap keeps the reply inside
/// the 1 MiB ALI message limit with room to spare.
inline constexpr std::size_t kMaxMetricsHarvest = 2048;

/// Query a (possibly remote) monitor for its process's per-layer metrics
/// snapshot (kMonitorOpMetrics). The reply is the remote
/// MetricsRegistry::instance().snapshot(), wire-encoded in packed mode —
/// the metrics registry queried over the NTCS itself, like every other
/// DRTS service. Every harvest reply leads with a truncated flag: when the
/// remote had more than the per-op harvest cap, `*truncated` (if given) is
/// set so fleet merges can report partial coverage instead of silently
/// presenting a clipped view as complete.
ntcs::Result<metrics::Snapshot> query_metrics(core::Node& via,
                                              core::UAdd monitor,
                                              bool* truncated = nullptr);

/// Filter for query_traces: everything in the answering process's span
/// buffer, one trace ID, or spans starting at/after a steady_clock
/// timestamp.
struct TraceQuery {
  enum class Kind : std::uint64_t { all = 0, by_trace = 1, since = 2 };
  Kind kind = Kind::all;
  std::uint64_t trace_hi = 0;  // by_trace
  std::uint64_t trace_lo = 0;  // by_trace
  std::int64_t since_ns = 0;   // since
};

/// Harvest cap per query_traces reply: newest spans win. Sized so a full
/// harvest (~90 wire bytes/span) stays inside the 1 MiB ALI message limit.
inline constexpr std::size_t kMaxTraceHarvest = 8192;

/// Drain a (possibly remote) monitor's span buffer over the NTCS
/// (kMonitorOpTraces) — the §6.1 recursive-harvest path, span-flavoured.
/// Merge multi-node harvests with trace::merge_harvests (trace_export.h).
/// `*truncated` (if given) reports whether the remote clipped the harvest
/// at kMaxTraceHarvest (newest spans win).
ntcs::Result<std::vector<trace::Span>> query_traces(core::Node& via,
                                                    core::UAdd monitor,
                                                    const TraceQuery& q = {},
                                                    bool* truncated = nullptr);

/// Query a (possibly remote) monitor for its process's latest watchdog
/// verdict (kMonitorOpHealth). If no watchdog thread runs in the remote
/// process, the monitor takes a fresh HealthRegistry::check_now() sample so
/// the answer is never stale. Health replies are tiny and never clipped;
/// the truncated flag exists for wire symmetry with the other harvest ops.
ntcs::Result<health::HealthReport> query_health(core::Node& via,
                                                core::UAdd monitor,
                                                bool* truncated = nullptr);

/// Harvest cap per query_journal reply: newest events win. A journal event
/// is ~70 wire bytes, so a full harvest stays well inside the 1 MiB ALI
/// message limit.
inline constexpr std::size_t kMaxJournalHarvest = 8192;

/// Drain a (possibly remote) monitor's flight-recorder journal over the
/// NTCS (kMonitorOpJournal). Events arrive oldest-first with trace-ID
/// correlation intact; `*truncated` (if given) reports whether the remote
/// clipped the harvest at `max` (newest events win).
ntcs::Result<std::vector<health::JournalEvent>> query_journal(
    core::Node& via, core::UAdd monitor,
    std::size_t max = kMaxJournalHarvest, bool* truncated = nullptr);

}  // namespace ntcs::drts
