#include "drts/process_control.h"

namespace ntcs::drts {

using namespace std::chrono_literals;

ProcessController::ProcessController(core::Testbed& tb) : tb_(tb) {}

ProcessController::~ProcessController() {
  std::vector<std::string> names;
  {
    ntcs::LockGuard lk(mu_);
    for (auto& [name, m] : modules_) names.push_back(name);
  }
  for (const auto& name : names) (void)kill(name);
}

ntcs::Result<core::UAdd> ProcessController::start_managed(
    Managed& m, const std::string& name, const std::string& machine,
    const std::string& net) {
  auto node = tb_.make_node(name, machine, net);
  if (!node) return node.error();
  m.node = std::move(node.value());
  auto uadd = m.node->commod().register_self(m.attrs);
  if (!uadd) {
    m.node->stop();
    m.node.reset();
    return uadd.error();
  }
  core::Node* raw = m.node.get();
  ServiceFn fn = m.fn;
  m.service = std::jthread(
      [raw, fn = std::move(fn)](std::stop_token st) { fn(*raw, st); });
  return uadd;
}

ntcs::Result<core::UAdd> ProcessController::spawn(
    const std::string& name, const std::string& machine,
    const std::string& net, const core::nsp::AttrMap& attrs, ServiceFn fn) {
  // Reserve the name under the lock, but run the actual start — which
  // blocks on a full Node bring-up and naming-service registration, and
  // re-enters every layer of the Nucleus — with the lock released, so
  // concurrent kill/find/module_count (e.g. a monitor poll) never stall
  // behind a slow or fault-injected start.
  {
    ntcs::LockGuard lk(mu_);
    if (modules_.count(name) != 0) {
      return ntcs::Error(ntcs::Errc::already_exists,
                         "managed module '" + name + "' already running");
    }
    Managed placeholder;
    placeholder.starting = true;
    modules_[name] = std::move(placeholder);
  }
  Managed m;
  m.attrs = attrs;
  m.fn = std::move(fn);
  auto uadd = start_managed(m, name, machine, net);
  ntcs::LockGuard lk(mu_);
  if (!uadd) {
    modules_.erase(name);
    return uadd;
  }
  modules_[name] = std::move(m);
  return uadd;
}

ntcs::Status ProcessController::kill(const std::string& name) {
  Managed victim;
  {
    ntcs::LockGuard lk(mu_);
    auto it = modules_.find(name);
    if (it == modules_.end()) {
      return ntcs::Status(ntcs::Errc::not_found,
                          "no managed module '" + name + "'");
    }
    if (it->second.starting) {
      return ntcs::Status(ntcs::Errc::no_resource,
                          "managed module '" + name + "' still starting");
    }
    victim = std::move(it->second);
    modules_.erase(it);
  }
  victim.service.request_stop();
  victim.node->stop();  // close queue -> service loop drains and exits
  if (victim.service.joinable()) victim.service.join();
  return ntcs::Status::success();
}

ntcs::Result<core::UAdd> ProcessController::relocate(
    const std::string& name, const std::string& new_machine,
    const std::string& new_net) {
  // "allow the replacement, removal or addition of modules while the
  // system is in operation" (§1.3). Kill first, then respawn under the
  // same name: in-flight conversations fault, the naming service maps the
  // old UAdd to this newer module, and traffic resumes (§3.5).
  core::nsp::AttrMap attrs;
  ServiceFn fn;
  {
    ntcs::LockGuard lk(mu_);
    auto it = modules_.find(name);
    if (it == modules_.end()) {
      return ntcs::Error(ntcs::Errc::not_found,
                         "no managed module '" + name + "'");
    }
    attrs = it->second.attrs;
    fn = it->second.fn;
  }
  if (auto st = kill(name); !st.ok()) return st.error();
  return spawn(name, new_machine, new_net, attrs, std::move(fn));
}

core::Node* ProcessController::find(const std::string& name) {
  ntcs::LockGuard lk(mu_);
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second.node.get();
}

std::size_t ProcessController::module_count() const {
  ntcs::LockGuard lk(mu_);
  return modules_.size();
}

ServiceFn make_echo_service(std::string prefix) {
  return [prefix = std::move(prefix)](core::Node& node, std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = node.commod().receive(100ms);
      if (!in) {
        if (in.code() == ntcs::Errc::timeout) continue;
        break;
      }
      if (in.value().is_request) {
        ntcs::Bytes out = ntcs::to_bytes(prefix);
        ntcs::append(out, in.value().payload);
        (void)node.commod().reply(in.value().reply_ctx, out);
      }
    }
  };
}

ServiceFn make_sink_service() {
  return [](core::Node& node, std::stop_token st) {
    while (!st.stop_requested()) {
      auto in = node.commod().receive(100ms);
      if (!in && in.code() != ntcs::Errc::timeout) break;
    }
  };
}

}  // namespace ntcs::drts
