// process_control.h — DRTS distributed process management (paper §1.2).
//
// "On top of both the NTCS and the native operating system at each
// machine, various DRTS services have been added as required" — process
// control being the first the paper names. The controller spawns managed
// modules (a Node plus a service loop), kills them, and — the URSA testbed
// requirement — *relocates* them: kill on one machine, respawn on another
// under the same logical name, whereupon the naming service's forwarding
// determination (§3.5) steers every old UAdd to the new incarnation.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/annotated.h"
#include "core/testbed.h"

namespace ntcs::drts {

/// The body of a managed module: a server loop reading from the Node's
/// ComMod until stop is requested.
using ServiceFn = std::function<void(core::Node&, std::stop_token)>;

class ProcessController {
 public:
  explicit ProcessController(core::Testbed& tb);
  ~ProcessController();

  ProcessController(const ProcessController&) = delete;
  ProcessController& operator=(const ProcessController&) = delete;

  /// Spawn a managed module: start a Node, register it, run `fn`.
  ntcs::Result<core::UAdd> spawn(const std::string& name,
                                 const std::string& machine,
                                 const std::string& net,
                                 const core::nsp::AttrMap& attrs,
                                 ServiceFn fn);

  /// Kill a managed module (endpoint closes; peers see address faults).
  ntcs::Status kill(const std::string& name);

  /// Dynamic reconfiguration (§3.5): move a module to another machine
  /// "while the system is in operation". Returns the new UAdd.
  ntcs::Result<core::UAdd> relocate(const std::string& name,
                                    const std::string& new_machine,
                                    const std::string& new_net);

  /// The managed module's Node (nullptr if not running).
  core::Node* find(const std::string& name);

  std::size_t module_count() const;

 private:
  struct Managed {
    std::unique_ptr<core::Node> node;
    std::jthread service;
    core::nsp::AttrMap attrs;
    ServiceFn fn;
    // True while spawn() is starting this module outside the table lock
    // (the slot reserves the name; node is still null). kill()/relocate()
    // refuse mid-start modules instead of dereferencing the placeholder.
    bool starting = false;
  };

  ntcs::Result<core::UAdd> start_managed(Managed& m, const std::string& name,
                                         const std::string& machine,
                                         const std::string& net);

  core::Testbed& tb_;
  // Outermost rank of the whole tree: registration state is mutated under
  // it, but module start/stop (which re-enters every layer) happens with
  // it released — a name is reserved first, then started unlocked.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kDrtsProcessControl,
                          "drts.process_control"};
  std::map<std::string, Managed> modules_ GUARDED_BY(mu_);
};

/// Ready-made service loops for tests, benches and examples.
ServiceFn make_echo_service(std::string prefix = "echo:");
ServiceFn make_sink_service();

}  // namespace ntcs::drts
