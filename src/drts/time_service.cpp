#include "drts/time_service.h"

#include "convert/packed.h"

namespace ntcs::drts {

using namespace std::chrono_literals;

TimeServer::TimeServer(core::NodeConfig cfg) {
  if (cfg.name.empty()) cfg.name = std::string(kTimeServiceName);
  node_ = std::make_unique<core::Node>(std::move(cfg));
}

TimeServer::~TimeServer() { stop(); }

ntcs::Status TimeServer::start() {
  if (running_) return ntcs::Status::success();
  if (auto st = node_->start(); !st.ok()) return st;
  auto uadd = node_->commod().register_self({{"role", "time"}});
  if (!uadd) return uadd.error();
  server_ = std::jthread([this](std::stop_token st) { serve(st); });
  running_ = true;
  return ntcs::Status::success();
}

void TimeServer::stop() {
  if (!running_) return;
  running_ = false;
  server_.request_stop();
  node_->stop();
  if (server_.joinable()) server_.join();
}

void TimeServer::serve(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto in = node_->lcm().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;
    }
    if (!in.value().is_request) continue;
    // The answer is this machine's local clock — skew included; that is
    // precisely what the client corrects for.
    convert::Packer p;
    p.put_i64(node_->now().count());
    served_.fetch_add(1);
    core::SendOptions opts;
    opts.internal = true;
    (void)node_->lcm().reply(in.value().reply_ctx,
                             core::Payload::raw(std::move(p).take()));
  }
}

TimeClient::TimeClient(core::Node& node) : node_(node) {}

std::int64_t TimeClient::local_now_ns() const {
  return node_.now().count();
}

ntcs::Status TimeClient::sync(int samples) {
  // Locate the time service once (recursing through the naming service).
  core::UAdd server = core::UAdd::from_raw(server_uadd_raw_.load());
  if (!server.valid()) {
    auto located = node_.nsp().lookup(std::string(kTimeServiceName));
    if (!located) return located.error();
    server = located.value();
    server_uadd_raw_.store(server.raw());
  }
  std::int64_t best_rtt = INT64_MAX;
  std::int64_t best_offset = 0;
  core::SendOptions opts;
  opts.internal = true;  // time traffic must not be time-stamped (§6.1)
  opts.timeout = 2s;
  for (int i = 0; i < samples; ++i) {
    const std::int64_t t0 = local_now_ns();
    auto reply = node_.lcm().request(
        server, core::Payload::raw(ntcs::Bytes{}), opts);
    const std::int64_t t1 = local_now_ns();
    if (!reply) return reply.error();
    convert::Unpacker u(reply.value().payload);
    auto server_ns = u.get_i64();
    if (!server_ns) return server_ns.error();
    const std::int64_t rtt = t1 - t0;
    // Cristian's estimate: the server read its clock roughly mid-flight.
    const std::int64_t offset = server_ns.value() + rtt / 2 - t1;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best_offset = offset;
    }
  }
  offset_ns_.store(best_offset);
  synced_.store(true);
  syncs_.fetch_add(1);
  return ntcs::Status::success();
}

std::int64_t TimeClient::corrected_now_ns() {
  if (!synced_.load()) {
    // Lazy first correction; the `syncing_` latch stops a recursive send
    // from re-entering sync() from inside sync()'s own traffic.
    bool expected = false;
    if (syncing_.compare_exchange_strong(expected, true)) {
      (void)sync();
      syncing_.store(false);
    }
  }
  return local_now_ns() + offset_ns_.load();
}

core::TimeSource TimeClient::source() {
  return [this] { return corrected_now_ns(); };
}

}  // namespace ntcs::drts
