// time_service.h — the DRTS precision time corrector (paper §1.3, §6.1).
//
// "A distributed network monitor and precision time corrector have been
// developed ... on top of the NTCS. Since the NTCS itself utilizes both of
// these services, recursive operation in addition to that of the naming
// service is observed."
//
// Machines in the simulated fabric have skewed clocks (as the real Apollo/
// VAX/Sun testbed did). The TimeServer answers time requests with its
// machine's local clock; TimeClients run a Cristian-style exchange —
// several round trips, keeping the minimum-RTT sample — to estimate their
// offset from the server, and hand the LCM-Layer a corrected-time source
// for monitor timestamps. A time correction "may involve multiple messages"
// (§6.1), each of which recurses through the full NTCS stack.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "core/node.h"

namespace ntcs::drts {

inline constexpr std::string_view kTimeServiceName = "time-service";

class TimeServer {
 public:
  explicit TimeServer(core::NodeConfig cfg);
  ~TimeServer();

  TimeServer(const TimeServer&) = delete;
  TimeServer& operator=(const TimeServer&) = delete;

  /// Start and register as "time-service" (attrs: role=time).
  ntcs::Status start();
  void stop();

  core::Node& node() { return *node_; }
  std::uint64_t requests_served() const { return served_.load(); }

 private:
  void serve(const std::stop_token& st);

  std::unique_ptr<core::Node> node_;
  std::jthread server_;
  // sync: stat counter, relaxed — read by tests after join.
  std::atomic<std::uint64_t> served_{0};
  bool running_ = false;
};

class TimeClient {
 public:
  /// Bound to one module's Node; all exchanges flow through its ComMod.
  explicit TimeClient(core::Node& node);

  /// Run a correction: `samples` request/reply exchanges, keeping the
  /// estimate from the round trip with the smallest RTT.
  ntcs::Status sync(int samples = 5);

  /// Corrected time in nanoseconds. Performs a lazy first sync() — the
  /// §6.1 recursion: a time stamp for a monitored send may itself require
  /// locating and querying the time service over the NTCS.
  std::int64_t corrected_now_ns();

  /// The hook to install via LcmLayer::set_time_source.
  core::TimeSource source();

  /// Local-clock offset estimate (0 until synced).
  std::int64_t offset_ns() const { return offset_ns_.load(); }
  bool synced() const { return synced_.load(); }
  std::uint64_t syncs_performed() const { return syncs_.load(); }

 private:
  std::int64_t local_now_ns() const;

  core::Node& node_;
  // Published by the time-exchange round and read by now_ns() callers; a
  // torn generation is impossible (single word) and a stale offset is
  // exactly as good as the previous round's.
  // sync: single-word publish, relaxed on both sides.
  std::atomic<std::int64_t> offset_ns_{0};
  std::atomic<bool> synced_{false};        // sync: see block comment above
  std::atomic<bool> syncing_{false};       // sync: CAS admission gate
  std::atomic<std::uint64_t> syncs_{0};    // sync: relaxed stat
  std::atomic<std::uint64_t> server_uadd_raw_{0};  // sync: resolve cache
};

}  // namespace ntcs::drts
