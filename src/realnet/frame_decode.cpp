#include "realnet/frame_decode.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace ntcs::realnet {

bool parse_frame_len(const std::uint8_t* prefix, std::uint32_t& len) {
  len = (std::uint32_t{prefix[0]} << 24) | (std::uint32_t{prefix[1]} << 16) |
        (std::uint32_t{prefix[2]} << 8) | std::uint32_t{prefix[3]};
  return len != 0 && len <= kMaxWireFrame;
}

bool StreamDecoder::feed(const std::uint8_t* data, std::size_t n,
                         const Sink& sink) {
  if (corrupt_) return false;
  while (n > 0) {
    if (want_ == 0) {  // accumulating the length prefix
      const std::size_t take = std::min(n, kLenPrefix - prefix_got_);
      std::memcpy(prefix_ + prefix_got_, data, take);
      prefix_got_ += take;
      data += take;
      n -= take;
      if (prefix_got_ < kLenPrefix) break;
      prefix_got_ = 0;
      std::uint32_t len = 0;
      if (!parse_frame_len(prefix_, len)) {
        corrupt_ = true;
        return false;
      }
      want_ = len;
      payload_.clear();
      payload_.resize(want_);
      payload_got_ = 0;
    } else {  // accumulating the payload
      const std::size_t take = std::min<std::size_t>(n, want_ - payload_got_);
      std::memcpy(payload_.data() + payload_got_, data, take);
      payload_got_ += take;
      data += take;
      n -= take;
      if (payload_got_ == want_) {
        want_ = 0;
        payload_got_ = 0;
        sink(std::move(payload_));
        payload_ = ntcs::Bytes{};
      }
    }
  }
  return true;
}

std::size_t StreamDecoder::pending() const {
  return want_ == 0 ? prefix_got_ : kLenPrefix + payload_got_;
}

}  // namespace ntcs::realnet
