// frame_decode.h — the realnet TCP stream framing, factored out of the
// socket reader so the exact production byte-path is directly fuzzable
// (fuzz/fuzz_tcp_frames.cpp feeds it adversarial chunk sequences).
//
// Wire format: each frame is a 4-byte big-endian length prefix followed
// by that many payload bytes. A length of 0 or beyond kMaxWireFrame is
// not a big message — it is stream corruption or a non-NTCS peer, and
// the channel dies (the decoder latches `corrupt` and ignores further
// input).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/bytes.h"

namespace ntcs::realnet {

// Matches simnet's TCP IPCS so ND fragment trains are identical on both
// backends (the conformance suite counts on it).
inline constexpr std::size_t kTcpMtu = 16 * 1024;
inline constexpr std::size_t kMaxWireFrame = kTcpMtu;
inline constexpr std::size_t kLenPrefix = 4;

/// Decodes a big-endian length prefix. Returns false when the decoded
/// length is invalid for the wire (0 or > kMaxWireFrame).
bool parse_frame_len(const std::uint8_t* prefix, std::uint32_t& len);

/// Incremental reassembler for the length-prefixed stream. Feed it byte
/// chunks of any size (TCP gives no framing guarantees); it invokes the
/// sink once per completed frame, in order.
class StreamDecoder {
 public:
  using Sink = std::function<void(ntcs::Bytes)>;

  /// Consumes `n` bytes. Returns false once the stream is corrupt (bad
  /// length prefix); the decoder stays latched and drops further input.
  bool feed(const std::uint8_t* data, std::size_t n, const Sink& sink);

  bool corrupt() const { return corrupt_; }
  /// Bytes buffered toward the current (incomplete) prefix or payload.
  std::size_t pending() const;

 private:
  std::uint8_t prefix_[kLenPrefix] = {0, 0, 0, 0};
  std::size_t prefix_got_ = 0;
  ntcs::Bytes payload_;
  std::size_t payload_got_ = 0;
  std::uint32_t want_ = 0;  // 0: reading prefix; else payload length
  bool corrupt_ = false;
};

}  // namespace ntcs::realnet
