#include "realnet/tcp_backend.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "realnet/frame_decode.h"

namespace {

/// Health-plane pair: aggregate TCP-port inbox depth across the process
/// (delta-based) against the configured per-port bound. The bound gauge is
/// set when the first port publishes (all ports share TcpConfig defaults).
ntcs::metrics::Gauge& inbox_depth_gauge() {
  static ntcs::metrics::Gauge& g =
      ntcs::metrics::gauge("realnet.inbox.depth");
  return g;
}

}  // namespace

namespace ntcs::realnet {

namespace {
// Framing constants (kTcpMtu / kMaxWireFrame / kLenPrefix) live in
// frame_decode.h with the decoder, so the fuzz harness exercises the
// exact limits the reader enforces.

int set_cloexec(int fd) {
  // Children of the multi-process tests exec helper binaries; no NTCS
  // socket may leak across that exec.
  if (fd >= 0) (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

ntcs::Error errno_error(ntcs::Errc code, const std::string& what) {
  return ntcs::Error(code, what + ": " + std::strerror(errno));
}

bool make_sockaddr(const std::string& host, std::uint16_t port,
                   sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

std::string sockaddr_phys(const sockaddr_in& sa) {
  char buf[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
  return format_tcp_phys(buf, ntohs(sa.sin_port));
}

}  // namespace

std::size_t tcp_mtu() { return kTcpMtu; }

std::string format_tcp_phys(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

bool parse_tcp_phys(const std::string& phys, std::string& host,
                    std::uint16_t& port) {
  const auto colon = phys.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= phys.size()) {
    return false;
  }
  host = phys.substr(0, colon);
  long p = 0;
  for (std::size_t i = colon + 1; i < phys.size(); ++i) {
    const char c = phys[i];
    if (c < '0' || c > '9') return false;
    p = p * 10 + (c - '0');
    if (p > 65535) return false;
  }
  if (p <= 0) return false;
  port = static_cast<std::uint16_t>(p);
  sockaddr_in probe;
  return make_sockaddr(host, port, probe);
}

// ---- TcpBackend -----------------------------------------------------------

std::chrono::nanoseconds TcpBackend::now() const {
  return std::chrono::steady_clock::now().time_since_epoch();
}

ntcs::Result<std::shared_ptr<core::IpcsPort>> TcpBackend::bind(
    const std::string& local_name) {
  std::uint16_t port = 0;  // ephemeral unless the name is well-known
  if (auto it = cfg_.fixed_ports.find(local_name);
      it != cfg_.fixed_ports.end()) {
    port = it->second;
  }

  const int fd = set_cloexec(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd < 0) return errno_error(ntcs::Errc::no_resource, "socket");
  // Rebinding a well-known port right after a previous process exited
  // must not trip over TIME_WAIT; two *live* listeners still collide.
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa;
  if (!make_sockaddr(cfg_.host, port, sa)) {
    ::close(fd);
    return ntcs::Error(ntcs::Errc::bad_argument,
                       "bad backend host: " + cfg_.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    const auto code = errno == EADDRINUSE ? ntcs::Errc::already_exists
                                          : ntcs::Errc::address_fault;
    auto err = errno_error(code, "bind " + format_tcp_phys(cfg_.host, port));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 64) != 0) {
    auto err = errno_error(ntcs::Errc::address_fault, "listen");
    ::close(fd);
    return err;
  }
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    auto err = errno_error(ntcs::Errc::address_fault, "getsockname");
    ::close(fd);
    return err;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    auto err = errno_error(ntcs::Errc::no_resource, "pipe");
    ::close(fd);
    return err;
  }
  set_cloexec(pipe_fds[0]);
  set_cloexec(pipe_fds[1]);

  auto port_obj = std::shared_ptr<TcpPort>(new TcpPort(
      cfg_, fd, pipe_fds[0], pipe_fds[1], sockaddr_phys(bound)));
  port_obj->listener_ = std::thread([p = port_obj.get()] { p->listener_main(); });
  return std::shared_ptr<core::IpcsPort>(std::move(port_obj));
}

bool TcpBackend::probe(const std::string& phys) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_tcp_phys(phys, host, port)) return false;
  sockaddr_in sa;
  if (!make_sockaddr(host, port, sa)) return false;
  const int fd = set_cloexec(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd < 0) return false;
  const bool alive =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) == 0;
  ::close(fd);
  return alive;
}

// ---- TcpPort --------------------------------------------------------------

TcpPort::TcpPort(TcpConfig cfg, int listen_fd, int wake_rd, int wake_wr,
                 std::string phys)
    : cfg_(std::move(cfg)),
      phys_(std::move(phys)),
      listen_fd_(listen_fd),
      wake_rd_(wake_rd),
      wake_wr_(wake_wr) {
  static ntcs::metrics::Gauge& g_bound =
      ntcs::metrics::gauge("realnet.inbox.bound");
  g_bound.set(static_cast<std::int64_t>(cfg_.inbox_capacity));
}

TcpPort::~TcpPort() {
  close();
  // Undrained deliveries die with the port; the aggregate depth gauge
  // must not keep counting them.
  ntcs::LockGuard lk(inbox_mu_);
  if (!inbox_.empty()) {
    inbox_depth_gauge().sub(static_cast<std::int64_t>(inbox_.size()));
  }
}

void TcpPort::listener_main() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (closing_.load(std::memory_order_acquire)) return;
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    sockaddr_in peer;
    socklen_t plen = sizeof(peer);
    const int cfd = set_cloexec(::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &plen));
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Fd/buffer exhaustion is transient: the pending connection stays
        // in the kernel backlog, and accept() would fail again instantly —
        // spinning here starves the readers that could free fds. Back off
        // (shutdown-aware: the self-pipe cuts the sleep short) and retry.
        static metrics::Counter& m_accept_errors =
            metrics::counter("realnet.accept_errors");
        m_accept_errors.inc();
        pollfd wake{wake_rd_, POLLIN, 0};
        (void)::poll(&wake, 1, 100);
        continue;
      }
      return;  // listener socket is gone
    }
    (void)adopt_fd(cfd, sockaddr_phys(peer), /*announce=*/true);
  }
}

core::IpcsChannelId TcpPort::adopt_fd(int fd, const std::string& peer_phys,
                                      bool announce) {
  const int one = 1;
  // Frames are latency-sensitive and already batched by the ND-Layer's
  // fragmentation; Nagle would serialise the request/reply benches.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  core::IpcsChannelId chan;
  {
    ntcs::LockGuard lk(mu_);
    if (closing_.load(std::memory_order_acquire)) {
      ::close(fd);
      return 0;
    }
    chan = next_chan_++;
    ChannelState st;
    st.fd = fd;
    st.peer_phys = peer_phys;
    st.tx = std::make_shared<TxState>();
    {
      ntcs::LockGuard txlk(st.tx->mu);
      st.tx->fd = fd;
    }
    // The opened delivery must be enqueued before the reader thread
    // exists: a fast peer's first frame may already be in the socket
    // buffer, and the STD-IF contract orders `opened` before `data`.
    // (mu_ < inbox_mu_ in the lock hierarchy, so enqueueing here is fine.)
    if (announce) {
      core::IpcsDelivery d;
      d.kind = core::IpcsDeliveryKind::opened;
      d.chan = chan;
      d.peer_phys = peer_phys;
      enqueue(std::move(d));
    }
    st.reader = std::thread([this, chan, fd] { reader_main(chan, fd); });
    channels_.emplace(chan, std::move(st));
  }
  return chan;
}

void TcpPort::reader_main(core::IpcsChannelId chan, int fd) {
  // The framing lives in StreamDecoder (frame_decode.h) — the reader just
  // pumps whatever chunk sizes the kernel hands it into the decoder, so
  // partial prefixes and split payloads take the same (fuzzed) path as
  // well-aligned ones. The sink enqueues inline: its back-pressure block
  // is exactly the old per-frame enqueue's.
  StreamDecoder dec;
  const StreamDecoder::Sink sink = [&](ntcs::Bytes payload) {
    core::IpcsDelivery d;
    d.kind = core::IpcsDeliveryKind::data;
    d.chan = chan;
    d.payload = std::move(payload);
    enqueue(std::move(d));
  };
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF (0) or hard error
    if (!dec.feed(buf, static_cast<std::size_t>(r), sink)) break;  // corrupt
  }
  // The peer is gone (EOF, reset, or local shutdown()). Report upward,
  // then hand the channel to the reaper; the fd is closed there, after
  // this thread is joined.
  core::IpcsDelivery d;
  d.kind = core::IpcsDeliveryKind::closed;
  d.chan = chan;
  enqueue(std::move(d));
  ntcs::LockGuard lk(mu_);
  auto it = channels_.find(chan);
  if (it != channels_.end()) it->second.defunct = true;
}

void TcpPort::enqueue(core::IpcsDelivery d) {
  {
    ntcs::UniqueLock lk(inbox_mu_);
    if (inbox_closed_) return;
    if (d.kind == core::IpcsDeliveryKind::data && cfg_.inbox_capacity != 0) {
      // Bounded inbox: block this reader until the consumer drains (which
      // propagates back-pressure onto the TCP stream — see TcpConfig).
      // opened/closed bypass, and port teardown (closing_) releases us:
      // close() joins readers before marking the inbox closed, so waiting
      // on inbox_closed_ alone would deadlock the join.
      static metrics::Counter& m_stalls =
          metrics::counter("realnet.inbox_stalls");
      if (inbox_.size() >= cfg_.inbox_capacity) m_stalls.inc();
      inbox_space_cv_.wait(lk, [&] {
        return inbox_.size() < cfg_.inbox_capacity || inbox_closed_ ||
               closing_.load(std::memory_order_acquire);
      });
      if (inbox_closed_ || closing_.load(std::memory_order_acquire)) return;
    }
    inbox_.push_back(std::move(d));
    inbox_depth_gauge().add(1);
  }
  inbox_cv_.notify_one();
}

ntcs::Result<core::IpcsChannelId> TcpPort::connect(
    const std::string& dst_phys) {
  if (closing_.load(std::memory_order_acquire)) {
    return ntcs::Error(ntcs::Errc::closed, "port is closed");
  }
  std::string host;
  std::uint16_t port = 0;
  if (!parse_tcp_phys(dst_phys, host, port)) {
    return ntcs::Error(ntcs::Errc::bad_argument,
                       "malformed tcp address: " + dst_phys);
  }
  sockaddr_in sa;
  make_sockaddr(host, port, sa);

  const int fd = set_cloexec(::socket(AF_INET, SOCK_STREAM, 0));
  if (fd < 0) return errno_error(ntcs::Errc::no_resource, "socket");
  // Non-blocking connect bounded by cfg_.connect_timeout: a blackholed
  // address must surface as Errc::timeout within ND's open patience, not
  // hang for the kernel's minutes-long default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        cfg_.connect_timeout);
    const int n = ::poll(&pfd, 1, static_cast<int>(ms.count()));
    if (n == 0) {
      ::close(fd);
      return ntcs::Error(ntcs::Errc::timeout,
                         "connect timed out: " + dst_phys);
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    if (n < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0) {
      auto err = errno_error(ntcs::Errc::address_fault, "connect " + dst_phys);
      ::close(fd);
      return err;
    }
    if (soerr != 0) {
      errno = soerr;
      rc = -1;
    } else {
      rc = 0;
    }
  }
  if (rc != 0) {
    const auto code = errno == ECONNREFUSED ? ntcs::Errc::refused
                      : errno == ETIMEDOUT  ? ntcs::Errc::timeout
                                            : ntcs::Errc::address_fault;
    auto err = errno_error(code, "connect " + dst_phys);
    ::close(fd);
    return err;
  }
  (void)::fcntl(fd, F_SETFL, flags);  // back to blocking for the reader

  const core::IpcsChannelId chan = adopt_fd(fd, dst_phys, /*announce=*/false);
  if (chan == 0) {
    return ntcs::Error(ntcs::Errc::closed, "port closed during connect");
  }
  return chan;
}

ntcs::Status TcpPort::send(core::IpcsChannelId chan, ntcs::BytesView header,
                           ntcs::BytesView body) {
  const std::size_t total = header.size() + body.size();
  if (total > kTcpMtu) {
    return ntcs::Status(ntcs::Errc::too_big, "frame exceeds IPCS mtu");
  }
  std::shared_ptr<TxState> tx;
  {
    ntcs::LockGuard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end() || it->second.defunct) {
      return ntcs::Status(ntcs::Errc::address_fault, "channel is gone");
    }
    tx = it->second.tx;
  }
  const std::uint8_t lenbuf[kLenPrefix] = {
      static_cast<std::uint8_t>(total >> 24),
      static_cast<std::uint8_t>(total >> 16),
      static_cast<std::uint8_t>(total >> 8),
      static_cast<std::uint8_t>(total),
  };
  // One gather write per frame under the channel's tx lock: the length
  // prefix, the fragment header off the caller's stack, and the chunk
  // straight out of the original message buffer.
  iovec iov[3] = {
      {const_cast<std::uint8_t*>(lenbuf), kLenPrefix},
      {const_cast<std::uint8_t*>(header.data()), header.size()},
      {const_cast<std::uint8_t*>(body.data()), body.size()},
  };
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 3;
  ntcs::LockGuard txlk(tx->mu);
  if (tx->fd < 0) {
    return ntcs::Status(ntcs::Errc::address_fault, "channel is gone");
  }
  std::size_t sent = 0;
  const std::size_t want = kLenPrefix + total;
  while (sent < want) {
    const ssize_t n = ::sendmsg(tx->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE/ECONNRESET: peer died mid-stream; the reader thread will
      // surface the closed delivery.
      return ntcs::Status(ntcs::Errc::address_fault,
                          std::string("sendmsg: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
    if (sent == want) break;
    // Partial write: advance the iovec cursor and continue.
    std::size_t skip = static_cast<std::size_t>(n);
    for (auto& v : iov) {
      const std::size_t take = skip < v.iov_len ? skip : v.iov_len;
      v.iov_base = static_cast<std::uint8_t*>(v.iov_base) + take;
      v.iov_len -= take;
      skip -= take;
    }
  }
  return ntcs::Status::success();
}

ntcs::Result<core::IpcsDelivery> TcpPort::recv_for(
    std::chrono::nanoseconds timeout) {
  reap(/*all=*/false);
  ntcs::UniqueLock lk(inbox_mu_);
  const bool got = inbox_cv_.wait_for(
      lk, timeout, [&] { return !inbox_.empty() || inbox_closed_; });
  if (!inbox_.empty()) {
    core::IpcsDelivery d = std::move(inbox_.front());
    inbox_.pop_front();
    inbox_depth_gauge().sub(1);
    inbox_space_cv_.notify_one();  // a blocked reader may resume
    return d;
  }
  if (inbox_closed_) return ntcs::Error(ntcs::Errc::closed, "port closed");
  (void)got;
  return ntcs::Error(ntcs::Errc::timeout, "no delivery");
}

ntcs::Status TcpPort::close_channel(core::IpcsChannelId chan) {
  {
    ntcs::LockGuard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end()) {
      return ntcs::Status(ntcs::Errc::not_found, "no such channel");
    }
    // Wake the reader (EOF); it marks the channel defunct and the reaper
    // closes the fd after the join. The peer's reader sees EOF too.
    (void)::shutdown(it->second.fd, SHUT_RDWR);
    ntcs::LockGuard txlk(it->second.tx->mu);
    it->second.tx->fd = -1;  // no further writes
  }
  reap(/*all=*/false);
  return ntcs::Status::success();
}

void TcpPort::close() {
  if (closed_.exchange(true)) return;
  closing_.store(true, std::memory_order_release);
  // Release any reader blocked on a full inbox *before* reap() joins it.
  // The empty critical section orders the closing_ store against the
  // readers' predicate checks: any reader is then either pre-check (sees
  // closing_) or parked (gets the notify) — no missed-wakeup window.
  { ntcs::LockGuard lk(inbox_mu_); }
  inbox_space_cv_.notify_all();
  // Wake the listener, then take the listening socket away.
  if (wake_wr_ >= 0) {
    const char b = 0;
    (void)!::write(wake_wr_, &b, 1);
  }
  if (listener_.joinable()) listener_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    wake_rd_ = -1;
  }
  if (wake_wr_ >= 0) {
    ::close(wake_wr_);
    wake_wr_ = -1;
  }
  // Shut every channel down (waking its reader), then reap them all.
  {
    ntcs::LockGuard lk(mu_);
    for (auto& [chan, st] : channels_) {
      (void)::shutdown(st.fd, SHUT_RDWR);
      ntcs::LockGuard txlk(st.tx->mu);
      st.tx->fd = -1;
    }
  }
  reap(/*all=*/true);
  {
    ntcs::LockGuard lk(inbox_mu_);
    inbox_closed_ = true;
  }
  inbox_cv_.notify_all();
}

void TcpPort::reap(bool all) {
  // Move finished channels out under the lock, join/close outside it —
  // a reader's last act is marking itself defunct under mu_, so joining
  // under mu_ would deadlock with it.
  std::vector<ChannelState> dead;
  {
    ntcs::LockGuard lk(mu_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      if (all || it->second.defunct) {
        dead.push_back(std::move(it->second));
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (ChannelState& st : dead) {
    if (st.reader.joinable()) st.reader.join();
    if (st.fd >= 0) ::close(st.fd);
  }
}

std::size_t TcpPort::channel_count() const {
  ntcs::LockGuard lk(mu_);
  return channels_.size();
}

}  // namespace ntcs::realnet
