// tcp_backend.h — the real-socket implementation of the STD-IF.
//
// Where simnet simulates an internetwork in-process, this backend binds
// actual OS loopback TCP sockets, so the portability claim of the paper —
// everything above the ND-Layer is substrate-independent — is exercised
// against a real IPCS with real frame boundaries to reassemble, real
// partial reads/writes, and real peer-death semantics (ECONNRESET / EOF).
//
// Shape (per port):
//   * one listening socket on 127.0.0.1 (ephemeral port, or a well-known
//     port from TcpConfig::fixed_ports for bootstrap), accepted by a
//     dedicated listener thread (woken for shutdown via a self-pipe);
//   * one OS TCP connection per channel, each drained by a dedicated
//     reader thread that reassembles length-prefixed frames
//     (4-byte big-endian length, then the payload) and enqueues
//     STD-IF deliveries into the port inbox;
//   * writes gather header+body with one sendmsg(MSG_NOSIGNAL) under a
//     per-channel tx lock (partial writes are completed in a loop).
//
// Lifecycle discipline (the FD-leak audit of this PR): a channel's socket
// is closed exactly once, by the reaper, strictly after its reader thread
// has been joined; close_channel()/close() only shutdown(2) the socket to
// wake the reader. The reaper runs on recv_for and at port close, so a
// port that cycles N channels holds O(live) fds, not O(N).
//
// Error vocabulary (the STD-IF contract, backend.h): ECONNREFUSED ->
// Errc::refused (retryable by ND's open loop), malformed address ->
// Errc::bad_argument (aborts the loop), connect timeout -> Errc::timeout,
// oversize frame -> Errc::too_big, everything else -> Errc::address_fault.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/annotated.h"
#include "core/nd/backend.h"

namespace ntcs::realnet {

/// Environment knobs for a TCP backend. One TcpConfig is typically shared
/// by every node of a process (and, for multi-process runs, agreed across
/// processes so the well-known ports match).
struct TcpConfig {
  /// Interface to bind/connect on. Loopback only by design: the backend
  /// is a testbed substrate, not a hardened network service.
  std::string host = "127.0.0.1";
  /// Well-known ports by module local_name (bootstrap, §3.2): bind()
  /// binds these names to fixed ports so other processes can reach them
  /// by agreed address; unlisted names get an ephemeral port.
  std::unordered_map<std::string, std::uint16_t> fixed_ports;
  /// Architecture reported to the conversion layer. Every process on one
  /// host shares the real architecture, so heterogeneity does not arise
  /// over this backend; sun3 keeps identities stable across processes.
  convert::Arch arch = convert::Arch::sun3;
  /// connect(2) patience before Errc::timeout.
  std::chrono::nanoseconds connect_timeout{std::chrono::seconds(2)};
  /// Bound on the port inbox (deliveries). A reader thread whose data
  /// delivery finds the inbox full *blocks* until the consumer drains it —
  /// it stops reading its socket, the kernel buffers fill, and the remote
  /// sender's sendmsg stalls: real TCP back-pressure end to end instead of
  /// unbounded process memory. opened/closed deliveries bypass the bound
  /// (they are what unblocks consumers). 0 = unbounded.
  std::size_t inbox_capacity = 8192;
};

/// Largest frame a TcpPort accepts — matches simnet's TCP IPCS so the
/// ND-Layer fragments identically over both backends.
std::size_t tcp_mtu();

/// Format/parse `host:port` physical addresses.
std::string format_tcp_phys(const std::string& host, std::uint16_t port);
bool parse_tcp_phys(const std::string& phys, std::string& host,
                    std::uint16_t& port);

class TcpPort;

/// STD-IF backend over real loopback TCP. Thread-safe; must outlive its
/// ports.
class TcpBackend final : public core::IpcsBackend {
 public:
  explicit TcpBackend(TcpConfig cfg = {}) : cfg_(std::move(cfg)) {}

  std::string kind_name() const override { return "realnet.tcp"; }
  convert::Arch arch() const override { return cfg_.arch; }
  std::chrono::nanoseconds now() const override;

  ntcs::Result<std::shared_ptr<core::IpcsPort>> bind(
      const std::string& local_name) override;

  /// Liveness = a short real connect that is immediately closed. The
  /// probed port sees a transient opened/closed delivery pair for an
  /// unknown channel, which the ND-Layer ignores by design.
  bool probe(const std::string& phys) override;

  const TcpConfig& config() const { return cfg_; }

 private:
  TcpConfig cfg_;
};

/// One bound listening socket plus its channels. Created by
/// TcpBackend::bind().
class TcpPort final : public core::IpcsPort,
                      public std::enable_shared_from_this<TcpPort> {
 public:
  ~TcpPort() override;
  TcpPort(const TcpPort&) = delete;
  TcpPort& operator=(const TcpPort&) = delete;

  std::string phys() const override { return phys_; }
  std::size_t mtu() const override { return tcp_mtu(); }

  ntcs::Result<core::IpcsChannelId> connect(
      const std::string& dst_phys) override;
  ntcs::Status send(core::IpcsChannelId chan, ntcs::BytesView header,
                    ntcs::BytesView body) override;
  ntcs::Result<core::IpcsDelivery> recv_for(
      std::chrono::nanoseconds timeout) override;
  ntcs::Status close_channel(core::IpcsChannelId chan) override;
  void close() override;

  /// Live (not yet reaped) channel count — leak tests.
  std::size_t channel_count() const;

 private:
  friend class TcpBackend;

  TcpPort(TcpConfig cfg, int listen_fd, int wake_rd, int wake_wr,
          std::string phys);

  /// Socket write state of one channel. Held by shared_ptr so a sender
  /// can gather-write outside the port lock; `fd` is guarded by the tx
  /// lock on the write side and is only ::close()d by the reaper after
  /// the reader thread is joined (fd < 0 once closed for writing).
  struct TxState {
    ntcs::Mutex mu{ntcs::lockrank::kRealnetTx, "realnet.tx"};
    int fd GUARDED_BY(mu) = -1;
  };
  struct ChannelState {
    int fd = -1;
    std::string peer_phys;
    std::shared_ptr<TxState> tx;
    std::thread reader;
    bool defunct = false;  // reader exited; ready for the reaper
  };

  void listener_main();
  void reader_main(core::IpcsChannelId chan, int fd);
  core::IpcsChannelId adopt_fd(int fd, const std::string& peer_phys,
                               bool announce);
  void enqueue(core::IpcsDelivery d);
  /// Join+close every defunct channel (and, with `all`, live ones too —
  /// port teardown). Must be called without mu_ held.
  void reap(bool all);

  TcpConfig cfg_;
  std::string phys_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;  // self-pipe: close() wakes the listener's poll
  int wake_wr_ = -1;
  std::thread listener_;
  // sync: close() latches closing_ before waking the poll so the listener
  // and reader threads (kernel threads, outside the explorer's scope)
  // observe shutdown without taking port_mu_ in a signal-adjacent path;
  // closed_ makes close() idempotent.
  std::atomic<bool> closing_{false};  // sync: see block comment above
  std::atomic<bool> closed_{false};   // sync: close() idempotence latch

  // realnet.port: channel table; taken by connect/close/the listener/
  // reader exits, ordered before realnet.tx (send: table lookup then
  // socket write) and realnet.inbox.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kRealnetPort, "realnet.port"};
  std::unordered_map<core::IpcsChannelId, ChannelState> channels_
      GUARDED_BY(mu_);
  core::IpcsChannelId next_chan_ GUARDED_BY(mu_) = 1;

  // realnet.inbox: strict leaf where reader threads meet recv_for.
  mutable ntcs::Mutex inbox_mu_{ntcs::lockrank::kRealnetInbox,
                                "realnet.inbox"};
  ntcs::CondVar inbox_cv_;        // consumer side: item available
  ntcs::CondVar inbox_space_cv_;  // producer side: space freed / closing
  std::deque<core::IpcsDelivery> inbox_ GUARDED_BY(inbox_mu_);  // bound: cfg_.inbox_capacity
  bool inbox_closed_ GUARDED_BY(inbox_mu_) = false;
};

}  // namespace ntcs::realnet
