#include "simnet/backend.h"

namespace ntcs::simnet {

namespace {

core::IpcsDeliveryKind to_stdif(DeliveryKind k) {
  switch (k) {
    case DeliveryKind::opened:
      return core::IpcsDeliveryKind::opened;
    case DeliveryKind::data:
      return core::IpcsDeliveryKind::data;
    case DeliveryKind::closed:
      return core::IpcsDeliveryKind::closed;
  }
  return core::IpcsDeliveryKind::closed;
}

}  // namespace

ntcs::Result<core::IpcsDelivery> SimnetPort::recv_for(
    std::chrono::nanoseconds timeout) {
  auto d = ep_->recv_for(timeout);
  if (!d) return d.error();
  core::IpcsDelivery out;
  out.kind = to_stdif(d.value().kind);
  out.chan = d.value().chan;
  out.payload = std::move(d.value().payload);
  out.peer_phys = std::move(d.value().peer_phys);
  return out;
}

ntcs::Result<std::shared_ptr<core::IpcsPort>> SimnetBackend::bind(
    const std::string& local_name) {
  auto ep = fabric_.bind(machine_, kind_, local_name);
  if (!ep) return ep.error();
  return std::shared_ptr<core::IpcsPort>(
      std::make_shared<SimnetPort>(std::move(ep.value())));
}

}  // namespace ntcs::simnet
