// backend.h — the simnet implementation of the STD-IF.
//
// Adapts one (Fabric, MachineId, IpcsKind) triple to core::IpcsBackend so
// the Nucleus can run over the simulated internetwork without naming
// simnet types above the ND-Layer. The adapter is thin: Endpoint already
// has the STD-IF shape (it was the template for it), so SimnetPort just
// translates Delivery to IpcsDelivery; arch/now/probe forward to the
// fabric's per-machine state.
//
// This header is part of the simnet substrate and may only be included by
// simnet itself and the composition roots (core/testbed, tests, examples,
// benches) — lint.sh enforces the boundary.
#pragma once

#include <memory>
#include <string>

#include "core/nd/backend.h"
#include "simnet/endpoint.h"
#include "simnet/fabric.h"
#include "simnet/types.h"

namespace ntcs::simnet {

/// STD-IF view of one bound simnet Endpoint.
class SimnetPort final : public core::IpcsPort {
 public:
  explicit SimnetPort(std::shared_ptr<Endpoint> ep) : ep_(std::move(ep)) {}

  std::string phys() const override { return ep_->phys(); }
  std::size_t mtu() const override { return ipcs_mtu(ep_->kind()); }

  ntcs::Result<core::IpcsChannelId> connect(
      const std::string& dst_phys) override {
    return ep_->connect(dst_phys);
  }

  ntcs::Status send(core::IpcsChannelId chan, ntcs::BytesView header,
                    ntcs::BytesView body) override {
    return ep_->send(chan, header, body);
  }

  ntcs::Result<core::IpcsDelivery> recv_for(
      std::chrono::nanoseconds timeout) override;

  ntcs::Status close_channel(core::IpcsChannelId chan) override {
    return ep_->close_channel(chan);
  }

  void close() override { ep_->close(); }

  /// The underlying endpoint (simnet-aware tests only).
  const std::shared_ptr<Endpoint>& endpoint() const { return ep_; }

 private:
  std::shared_ptr<Endpoint> ep_;
};

/// STD-IF view of one machine's native IPCS on a simnet Fabric. Cheap to
/// construct; many backends may share one fabric (one per Node in
/// practice). Must not outlive the fabric.
class SimnetBackend final : public core::IpcsBackend {
 public:
  SimnetBackend(Fabric& fabric, MachineId machine, IpcsKind kind)
      : fabric_(fabric), machine_(machine), kind_(kind) {}

  std::string kind_name() const override {
    return std::string("simnet.").append(ipcs_kind_name(kind_));
  }
  convert::Arch arch() const override { return fabric_.machine_arch(machine_); }
  std::chrono::nanoseconds now() const override {
    return fabric_.machine_now(machine_);
  }

  ntcs::Result<std::shared_ptr<core::IpcsPort>> bind(
      const std::string& local_name) override;

  bool probe(const std::string& phys) override { return fabric_.probe(phys); }

  Fabric& fabric() { return fabric_; }
  MachineId machine() const { return machine_; }
  IpcsKind ipcs() const { return kind_; }

 private:
  Fabric& fabric_;
  MachineId machine_;
  IpcsKind kind_;
};

}  // namespace ntcs::simnet
