#include "simnet/endpoint.h"

#include "common/health.h"
#include "common/metrics.h"
#include "simnet/fabric.h"

namespace ntcs::simnet {

namespace {

// Bound on an endpoint's inbox. Simnet cannot exert real back-pressure
// (there is no kernel socket buffer behind it — delivery is a function
// call), so a full inbox sheds *data* frames exactly like a lossy wire:
// the receiver's reassembler observes the gap and re-synchronises, upper
// layers recover the same way they do from real frame loss. opened/closed
// control deliveries are never shed — channel lifecycle must stay exact.
constexpr std::size_t kInboxCapacity = 65536;

/// Health-plane pair: aggregate inbox depth across every simnet endpoint
/// in the process (delta-based), against the per-endpoint bound. Aggregate
/// vs per-endpoint bound overstates per-endpoint utilization only when the
/// hot endpoint is not the only one loaded — acceptable for a degraded
/// (not stalled) signal.
metrics::Gauge& inbox_depth_gauge() {
  static metrics::Gauge* g = [] {
    metrics::gauge("simnet.inbox.bound")
        .set(static_cast<std::int64_t>(kInboxCapacity));
    return &metrics::gauge("simnet.inbox.depth");
  }();
  return *g;
}
}  // namespace

Endpoint::Endpoint(Fabric* fabric, MachineId machine, IpcsKind kind,
                   std::string phys)
    : fabric_(fabric), machine_(machine), kind_(kind), phys_(std::move(phys)) {}

Endpoint::~Endpoint() {
  close();
  // Undrained deliveries die with the endpoint; the aggregate depth gauge
  // must not keep counting them.
  ntcs::LockGuard lk(mu_);
  if (!inbox_.empty()) {
    inbox_depth_gauge().sub(static_cast<std::int64_t>(inbox_.size()));
  }
}

ntcs::Result<ChannelId> Endpoint::connect(const std::string& dst_phys) {
  if (is_closed()) return ntcs::Error(ntcs::Errc::closed, "endpoint closed");
  return fabric_->connect_impl(this, dst_phys);
}

ntcs::Status Endpoint::send(ChannelId chan, ntcs::BytesView frame) {
  if (is_closed()) return ntcs::Status(ntcs::Errc::closed, "endpoint closed");
  return fabric_->send_impl(this, chan, {}, frame);
}

ntcs::Status Endpoint::send(ChannelId chan, ntcs::BytesView header,
                            ntcs::BytesView body) {
  if (is_closed()) return ntcs::Status(ntcs::Errc::closed, "endpoint closed");
  return fabric_->send_impl(this, chan, header, body);
}

ntcs::Result<Delivery> Endpoint::recv() { return recv_until(std::nullopt); }

ntcs::Result<Delivery> Endpoint::recv_for(std::chrono::nanoseconds timeout) {
  return recv_until(std::chrono::steady_clock::now() + timeout);
}

ntcs::Result<Delivery> Endpoint::recv_until(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  ntcs::UniqueLock lk(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (!inbox_.empty() && inbox_.top().at <= now) {
      Delivery d = std::move(const_cast<Item&>(inbox_.top()).d);
      inbox_.pop();
      inbox_depth_gauge().sub(1);
      return d;
    }
    if (inbox_closed_ && inbox_.empty()) {
      return ntcs::Error(ntcs::Errc::closed, "endpoint closed");
    }
    // Wait until the earliest pending item is due, a new item arrives, or
    // the caller's deadline expires.
    auto wake = deadline;
    if (!inbox_.empty() && (!wake || inbox_.top().at < *wake)) {
      wake = inbox_.top().at;
    }
    if (wake) {
      if (deadline && *deadline <= now && (inbox_.empty() || inbox_.top().at > now)) {
        return ntcs::Error(ntcs::Errc::timeout, "recv timed out");
      }
      cv_.wait_until(lk, *wake);
      if (deadline && std::chrono::steady_clock::now() >= *deadline) {
        // One more poll for a just-due item before giving up.
        const auto n2 = std::chrono::steady_clock::now();
        if (!inbox_.empty() && inbox_.top().at <= n2) continue;
        if (inbox_closed_ && inbox_.empty()) {
          return ntcs::Error(ntcs::Errc::closed, "endpoint closed");
        }
        return ntcs::Error(ntcs::Errc::timeout, "recv timed out");
      }
    } else {
      cv_.wait(lk);
    }
  }
}

std::optional<Delivery> Endpoint::try_recv() {
  ntcs::LockGuard lk(mu_);
  if (inbox_.empty() || inbox_.top().at > std::chrono::steady_clock::now()) {
    return std::nullopt;
  }
  Delivery d = std::move(const_cast<Item&>(inbox_.top()).d);
  inbox_.pop();
  inbox_depth_gauge().sub(1);
  return d;
}

ntcs::Status Endpoint::close_channel(ChannelId chan) {
  if (is_closed()) return ntcs::Status(ntcs::Errc::closed, "endpoint closed");
  return fabric_->close_channel_impl(this, chan);
}

void Endpoint::close() { fabric_->close_endpoint(this); }

bool Endpoint::is_closed() const {
  ntcs::LockGuard lk(mu_);
  return inbox_closed_;
}

std::size_t Endpoint::pending() const {
  ntcs::LockGuard lk(mu_);
  return inbox_.size();
}

void Endpoint::enqueue(Item item) {
  {
    ntcs::LockGuard lk(mu_);
    if (inbox_closed_) return;  // arrived after unbind: dropped by the IPCS
    if (item.d.kind == DeliveryKind::data && inbox_.size() >= kInboxCapacity) {
      static metrics::Counter& m_shed = metrics::counter("simnet.inbox_shed");
      m_shed.inc();
      health::journal_note(health::EventKind::shed, "simnet", "inbox_shed",
                           kInboxCapacity);
      return;
    }
    inbox_.push(std::move(item));
    inbox_depth_gauge().add(1);
  }
  cv_.notify_all();
}

void Endpoint::close_inbox() {
  {
    ntcs::LockGuard lk(mu_);
    inbox_closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace ntcs::simnet
