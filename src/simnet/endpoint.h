// endpoint.h — a bound IPCS communication endpoint.
//
// An endpoint is what a module gets from the native IPCS when it "creates
// any necessary communication resources (e.g., a TCP/IP port, or an Apollo
// MBX server mailbox)" (paper §3.2). It accepts incoming connections
// implicitly (like a server mailbox), carries message frames over
// channels, and reports peer death as a `closed` delivery — the raw
// material from which the ND-Layer builds its uniform STD-IF.
//
// The inbox delivers strictly by (due time, enqueue sequence). The fabric
// normally keeps a per-channel FIFO floor so frames on one channel arrive
// in send order; an installed FaultPlan injects faults purely by bending
// that schedule — a duplicate is a second item, a reordered frame is one
// whose due time was pushed past later frames. The endpoint itself never
// needs to know a fault plan exists.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "common/annotated.h"
#include "common/bytes.h"
#include "common/error.h"
#include "simnet/types.h"

namespace ntcs::simnet {

class Fabric;

enum class DeliveryKind : std::uint8_t {
  opened,  // a peer connected; payload empty, peer_phys = connector address
  data,    // one message frame
  closed,  // the peer (or the fabric) closed this channel
};

/// One item received from the IPCS.
struct Delivery {
  DeliveryKind kind = DeliveryKind::data;
  ChannelId chan = 0;
  ntcs::Bytes payload;
  std::string peer_phys;  // set for `opened`
};

/// A bound endpoint. Thread-safe. Obtained from Fabric::bind(); must not
/// outlive the Fabric. (enable_shared_from_this lets the fabric hold weak
/// references and pin the endpoint alive across delivery notifications.)
class Endpoint : public std::enable_shared_from_this<Endpoint> {
 public:
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& phys() const { return phys_; }
  IpcsKind kind() const { return kind_; }
  MachineId machine() const { return machine_; }

  /// Open a channel to another bound endpoint. Synchronous; the callee
  /// learns of the connection via an `opened` delivery.
  ntcs::Result<ChannelId> connect(const std::string& dst_phys);

  /// Send one frame (at most ipcs_mtu(kind()) bytes) on an open channel.
  ntcs::Status send(ChannelId chan, ntcs::BytesView frame);

  /// Gather-send: one frame given as header + body, concatenated by the
  /// fabric directly into the delivery buffer. This is the zero-copy
  /// fragmentation path's exit — the caller never materialises the frame,
  /// so the only copy of the chunk bytes is the delivery itself.
  ntcs::Status send(ChannelId chan, ntcs::BytesView header,
                    ntcs::BytesView body);

  /// Blocking receive of the next delivery.
  ntcs::Result<Delivery> recv();

  /// Receive with a relative timeout.
  ntcs::Result<Delivery> recv_for(std::chrono::nanoseconds timeout);

  /// Non-blocking receive.
  std::optional<Delivery> try_recv();

  /// Close one channel; the peer gets a `closed` delivery.
  ntcs::Status close_channel(ChannelId chan);

  /// Unbind: all channels close (peers notified), pending receives drain
  /// then report Errc::closed. Idempotent.
  void close();

  bool is_closed() const;

  /// Number of deliveries waiting (including not-yet-due ones).
  std::size_t pending() const;

 private:
  friend class Fabric;

  Endpoint(Fabric* fabric, MachineId machine, IpcsKind kind, std::string phys);

  struct Item {
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
    Delivery d;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  void enqueue(Item item);
  void close_inbox();
  ntcs::Result<Delivery> recv_until(
      std::optional<std::chrono::steady_clock::time_point> deadline);

  Fabric* fabric_;
  MachineId machine_;
  IpcsKind kind_;
  std::string phys_;

  // Below every Nucleus lock (the ND-Layer receives/sends under its
  // waiter and tx locks); never nested with the fabric lock — the fabric
  // always releases its core lock before Endpoint::enqueue.
  mutable ntcs::Mutex mu_{ntcs::lockrank::kSimnetEndpoint, "simnet.endpoint"};
  ntcs::CondVar cv_;
  // bound: kInboxCapacity (endpoint.cpp) — beyond it data frames shed
  // like wire loss; opened/closed always accepted.
  std::priority_queue<Item, std::vector<Item>, Later> inbox_ GUARDED_BY(mu_);
  bool inbox_closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ntcs::simnet
