#include "simnet/fabric.h"

#include <algorithm>
#include <cassert>

#include "simnet/phys.h"

namespace ntcs::simnet {

Fabric::Fabric(std::uint64_t seed) : rng_(seed) {}

Fabric::~Fabric() {
  // Endpoints must already be gone (documented lifetime rule); close any
  // stragglers defensively so their inboxes stop blocking.
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    std::lock_guard lk(mu_);
    for (auto& [phys, weak] : bound_) {
      if (auto ep = weak.lock()) eps.push_back(std::move(ep));
    }
  }
  for (auto& ep : eps) close_endpoint(ep.get());
}

NetworkId Fabric::add_network(std::string name, NetConfig cfg) {
  std::lock_guard lk(mu_);
  nets_.push_back(NetworkState{std::move(name), cfg, false});
  return static_cast<NetworkId>(nets_.size() - 1);
}

MachineId Fabric::add_machine(std::string name, convert::Arch arch,
                              std::vector<NetworkId> networks) {
  std::lock_guard lk(mu_);
  machines_.push_back(
      MachineState{std::move(name), arch, std::move(networks), {}});
  return static_cast<MachineId>(machines_.size() - 1);
}

void Fabric::attach_machine(MachineId m, NetworkId n) {
  std::lock_guard lk(mu_);
  auto& nets = machines_.at(m).networks;
  if (std::find(nets.begin(), nets.end(), n) == nets.end()) nets.push_back(n);
}

std::optional<NetworkId> Fabric::network_by_name(std::string_view name) const {
  std::lock_guard lk(mu_);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].name == name) return static_cast<NetworkId>(i);
  }
  return std::nullopt;
}

std::optional<MachineId> Fabric::machine_by_name(std::string_view name) const {
  std::lock_guard lk(mu_);
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i].name == name) return static_cast<MachineId>(i);
  }
  return std::nullopt;
}

const std::string& Fabric::machine_name(MachineId m) const {
  std::lock_guard lk(mu_);
  return machines_.at(m).name;
}

const std::string& Fabric::network_name(NetworkId n) const {
  std::lock_guard lk(mu_);
  return nets_.at(n).name;
}

convert::Arch Fabric::machine_arch(MachineId m) const {
  std::lock_guard lk(mu_);
  return machines_.at(m).arch;
}

std::vector<NetworkId> Fabric::machine_networks(MachineId m) const {
  std::lock_guard lk(mu_);
  return machines_.at(m).networks;
}

std::size_t Fabric::machine_count() const {
  std::lock_guard lk(mu_);
  return machines_.size();
}

std::size_t Fabric::network_count() const {
  std::lock_guard lk(mu_);
  return nets_.size();
}

void Fabric::set_clock_offset(MachineId m, std::chrono::nanoseconds offset) {
  std::lock_guard lk(mu_);
  machines_.at(m).clock_offset = offset;
}

std::chrono::nanoseconds Fabric::machine_now(MachineId m) const {
  std::lock_guard lk(mu_);
  return std::chrono::steady_clock::now().time_since_epoch() +
         machines_.at(m).clock_offset;
}

void Fabric::set_partitioned(NetworkId n, bool partitioned) {
  std::lock_guard lk(mu_);
  nets_.at(n).partitioned = partitioned;
}

void Fabric::set_loss(NetworkId n, double loss_prob) {
  std::lock_guard lk(mu_);
  nets_.at(n).cfg.loss_prob = loss_prob;
}

void Fabric::set_latency(NetworkId n, std::chrono::nanoseconds lo,
                         std::chrono::nanoseconds hi) {
  std::lock_guard lk(mu_);
  nets_.at(n).cfg.latency_min = lo;
  nets_.at(n).cfg.latency_max = hi;
}

void Fabric::set_bandwidth(NetworkId n, std::uint64_t bytes_per_sec) {
  std::lock_guard lk(mu_);
  nets_.at(n).cfg.bytes_per_sec = bytes_per_sec;
}

ntcs::Status Fabric::kill_channel(ChannelId chan) {
  std::shared_ptr<Endpoint> a;
  std::shared_ptr<Endpoint> b;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  {
    std::lock_guard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end()) {
      return ntcs::Status(ntcs::Errc::not_found, "no such channel");
    }
    a = it->second.a_w.lock();
    b = it->second.b_w.lock();
    channels_.erase(it);
    ++stats_.channels_closed;
    s1 = next_seq_++;
    s2 = next_seq_++;
  }
  const auto now = std::chrono::steady_clock::now();
  if (a) a->enqueue({now, s1, Delivery{DeliveryKind::closed, chan, {}, {}}});
  if (b) b->enqueue({now, s2, Delivery{DeliveryKind::closed, chan, {}, {}}});
  return ntcs::Status::success();
}

ntcs::Result<std::shared_ptr<Endpoint>> Fabric::bind(
    MachineId m, IpcsKind kind, std::string_view local_name) {
  std::lock_guard lk(mu_);
  if (m >= machines_.size()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "no such machine");
  }
  std::string phys;
  if (kind == IpcsKind::tcp) {
    phys = format_tcp_addr(machines_[m].name, next_port_++);
  } else {
    phys = format_mbx_addr(machines_[m].name, local_name);
    if (bound_.count(phys) != 0) {
      return ntcs::Error(ntcs::Errc::already_exists,
                         "mailbox already exists: " + phys);
    }
  }
  // Endpoint's constructor is private; go through new directly.
  std::shared_ptr<Endpoint> ep(new Endpoint(this, m, kind, phys));
  bound_[phys] = ep;
  return ep;
}

bool Fabric::probe(std::string_view phys) const {
  std::lock_guard lk(mu_);
  auto it = bound_.find(std::string(phys));
  return it != bound_.end() && !it->second.expired();
}

Fabric::Stats Fabric::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

ntcs::Result<NetworkId> Fabric::shared_network_locked(MachineId a,
                                                      MachineId b) const {
  bool found_partitioned = false;
  for (NetworkId na : machines_.at(a).networks) {
    for (NetworkId nb : machines_.at(b).networks) {
      if (na != nb) continue;
      if (nets_.at(na).partitioned) {
        found_partitioned = true;
        continue;
      }
      return na;
    }
  }
  if (found_partitioned) {
    return ntcs::Error(ntcs::Errc::partitioned, "shared network partitioned");
  }
  return ntcs::Error(ntcs::Errc::address_fault,
                     "machines share no network (internetting requires an "
                     "NTCS gateway)");
}

std::chrono::nanoseconds Fabric::sample_latency_locked(NetworkId n) {
  if (n == kInvalidNetwork) return std::chrono::nanoseconds{0};
  const auto& cfg = nets_.at(n).cfg;
  if (cfg.latency_max <= cfg.latency_min) return cfg.latency_min;
  const auto span =
      static_cast<std::uint64_t>((cfg.latency_max - cfg.latency_min).count());
  return cfg.latency_min + std::chrono::nanoseconds(rng_.next_below(span + 1));
}

ntcs::Result<ChannelId> Fabric::connect_impl(Endpoint* src,
                                             const std::string& dst_phys) {
  std::shared_ptr<Endpoint> dst;
  ChannelId chan = 0;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  {
    std::lock_guard lk(mu_);
    auto parts = parse_phys(dst_phys);
    if (!parts) {
      ++stats_.connects_failed;
      return ntcs::Error(ntcs::Errc::bad_argument,
                         "malformed physical address: " + dst_phys);
    }
    if (parts->kind != src->kind()) {
      ++stats_.connects_failed;
      return ntcs::Error(ntcs::Errc::unsupported,
                         "cannot connect across IPCS kinds");
    }
    auto it = bound_.find(dst_phys);
    if (it != bound_.end()) dst = it->second.lock();
    if (!dst) {
      ++stats_.connects_failed;
      // The two IPCSs report an unbound destination differently; the
      // ND-Layer normalises both to an address fault.
      if (src->kind() == IpcsKind::tcp) {
        return ntcs::Error(ntcs::Errc::refused,
                           "connection refused: " + dst_phys);
      }
      return ntcs::Error(ntcs::Errc::address_fault,
                         "no such mailbox: " + dst_phys);
    }
    NetworkId net = kInvalidNetwork;
    if (dst->machine() != src->machine()) {
      auto shared = shared_network_locked(src->machine(), dst->machine());
      if (!shared) {
        ++stats_.connects_failed;
        return shared.error();
      }
      net = shared.value();
    }
    chan = next_chan_++;
    ChannelState st;
    st.a = src;
    st.b = dst.get();
    st.a_w = src->weak_from_this();
    st.b_w = dst;
    st.net = net;
    deliver_at = std::chrono::steady_clock::now() + sample_latency_locked(net);
    st.floor_to_b = deliver_at;
    channels_[chan] = st;
    seq = next_seq_++;
    ++stats_.connects_ok;
  }
  dst->enqueue({deliver_at, seq,
                Delivery{DeliveryKind::opened, chan, {}, src->phys()}});
  return chan;
}

ntcs::Status Fabric::send_impl(Endpoint* src, ChannelId chan,
                               ntcs::BytesView frame) {
  std::shared_ptr<Endpoint> peer;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  {
    std::lock_guard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end() ||
        (it->second.a != src && it->second.b != src)) {
      return ntcs::Status(ntcs::Errc::address_fault, "channel is gone");
    }
    ChannelState& st = it->second;
    if (frame.size() > ipcs_mtu(src->kind())) {
      return ntcs::Status(ntcs::Errc::too_big, "frame exceeds IPCS mtu");
    }
    if (st.net != kInvalidNetwork && nets_.at(st.net).partitioned) {
      return ntcs::Status(ntcs::Errc::partitioned, "network partitioned");
    }
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
    if (st.net != kInvalidNetwork &&
        rng_.chance(nets_.at(st.net).cfg.loss_prob)) {
      ++stats_.frames_dropped;
      return ntcs::Status::success();  // silently lost on the wire
    }
    const bool to_b = (it->second.a == src);
    peer = (to_b ? st.b_w : st.a_w).lock();
    if (!peer) {
      // The peer is mid-destruction; its close notification is en route.
      return ntcs::Status::success();
    }
    auto& floor = to_b ? st.floor_to_b : st.floor_to_a;
    deliver_at = std::chrono::steady_clock::now() + sample_latency_locked(st.net);
    if (deliver_at < floor) deliver_at = floor;  // per-channel FIFO queueing
    if (st.net != kInvalidNetwork) {
      // Serialisation delay on a finite link, applied after queueing so
      // back-to-back frames occupy the link strictly in turn.
      const std::uint64_t bps = nets_.at(st.net).cfg.bytes_per_sec;
      if (bps != 0) {
        deliver_at += std::chrono::nanoseconds(
            frame.size() * 1'000'000'000ULL / bps);
      }
    }
    floor = deliver_at;
    seq = next_seq_++;
  }
  peer->enqueue({deliver_at, seq,
                 Delivery{DeliveryKind::data, chan,
                          ntcs::Bytes(frame.begin(), frame.end()), {}}});
  return ntcs::Status::success();
}

ntcs::Status Fabric::close_channel_impl(Endpoint* src, ChannelId chan) {
  std::shared_ptr<Endpoint> peer;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  {
    std::lock_guard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end() ||
        (it->second.a != src && it->second.b != src)) {
      return ntcs::Status(ntcs::Errc::not_found, "no such channel");
    }
    ChannelState& st = it->second;
    const bool to_b = (st.a == src);
    peer = (to_b ? st.b_w : st.a_w).lock();
    // Close notifications ride the same ordered path as data so a peer
    // never sees `closed` overtake earlier frames.
    auto& floor = to_b ? st.floor_to_b : st.floor_to_a;
    deliver_at = std::chrono::steady_clock::now() + sample_latency_locked(st.net);
    if (deliver_at < floor) deliver_at = floor;
    channels_.erase(it);
    seq = next_seq_++;
    ++stats_.channels_closed;
  }
  if (peer) {
    peer->enqueue(
        {deliver_at, seq, Delivery{DeliveryKind::closed, chan, {}, {}}});
  }
  return ntcs::Status::success();
}

void Fabric::close_endpoint(Endpoint* ep) {
  struct Note {
    std::shared_ptr<Endpoint> peer;
    ChannelId chan;
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
  };
  std::vector<Note> notes;
  {
    std::lock_guard lk(mu_);
    auto it = bound_.find(ep->phys());
    if (it != bound_.end()) {
      // Only erase our own binding (a later bind may have reused the path
      // after an earlier endpoint expired).
      auto cur = it->second.lock();
      if (!cur || cur.get() == ep) bound_.erase(it);
    }
    for (auto cit = channels_.begin(); cit != channels_.end();) {
      ChannelState& st = cit->second;
      if (st.a == ep || st.b == ep) {
        auto peer = (st.a == ep ? st.b_w : st.a_w).lock();
        auto& floor = st.a == ep ? st.floor_to_b : st.floor_to_a;
        auto at = std::chrono::steady_clock::now() +
                  sample_latency_locked(st.net);
        if (at < floor) at = floor;
        if (peer && peer.get() != ep) {
          notes.push_back({std::move(peer), cit->first, at, next_seq_++});
        }
        ++stats_.channels_closed;
        cit = channels_.erase(cit);
      } else {
        ++cit;
      }
    }
  }
  for (const Note& n : notes) {
    n.peer->enqueue(
        {n.at, n.seq, Delivery{DeliveryKind::closed, n.chan, {}, {}}});
  }
  ep->close_inbox();
}

}  // namespace ntcs::simnet
