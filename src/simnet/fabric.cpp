#include "simnet/fabric.h"

#include <algorithm>
#include <cassert>

#include "common/metrics.h"
#include "simnet/phys.h"

namespace ntcs::simnet {

namespace {
// Resolved once: these fire per faulted frame *under the fabric core
// lock*, so a registry map lookup (and the registry mutex) per event was
// both hot-path overhead and a gratuitous lock acquisition beneath mu_.
// After first touch the shims are a plain relaxed atomic add.
metrics::Counter& m_dup() {
  static metrics::Counter& c = metrics::counter("simnet.dup");
  return c;
}
metrics::Counter& m_reordered() {
  static metrics::Counter& c = metrics::counter("simnet.reordered");
  return c;
}
metrics::Counter& m_flaps() {
  static metrics::Counter& c = metrics::counter("simnet.flaps");
  return c;
}
}  // namespace

Fabric::Fabric(std::uint64_t seed) : rng_(seed) {}

Fabric::~Fabric() {
  // Endpoints must already be gone (documented lifetime rule); close any
  // stragglers defensively so their inboxes stop blocking.
  std::vector<std::shared_ptr<Endpoint>> eps;
  {
    ntcs::LockGuard lk(mu_);
    for (auto& [phys, weak] : bound_) {
      if (auto ep = weak.lock()) eps.push_back(std::move(ep));
    }
  }
  for (auto& ep : eps) close_endpoint(ep.get());
}

NetworkId Fabric::add_network(std::string name, NetConfig cfg) {
  ntcs::LockGuard lk(mu_);
  nets_.push_back(NetworkState{std::move(name), cfg, false});
  return static_cast<NetworkId>(nets_.size() - 1);
}

MachineId Fabric::add_machine(std::string name, convert::Arch arch,
                              std::vector<NetworkId> networks) {
  ntcs::LockGuard lk(mu_);
  machines_.push_back(
      MachineState{std::move(name), arch, std::move(networks), {}});
  return static_cast<MachineId>(machines_.size() - 1);
}

void Fabric::attach_machine(MachineId m, NetworkId n) {
  ntcs::LockGuard lk(mu_);
  auto& nets = machines_.at(m).networks;
  if (std::find(nets.begin(), nets.end(), n) == nets.end()) nets.push_back(n);
}

std::optional<NetworkId> Fabric::network_by_name(std::string_view name) const {
  ntcs::LockGuard lk(mu_);
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (nets_[i].name == name) return static_cast<NetworkId>(i);
  }
  return std::nullopt;
}

std::optional<MachineId> Fabric::machine_by_name(std::string_view name) const {
  ntcs::LockGuard lk(mu_);
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    if (machines_[i].name == name) return static_cast<MachineId>(i);
  }
  return std::nullopt;
}

std::string Fabric::machine_name(MachineId m) const {
  ntcs::LockGuard lk(mu_);
  return machines_.at(m).name;
}

std::string Fabric::network_name(NetworkId n) const {
  ntcs::LockGuard lk(mu_);
  return nets_.at(n).name;
}

convert::Arch Fabric::machine_arch(MachineId m) const {
  ntcs::LockGuard lk(mu_);
  return machines_.at(m).arch;
}

std::vector<NetworkId> Fabric::machine_networks(MachineId m) const {
  ntcs::LockGuard lk(mu_);
  return machines_.at(m).networks;
}

std::size_t Fabric::machine_count() const {
  ntcs::LockGuard lk(mu_);
  return machines_.size();
}

std::size_t Fabric::network_count() const {
  ntcs::LockGuard lk(mu_);
  return nets_.size();
}

void Fabric::set_clock_offset(MachineId m, std::chrono::nanoseconds offset) {
  ntcs::LockGuard lk(mu_);
  machines_.at(m).clock_offset = offset;
}

std::chrono::nanoseconds Fabric::machine_now(MachineId m) const {
  ntcs::LockGuard lk(mu_);
  return std::chrono::steady_clock::now().time_since_epoch() +
         machines_.at(m).clock_offset;
}

void Fabric::set_partitioned(NetworkId n, bool partitioned) {
  ntcs::LockGuard lk(mu_);
  nets_.at(n).partitioned = partitioned;
}

void Fabric::set_loss(NetworkId n, double loss_prob) {
  ntcs::LockGuard lk(mu_);
  nets_.at(n).cfg.loss_prob = loss_prob;
}

void Fabric::set_latency(NetworkId n, std::chrono::nanoseconds lo,
                         std::chrono::nanoseconds hi) {
  ntcs::LockGuard lk(mu_);
  nets_.at(n).cfg.latency_min = lo;
  nets_.at(n).cfg.latency_max = hi;
}

void Fabric::set_bandwidth(NetworkId n, std::uint64_t bytes_per_sec) {
  ntcs::LockGuard lk(mu_);
  nets_.at(n).cfg.bytes_per_sec = bytes_per_sec;
}

void Fabric::set_fault_plan(NetworkId n, FaultPlan plan) {
  ntcs::LockGuard lk(mu_);
  NetworkState& ns = nets_.at(n);
  ns.faults = plan;
  ns.flap_epoch = std::chrono::steady_clock::now();
  ns.flap_was_down = false;
}

void Fabric::clear_faults() {
  ntcs::LockGuard lk(mu_);
  for (NetworkState& ns : nets_) {
    ns.faults = FaultPlan{};
    ns.flap_was_down = false;
  }
}

bool Fabric::flap_down_locked(NetworkId n,
                              std::chrono::steady_clock::time_point now) {
  if (n == kInvalidNetwork) return false;
  NetworkState& ns = nets_.at(n);
  const FaultPlan& fp = ns.faults;
  if (fp.flap_period.count() <= 0 || fp.flap_down.count() <= 0) return false;
  const auto phase = (now - ns.flap_epoch) % fp.flap_period;
  const bool down = phase < fp.flap_down;
  if (down && !ns.flap_was_down) {
    ++stats_.link_flaps;
    m_flaps().inc();
  }
  ns.flap_was_down = down;
  return down;
}

ntcs::Status Fabric::kill_channel(ChannelId chan) {
  std::shared_ptr<Endpoint> a;
  std::shared_ptr<Endpoint> b;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::chrono::steady_clock::time_point at_a;
  std::chrono::steady_clock::time_point at_b;
  {
    ntcs::LockGuard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end()) {
      return ntcs::Status(ntcs::Errc::not_found, "no such channel");
    }
    a = it->second.a_w.lock();
    b = it->second.b_w.lock();
    // Even a violent kill rides the per-direction FIFO path: `closed` must
    // not overtake data frames already in flight (the ordering contract in
    // close_channel_impl).
    const auto now = std::chrono::steady_clock::now();
    at_a = std::max(now, it->second.floor_to_a);
    at_b = std::max(now, it->second.floor_to_b);
    channels_.erase(it);
    ++stats_.channels_closed;
    s1 = next_seq_++;
    s2 = next_seq_++;
  }
  if (a) a->enqueue({at_a, s1, Delivery{DeliveryKind::closed, chan, {}, {}}});
  if (b) b->enqueue({at_b, s2, Delivery{DeliveryKind::closed, chan, {}, {}}});
  return ntcs::Status::success();
}

std::size_t Fabric::channel_count() const {
  ntcs::LockGuard lk(mu_);
  return channels_.size();
}

ntcs::Result<std::shared_ptr<Endpoint>> Fabric::bind(
    MachineId m, IpcsKind kind, std::string_view local_name) {
  ntcs::LockGuard lk(mu_);
  if (m >= machines_.size()) {
    return ntcs::Error(ntcs::Errc::bad_argument, "no such machine");
  }
  std::string phys;
  if (kind == IpcsKind::tcp) {
    phys = format_tcp_addr(machines_[m].name, next_port_++);
  } else {
    phys = format_mbx_addr(machines_[m].name, local_name);
    if (bound_.count(phys) != 0) {
      return ntcs::Error(ntcs::Errc::already_exists,
                         "mailbox already exists: " + phys);
    }
  }
  // Endpoint's constructor is private; go through new directly.
  std::shared_ptr<Endpoint> ep(new Endpoint(this, m, kind, phys));
  bound_[phys] = ep;
  return ep;
}

bool Fabric::probe(std::string_view phys) const {
  ntcs::LockGuard lk(mu_);
  auto it = bound_.find(std::string(phys));
  return it != bound_.end() && !it->second.expired();
}

Fabric::Stats Fabric::stats() const {
  ntcs::LockGuard lk(mu_);
  return stats_;
}

ntcs::Result<NetworkId> Fabric::shared_network_locked(MachineId a,
                                                      MachineId b) const {
  bool found_partitioned = false;
  for (NetworkId na : machines_.at(a).networks) {
    for (NetworkId nb : machines_.at(b).networks) {
      if (na != nb) continue;
      if (nets_.at(na).partitioned) {
        found_partitioned = true;
        continue;
      }
      return na;
    }
  }
  if (found_partitioned) {
    return ntcs::Error(ntcs::Errc::partitioned, "shared network partitioned");
  }
  return ntcs::Error(ntcs::Errc::address_fault,
                     "machines share no network (internetting requires an "
                     "NTCS gateway)");
}

std::chrono::nanoseconds Fabric::sample_latency_locked(NetworkId n) {
  if (n == kInvalidNetwork) return std::chrono::nanoseconds{0};
  const auto& cfg = nets_.at(n).cfg;
  if (cfg.latency_max <= cfg.latency_min) return cfg.latency_min;
  const auto span =
      static_cast<std::uint64_t>((cfg.latency_max - cfg.latency_min).count());
  return cfg.latency_min + std::chrono::nanoseconds(rng_.next_below(span + 1));
}

ntcs::Result<ChannelId> Fabric::connect_impl(Endpoint* src,
                                             const std::string& dst_phys) {
  std::shared_ptr<Endpoint> dst;
  ChannelId chan = 0;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  {
    ntcs::LockGuard lk(mu_);
    auto parts = parse_phys(dst_phys);
    if (!parts) {
      ++stats_.connects_failed;
      return ntcs::Error(ntcs::Errc::bad_argument,
                         "malformed physical address: " + dst_phys);
    }
    if (parts->kind != src->kind()) {
      ++stats_.connects_failed;
      return ntcs::Error(ntcs::Errc::unsupported,
                         "cannot connect across IPCS kinds");
    }
    auto it = bound_.find(dst_phys);
    if (it != bound_.end()) dst = it->second.lock();
    if (!dst) {
      ++stats_.connects_failed;
      // The two IPCSs report an unbound destination differently; the
      // ND-Layer normalises both to an address fault.
      if (src->kind() == IpcsKind::tcp) {
        return ntcs::Error(ntcs::Errc::refused,
                           "connection refused: " + dst_phys);
      }
      return ntcs::Error(ntcs::Errc::address_fault,
                         "no such mailbox: " + dst_phys);
    }
    NetworkId net = kInvalidNetwork;
    if (dst->machine() != src->machine()) {
      auto shared = shared_network_locked(src->machine(), dst->machine());
      if (!shared) {
        ++stats_.connects_failed;
        return shared.error();
      }
      net = shared.value();
    }
    if (flap_down_locked(net, std::chrono::steady_clock::now())) {
      // A flapping link swallows the connection attempt; unlike a
      // partition (an error the layers treat as lasting), the caller sees
      // the transient face of failure and should retry with backoff.
      ++stats_.connects_failed;
      return ntcs::Error(ntcs::Errc::timeout,
                         "link down (flapping): " + dst_phys);
    }
    chan = next_chan_++;
    ChannelState st;
    st.a = src;
    st.b = dst.get();
    st.a_w = src->weak_from_this();
    st.b_w = dst;
    st.net = net;
    deliver_at = std::chrono::steady_clock::now() + sample_latency_locked(net);
    st.floor_to_b = deliver_at;
    channels_[chan] = st;
    seq = next_seq_++;
    ++stats_.connects_ok;
  }
  dst->enqueue({deliver_at, seq,
                Delivery{DeliveryKind::opened, chan, {}, src->phys()}});
  return chan;
}

ntcs::Status Fabric::send_impl(Endpoint* src, ChannelId chan,
                               ntcs::BytesView header, ntcs::BytesView body) {
  std::shared_ptr<Endpoint> peer;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  std::optional<std::chrono::steady_clock::time_point> dup_at;
  std::uint64_t dup_seq = 0;
  // The one frame copy in the whole transmit path: header and body gathered
  // straight into the delivery buffer, reserved once.
  ntcs::Bytes payload;
  payload.reserve(header.size() + body.size());
  ntcs::append(payload, header);
  ntcs::append(payload, body);
  {
    ntcs::LockGuard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end() ||
        (it->second.a != src && it->second.b != src)) {
      return ntcs::Status(ntcs::Errc::address_fault, "channel is gone");
    }
    ChannelState& st = it->second;
    if (payload.size() > ipcs_mtu(src->kind())) {
      return ntcs::Status(ntcs::Errc::too_big, "frame exceeds IPCS mtu");
    }
    if (st.net != kInvalidNetwork && nets_.at(st.net).partitioned) {
      return ntcs::Status(ntcs::Errc::partitioned, "network partitioned");
    }
    ++stats_.frames_sent;
    stats_.bytes_sent += payload.size();
    const auto now = std::chrono::steady_clock::now();
    if (flap_down_locked(st.net, now)) {
      // A down link loses frames without telling the sender — exactly the
      // "simply passed upward" failure class the layers must ride out.
      ++stats_.frames_dropped;
      ++stats_.flap_dropped;
      return ntcs::Status::success();
    }
    if (st.net != kInvalidNetwork &&
        rng_.chance(nets_.at(st.net).cfg.loss_prob)) {
      ++stats_.frames_dropped;
      return ntcs::Status::success();  // silently lost on the wire
    }
    const bool to_b = (it->second.a == src);
    peer = (to_b ? st.b_w : st.a_w).lock();
    if (!peer) {
      // The peer is mid-destruction; its close notification is en route.
      return ntcs::Status::success();
    }
    const FaultPlan* fp = nullptr;
    if (st.net != kInvalidNetwork && nets_.at(st.net).faults.active()) {
      fp = &nets_.at(st.net).faults;
    }
    if (fp != nullptr && fp->corrupt_prob > 0.0 && !payload.empty() &&
        (to_b ? fp->corrupt_to_b : fp->corrupt_to_a) &&
        rng_.chance(fp->corrupt_prob)) {
      payload[rng_.next_below(payload.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.next_below(255));
      ++stats_.frames_corrupted;
    }
    auto& floor = to_b ? st.floor_to_b : st.floor_to_a;
    deliver_at = now + sample_latency_locked(st.net);
    if (fp != nullptr && fp->jitter.count() > 0) {
      deliver_at += std::chrono::nanoseconds(rng_.next_below(
          static_cast<std::uint64_t>(fp->jitter.count()) + 1));
    }
    if (deliver_at < floor) deliver_at = floor;  // per-channel FIFO queueing
    if (st.net != kInvalidNetwork) {
      // Serialisation delay on a finite link, applied after queueing so
      // back-to-back frames occupy the link strictly in turn.
      const std::uint64_t bps = nets_.at(st.net).cfg.bytes_per_sec;
      if (bps != 0) {
        deliver_at += std::chrono::nanoseconds(
            payload.size() * 1'000'000'000ULL / bps);
      }
    }
    if (fp != nullptr && rng_.chance(fp->reorder_prob)) {
      // Hold this frame back *without* raising the FIFO floor, so frames
      // sent after it may overtake it in the inbox.
      const auto window =
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(fp->reorder_window.count()));
      floor = deliver_at;
      deliver_at += std::chrono::nanoseconds(1 + rng_.next_below(window));
      ++stats_.frames_reordered;
      m_reordered().inc();
    } else {
      floor = deliver_at;
    }
    seq = next_seq_++;
    if (fp != nullptr && rng_.chance(fp->dup_prob)) {
      // The copy trails the original and also skips the floor, so it can
      // land between (or after) later frames.
      const auto window =
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(fp->reorder_window.count()));
      dup_at = deliver_at + std::chrono::nanoseconds(1 + rng_.next_below(window));
      dup_seq = next_seq_++;
      ++stats_.frames_duplicated;
      m_dup().inc();
    }
  }
  peer->enqueue({deliver_at, seq,
                 Delivery{DeliveryKind::data, chan, payload, {}}});
  if (dup_at) {
    peer->enqueue({*dup_at, dup_seq,
                   Delivery{DeliveryKind::data, chan, std::move(payload), {}}});
  }
  return ntcs::Status::success();
}

ntcs::Status Fabric::close_channel_impl(Endpoint* src, ChannelId chan) {
  std::shared_ptr<Endpoint> peer;
  std::chrono::steady_clock::time_point deliver_at;
  std::uint64_t seq = 0;
  {
    ntcs::LockGuard lk(mu_);
    auto it = channels_.find(chan);
    if (it == channels_.end() ||
        (it->second.a != src && it->second.b != src)) {
      return ntcs::Status(ntcs::Errc::not_found, "no such channel");
    }
    ChannelState& st = it->second;
    const bool to_b = (st.a == src);
    peer = (to_b ? st.b_w : st.a_w).lock();
    // Close notifications ride the same ordered path as data so a peer
    // never sees `closed` overtake earlier frames.
    auto& floor = to_b ? st.floor_to_b : st.floor_to_a;
    deliver_at = std::chrono::steady_clock::now() + sample_latency_locked(st.net);
    if (deliver_at < floor) deliver_at = floor;
    channels_.erase(it);
    seq = next_seq_++;
    ++stats_.channels_closed;
  }
  if (peer) {
    peer->enqueue(
        {deliver_at, seq, Delivery{DeliveryKind::closed, chan, {}, {}}});
  }
  return ntcs::Status::success();
}

void Fabric::close_endpoint(Endpoint* ep) {
  struct Note {
    std::shared_ptr<Endpoint> peer;
    ChannelId chan;
    std::chrono::steady_clock::time_point at;
    std::uint64_t seq;
  };
  std::vector<Note> notes;
  {
    ntcs::LockGuard lk(mu_);
    auto it = bound_.find(ep->phys());
    if (it != bound_.end()) {
      // Only erase our own binding (a later bind may have reused the path
      // after an earlier endpoint expired).
      auto cur = it->second.lock();
      if (!cur || cur.get() == ep) bound_.erase(it);
    }
    for (auto cit = channels_.begin(); cit != channels_.end();) {
      ChannelState& st = cit->second;
      if (st.a == ep || st.b == ep) {
        auto peer = (st.a == ep ? st.b_w : st.a_w).lock();
        auto& floor = st.a == ep ? st.floor_to_b : st.floor_to_a;
        auto at = std::chrono::steady_clock::now() +
                  sample_latency_locked(st.net);
        if (at < floor) at = floor;
        if (peer && peer.get() != ep) {
          notes.push_back({std::move(peer), cit->first, at, next_seq_++});
        }
        ++stats_.channels_closed;
        cit = channels_.erase(cit);
      } else {
        ++cit;
      }
    }
  }
  for (const Note& n : notes) {
    n.peer->enqueue(
        {n.at, n.seq, Delivery{DeliveryKind::closed, n.chan, {}, {}}});
  }
  ep->close_inbox();
}

}  // namespace ntcs::simnet
