// fabric.h — the simulated internetwork of machines, networks and IPCSs.
//
// Stands in for the paper's hardware environment (DESIGN.md §2): machines
// with distinct architectures and skewed clocks, attached to one or more
// networks with configurable latency/loss/partition, each machine offering
// a TCP-like and an MBX-like native IPCS. Disjoint networks are *only*
// bridgeable through NTCS Gateway modules — the fabric itself never routes
// between networks, exactly like the paper's underlying IPCSs (§2.2: the
// ND-Layer "is not capable of communicating between machines on networks
// which are not supported directly by the endpoint IPCSs").
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotated.h"
#include "common/error.h"
#include "common/rng.h"
#include "convert/machine.h"
#include "simnet/endpoint.h"
#include "simnet/types.h"

namespace ntcs::simnet {

/// The fabric. Thread-safe. Must outlive every Endpoint bound through it.
class Fabric {
 public:
  explicit Fabric(std::uint64_t seed = 1);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- topology construction -------------------------------------------
  NetworkId add_network(std::string name, NetConfig cfg = {});
  MachineId add_machine(std::string name, convert::Arch arch,
                        std::vector<NetworkId> networks);
  void attach_machine(MachineId m, NetworkId n);

  std::optional<NetworkId> network_by_name(std::string_view name) const;
  std::optional<MachineId> machine_by_name(std::string_view name) const;
  // By value: a reference into machines_/nets_ would dangle as soon as a
  // concurrent add_machine/add_network reallocates the vector.
  std::string machine_name(MachineId m) const;
  std::string network_name(NetworkId n) const;
  convert::Arch machine_arch(MachineId m) const;
  std::vector<NetworkId> machine_networks(MachineId m) const;
  std::size_t machine_count() const;
  std::size_t network_count() const;

  // --- per-machine clocks (skew for the DRTS time service) --------------
  void set_clock_offset(MachineId m, std::chrono::nanoseconds offset);
  /// The machine's local clock reading (real steady clock + its skew).
  std::chrono::nanoseconds machine_now(MachineId m) const;

  // --- failure / latency injection ---------------------------------------
  void set_partitioned(NetworkId n, bool partitioned);
  void set_loss(NetworkId n, double loss_prob);
  void set_latency(NetworkId n, std::chrono::nanoseconds lo,
                   std::chrono::nanoseconds hi);
  void set_bandwidth(NetworkId n, std::uint64_t bytes_per_sec);
  /// Install a fault-injection plan on one network (replaces any previous
  /// plan; the flap cycle restarts now). See FaultPlan.
  void set_fault_plan(NetworkId n, FaultPlan plan);
  /// Remove the fault plans from every network.
  void clear_faults();
  /// Sever one live channel; both ends get a `closed` delivery.
  ntcs::Status kill_channel(ChannelId chan);
  /// Live channel count (tests: channel-conservation checks).
  std::size_t channel_count() const;

  // --- endpoints ----------------------------------------------------------
  /// Bind a new endpoint on machine `m`. For mbx, `local_name` is the
  /// mailbox pathname component and must be unique on the machine; for
  /// tcp a fresh port is assigned (local_name is advisory only).
  ntcs::Result<std::shared_ptr<Endpoint>> bind(MachineId m, IpcsKind kind,
                                               std::string_view local_name);

  /// Is anything currently bound at this physical address? (The OS-level
  /// liveness check the Name Server uses to decide whether an old address
  /// is "really inactive", §3.5.)
  bool probe(std::string_view phys) const;

  // --- statistics -----------------------------------------------------------
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t connects_ok = 0;
    std::uint64_t connects_failed = 0;
    std::uint64_t channels_closed = 0;
    // Fault-injection counters (FaultPlan).
    std::uint64_t frames_duplicated = 0;
    std::uint64_t frames_reordered = 0;
    std::uint64_t frames_corrupted = 0;
    std::uint64_t flap_dropped = 0;  // data frames lost to a down link
    std::uint64_t link_flaps = 0;    // up -> down transitions observed
  };
  Stats stats() const;

 private:
  friend class Endpoint;

  struct NetworkState {
    std::string name;
    NetConfig cfg;
    bool partitioned = false;
    FaultPlan faults;
    // Flap bookkeeping: the cycle is phase-locked to when the plan was
    // installed; `flap_was_down` lets stats count each transition once.
    std::chrono::steady_clock::time_point flap_epoch{};
    bool flap_was_down = false;
  };
  struct MachineState {
    std::string name;
    convert::Arch arch;
    std::vector<NetworkId> networks;
    std::chrono::nanoseconds clock_offset{0};
  };
  struct ChannelState {
    // Raw pointers identify the two ends; the weak_ptrs let notification
    // paths pin an endpoint alive across an enqueue that happens after
    // the fabric lock is released (an endpoint may be destroyed by its
    // owner at any moment).
    Endpoint* a = nullptr;
    Endpoint* b = nullptr;
    std::weak_ptr<Endpoint> a_w;
    std::weak_ptr<Endpoint> b_w;
    NetworkId net = kInvalidNetwork;  // kInvalidNetwork = same-machine
    std::chrono::steady_clock::time_point floor_to_a{};
    std::chrono::steady_clock::time_point floor_to_b{};
  };

  ntcs::Result<ChannelId> connect_impl(Endpoint* src,
                                       const std::string& dst_phys);
  /// One frame = header ++ body, assembled once into the delivery buffer
  /// (the gather-send path; plain sends pass an empty header).
  ntcs::Status send_impl(Endpoint* src, ChannelId chan, ntcs::BytesView header,
                         ntcs::BytesView body);
  ntcs::Status close_channel_impl(Endpoint* src, ChannelId chan);
  void close_endpoint(Endpoint* ep);

  /// Pick a non-partitioned network both machines attach to.
  ntcs::Result<NetworkId> shared_network_locked(MachineId a, MachineId b) const
      REQUIRES(mu_);
  std::chrono::nanoseconds sample_latency_locked(NetworkId n) REQUIRES(mu_);
  /// Is the network's flapping link currently in its down phase?
  bool flap_down_locked(NetworkId n, std::chrono::steady_clock::time_point now)
      REQUIRES(mu_);

  // Bottom of the layer hierarchy: reached with ND-Layer locks held
  // (open/send paths) and never held across Endpoint::enqueue — every
  // delivery is enqueued after this lock is released, which is what keeps
  // endpoint and fabric un-nested (and destruction races impossible, see
  // ChannelState).
  mutable ntcs::Mutex mu_{ntcs::lockrank::kSimnetFabric, "simnet.fabric"};
  std::vector<NetworkState> nets_ GUARDED_BY(mu_);
  std::vector<MachineState> machines_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::weak_ptr<Endpoint>> bound_
      GUARDED_BY(mu_);
  std::unordered_map<ChannelId, ChannelState> channels_ GUARDED_BY(mu_);
  ntcs::Rng rng_ GUARDED_BY(mu_);
  ChannelId next_chan_ GUARDED_BY(mu_) = 1;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  std::uint16_t next_port_ GUARDED_BY(mu_) = 5000;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace ntcs::simnet
