#include "simnet/phys.h"

namespace ntcs::simnet {

std::string_view ipcs_kind_name(IpcsKind k) {
  switch (k) {
    case IpcsKind::tcp: return "tcp";
    case IpcsKind::mbx: return "mbx";
  }
  return "unknown";
}

std::size_t ipcs_mtu(IpcsKind k) {
  switch (k) {
    case IpcsKind::tcp: return 16 * 1024;
    case IpcsKind::mbx: return 4 * 1024;  // mailboxes are small
  }
  return 4 * 1024;
}

std::string format_tcp_addr(std::string_view machine, std::uint16_t port) {
  return "tcp:" + std::string(machine) + ":" + std::to_string(port);
}

std::string format_mbx_addr(std::string_view machine, std::string_view name) {
  return "mbx:/" + std::string(machine) + "/" + std::string(name);
}

std::optional<PhysParts> parse_phys(std::string_view phys) {
  if (phys.rfind("tcp:", 0) == 0) {
    const std::string_view rest = phys.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return std::nullopt;
    }
    PhysParts p;
    p.kind = IpcsKind::tcp;
    p.machine = std::string(rest.substr(0, colon));
    p.local = std::string(rest.substr(colon + 1));
    for (char c : p.local) {
      if (c < '0' || c > '9') return std::nullopt;
    }
    return p;
  }
  if (phys.rfind("mbx:/", 0) == 0) {
    const std::string_view rest = phys.substr(5);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 >= rest.size()) {
      return std::nullopt;
    }
    PhysParts p;
    p.kind = IpcsKind::mbx;
    p.machine = std::string(rest.substr(0, slash));
    p.local = std::string(rest.substr(slash + 1));
    return p;
  }
  return std::nullopt;
}

}  // namespace ntcs::simnet
