// phys.h — physical address formats of the two simulated IPCSs.
//
// Paper §2.3: "At the lowest level are network-dependent physical
// addresses, such as TCP/IP 32-bit integers or Apollo MBX pathnames, over
// which we have no control." The naming service stores these uninterpreted
// (§3.2); only the ND-Layer parses them.
//
// Formats:
//   tcp:<machine-name>:<port>        (TCP-like: host + 16-bit port)
//   mbx:/<machine-name>/<local-name> (MBX-like: server mailbox pathname)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "simnet/types.h"

namespace ntcs::simnet {

/// A parsed physical address.
struct PhysParts {
  IpcsKind kind;
  std::string machine;  // machine name
  std::string local;    // port (tcp, as text) or mailbox name (mbx)
};

std::string format_tcp_addr(std::string_view machine, std::uint16_t port);
std::string format_mbx_addr(std::string_view machine, std::string_view name);

/// Parse either format. Empty on malformed input.
std::optional<PhysParts> parse_phys(std::string_view phys);

}  // namespace ntcs::simnet
