// types.h — identifiers and configuration for the simulated fabric.
//
// simnet stands in for the paper's physical testbed: Apollo, VAX and Sun
// machines on several local networks, each machine offering a native IPCS
// (Unix TCP or Apollo MBX). The NTCS above sees only IPCS semantics —
// physical addresses, connections, message frames, failure notifications —
// which is exactly what this layer provides.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ntcs::simnet {

using NetworkId = std::uint32_t;
using MachineId = std::uint32_t;
using ChannelId = std::uint64_t;

inline constexpr NetworkId kInvalidNetwork = 0xFFFFFFFFu;

/// Which native IPCS an endpoint belongs to. The two flavours differ in
/// physical address format, maximum frame size, and error behaviour —
/// differences the ND-Layer must hide behind the STD-IF.
enum class IpcsKind : std::uint8_t { tcp = 0, mbx = 1 };

std::string_view ipcs_kind_name(IpcsKind k);

/// Per-network behaviour knobs (all default to a perfect network; tests and
/// benches turn individual knobs for failure injection and latency studies).
struct NetConfig {
  std::chrono::nanoseconds latency_min{0};
  std::chrono::nanoseconds latency_max{0};
  /// Probability that a data frame is silently dropped (failure injection;
  /// the native IPCSs are reliable, so this is 0 unless a test sets it).
  double loss_prob = 0.0;
  /// Link bandwidth; 0 = infinite. Each frame's delivery is additionally
  /// delayed by size/bandwidth, so large transfers serialise realistically
  /// (a 1986 Ethernet is ~1.25e6 bytes/s).
  std::uint64_t bytes_per_sec = 0;
};

/// Maximum payload of a single IPCS frame. Messages larger than this are
/// fragmented by the ND-Layer.
std::size_t ipcs_mtu(IpcsKind k);

}  // namespace ntcs::simnet
