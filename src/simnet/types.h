// types.h — identifiers and configuration for the simulated fabric.
//
// simnet stands in for the paper's physical testbed: Apollo, VAX and Sun
// machines on several local networks, each machine offering a native IPCS
// (Unix TCP or Apollo MBX). The NTCS above sees only IPCS semantics —
// physical addresses, connections, message frames, failure notifications —
// which is exactly what this layer provides.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace ntcs::simnet {

using NetworkId = std::uint32_t;
using MachineId = std::uint32_t;
using ChannelId = std::uint64_t;

inline constexpr NetworkId kInvalidNetwork = 0xFFFFFFFFu;

/// Which native IPCS an endpoint belongs to. The two flavours differ in
/// physical address format, maximum frame size, and error behaviour —
/// differences the ND-Layer must hide behind the STD-IF.
enum class IpcsKind : std::uint8_t { tcp = 0, mbx = 1 };

std::string_view ipcs_kind_name(IpcsKind k);

/// Per-network behaviour knobs (all default to a perfect network; tests and
/// benches turn individual knobs for failure injection and latency studies).
struct NetConfig {
  std::chrono::nanoseconds latency_min{0};
  std::chrono::nanoseconds latency_max{0};
  /// Probability that a data frame is silently dropped (failure injection;
  /// the native IPCSs are reliable, so this is 0 unless a test sets it).
  double loss_prob = 0.0;
  /// Link bandwidth; 0 = infinite. Each frame's delivery is additionally
  /// delayed by size/bandwidth, so large transfers serialise realistically
  /// (a 1986 Ethernet is ~1.25e6 bytes/s).
  std::uint64_t bytes_per_sec = 0;
};

/// Per-network fault-injection plan (beyond the always-available loss and
/// partition knobs in NetConfig). Installed with Fabric::set_fault_plan();
/// all randomness flows through the Fabric's seeded Rng so a chaos run is
/// reproducible frame-for-frame. The NTCS layers own recovery: the
/// ND-Layer suppresses duplicates and re-synchronises after reordering,
/// backoff in ND/IP/LCM rides out link flaps (DESIGN.md "Fault model").
struct FaultPlan {
  /// Probability a data frame is delivered twice (the copy is scheduled a
  /// little later and does not advance the channel's FIFO floor).
  double dup_prob = 0.0;
  /// Probability a data frame is held back by up to `reorder_window`
  /// beyond its natural delivery time, letting later frames overtake it.
  double reorder_prob = 0.0;
  std::chrono::nanoseconds reorder_window{std::chrono::milliseconds(1)};
  /// Extra uniform delivery delay in [0, jitter] per frame (slow link /
  /// queueing noise; FIFO order is preserved).
  std::chrono::nanoseconds jitter{0};
  /// Deterministic link-flap duty cycle: every `flap_period` the link goes
  /// down for the first `flap_down` of the cycle (cycle starts down when a
  /// plan is installed). While down, connects fail with Errc::timeout and
  /// data frames are silently dropped. 0 = never flaps.
  std::chrono::nanoseconds flap_period{0};
  std::chrono::nanoseconds flap_down{0};
  /// Probability a data frame has one byte flipped, per direction of the
  /// channel (a->b is the direction of the original connect).
  double corrupt_prob = 0.0;
  bool corrupt_to_b = true;
  bool corrupt_to_a = true;

  bool active() const {
    return dup_prob > 0.0 || reorder_prob > 0.0 || jitter.count() > 0 ||
           flap_period.count() > 0 || corrupt_prob > 0.0;
  }
};

/// Maximum payload of a single IPCS frame. Messages larger than this are
/// fragmented by the ND-Layer.
std::size_t ipcs_mtu(IpcsKind k);

}  // namespace ntcs::simnet
