#include "ursa/corpus.h"

#include "common/rng.h"

namespace ursa {

namespace {

constexpr const char* kSyllables[] = {"re", "tri", "ev", "al", "sys",  "tem",
                                      "ur", "sa", "ta", "do", "cu",   "ment",
                                      "in", "dex", "quer", "y", "net", "work"};
constexpr std::size_t kSyllableCount = sizeof(kSyllables) / sizeof(char*);

std::string make_word(ntcs::Rng& rng) {
  const int parts = static_cast<int>(rng.next_in(2, 4));
  std::string w;
  for (int i = 0; i < parts; ++i) {
    w += kSyllables[rng.next_below(kSyllableCount)];
  }
  return w;
}

}  // namespace

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c >= 'a' && c <= 'z') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

Corpus Corpus::generate(std::size_t doc_count, std::uint64_t seed) {
  ntcs::Rng rng(seed);
  Corpus corpus;

  // Vocabulary: ~400 distinct words, de-duplicated.
  while (corpus.vocab_.size() < 400) {
    std::string w = make_word(rng);
    bool dup = false;
    for (const auto& v : corpus.vocab_) {
      if (v == w) {
        dup = true;
        break;
      }
    }
    if (!dup) corpus.vocab_.push_back(std::move(w));
  }

  corpus.docs_.reserve(doc_count);
  for (std::size_t d = 0; d < doc_count; ++d) {
    Document doc;
    doc.id = d + 1;
    // Zipf-ish pick: square the uniform variate so low ranks dominate.
    auto pick = [&]() -> const std::string& {
      const double u = rng.next_double();
      const auto rank = static_cast<std::size_t>(
          u * u * static_cast<double>(corpus.vocab_.size()));
      return corpus.vocab_[rank >= corpus.vocab_.size()
                               ? corpus.vocab_.size() - 1
                               : rank];
    };
    doc.title = pick() + " " + pick();
    const int words = static_cast<int>(rng.next_in(40, 160));
    for (int w = 0; w < words; ++w) {
      if (w != 0) doc.text.push_back(' ');
      doc.text += pick();
    }
    corpus.docs_.push_back(std::move(doc));
  }
  return corpus;
}

const Document* Corpus::find(std::uint64_t id) const {
  for (const auto& d : docs_) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

}  // namespace ursa
