// corpus.h — synthetic document corpus for the URSA testbed.
//
// The original URSA system served real document collections on specialised
// backend hardware; we generate a deterministic synthetic corpus with a
// Zipf-like term distribution so retrieval behaviour (selective terms vs
// stop-word-ish terms, ranking by term frequency) is realistic and
// reproducible (DESIGN.md §2 substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ursa {

struct Document {
  std::uint64_t id = 0;
  std::string title;
  std::string text;
};

class Corpus {
 public:
  /// Generate `doc_count` documents deterministically from `seed`.
  static Corpus generate(std::size_t doc_count, std::uint64_t seed);

  const std::vector<Document>& documents() const { return docs_; }
  const Document* find(std::uint64_t id) const;
  std::size_t size() const { return docs_.size(); }

  /// The generator's vocabulary (rank order: rank 0 is the most frequent
  /// term) — handy for building realistic query workloads.
  const std::vector<std::string>& vocabulary() const { return vocab_; }

 private:
  std::vector<Document> docs_;
  std::vector<std::string> vocab_;
};

/// Lower-case alphabetic tokens of a text.
std::vector<std::string> tokenize(const std::string& text);

}  // namespace ursa
