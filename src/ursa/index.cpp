#include "ursa/index.h"

namespace ursa {

void InvertedIndex::add_document(const Document& doc) {
  std::map<std::string, std::uint32_t> tfs;
  for (const std::string& t : tokenize(doc.title)) ++tfs[t];
  for (const std::string& t : tokenize(doc.text)) ++tfs[t];
  for (const auto& [term, tf] : tfs) {
    index_[term].push_back(Posting{doc.id, tf});
  }
  ++doc_count_;
}

void InvertedIndex::add_corpus(const Corpus& corpus) {
  for (const Document& d : corpus.documents()) add_document(d);
}

const std::vector<Posting>& InvertedIndex::postings(
    const std::string& term) const {
  static const std::vector<Posting> kEmpty;
  auto it = index_.find(term);
  return it == index_.end() ? kEmpty : it->second;
}

}  // namespace ursa
