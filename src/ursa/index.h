// index.h — the URSA inverted index (the index-lookup backend's core).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ursa/corpus.h"

namespace ursa {

struct Posting {
  std::uint64_t doc = 0;
  std::uint32_t tf = 0;  // term frequency

  friend bool operator==(const Posting&, const Posting&) = default;
};

class InvertedIndex {
 public:
  void add_document(const Document& doc);
  void add_corpus(const Corpus& corpus);

  /// Postings for a term, ordered by document id. Empty if unknown.
  const std::vector<Posting>& postings(const std::string& term) const;

  std::size_t term_count() const { return index_.size(); }
  std::size_t doc_count() const { return doc_count_; }

 private:
  std::map<std::string, std::vector<Posting>> index_;
  std::size_t doc_count_ = 0;
};

}  // namespace ursa
