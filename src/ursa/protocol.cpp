#include "ursa/protocol.h"

#include "convert/packed.h"

namespace ursa {

using ntcs::convert::Packer;
using ntcs::convert::Unpacker;

namespace {

Packer prologue(Op op) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(op));
  return p;
}

Packer ok_prologue() {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(ntcs::Errc::ok));
  p.put_string("");
  return p;
}

std::optional<ntcs::Error> check_status(Unpacker& u) {
  auto code = u.get_u64();
  if (!code) return code.error();
  auto text = u.get_string();
  if (!text) return text.error();
  if (code.value() == static_cast<std::uint64_t>(ntcs::Errc::ok)) {
    return std::nullopt;
  }
  return ntcs::Error(static_cast<ntcs::Errc>(code.value()), text.value());
}

}  // namespace

ntcs::Bytes encode_postings_request(const std::string& term) {
  Packer p = prologue(Op::postings);
  p.put_string(term);
  return std::move(p).take();
}

ntcs::Bytes encode_get_doc_request(std::uint64_t doc) {
  Packer p = prologue(Op::get_doc);
  p.put_u64(doc);
  return std::move(p).take();
}

ntcs::Bytes encode_search_request(const std::string& query, std::size_t k) {
  Packer p = prologue(Op::search);
  p.put_string(query);
  p.put_u64(k);
  return std::move(p).take();
}

ntcs::Bytes encode_stats_request() {
  return std::move(prologue(Op::stats)).take();
}

ntcs::Bytes encode_add_doc_request(const std::string& title,
                                   const std::string& text) {
  Packer p = prologue(Op::add_doc);
  p.put_string(title);
  p.put_string(text);
  return std::move(p).take();
}

ntcs::Bytes encode_index_doc_request(const Document& doc) {
  Packer p = prologue(Op::index_doc);
  p.put_u64(doc.id);
  p.put_string(doc.title);
  p.put_string(doc.text);
  return std::move(p).take();
}

ntcs::Result<Request> decode_request(ntcs::BytesView body) {
  Unpacker u(body);
  auto op = u.get_u64();
  if (!op) return op.error();
  Request req;
  req.op = static_cast<Op>(op.value());
  switch (req.op) {
    case Op::postings: {
      auto term = u.get_string();
      if (!term) return term.error();
      req.term = std::move(term.value());
      return req;
    }
    case Op::get_doc: {
      auto doc = u.get_u64();
      if (!doc) return doc.error();
      req.doc = doc.value();
      return req;
    }
    case Op::search: {
      auto q = u.get_string();
      if (!q) return q.error();
      req.query = std::move(q.value());
      auto k = u.get_u64();
      if (!k) return k.error();
      req.k = k.value();
      return req;
    }
    case Op::stats:
      return req;
    case Op::add_doc: {
      auto title = u.get_string();
      if (!title) return title.error();
      req.title = std::move(title.value());
      auto text = u.get_string();
      if (!text) return text.error();
      req.text = std::move(text.value());
      return req;
    }
    case Op::index_doc: {
      auto id = u.get_u64();
      if (!id) return id.error();
      req.doc = id.value();
      auto title = u.get_string();
      if (!title) return title.error();
      req.title = std::move(title.value());
      auto text = u.get_string();
      if (!text) return text.error();
      req.text = std::move(text.value());
      return req;
    }
  }
  return ntcs::Error(ntcs::Errc::bad_message, "unknown URSA op");
}

ntcs::Bytes encode_error(ntcs::Errc code, const std::string& text) {
  Packer p;
  p.put_u64(static_cast<std::uint64_t>(code));
  p.put_string(text);
  return std::move(p).take();
}

ntcs::Bytes encode_postings_response(const std::vector<Posting>& postings) {
  Packer p = ok_prologue();
  p.put_u64(postings.size());
  for (const Posting& post : postings) {
    p.put_u64(post.doc);
    p.put_u64(post.tf);
  }
  return std::move(p).take();
}

ntcs::Bytes encode_doc_response(const Document& doc) {
  Packer p = ok_prologue();
  p.put_u64(doc.id);
  p.put_string(doc.title);
  p.put_string(doc.text);
  return std::move(p).take();
}

ntcs::Bytes encode_search_response(const std::vector<SearchHit>& hits) {
  Packer p = ok_prologue();
  p.put_u64(hits.size());
  for (const SearchHit& h : hits) {
    p.put_u64(h.doc);
    p.put_f64(h.score);
    p.put_string(h.title);
  }
  return std::move(p).take();
}

ntcs::Bytes encode_stats_response(std::uint64_t served,
                                  std::uint64_t items_held,
                                  std::uint64_t doc_count) {
  Packer p = ok_prologue();
  p.put_u64(served);
  p.put_u64(items_held);
  p.put_u64(doc_count);
  return std::move(p).take();
}

ntcs::Result<std::vector<Posting>> decode_postings_response(
    ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 10'000'000) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd posting count");
  }
  std::vector<Posting> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto doc = u.get_u64();
    if (!doc) return doc.error();
    auto tf = u.get_u64();
    if (!tf) return tf.error();
    out.push_back(Posting{doc.value(), static_cast<std::uint32_t>(tf.value())});
  }
  return out;
}

ntcs::Result<Document> decode_doc_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  Document d;
  auto id = u.get_u64();
  if (!id) return id.error();
  d.id = id.value();
  auto title = u.get_string();
  if (!title) return title.error();
  d.title = std::move(title.value());
  auto text = u.get_string();
  if (!text) return text.error();
  d.text = std::move(text.value());
  return d;
}

ntcs::Result<std::vector<SearchHit>> decode_search_response(
    ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto n = u.get_u64();
  if (!n) return n.error();
  if (n.value() > 100000) {
    return ntcs::Error(ntcs::Errc::bad_message, "absurd hit count");
  }
  std::vector<SearchHit> out;
  out.reserve(n.value());
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    SearchHit h;
    auto doc = u.get_u64();
    if (!doc) return doc.error();
    h.doc = doc.value();
    auto score = u.get_f64();
    if (!score) return score.error();
    h.score = score.value();
    auto title = u.get_string();
    if (!title) return title.error();
    h.title = std::move(title.value());
    out.push_back(std::move(h));
  }
  return out;
}

ntcs::Bytes encode_add_doc_response(std::uint64_t id) {
  Packer p = ok_prologue();
  p.put_u64(id);
  return std::move(p).take();
}

ntcs::Bytes encode_ok_response() { return std::move(ok_prologue()).take(); }

ntcs::Result<std::uint64_t> decode_add_doc_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  auto id = u.get_u64();
  if (!id) return id.error();
  return id.value();
}

ntcs::Status decode_ok_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  return ntcs::Status::success();
}

ntcs::Result<StatsResponse> decode_stats_response(ntcs::BytesView body) {
  Unpacker u(body);
  if (auto err = check_status(u)) return *err;
  StatsResponse r;
  auto served = u.get_u64();
  if (!served) return served.error();
  r.served = served.value();
  auto held = u.get_u64();
  if (!held) return held.error();
  r.items_held = held.value();
  auto docs = u.get_u64();
  if (!docs) return docs.error();
  r.doc_count = docs.value();
  return r;
}

}  // namespace ursa
