// protocol.h — the URSA backend wire protocol.
//
// Requests and replies travel in packed mode over the NTCS (characters are
// representation-free, §5.1), so an URSA deployment can mix VAX, Sun and
// Apollo backends freely — the original project's whole point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "ursa/index.h"

namespace ursa {

enum class Op : std::uint64_t {
  postings = 1,   // index server: term -> postings
  get_doc = 2,    // doc server: id -> text
  search = 3,     // search server: query -> ranked hits
  stats = 4,      // any server: basic counters
  add_doc = 5,    // doc server: store a new document -> id
  index_doc = 6,  // index server: add a document's terms to the index
};

struct SearchHit {
  std::uint64_t doc = 0;
  double score = 0.0;
  std::string title;

  friend bool operator==(const SearchHit&, const SearchHit&) = default;
};

// Requests.
ntcs::Bytes encode_postings_request(const std::string& term);
ntcs::Bytes encode_get_doc_request(std::uint64_t doc);
ntcs::Bytes encode_search_request(const std::string& query, std::size_t k);
ntcs::Bytes encode_stats_request();
ntcs::Bytes encode_add_doc_request(const std::string& title,
                                   const std::string& text);
ntcs::Bytes encode_index_doc_request(const Document& doc);

struct Request {
  Op op;
  std::string term;        // postings
  std::uint64_t doc = 0;   // get_doc / index_doc
  std::string query;       // search
  std::uint64_t k = 0;     // search
  std::string title;       // add_doc / index_doc
  std::string text;        // add_doc / index_doc
};
ntcs::Result<Request> decode_request(ntcs::BytesView body);

// Responses (status envelope first, like the NSP protocol).
ntcs::Bytes encode_error(ntcs::Errc code, const std::string& text);
ntcs::Bytes encode_postings_response(const std::vector<Posting>& postings);
ntcs::Bytes encode_doc_response(const Document& doc);
ntcs::Bytes encode_search_response(const std::vector<SearchHit>& hits);
ntcs::Bytes encode_stats_response(std::uint64_t served,
                                  std::uint64_t items_held,
                                  std::uint64_t doc_count = 0);
ntcs::Bytes encode_add_doc_response(std::uint64_t id);
ntcs::Bytes encode_ok_response();  // index_doc

ntcs::Result<std::vector<Posting>> decode_postings_response(
    ntcs::BytesView body);
ntcs::Result<Document> decode_doc_response(ntcs::BytesView body);
ntcs::Result<std::vector<SearchHit>> decode_search_response(
    ntcs::BytesView body);
struct StatsResponse {
  std::uint64_t served = 0;
  std::uint64_t items_held = 0;
  std::uint64_t doc_count = 0;  // corpus size (index server only)
};
ntcs::Result<StatsResponse> decode_stats_response(ntcs::BytesView body);
ntcs::Result<std::uint64_t> decode_add_doc_response(ntcs::BytesView body);
ntcs::Status decode_ok_response(ntcs::BytesView body);

}  // namespace ursa
