#include "ursa/query.h"

#include <algorithm>
#include <cmath>

#include "ursa/corpus.h"

namespace ursa {

std::vector<std::string> Query::distinct_terms() const {
  std::vector<std::string> out;
  for (const QueryGroup& g : groups) {
    for (const std::string& t : g.terms) {
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      }
    }
  }
  return out;
}

bool Query::empty() const {
  for (const QueryGroup& g : groups) {
    if (!g.terms.empty()) return false;
  }
  return true;
}

Query parse_query(const std::string& text) {
  Query q;
  QueryGroup current;
  for (const std::string& token : tokenize(text)) {
    if (token == "or") {
      if (!current.terms.empty()) {
        q.groups.push_back(std::move(current));
        current = QueryGroup{};
      }
      continue;
    }
    current.terms.push_back(token);
  }
  if (!current.terms.empty()) q.groups.push_back(std::move(current));
  return q;
}

double idf(std::uint64_t doc_count, std::uint64_t df) {
  if (df == 0) return 0.0;
  return std::log(1.0 + static_cast<double>(doc_count) /
                            static_cast<double>(df));
}

std::vector<SearchHit> evaluate_query(
    const Query& q,
    const std::map<std::string, std::vector<Posting>>& postings,
    std::uint64_t doc_count, std::size_t k) {
  // Per-term tf lookup tables and idf weights.
  std::map<std::string, std::map<std::uint64_t, std::uint32_t>> tf;
  std::map<std::string, double> weight;
  for (const auto& [term, list] : postings) {
    auto& table = tf[term];
    for (const Posting& p : list) table[p.doc] = p.tf;
    weight[term] = idf(doc_count, list.size());
  }

  std::map<std::uint64_t, double> scores;
  for (const QueryGroup& g : q.groups) {
    if (g.terms.empty()) continue;
    // Candidate docs: those containing the group's rarest term; verify the
    // rest of the conjunction against the tf tables.
    const std::string* seed = &g.terms.front();
    for (const std::string& t : g.terms) {
      auto it = postings.find(t);
      auto st = postings.find(*seed);
      const std::size_t n = it == postings.end() ? 0 : it->second.size();
      const std::size_t sn = st == postings.end() ? 0 : st->second.size();
      if (n < sn) seed = &t;
    }
    auto seed_it = postings.find(*seed);
    if (seed_it == postings.end()) continue;
    for (const Posting& cand : seed_it->second) {
      double group_score = 0.0;
      bool all = true;
      for (const std::string& t : g.terms) {
        auto table_it = tf.find(t);
        if (table_it == tf.end()) {
          all = false;
          break;
        }
        auto doc_it = table_it->second.find(cand.doc);
        if (doc_it == table_it->second.end()) {
          all = false;
          break;
        }
        group_score += doc_it->second * weight[t];
      }
      if (all) scores[cand.doc] += group_score;
    }
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    hits.push_back(SearchHit{doc, score, ""});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace ursa
