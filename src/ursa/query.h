// query.h — the URSA query language and ranking model.
//
// Query syntax mirrors the boolean retrieval systems of the paper's era
// (URSA grew out of backend search engines for boolean/proximity queries):
//
//   term term ...            conjunction (all terms must occur)
//   ... or ...               disjunction of conjunctive groups
//
// e.g. "information retrieval or document indexing" matches documents
// containing BOTH "information" AND "retrieval", or both "document" AND
// "indexing". Ranking is tf·idf summed over the matched groups' terms, so
// rare (selective) terms dominate common ones.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ursa/protocol.h"

namespace ursa {

/// One conjunctive group: every term must occur in the document.
struct QueryGroup {
  std::vector<std::string> terms;
};

/// A disjunction of conjunctive groups.
struct Query {
  std::vector<QueryGroup> groups;

  /// All distinct terms across groups (what the index must be asked for).
  std::vector<std::string> distinct_terms() const;
  bool empty() const;
};

/// Parse "a b or c d" into {{a,b},{c,d}}. Tokenisation is the corpus
/// tokeniser's; the bare word "or" is the group separator. Empty groups
/// are dropped.
Query parse_query(const std::string& text);

/// Inverse document frequency, ln(1 + N/df). df == 0 yields 0 (the term
/// matches nothing, so its weight never applies).
double idf(std::uint64_t doc_count, std::uint64_t df);

/// Evaluate a query against fetched postings. `postings` maps each term of
/// the query to its postings list (missing/empty lists mean the term occurs
/// nowhere). Returns the top-k hits, scored by tf·idf over matched groups,
/// ranked by descending score then ascending document id.
std::vector<SearchHit> evaluate_query(
    const Query& q,
    const std::map<std::string, std::vector<Posting>>& postings,
    std::uint64_t doc_count, std::size_t k);

}  // namespace ursa
