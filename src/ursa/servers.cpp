#include "ursa/servers.h"

#include <algorithm>
#include <map>

#include "ursa/query.h"

namespace ursa {

using namespace std::chrono_literals;
using ntcs::core::Node;
using ntcs::core::Payload;
using ntcs::core::UAdd;

namespace {

/// Shared skeleton: pop requests, dispatch to `handle`, reply.
template <typename Handler>
void serve_loop(Node& node, std::stop_token st, Handler&& handle) {
  while (!st.stop_requested()) {
    auto in = node.commod().receive(100ms);
    if (!in) {
      if (in.code() == ntcs::Errc::timeout) continue;
      break;
    }
    if (!in.value().is_request) continue;
    auto req = decode_request(in.value().payload);
    ntcs::Bytes response;
    if (!req) {
      response =
          encode_error(ntcs::Errc::bad_message, req.error().to_string());
    } else {
      response = handle(node, req.value());
    }
    (void)node.commod().reply(in.value().reply_ctx, response);
  }
}

}  // namespace

ntcs::drts::ServiceFn make_index_service(std::shared_ptr<InvertedIndex> idx) {
  auto served = std::make_shared<std::uint64_t>(0);
  return [idx = std::move(idx), served](Node& node, std::stop_token st) {
    serve_loop(node, st, [&](Node&, const Request& req) -> ntcs::Bytes {
      ++*served;
      switch (req.op) {
        case Op::postings:
          return encode_postings_response(idx->postings(req.term));
        case Op::index_doc: {
          // Dynamic index update (the testbed requirement: modify the
          // system "while in operation"). Served by the same thread as
          // lookups, so no synchronisation is needed.
          Document doc{req.doc, req.title, req.text};
          idx->add_document(doc);
          return encode_ok_response();
        }
        case Op::stats:
          return encode_stats_response(*served, idx->term_count(),
                                       idx->doc_count());
        default:
          return encode_error(ntcs::Errc::unsupported,
                              "index server: unsupported op");
      }
    });
  };
}

ntcs::drts::ServiceFn make_doc_service(std::shared_ptr<Corpus> corpus) {
  // Documents added at run time live beside the immutable base corpus;
  // both maps are touched only by the doc server's own thread.
  struct Store {
    std::uint64_t served = 0;
    std::map<std::uint64_t, Document> added;
    std::uint64_t next_id = 0;
  };
  auto store = std::make_shared<Store>();
  return [corpus = std::move(corpus), store](Node& node,
                                             std::stop_token st) {
    if (store->next_id == 0) store->next_id = corpus->size() + 1;
    serve_loop(node, st, [&](Node&, const Request& req) -> ntcs::Bytes {
      ++store->served;
      switch (req.op) {
        case Op::get_doc: {
          const Document* doc = corpus->find(req.doc);
          if (doc == nullptr) {
            auto it = store->added.find(req.doc);
            if (it != store->added.end()) doc = &it->second;
          }
          if (doc == nullptr) {
            return encode_error(ntcs::Errc::not_found,
                                "no document " + std::to_string(req.doc));
          }
          return encode_doc_response(*doc);
        }
        case Op::add_doc: {
          Document doc{store->next_id++, req.title, req.text};
          const std::uint64_t id = doc.id;
          store->added[id] = std::move(doc);
          return encode_add_doc_response(id);
        }
        case Op::stats:
          return encode_stats_response(store->served,
                                       corpus->size() + store->added.size());
        default:
          return encode_error(ntcs::Errc::unsupported,
                              "doc server: unsupported op");
      }
    });
  };
}

ntcs::drts::ServiceFn make_search_service() {
  // Query evaluation asks the index server for postings — backend-to-
  // backend NTCS traffic, with the index server located by name once.
  struct State {
    UAdd index;
    std::uint64_t served = 0;
    std::uint64_t corpus_docs = 0;  // cached from the index server's stats
  };
  auto state = std::make_shared<State>();
  return [state](Node& node, std::stop_token st) {
    serve_loop(node, st, [&](Node& n, const Request& req) -> ntcs::Bytes {
      ++state->served;
      switch (req.op) {
        case Op::search: {
          if (!state->index.valid()) {
            auto located = n.commod().locate(kIndexServerName);
            if (!located) {
              return encode_error(located.error().code(),
                                  "cannot locate index server");
            }
            state->index = located.value();
          }
          if (state->corpus_docs == 0) {
            // The idf weights need the corpus size, fetched once.
            auto reply = n.commod().request(state->index,
                                            encode_stats_request(), 3s);
            if (reply) {
              auto stats = decode_stats_response(reply.value().payload);
              if (stats) state->corpus_docs = stats.value().doc_count;
            }
            if (state->corpus_docs == 0) state->corpus_docs = 1;
          }
          const Query q = parse_query(req.query);
          std::map<std::string, std::vector<Posting>> postings;
          for (const std::string& term : q.distinct_terms()) {
            auto reply = n.commod().request(
                state->index, encode_postings_request(term), 3s);
            if (!reply) {
              return encode_error(reply.error().code(),
                                  "index lookup failed: " +
                                      reply.error().to_string());
            }
            auto list = decode_postings_response(reply.value().payload);
            if (!list) {
              return encode_error(list.error().code(),
                                  list.error().to_string());
            }
            postings[term] = std::move(list.value());
          }
          return encode_search_response(
              evaluate_query(q, postings, state->corpus_docs, req.k));
        }
        case Op::stats:
          return encode_stats_response(state->served, 0);
        default:
          return encode_error(ntcs::Errc::unsupported,
                              "search server: unsupported op");
      }
    });
  };
}

ntcs::Result<std::shared_ptr<Corpus>> spawn_ursa(
    ntcs::drts::ProcessController& pc, const UrsaPlacement& placement,
    std::size_t corpus_docs, std::uint64_t seed) {
  auto corpus = std::make_shared<Corpus>(Corpus::generate(corpus_docs, seed));
  auto index = std::make_shared<InvertedIndex>();
  index->add_corpus(*corpus);

  auto idx_uadd = pc.spawn(std::string(kIndexServerName),
                           placement.index_machine, placement.index_net,
                           {{"role", "index"}}, make_index_service(index));
  if (!idx_uadd) return idx_uadd.error();
  auto doc_uadd = pc.spawn(std::string(kDocServerName), placement.doc_machine,
                           placement.doc_net, {{"role", "docs"}},
                           make_doc_service(corpus));
  if (!doc_uadd) return doc_uadd.error();
  auto search_uadd = pc.spawn(std::string(kSearchServerName),
                              placement.search_machine, placement.search_net,
                              {{"role", "search"}}, make_search_service());
  if (!search_uadd) return search_uadd.error();
  return corpus;
}

UrsaHost::UrsaHost(Node& node) : node_(node) {}

ntcs::Status UrsaHost::connect() {
  auto search = node_.commod().locate(kSearchServerName);
  if (!search) return search.error();
  auto docs = node_.commod().locate(kDocServerName);
  if (!docs) return docs.error();
  auto index = node_.commod().locate(kIndexServerName);
  if (!index) return index.error();
  search_ = search.value();
  docs_ = docs.value();
  index_ = index.value();
  connected_ = true;
  return ntcs::Status::success();
}

ntcs::Result<std::vector<SearchHit>> UrsaHost::search(const std::string& query,
                                                      std::size_t k) {
  if (!connected_) {
    return ntcs::Error(ntcs::Errc::bad_argument, "host not connected");
  }
  auto reply =
      node_.commod().request(search_, encode_search_request(query, k), 5s);
  if (!reply) return reply.error();
  return decode_search_response(reply.value().payload);
}

ntcs::Result<Document> UrsaHost::fetch(std::uint64_t doc) {
  if (!connected_) {
    return ntcs::Error(ntcs::Errc::bad_argument, "host not connected");
  }
  auto reply = node_.commod().request(docs_, encode_get_doc_request(doc), 5s);
  if (!reply) return reply.error();
  return decode_doc_response(reply.value().payload);
}

ntcs::Result<std::uint64_t> UrsaHost::add_document(const std::string& title,
                                                   const std::string& text) {
  if (!connected_) {
    return ntcs::Error(ntcs::Errc::bad_argument, "host not connected");
  }
  auto stored =
      node_.commod().request(docs_, encode_add_doc_request(title, text), 5s);
  if (!stored) return stored.error();
  auto id = decode_add_doc_response(stored.value().payload);
  if (!id) return id.error();
  Document doc{id.value(), title, text};
  auto indexed =
      node_.commod().request(index_, encode_index_doc_request(doc), 5s);
  if (!indexed) return indexed.error();
  if (auto st = decode_ok_response(indexed.value().payload); !st.ok()) {
    return st.error();
  }
  return id.value();
}

ntcs::Result<StatsResponse> UrsaHost::index_stats() {
  if (!connected_) {
    return ntcs::Error(ntcs::Errc::bad_argument, "host not connected");
  }
  auto reply = node_.commod().request(index_, encode_stats_request(), 5s);
  if (!reply) return reply.error();
  return decode_stats_response(reply.value().payload);
}

}  // namespace ursa
