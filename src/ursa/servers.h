// servers.h — the URSA backend servers and host interface (paper §1.2).
//
// "The URSA system is based on a number of backend servers (e.g., for
// index lookup, searching, or retrieval of documents), handling requests
// from host processors or user workstations."
//
// Three backends, each a managed NTCS module:
//   * ursa-index  — inverted-index lookup (term -> postings);
//   * ursa-docs   — document retrieval (id -> text);
//   * ursa-search — query evaluation: tokenises the query, fetches
//                   postings from the index server (server-to-server NTCS
//                   traffic), accumulates tf scores, ranks, returns top-k.
// The UrsaHost is the host-processor-side client API.
#pragma once

#include <memory>

#include "core/testbed.h"
#include "drts/process_control.h"
#include "ursa/protocol.h"

namespace ursa {

inline constexpr std::string_view kIndexServerName = "ursa-index";
inline constexpr std::string_view kDocServerName = "ursa-docs";
inline constexpr std::string_view kSearchServerName = "ursa-search";

/// Service loop of the index-lookup backend.
ntcs::drts::ServiceFn make_index_service(std::shared_ptr<InvertedIndex> idx);

/// Service loop of the document-retrieval backend.
ntcs::drts::ServiceFn make_doc_service(std::shared_ptr<Corpus> corpus);

/// Service loop of the search backend (talks to the index server).
ntcs::drts::ServiceFn make_search_service();

/// Placement of the three backends on a testbed.
struct UrsaPlacement {
  std::string index_machine, index_net;
  std::string doc_machine, doc_net;
  std::string search_machine, search_net;
};

/// Spawn a complete URSA deployment through the process controller.
/// Returns the corpus so callers can verify retrieval results.
ntcs::Result<std::shared_ptr<Corpus>> spawn_ursa(
    ntcs::drts::ProcessController& pc, const UrsaPlacement& placement,
    std::size_t corpus_docs = 200, std::uint64_t seed = 7);

/// Host-processor-side API: what a user workstation links against.
class UrsaHost {
 public:
  explicit UrsaHost(ntcs::core::Node& node);

  /// Resolve the backend names once (§1.3: obtain each address once;
  /// relocation is transparent afterwards).
  ntcs::Status connect();

  ntcs::Result<std::vector<SearchHit>> search(const std::string& query,
                                              std::size_t k = 10);
  ntcs::Result<Document> fetch(std::uint64_t doc);
  ntcs::Result<StatsResponse> index_stats();

  /// Add a document to the running system: stored by the doc server,
  /// indexed by the index server, immediately searchable.
  ntcs::Result<std::uint64_t> add_document(const std::string& title,
                                           const std::string& text);

  bool connected() const { return connected_; }

 private:
  ntcs::core::Node& node_;
  ntcs::core::UAdd search_;
  ntcs::core::UAdd docs_;
  ntcs::core::UAdd index_;
  bool connected_ = false;
};

}  // namespace ursa
