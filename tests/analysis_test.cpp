// Tests for the lock-hierarchy validator (common/annotated.h): the
// thread-local held-lock stack must flag a rank inversion the moment one
// is induced, must count it into `analysis.lock_inversions`, and — just
// as important — must stay silent across a real multi-threaded pipelined
// chaos run, proving the ranks assigned throughout src/ describe the
// system's true acquisition order (zero false positives).
//
// The whole suite carries the `analysis` ctest label. It requires the
// validator to be compiled in (CMake option NTCS_LOCK_CHECKS, default ON).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/sched.h"
#include "common/annotated.h"
#include "common/metrics.h"
#include "core/testbed.h"

namespace ntcs {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

#ifndef NTCS_LOCK_RANK_CHECKS
#error "analysis_test requires NTCS_LOCK_CHECKS=ON (the default)"
#endif

std::uint64_t metric_inversions() {
  return metrics::MetricsRegistry::instance()
      .snapshot()
      .value("analysis.lock_inversions");
}

TEST(Analysis, InducedRankInversionIsDetected) {
  // fabric (710) is ranked below lcm.state (300) in acquisition order —
  // taking them inner-to-outer must trip the validator exactly once.
  Mutex low{lockrank::kLcmState, "test.outer"};
  Mutex high{lockrank::kSimnetFabric, "test.inner"};
  const std::uint64_t before = analysis::lock_inversions();
  const std::uint64_t metric_before = metric_inversions();
  {
    LockGuard inner_first(high);
    LockGuard outer_second(low);  // rank 300 while holding rank 710: inversion
  }
  EXPECT_EQ(analysis::lock_inversions(), before + 1);
  EXPECT_EQ(metric_inversions(), metric_before + 1);
}

TEST(Analysis, CorrectOrderIsSilent) {
  Mutex outer{lockrank::kLcmState, "test.outer2"};
  Mutex inner{lockrank::kSimnetFabric, "test.inner2"};
  const std::uint64_t before = analysis::lock_inversions();
  {
    LockGuard a(outer);
    LockGuard b(inner);
  }
  // Re-taking the same pair in order repeatedly stays clean too.
  for (int i = 0; i < 100; ++i) {
    LockGuard a(outer);
    LockGuard b(inner);
  }
  EXPECT_EQ(analysis::lock_inversions(), before);
}

TEST(Analysis, EqualRanksNestedAreAnInversion) {
  // The hierarchy demands *strictly* increasing ranks: two locks of the
  // same rank may never nest (that is exactly the symmetric-deadlock
  // shape: thread 1 takes A then B, thread 2 takes B then A).
  Mutex a{lockrank::kNdState, "test.same_a"};
  Mutex b{lockrank::kNdState, "test.same_b"};
  const std::uint64_t before = analysis::lock_inversions();
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  EXPECT_EQ(analysis::lock_inversions(), before + 1);
}

TEST(Analysis, UnrankedLocksAreExempt) {
  // Four simultaneously-live mutexes, a distinct pair per direction:
  // reusing one pair in both orders would hand ThreadSanitizer's deadlock
  // detector a genuine A<=>B cycle (and scoped pairs recur at the same
  // stack address, which TSan treats as the same mutex).
  Mutex ordered_outer{lockrank::kSimnetFabric, "test.ordered_outer"};
  Mutex exempt_inner;  // kUnranked: test scaffolding opt-out
  Mutex ordered_inner{lockrank::kSimnetFabric, "test.ordered_inner"};
  Mutex exempt_outer;
  const std::uint64_t before = analysis::lock_inversions();
  {
    LockGuard a(ordered_outer);
    LockGuard b(exempt_inner);  // unranked under ranked: fine
  }
  {
    LockGuard a(exempt_outer);
    LockGuard b(ordered_inner);  // ranked under unranked: also fine
  }
  EXPECT_EQ(analysis::lock_inversions(), before);
}

TEST(Analysis, ReleaseRestoresTheStack) {
  // Sequential (non-nested) acquisitions in any rank order are legal: the
  // stack must actually pop on unlock, not just grow.
  Mutex low{lockrank::kLcmState, "test.seq_low"};
  Mutex high{lockrank::kSimnetFabric, "test.seq_high"};
  const std::uint64_t before = analysis::lock_inversions();
  EXPECT_EQ(analysis::held_lock_depth(), 0u);
  { LockGuard g(high); }
  { LockGuard g(low); }  // lower rank than the *released* lock: no inversion
  EXPECT_EQ(analysis::lock_inversions(), before);
  EXPECT_EQ(analysis::held_lock_depth(), 0u);
}

TEST(Analysis, CondVarWaitKeepsBookkeepingExact) {
  // condition_variable_any waits release and reacquire through
  // UniqueLock::unlock()/lock(), so the held-lock stack must read 0 while
  // parked and 1 again after wakeup — with no spurious inversions.
  Mutex mu{lockrank::kLcmRequest, "test.cv"};
  CondVar cv;
  bool ready = false;
  const std::uint64_t before = analysis::lock_inversions();
  std::size_t depth_after_wait = 99;
  std::thread waiter([&] {
    UniqueLock lk(mu);
    cv.wait(lk, [&] { return ready; });
    depth_after_wait = analysis::held_lock_depth();
  });
  {
    // While the waiter is parked its stack must not pin mu: bookkeeping
    // is per-thread, so this thread's acquisition is a plain depth-1 take.
    LockGuard lk(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(depth_after_wait, 1u);
  EXPECT_EQ(analysis::lock_inversions(), before);
}

TEST(Analysis, TryLockParticipates) {
  Mutex low{lockrank::kLcmState, "test.try_low"};
  Mutex high{lockrank::kSimnetFabric, "test.try_high"};
  const std::uint64_t before = analysis::lock_inversions();
  {
    LockGuard g(high);
    ASSERT_TRUE(low.try_lock());  // inversion through try_lock
    low.unlock();
  }
  EXPECT_EQ(analysis::lock_inversions(), before + 1);
}

TEST(Analysis, NspLeaseRankSitsBetweenNspStateAndNameServerDb) {
  // The lease cache's lock (kNspLease = 205) is deliberately ranked above
  // the NSP-Layer's own state (200) and below the Name Server database
  // (210): the lookup path may take nsp.state -> nsp.lease in order, and a
  // request that reaches the server may take the db lock afterwards — but
  // nothing may hold the lease lock *across* an LCM call, because the call
  // path re-enters nsp.state. The first block is the legal order; the
  // second is exactly the hold-across-call shape, and the validator must
  // flag it.
  Mutex state{lockrank::kNspState, "test.nsp_state"};
  Mutex lease{lockrank::kNspLease, "test.nsp_lease"};
  Mutex db{lockrank::kNameServerDb, "test.ns_db"};
  const std::uint64_t before = analysis::lock_inversions();
  {
    LockGuard a(state);
    LockGuard b(lease);
    LockGuard c(db);
  }
  EXPECT_EQ(analysis::lock_inversions(), before);
  {
    LockGuard held_across_call(lease);
    LockGuard call_path(state);  // rank 200 under rank 205: inversion
  }
  EXPECT_EQ(analysis::lock_inversions(), before + 1);
}

// ---- the clean path -------------------------------------------------------
// A real pipelined chaos run: M client threads pushing overlapping
// request_async/await traffic through the full stack (ALI → LCM windows →
// IP → ND fragmentation → fabric) with duplication + reordering faults
// injected, while the naming service and DRTS machinery run their own
// traffic. Every lock in src/ is rank-checked on every acquisition; the
// run must end with zero inversions — the validator has no false
// positives on the system's actual interleavings.
TEST(Analysis, CleanPathPipelinedChaosRunHasZeroInversions) {
  const std::uint64_t before = analysis::lock_inversions();
  {
    core::Testbed tb(1);
    const auto lan = tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    ASSERT_TRUE(tb.start_name_server("m1", "lan").ok());
    ASSERT_TRUE(tb.finalize().ok());

    auto server = tb.spawn_module("server", "m2", "lan").value();
    std::jthread echo([&srv = *server](std::stop_token st) {
      while (!st.stop_requested()) {
        auto in = srv.commod().receive(20ms);
        if (in.ok() && in.value().is_request) {
          (void)srv.commod().reply(in.value().reply_ctx, in.value().payload);
        }
      }
    });

    simnet::FaultPlan plan;
    plan.dup_prob = 0.2;
    plan.reorder_prob = 0.2;
    plan.reorder_window = 300us;
    tb.fabric().set_fault_plan(lan, plan);

    constexpr int kThreads = 4;
    constexpr int kRequestsPerThread = 16;
    std::vector<std::jthread> clients;
    for (int c = 0; c < kThreads; ++c) {
      clients.emplace_back([&tb, c] {
        core::Node node(
            tb.node_config("client" + std::to_string(c), "m1", "lan"));
        ASSERT_TRUE(node.start().ok());
        ASSERT_TRUE(node.commod().register_self().ok());
        auto addr = node.commod().locate("server");
        ASSERT_TRUE(addr.ok()) << addr.error().to_string();
        std::vector<core::RequestTicket> tickets;
        for (int i = 0; i < kRequestsPerThread; ++i) {
          auto t = node.commod().request_async(
              addr.value(), to_bytes(std::to_string(c) + ":" +
                                     std::to_string(i)),
              10s);
          if (t.ok()) tickets.push_back(t.value());
        }
        int answered = 0;
        for (auto& t : tickets) {
          if (node.commod().await(t).ok()) ++answered;
        }
        EXPECT_GT(answered, 0) << "client " << c;
        node.stop();
      });
    }
    clients.clear();  // join
    echo.request_stop();
  }
  EXPECT_EQ(analysis::lock_inversions(), before)
      << "rank inversions detected during the chaos run";
}

// The schedule explorer (src/analysis/sched.h) is the validator's
// systematic counterpart: where the chaos run above proves the ranks
// silent on the schedules that happened to occur, the explorer proves a
// fragment silent on *every* schedule within the bound. A clean build
// must come out of an exhaustive exploration with zero happens-before
// races and zero rank inversions — this is the zero-false-positive
// anchor for the `sched` verify stage.
TEST(Analysis, ExplorerReportsCleanFragmentRaceAndInversionFree) {
  namespace sc = analysis::sched;
  struct Shared {
    Mutex mu{lockrank::kLcmState, "analysis.frag"};
    int value GUARDED_BY(mu) = 0;
  };
  sc::Report rep = sc::explore(
      [] {
        auto st = std::make_shared<Shared>();
        auto bump = [st] {
          LockGuard lk(st->mu);
          ++st->value;
        };
        sc::spawn(bump);
        sc::spawn(bump);
        sc::spawn([st] {
          LockGuard lk(st->mu);
          sc::check(st->value >= 0, "counter must never go negative");
        });
      },
      sc::Options::from_env());
  EXPECT_FALSE(rep.failed) << rep.failure;
  EXPECT_TRUE(rep.complete) << "exploration budget too small";
  EXPECT_EQ(rep.races, 0);
  EXPECT_EQ(rep.inversions, 0);
}

}  // namespace
}  // namespace ntcs
