// backend_harness.h — shared plumbing for the backend-parameterized
// conformance suites (nd_test, integration_test, realnet_test).
//
// The STD-IF contract cases must pass identically over the simulated
// fabric and over real loopback TCP; this header builds the pair of
// STD-IF backends a test rig runs on, for either substrate, plus the
// substrate-specific addresses the contract cases need (an address
// nothing listens on, and an address that is knowable *before* its
// owner binds — the late-binder/retry-on-open case).
#pragma once

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/nd/backend.h"
#include "realnet/tcp_backend.h"
#include "simnet/backend.h"
#include "simnet/phys.h"

namespace ntcs::core::harness {

enum class BackendKind : std::uint8_t { simnet, realnet };

inline const char* backend_param_name(BackendKind k) {
  return k == BackendKind::simnet ? "simnet" : "realnet";
}

/// A loopback port that was bound a moment ago and is now free: connecting
/// to it is refused until somebody binds it. Used both as "nothing listens
/// here" and as a well-known port a late binder will claim.
inline std::uint16_t reserve_loopback_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)), 0);
  socklen_t len = sizeof(sa);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len), 0);
  const std::uint16_t port = ntohs(sa.sin_port);
  ::close(fd);
  return port;
}

/// Two STD-IF backends that can reach each other: two simnet machines
/// (a VAX and a Sun) on one fabric network, or two realnet TcpBackends
/// on loopback (arch labels chosen to match the simnet pair, so identity
/// assertions are substrate-independent).
struct BackendPair {
  // Populated in simnet mode only; null over realnet.
  std::unique_ptr<simnet::Fabric> fabric;
  simnet::NetworkId lan{};
  simnet::MachineId m_a{}, m_b{};

  std::shared_ptr<IpcsBackend> a, b;

  explicit BackendPair(BackendKind kind,
                       simnet::IpcsKind ipcs = simnet::IpcsKind::tcp,
                       std::uint64_t seed = 1) {
    if (kind == BackendKind::simnet) {
      fabric = std::make_unique<simnet::Fabric>(seed);
      lan = fabric->add_network("lan");
      m_a = fabric->add_machine("vax1", convert::Arch::vax780, {lan});
      m_b = fabric->add_machine("sun1", convert::Arch::sun3, {lan});
      a = std::make_shared<simnet::SimnetBackend>(*fabric, m_a, ipcs);
      b = std::make_shared<simnet::SimnetBackend>(*fabric, m_b, ipcs);
    } else {
      realnet::TcpConfig ca;
      ca.arch = convert::Arch::vax780;
      realnet::TcpConfig cb;
      cb.arch = convert::Arch::sun3;
      a = std::make_shared<realnet::TcpBackend>(std::move(ca));
      b = std::make_shared<realnet::TcpBackend>(std::move(cb));
    }
  }

  bool is_simnet() const { return fabric != nullptr; }

  /// A well-formed address nothing listens on: opens are refused (and
  /// therefore retried) until the caller's patience runs out.
  std::string unreachable_phys() const {
    if (is_simnet()) return "tcp:sun1:9";
    return realnet::format_tcp_phys("127.0.0.1", reserve_loopback_port());
  }

  /// The retry-on-open conformance case needs a destination address that
  /// is knowable before the destination binds. Simnet: an MBX pathname
  /// (derived from machine + module name). Realnet: a well-known port
  /// from TcpConfig::fixed_ports — the same mechanism the multi-process
  /// bootstrap uses.
  struct LateBinder {
    std::shared_ptr<IpcsBackend> opener;  // backend the opening side uses
    std::shared_ptr<IpcsBackend> binder;  // backend the late side binds on
    std::string binder_name;              // local_name the late side binds
    std::string known_phys;               // its address, known in advance
  };

  LateBinder late_binder() {
    LateBinder lb;
    lb.binder_name = "late-mod";
    if (is_simnet()) {
      lb.opener = std::make_shared<simnet::SimnetBackend>(
          *fabric, m_a, simnet::IpcsKind::mbx);
      lb.binder = std::make_shared<simnet::SimnetBackend>(
          *fabric, m_b, simnet::IpcsKind::mbx);
      lb.known_phys = simnet::format_mbx_addr("sun1", lb.binder_name);
    } else {
      const std::uint16_t port = reserve_loopback_port();
      realnet::TcpConfig cb;
      cb.arch = convert::Arch::sun3;
      cb.fixed_ports[lb.binder_name] = port;
      lb.opener = a;
      lb.binder = std::make_shared<realnet::TcpBackend>(std::move(cb));
      lb.known_phys = realnet::format_tcp_phys("127.0.0.1", port);
    }
    return lb;
  }
};

}  // namespace ntcs::core::harness
