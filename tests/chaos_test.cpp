// Chaos tests: the fault-injection engine (simnet FaultPlan) driving full
// NTCS stacks — duplication, reordering, corruption and flapping links —
// with the acceptance invariants of a message system that hides substrate
// misbehaviour below the STD-IF: no duplicate delivery to the application,
// monotone per-channel ordering at the ALI, and eventual circuit
// establishment under flapping links (retry-on-open, §2.2).
//
// Every test runs against a fixed fabric seed (NTCS_FABRIC_SEED overrides
// it, which is how scripts/verify.sh sweeps the suite across ten seeds),
// so the injected fault schedule is deterministic; only thread
// interleaving varies run to run, and the assertions are chosen to be
// robust against it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;

/// Fabric seed for every rig below: NTCS_FABRIC_SEED if set, else 1.
std::uint64_t fabric_seed() {
  if (const char* s = std::getenv("NTCS_FABRIC_SEED")) {
    return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 1;
}

/// One LAN, two modules, a Name Server — the smallest stack that exercises
/// registration, locate and application traffic over a faulty network.
struct LanRig {
  Testbed tb;
  simnet::NetworkId lan;
  std::unique_ptr<Node> a, b;

  LanRig() : tb(fabric_seed()) {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    a = tb.spawn_module("a", "m1", "lan").value();
    b = tb.spawn_module("b", "m2", "lan").value();
    lan = tb.fabric().network_by_name("lan").value();
  }

  ~LanRig() {
    a->stop();
    b->stop();
  }
};

/// Two LANs joined by one gateway; the far LAN is where faults go.
struct GatewayRig {
  Testbed tb;
  simnet::NetworkId lan_a, lan_b;
  std::unique_ptr<Node> a, b;

  GatewayRig() : tb(fabric_seed()) {
    tb.net("lan-a");
    tb.net("lan-b");
    tb.machine("m1", Arch::vax780, {"lan-a"});
    tb.machine("gw1", Arch::apollo_dn330, {"lan-a", "lan-b"});
    tb.machine("m2", Arch::sun3, {"lan-b"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan-a").ok());
    EXPECT_TRUE(tb.add_gateway("gw", "gw1", {"lan-a", "lan-b"}).ok());
    EXPECT_TRUE(tb.finalize().ok());
    a = tb.spawn_module("a", "m1", "lan-a").value();
    b = tb.spawn_module("b", "m2", "lan-b").value();
    lan_a = tb.fabric().network_by_name("lan-a").value();
    lan_b = tb.fabric().network_by_name("lan-b").value();
  }

  ~GatewayRig() {
    a->stop();
    b->stop();
  }
};

/// Drain every pending delivery at `n` into a vector of payload strings.
std::vector<std::string> drain(Node& n,
                               std::chrono::nanoseconds quiet = 300ms) {
  std::vector<std::string> got;
  while (true) {
    auto in = n.commod().receive(quiet);
    if (!in.ok()) break;
    got.push_back(to_string(in.value().payload));
  }
  return got;
}

TEST(Chaos, DuplicationNeverReachesTheApplication) {
  // A heavily duplicating network (well past the acceptance point of 0.05):
  // the ND frame sequence numbers eat every copy, so the application sees
  // each message exactly once, in send order — including the name-service
  // request/reply traffic that locate() runs over the same faulty LAN.
  LanRig rig;
  simnet::FaultPlan plan;
  plan.dup_prob = 0.3;
  rig.tb.fabric().set_fault_plan(rig.lan, plan);

  auto addr = rig.a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(
        rig.a->commod().send(addr.value(), to_bytes(std::to_string(i))).ok());
    // Pace the burst so a duplicate's overtake distance stays far inside
    // the receiver's stale window (kFragStaleWindow).
    std::this_thread::sleep_for(200us);
  }
  auto got = drain(*rig.b);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(got[i], std::to_string(i));
  EXPECT_GT(rig.tb.fabric().stats().frames_duplicated, 0u);
  EXPECT_GT(rig.b->nd().stats().frames_deduped, 0u);
}

TEST(Chaos, DuplicationOfFragmentedMessages) {
  // Multi-frame messages under duplication: copies of interior fragments
  // must not corrupt reassembly — each large message arrives intact,
  // exactly once.
  LanRig rig;
  simnet::FaultPlan plan;
  plan.dup_prob = 0.4;
  rig.tb.fabric().set_fault_plan(rig.lan, plan);

  auto addr = rig.a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  Bytes big(8 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  constexpr int kMsgs = 5;
  for (int i = 0; i < kMsgs; ++i) {
    Bytes msg = big;
    msg[0] = static_cast<std::uint8_t>(i);  // tag each message
    ASSERT_TRUE(rig.a->commod().send(addr.value(), msg).ok());
    std::this_thread::sleep_for(1ms);
  }
  int seen = 0;
  while (true) {
    auto in = rig.b->commod().receive(300ms);
    if (!in.ok()) break;
    ASSERT_EQ(in.value().payload.size(), big.size());
    EXPECT_EQ(in.value().payload[0], static_cast<std::uint8_t>(seen));
    ++seen;
  }
  EXPECT_EQ(seen, kMsgs);
  EXPECT_GT(rig.b->nd().stats().frames_deduped, 0u);
}

TEST(Chaos, ReorderingIsHiddenAboveTheStdIf) {
  // Reordered frames either slot back in order or are discarded as stale;
  // what the application sees is a strictly increasing subsequence — never
  // an old message after a newer one.
  LanRig rig;
  simnet::FaultPlan plan;
  plan.reorder_prob = 0.3;
  plan.reorder_window = 300us;
  rig.tb.fabric().set_fault_plan(rig.lan, plan);

  auto addr = rig.a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  constexpr int kMsgs = 100;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(
        rig.a->commod().send(addr.value(), to_bytes(std::to_string(i))).ok());
    std::this_thread::sleep_for(150us);
  }
  auto got = drain(*rig.b);
  ASSERT_FALSE(got.empty());
  int prev = -1;
  for (const std::string& s : got) {
    const int idx = std::stoi(s);
    EXPECT_GT(idx, prev) << "out-of-order delivery at the ALI";
    prev = idx;
  }
  // Reordering may cost individual messages (ND has no retransmission —
  // "failures are simply passed upward") but not more than the tail it
  // displaced.
  EXPECT_GE(got.size(), static_cast<std::size_t>(kMsgs) / 2);
  EXPECT_GT(rig.tb.fabric().stats().frames_reordered, 0u);
}

TEST(Chaos, FlappingGatewayLinkCircuitEventuallyEstablishes) {
  // The gateway's far link flaps with a duty cycle longer than one open
  // attempt but shorter than the full backoff ladder: establishing the
  // 2-hop circuit requires retry-on-open to outwait the down phase.
  GatewayRig rig;
  auto addr = rig.a->commod().locate("b");
  ASSERT_TRUE(addr.ok());

  const auto retries_before = metrics::counter("nd.open_retries").value();
  simnet::FaultPlan plan;
  plan.flap_period = 40ms;
  plan.flap_down = 10ms;  // the cycle starts in its down phase
  rig.tb.fabric().set_fault_plan(rig.lan_b, plan);

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool delivered = false;
  int ping = 0;
  while (!delivered && std::chrono::steady_clock::now() < deadline) {
    // Each attempt is a distinct message: a send can succeed and still be
    // swallowed by a down phase, so the loop keeps probing.
    (void)rig.a->commod().send(addr.value(),
                               to_bytes("ping-" + std::to_string(ping++)));
    delivered = rig.b->commod().receive(100ms).ok();
  }
  EXPECT_TRUE(delivered) << "circuit never established under flapping link";
  const auto retries =
      metrics::counter("nd.open_retries").value() - retries_before;
  EXPECT_GT(retries, 0u);      // backoff actually engaged...
  EXPECT_LT(retries, 10000u);  // ...and did not grow without bound
  EXPECT_GT(rig.tb.fabric().stats().link_flaps, 0u);
}

TEST(Chaos, CorruptionIsContainedAndTheLinkStaysLive) {
  // Corrupted frames are dropped at whatever layer first notices (frame
  // parse, ND decode) or — when only application payload bytes are hit —
  // delivered damaged: the NTCS carries no end-to-end checksum, exactly
  // like the original. The invariant is containment: no crash, no stall,
  // and a clean link once the fault clears.
  LanRig rig;
  auto addr = rig.a->commod().locate("b");
  ASSERT_TRUE(addr.ok());
  simnet::FaultPlan plan;
  plan.corrupt_prob = 0.3;
  plan.corrupt_to_a = false;  // keep b's replies (none here) pristine
  rig.tb.fabric().set_fault_plan(rig.lan, plan);

  constexpr int kMsgs = 50;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(
        rig.a->commod().send(addr.value(), to_bytes(std::to_string(i))).ok());
  }
  auto got = drain(*rig.b, 200ms);
  EXPECT_LE(got.size(), static_cast<std::size_t>(kMsgs));
  EXPECT_GT(rig.tb.fabric().stats().frames_corrupted, 0u);

  // Heal: corruption may have scrambled the receiver's notion of the frame
  // sequence, costing up to a stale-window of subsequent messages; a short
  // probe loop must get through.
  rig.tb.fabric().clear_faults();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  bool healed = false;
  int probe = 0;
  while (!healed && std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(rig.a->commod()
                    .send(addr.value(),
                          to_bytes("clean-" + std::to_string(probe++)))
                    .ok());
    healed = rig.b->commod().receive(100ms).ok();
  }
  EXPECT_TRUE(healed) << "link did not recover after corruption cleared";
}

TEST(Chaos, CombinedFaultsAcceptance) {
  // The ISSUE's acceptance scenario: duplication 0.05 and reordering 0.05
  // on every network plus a flapping gateway link, with name-service
  // traffic and application traffic riding through it. Invariants: no
  // duplicate delivery, monotone ordering at the ALI, circuits established
  // despite the flapping, retry-on-open engaged but bounded.
  GatewayRig rig;
  const auto retries_before = metrics::counter("nd.open_retries").value();

  simnet::FaultPlan near_plan;
  near_plan.dup_prob = 0.05;
  near_plan.reorder_prob = 0.05;
  near_plan.reorder_window = 300us;
  rig.tb.fabric().set_fault_plan(rig.lan_a, near_plan);
  simnet::FaultPlan far_plan = near_plan;
  far_plan.flap_period = 40ms;
  far_plan.flap_down = 8ms;
  rig.tb.fabric().set_fault_plan(rig.lan_b, far_plan);

  // Name-service traffic under faults (lan-a only, no flap there).
  auto deadline = std::chrono::steady_clock::now() + 5s;
  Result<UAdd> addr = Error(Errc::timeout, "not yet located");
  while (!addr.ok() && std::chrono::steady_clock::now() < deadline) {
    addr = rig.a->commod().locate("b");
  }
  ASSERT_TRUE(addr.ok()) << "locate never succeeded under faults";

  // Guarantee at least one open retry: partition the far network so the
  // gateway's first EXTEND open fails, and heal it once the retry counter
  // moves. The flap plan alone cannot promise a retry — on a loaded
  // machine (TSan, parallel jobs) the first open can thread an up phase.
  rig.tb.fabric().set_partitioned(rig.lan_b, true);
  (void)rig.a->commod().send(addr.value(), to_bytes("ping-prime"));
  auto retry_deadline = std::chrono::steady_clock::now() + 5s;
  while (metrics::counter("nd.open_retries").value() == retries_before &&
         std::chrono::steady_clock::now() < retry_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  rig.tb.fabric().set_partitioned(rig.lan_b, false);

  // Establish the 2-hop circuit through the flapping link.
  deadline = std::chrono::steady_clock::now() + 10s;
  bool established = false;
  int ping = 0;
  while (!established && std::chrono::steady_clock::now() < deadline) {
    (void)rig.a->commod().send(addr.value(),
                               to_bytes("ping-" + std::to_string(ping++)));
    established = rig.b->commod().receive(100ms).ok();
  }
  ASSERT_TRUE(established) << "circuit never established under faults";

  // Application burst. Down phases may eat messages (the fabric drops
  // silently, like a real dead link); duplication and reordering must
  // still be invisible.
  constexpr int kMsgs = 100;
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_TRUE(rig.a->commod()
                    .send(addr.value(), to_bytes("msg-" + std::to_string(i)))
                    .ok());
    std::this_thread::sleep_for(300us);
  }
  int prev = -1;
  int received = 0;
  bool saw_dup = false;
  while (true) {
    auto in = rig.b->commod().receive(300ms);
    if (!in.ok()) break;
    const std::string s = to_string(in.value().payload);
    if (s.rfind("msg-", 0) != 0) continue;  // a straggling ping
    const int idx = std::stoi(s.substr(4));
    if (idx <= prev) saw_dup = true;
    prev = idx;
    ++received;
  }
  EXPECT_FALSE(saw_dup) << "duplicate or out-of-order delivery at the ALI";
  EXPECT_GE(received, kMsgs / 3);  // flap loss, not collapse
  const auto retries =
      metrics::counter("nd.open_retries").value() - retries_before;
  EXPECT_GT(retries, 0u);
  EXPECT_LT(retries, 10000u);
  const auto fab = rig.tb.fabric().stats();
  EXPECT_GT(fab.frames_duplicated, 0u);
  EXPECT_GT(fab.frames_reordered, 0u);
  EXPECT_GT(fab.link_flaps, 0u);
}

}  // namespace
}  // namespace ntcs::core
