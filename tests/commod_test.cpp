// Tests for the ComMod / ALI-Layer (S10): parameter checking, error
// tailoring, the schema payload helpers, and the utility primitives —
// the "thin veneer" (§2.4) behaviours.
#include <gtest/gtest.h>

#include "core/testbed.h"

namespace ntcs::core {
namespace {

using namespace std::chrono_literals;
using convert::Arch;
using convert::FieldType;
using convert::MessageSchema;

struct Rig {
  Testbed tb;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;

  Rig() {
    tb.net("lan");
    tb.machine("m1", Arch::vax780, {"lan"});
    tb.machine("m2", Arch::sun3, {"lan"});
    EXPECT_TRUE(tb.start_name_server("m1", "lan").ok());
    EXPECT_TRUE(tb.finalize().ok());
    a = tb.spawn_module("a", "m1", "lan").value();
    b = tb.spawn_module("b", "m2", "lan").value();
  }
  ~Rig() {
    a->stop();
    b->stop();
  }
};

TEST(ComMod, LocateRejectsEmptyName) {
  Rig rig;
  EXPECT_EQ(rig.a->commod().locate("").code(), Errc::bad_argument);
}

TEST(ComMod, LocateAttrsRejectsEmptySet) {
  Rig rig;
  EXPECT_EQ(rig.a->commod().locate_attrs({}).code(), Errc::bad_argument);
}

TEST(ComMod, SelfReportsIdentity) {
  Rig rig;
  EXPECT_EQ(rig.a->commod().self(), rig.a->identity().uadd());
  EXPECT_EQ(rig.a->commod().name(), "a");
  EXPECT_EQ(rig.a->commod().arch(), Arch::vax780);
}

TEST(ComMod, PingNameServer) {
  Rig rig;
  EXPECT_TRUE(rig.a->commod().ping_name_server().ok());
}

TEST(ComMod, RegisterTwiceCreatesNewGeneration) {
  Rig rig;
  const UAdd first = rig.a->commod().self();
  auto second = rig.a->commod().register_self();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value(), first);
  EXPECT_EQ(rig.a->commod().self(), second.value());
}

TEST(ComMod, PayloadForFixedSchemaCarriesImageAndPack) {
  Rig rig;
  MessageSchema schema("m", {{"x", FieldType::u32}});
  auto rec = schema.make_record();
  ASSERT_TRUE(rec.set_u64("x", 9).ok());
  auto payload = rig.a->commod().payload_for(rec);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value().image.size(), schema.image_size());
  ASSERT_TRUE(static_cast<bool>(payload.value().pack));
  auto packed = payload.value().pack();
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(schema.unpack(packed.value()).value(), rec);
}

TEST(ComMod, PayloadForVariableSchemaIsPackedOnly) {
  Rig rig;
  MessageSchema schema("v", {{"s", FieldType::string}});
  auto rec = schema.make_record();
  ASSERT_TRUE(rec.set_string("s", "variable").ok());
  auto payload = rig.a->commod().payload_for(rec);
  ASSERT_TRUE(payload.ok());
  EXPECT_FALSE(static_cast<bool>(payload.value().pack));
  // The image *is* the packed stream (characters, representation-free).
  EXPECT_EQ(schema.unpack(payload.value().image).value(), rec);
}

TEST(ComMod, VariableSchemaSurvivesHeterogeneousPair) {
  Rig rig;  // a = VAX (little), b = Sun (big)
  MessageSchema schema("v", {{"n", FieldType::u64}, {"s", FieldType::string}});
  auto rec = schema.make_record();
  ASSERT_TRUE(rec.set_u64("n", 0x1122334455667788ULL).ok());
  ASSERT_TRUE(rec.set_string("s", "var len").ok());
  auto addr = rig.a->commod().locate("b").value();
  auto payload = rig.a->commod().payload_for(rec).value();
  ASSERT_TRUE(rig.a->commod().send(addr, payload).ok());
  auto in = rig.b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  auto decoded = rig.b->commod().decode(in.value(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), rec);
}

TEST(ComMod, DecodeWithWrongSchemaFails) {
  Rig rig;
  MessageSchema s1("one", {{"x", FieldType::u32}});
  MessageSchema s2("two", {{"x", FieldType::u32}});
  auto rec = s1.make_record();
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(
      rig.a->commod().send(addr, rig.a->commod().payload_for(rec).value())
          .ok());
  auto in = rig.b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  // Same arch pair? a is VAX, b is Sun → packed mode → type tag mismatch.
  EXPECT_FALSE(rig.b->commod().decode(in.value(), s2).ok());
}

TEST(ComMod, ReplyOversizeRejected) {
  Rig rig;
  auto addr = rig.a->commod().locate("b").value();
  ASSERT_TRUE(rig.a->commod().send(addr, to_bytes("x")).ok());
  auto in = rig.b->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  ReplyCtx fake_ctx;  // invalid ctx → bad_argument, big payload → too_big
  Bytes huge(kMaxAppMessage + 1, 0);
  EXPECT_EQ(rig.b->commod().reply(fake_ctx, huge).code(), Errc::too_big);
}

TEST(ComMod, DeregisterMakesModuleUnlocatable) {
  Rig rig;
  ASSERT_TRUE(rig.b->commod().deregister().ok());
  EXPECT_EQ(rig.a->commod().locate("b").code(), Errc::not_found);
}

TEST(ComMod, RequestToSelfEchoLoop) {
  // A module may converse with itself through the full stack (useful for
  // testing a server's own protocol path).
  Rig rig;
  ASSERT_TRUE(rig.a->commod().send(rig.a->commod().self(),
                                   to_bytes("note to self")).ok());
  auto in = rig.a->commod().receive(2s);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(to_string(in.value().payload), "note to self");
  EXPECT_EQ(in.value().src, rig.a->commod().self());
}

}  // namespace
}  // namespace ntcs::core
