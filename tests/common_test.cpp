// Unit tests for the utility substrate (S1): bytes, errors, queues, RNG,
// logging.
#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.h"
#include "common/error.h"
#include "common/log.h"
#include "common/queue.h"
#include "common/rng.h"

namespace ntcs {
namespace {

using namespace std::chrono_literals;

TEST(Bytes, RoundTripString) {
  Bytes b = to_bytes("hello NTCS");
  EXPECT_EQ(to_string(b), "hello NTCS");
}

TEST(Bytes, AppendConcatenates) {
  Bytes a = to_bytes("abc");
  append(a, to_bytes("def"));
  EXPECT_EQ(to_string(a), "abcdef");
}

TEST(Bytes, HexDumpTruncates) {
  Bytes b(100, 0xAB);
  const std::string dump = hex_dump(b, 4);
  EXPECT_EQ(dump, "ab ab ab ab ...");
}

TEST(Bytes, HexDumpEmpty) { EXPECT_EQ(hex_dump(Bytes{}), ""); }

TEST(Error, NamesAreStable) {
  EXPECT_EQ(errc_name(Errc::ok), "ok");
  EXPECT_EQ(errc_name(Errc::address_fault), "address_fault");
  EXPECT_EQ(errc_name(Errc::still_alive), "still_alive");
  EXPECT_EQ(errc_name(Errc::recursion_limit), "recursion_limit");
}

TEST(Error, ToStringIncludesContext) {
  Error e(Errc::timeout, "waiting for reply");
  EXPECT_EQ(e.to_string(), "timeout: waiting for reply");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
}

TEST(Result, HoldsError) {
  Result<int> r = Error(Errc::not_found, "nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::not_found);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesError) {
  Status s(Errc::closed, "endpoint gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::closed);
}

TEST(Queue, FifoOrder) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(1).ok());
  ASSERT_TRUE(q.push(2).ok());
  ASSERT_TRUE(q.push(3).ok());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(Queue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto r = q.pop_for(5ms);
  EXPECT_EQ(r.code(), Errc::timeout);
}

TEST(Queue, CloseWakesWaiter) {
  BlockingQueue<int> q;
  std::thread t([&] {
    auto r = q.pop();
    EXPECT_EQ(r.code(), Errc::closed);
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  t.join();
}

TEST(Queue, DrainsAfterClose) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(9).ok());
  q.close();
  EXPECT_EQ(q.pop().value(), 9);
  EXPECT_EQ(q.pop().code(), Errc::closed);
  EXPECT_FALSE(q.push(10).ok());
}

TEST(Queue, CapacityLimitsPush) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.push(1).ok());
  EXPECT_TRUE(q.push(2).ok());
  EXPECT_EQ(q.push(3).code(), Errc::no_resource);
}

TEST(Queue, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  ASSERT_TRUE(q.push(5).ok());
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Queue, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) (void)q.push(i);
    });
  }
  int seen = 0;
  while (seen < kProducers * kPerProducer) {
    auto r = q.pop_for(1s);
    ASSERT_TRUE(r.ok());
    ++seen;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(seen, kProducers * kPerProducer);
}

TEST(Rng, Deterministic) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  Rng r(77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    const auto v = r.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(42);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(Log, CaptureRecordsByLayer) {
  Log::instance().set_capture(true);
  Log::instance().clear_captured();
  LayerLog lcm("lcm", "modA");
  LayerLog nd("nd", "modB");
  lcm.info("hello");
  nd.debug("world");
  auto records = Log::instance().captured();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].layer, "lcm");
  EXPECT_EQ(records[0].module, "modA");
  EXPECT_EQ(records[1].layer, "nd");
  Log::instance().set_capture(false);
}

TEST(Log, SelectivePerLayerLevels) {
  Log::instance().set_layer_level("nd", LogLevel::trace);
  Log::instance().set_default_level(LogLevel::warn);
  EXPECT_TRUE(Log::instance().enabled(LogLevel::trace, "nd"));
  EXPECT_FALSE(Log::instance().enabled(LogLevel::trace, "ip"));
  Log::instance().set_layer_level("nd", LogLevel::warn);
}

}  // namespace
}  // namespace ntcs
