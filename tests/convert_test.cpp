// Unit + property tests for the conversion layer (S3): machine types,
// shift mode, packed mode, image mode, schema codegen, mode selection.
#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "convert/image.h"
#include "convert/machine.h"
#include "convert/mode.h"
#include "convert/packed.h"
#include "convert/schema.h"
#include "convert/shift.h"

namespace ntcs::convert {
namespace {

constexpr Arch kAllArchs[] = {Arch::vax780, Arch::microvax,
                              Arch::sun2,   Arch::sun3,
                              Arch::apollo_dn330, Arch::pdp11_70};

// ---------------------------------------------------------------- machine

TEST(Machine, WireIdsRoundTrip) {
  for (Arch a : kAllArchs) {
    auto back = arch_from_wire_id(arch_wire_id(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(arch_from_wire_id(999).has_value());
}

TEST(Machine, ByteOrdersMatchHistory) {
  EXPECT_EQ(byte_order(Arch::vax780), ByteOrder::little);
  EXPECT_EQ(byte_order(Arch::microvax), ByteOrder::little);
  EXPECT_EQ(byte_order(Arch::sun2), ByteOrder::big);
  EXPECT_EQ(byte_order(Arch::sun3), ByteOrder::big);
  EXPECT_EQ(byte_order(Arch::apollo_dn330), ByteOrder::big);
  EXPECT_EQ(byte_order(Arch::pdp11_70), ByteOrder::pdp_mid);
}

TEST(Machine, ImageCompatibilityIsByteOrderEquality) {
  EXPECT_TRUE(image_compatible(Arch::vax780, Arch::microvax));
  EXPECT_TRUE(image_compatible(Arch::sun2, Arch::apollo_dn330));
  EXPECT_FALSE(image_compatible(Arch::vax780, Arch::sun3));
  EXPECT_FALSE(image_compatible(Arch::pdp11_70, Arch::vax780));
  EXPECT_FALSE(image_compatible(Arch::pdp11_70, Arch::sun3));
}

TEST(Mode, ChooseAvoidsNeedlessConversions) {
  // §5: "Messages between identical machines are simply byte-copied."
  for (Arch a : kAllArchs) {
    EXPECT_EQ(choose_mode(a, a), XferMode::image);
  }
  EXPECT_EQ(choose_mode(Arch::vax780, Arch::sun3), XferMode::packed);
  EXPECT_EQ(choose_mode(Arch::sun3, Arch::apollo_dn330), XferMode::image);
}

TEST(Mode, IdenticalArchPairsNeverLeaveImageModeAndCountersProveIt) {
  // The convert.mode.* counters are the auditable form of the "no needless
  // conversions" claim: N mode decisions between representation-identical
  // machines must read as N image picks and zero packed picks.
  metrics::Snapshot before =
      metrics::MetricsRegistry::instance().snapshot();
  std::uint64_t decisions = 0;
  for (Arch a : kAllArchs) {
    EXPECT_EQ(choose_mode(a, a), XferMode::image);
    ++decisions;
  }
  // Distinct machines with the same byte order are just as
  // representation-identical as a machine with itself (§5).
  constexpr std::pair<Arch, Arch> kSameOrderPairs[] = {
      {Arch::vax780, Arch::microvax},
      {Arch::sun2, Arch::sun3},
      {Arch::sun3, Arch::apollo_dn330},
  };
  for (auto [src, dst] : kSameOrderPairs) {
    EXPECT_EQ(choose_mode(src, dst), XferMode::image);
    EXPECT_EQ(choose_mode(dst, src), XferMode::image);
    decisions += 2;
  }
  metrics::Snapshot d =
      metrics::MetricsRegistry::instance().snapshot().delta(before);
  EXPECT_EQ(d.value("convert.mode.image"), decisions);
  EXPECT_EQ(d.value("convert.mode.packed"), 0u);
}

// ---------------------------------------------------------------- shift

TEST(Shift, U32CanonicalBytes) {
  Bytes out;
  ShiftWriter w(out);
  w.put_u32(0x11223344);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[1], 0x22);
  EXPECT_EQ(out[2], 0x33);
  EXPECT_EQ(out[3], 0x44);
}

TEST(Shift, RoundTripAllTypes) {
  Bytes out;
  ShiftWriter w(out);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i32(-42);
  w.put_raw(std::string_view("xyz"));
  ShiftReader r(out);
  EXPECT_EQ(r.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i32().value(), -42);
  EXPECT_EQ(r.get_raw_string(3).value(), "xyz");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Shift, UnderrunIsError) {
  Bytes out;
  ShiftWriter w(out);
  w.put_u32(7);
  ShiftReader r(out);
  EXPECT_TRUE(r.get_u32().ok());
  EXPECT_EQ(r.get_u32().code(), Errc::bad_message);
  EXPECT_EQ(r.get_u64().code(), Errc::bad_message);
}

TEST(Shift, BitFields) {
  std::uint32_t word = 0;
  word = field_set(word, 0, 8, 0xAB);
  word = field_set(word, 8, 4, 0xC);
  word = field_set(word, 31, 1, 1);
  EXPECT_EQ(field_get(word, 0, 8), 0xABu);
  EXPECT_EQ(field_get(word, 8, 4), 0xCu);
  EXPECT_EQ(field_get(word, 31, 1), 1u);
  word = field_set(word, 31, 1, 0);
  EXPECT_EQ(field_get(word, 31, 1), 0u);
  EXPECT_EQ(field_get(word, 0, 8), 0xABu);  // neighbours untouched
}

TEST(Shift, FullWidthField) {
  std::uint32_t word = field_set(0, 0, 32, 0xFFFFFFFFu);
  EXPECT_EQ(field_get(word, 0, 32), 0xFFFFFFFFu);
}

TEST(Shift, PropertyRandomRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v32 = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t v64 = rng.next();
    Bytes out;
    ShiftWriter w(out);
    w.put_u32(v32);
    w.put_u64(v64);
    ShiftReader r(out);
    EXPECT_EQ(r.get_u32().value(), v32);
    EXPECT_EQ(r.get_u64().value(), v64);
  }
}

// ---------------------------------------------------------------- packed

TEST(Packed, RoundTripAllTypes) {
  Packer p;
  p.put_i64(-1234567890123LL);
  p.put_u64(18446744073709551615ULL);
  p.put_f64(3.14159265358979);
  p.put_string("hello | world ; with delimiters");
  p.put_bytes(Bytes{0x00, 0xFF, 0x7F, 0x80});
  p.put_bool(true);
  p.put_bool(false);

  Unpacker u(p.data());
  EXPECT_EQ(u.get_i64().value(), -1234567890123LL);
  EXPECT_EQ(u.get_u64().value(), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(u.get_f64().value(), 3.14159265358979);
  EXPECT_EQ(u.get_string().value(), "hello | world ; with delimiters");
  EXPECT_EQ(u.get_bytes().value(), (Bytes{0x00, 0xFF, 0x7F, 0x80}));
  EXPECT_TRUE(u.get_bool().value());
  EXPECT_FALSE(u.get_bool().value());
  EXPECT_TRUE(u.at_end());
}

TEST(Packed, StreamIsPureCharacters) {
  // §5.1: the transport format is a character representation — safe on any
  // machine with a common character set.
  Packer p;
  p.put_i64(-42);
  p.put_string("text");
  for (std::uint8_t b : p.data()) {
    EXPECT_GE(b, 0x20u);
    EXPECT_LT(b, 0x7Fu);
  }
}

TEST(Packed, TagMismatchFailsLoudly) {
  Packer p;
  p.put_i64(5);
  Unpacker u(p.data());
  EXPECT_EQ(u.get_string().code(), Errc::conversion_error);
}

TEST(Packed, TruncatedStreamFails) {
  Packer p;
  p.put_string("abcdef");
  Bytes cut(p.data().begin(), p.data().begin() + 4);
  Unpacker u(cut);
  EXPECT_EQ(u.get_string().code(), Errc::conversion_error);
}

TEST(Packed, EmptyStringAndBytes) {
  Packer p;
  p.put_string("");
  p.put_bytes({});
  Unpacker u(p.data());
  EXPECT_EQ(u.get_string().value(), "");
  EXPECT_TRUE(u.get_bytes().value().empty());
}

TEST(Packed, PropertyRandomValues) {
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const std::int64_t vi = static_cast<std::int64_t>(rng.next());
    const std::uint64_t vu = rng.next();
    std::string s;
    const auto len = rng.next_below(64);
    for (std::uint64_t c = 0; c < len; ++c) {
      s.push_back(static_cast<char>(rng.next_in(0, 255)));
    }
    Packer p;
    p.put_i64(vi);
    p.put_u64(vu);
    p.put_string(s);
    Unpacker u(p.data());
    EXPECT_EQ(u.get_i64().value(), vi);
    EXPECT_EQ(u.get_u64().value(), vu);
    EXPECT_EQ(u.get_string().value(), s);
  }
}

// ---------------------------------------------------------------- image

struct ArchPair {
  Arch src;
  Arch dst;
};

class ImageAllPairs : public ::testing::TestWithParam<ArchPair> {};

TEST_P(ImageAllPairs, SameRepresentationReadsBack) {
  // Reading an image with the *same* byte order always succeeds; with a
  // different one, multi-byte values are scrambled — which is exactly why
  // the NTCS must pick packed mode there.
  const auto [src, dst] = GetParam();
  ImageWriter w(src);
  w.put_u32(0x01020304);
  w.put_u16(0xA0B0);
  w.put_u64(0x1122334455667788ULL);
  ImageReader r(w.data(), dst);
  const std::uint32_t v32 = r.get_u32().value();
  const std::uint16_t v16 = r.get_u16().value();
  const std::uint64_t v64 = r.get_u64().value();
  if (image_compatible(src, dst)) {
    EXPECT_EQ(v32, 0x01020304u);
    EXPECT_EQ(v16, 0xA0B0u);
    EXPECT_EQ(v64, 0x1122334455667788ULL);
  } else {
    // At least one of the fields must be corrupted.
    EXPECT_TRUE(v32 != 0x01020304u || v16 != 0xA0B0u ||
                v64 != 0x1122334455667788ULL);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchPairs, ImageAllPairs, [] {
      std::vector<ArchPair> pairs;
      for (Arch s : kAllArchs) {
        for (Arch d : kAllArchs) pairs.push_back({s, d});
      }
      return ::testing::ValuesIn(pairs);
    }(),
    [](const ::testing::TestParamInfo<ArchPair>& info) {
      return std::string(arch_name(info.param.src)) + "_to_" +
             std::string(arch_name(info.param.dst));
    });

TEST(Image, VaxLayoutIsLittleEndian) {
  ImageWriter w(Arch::vax780);
  w.put_u32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Image, SunLayoutIsBigEndian) {
  ImageWriter w(Arch::sun3);
  w.put_u32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(Image, Pdp11MiddleEndian32) {
  // PDP-11: little-endian 16-bit words, most-significant word first.
  ImageWriter w(Arch::pdp11_70);
  w.put_u32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x02);
  EXPECT_EQ(w.data()[1], 0x01);
  EXPECT_EQ(w.data()[2], 0x04);
  EXPECT_EQ(w.data()[3], 0x03);
}

TEST(Image, CharsAreOrderFree) {
  ImageWriter w(Arch::vax780);
  w.put_chars("ursa", 8);
  ImageReader r(w.data(), Arch::sun3);  // incompatible ints, same chars
  EXPECT_EQ(r.get_chars(8).value(), "ursa");
}

TEST(Image, CharsTruncateAndPad) {
  ImageWriter w(Arch::sun3);
  w.put_chars("much-too-long", 4);
  EXPECT_EQ(w.data().size(), 4u);
  ImageReader r(w.data(), Arch::sun3);
  EXPECT_EQ(r.get_chars(4).value(), "much");
}

TEST(Image, F64RoundTripSameArch) {
  for (Arch a : kAllArchs) {
    ImageWriter w(a);
    w.put_f64(-2.718281828459045);
    ImageReader r(w.data(), a);
    EXPECT_DOUBLE_EQ(r.get_f64().value(), -2.718281828459045);
  }
}

TEST(Image, UnderrunFails) {
  ImageWriter w(Arch::sun3);
  w.put_u16(1);
  ImageReader r(w.data(), Arch::sun3);
  EXPECT_EQ(r.get_u32().code(), Errc::conversion_error);
}

// ---------------------------------------------------------------- schema

MessageSchema fixed_schema() {
  return MessageSchema("fixed", {{"a", FieldType::u8},
                                 {"b", FieldType::u16},
                                 {"c", FieldType::u32},
                                 {"d", FieldType::u64},
                                 {"e", FieldType::i64},
                                 {"f", FieldType::f64},
                                 {"g", FieldType::chars, 12}});
}

MessageSchema var_schema() {
  return MessageSchema("variable", {{"n", FieldType::u32},
                                    {"s", FieldType::string},
                                    {"b", FieldType::bytes}});
}

Record fill_fixed(const MessageSchema& s) {
  Record r = s.make_record();
  EXPECT_TRUE(r.set_u64("a", 200).ok());
  EXPECT_TRUE(r.set_u64("b", 50000).ok());
  EXPECT_TRUE(r.set_u64("c", 0xCAFEBABE).ok());
  EXPECT_TRUE(r.set_u64("d", 0x0123456789ABCDEFULL).ok());
  EXPECT_TRUE(r.set_i64("e", -987654321).ok());
  EXPECT_TRUE(r.set_f64("f", 1.5).ok());
  EXPECT_TRUE(r.set_string("g", "hello").ok());
  return r;
}

TEST(Schema, FixedSizeComputation) {
  auto s = fixed_schema();
  EXPECT_TRUE(s.fixed_size());
  EXPECT_EQ(s.image_size(), 1u + 2 + 4 + 8 + 8 + 8 + 12);
  EXPECT_FALSE(var_schema().fixed_size());
}

TEST(Schema, PackUnpackRoundTrip) {
  auto s = fixed_schema();
  Record r = fill_fixed(s);
  auto packed = s.pack(r);
  ASSERT_TRUE(packed.ok());
  auto back = s.unpack(packed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), r);
}

TEST(Schema, TypeTagInStreamChecked) {
  auto s1 = fixed_schema();
  MessageSchema s2("other", {{"a", FieldType::u8}});
  auto packed = s2.pack(s2.make_record());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(s1.unpack(packed.value()).code(), Errc::conversion_error);
}

class SchemaImageAllPairs : public ::testing::TestWithParam<ArchPair> {};

TEST_P(SchemaImageAllPairs, ImageFaithfulIffCompatible) {
  const auto [src, dst] = GetParam();
  auto s = fixed_schema();
  Record r = fill_fixed(s);
  auto image = s.to_image(r, src);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().size(), s.image_size());
  auto back = s.from_image(image.value(), dst);
  ASSERT_TRUE(back.ok());
  if (image_compatible(src, dst)) {
    EXPECT_EQ(back.value(), r);
  } else {
    EXPECT_NE(back.value(), r);  // integers scrambled
    // ...but the chars field survives (single bytes).
    EXPECT_EQ(back.value().get_string("g").value(), "hello");
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllArchPairs, SchemaImageAllPairs, [] {
      std::vector<ArchPair> pairs;
      for (Arch s : kAllArchs) {
        for (Arch d : kAllArchs) pairs.push_back({s, d});
      }
      return ::testing::ValuesIn(pairs);
    }(),
    [](const ::testing::TestParamInfo<ArchPair>& info) {
      return std::string(arch_name(info.param.src)) + "_to_" +
             std::string(arch_name(info.param.dst));
    });

TEST(Schema, VariableSchemaRejectsImageMode) {
  auto s = var_schema();
  EXPECT_EQ(s.to_image(s.make_record(), Arch::sun3).code(),
            Errc::unsupported);
}

TEST(Schema, VariableSchemaPacksEverything) {
  auto s = var_schema();
  Record r = s.make_record();
  ASSERT_TRUE(r.set_u64("n", 3).ok());
  ASSERT_TRUE(r.set_string("s", "variable length here").ok());
  ASSERT_TRUE(r.set_bytes("b", Bytes{1, 2, 3}).ok());
  auto packed = s.pack(r);
  ASSERT_TRUE(packed.ok());
  auto back = s.unpack(packed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), r);
}

TEST(Schema, FieldTypeEnforcement) {
  auto s = fixed_schema();
  Record r = s.make_record();
  EXPECT_EQ(r.set_string("a", "not a number").code(), Errc::bad_argument);
  EXPECT_EQ(r.set_u64("e", 1).code(), Errc::bad_argument);
  EXPECT_EQ(r.set_u64("missing", 1).code(), Errc::not_found);
  EXPECT_EQ(r.get_i64("a").code(), Errc::bad_argument);
}

TEST(Schema, CharsOverflowRejected) {
  auto s = fixed_schema();
  Record r = s.make_record();
  EXPECT_EQ(r.set_string("g", "way more than twelve characters").code(),
            Errc::too_big);
}

TEST(Schema, ImageSizeMismatchRejected) {
  auto s = fixed_schema();
  Bytes wrong(s.image_size() + 1, 0);
  EXPECT_EQ(s.from_image(wrong, Arch::sun3).code(), Errc::conversion_error);
}

TEST(Schema, PropertyRandomRecordsAllArchPairs) {
  Rng rng(123);
  auto s = fixed_schema();
  for (int i = 0; i < 50; ++i) {
    Record r = s.make_record();
    ASSERT_TRUE(r.set_u64("a", rng.next_below(256)).ok());
    ASSERT_TRUE(r.set_u64("b", rng.next_below(65536)).ok());
    ASSERT_TRUE(r.set_u64("c", rng.next() & 0xFFFFFFFF).ok());
    ASSERT_TRUE(r.set_u64("d", rng.next()).ok());
    ASSERT_TRUE(r.set_i64("e", static_cast<std::int64_t>(rng.next())).ok());
    ASSERT_TRUE(r.set_f64("f", rng.next_double() * 1e6).ok());
    // Same-order pair: image round trip. Any pair: pack round trip.
    const Arch a = kAllArchs[rng.next_below(6)];
    auto image = s.to_image(r, a);
    ASSERT_TRUE(image.ok());
    EXPECT_EQ(s.from_image(image.value(), a).value(), r);
    auto packed = s.pack(r);
    ASSERT_TRUE(packed.ok());
    EXPECT_EQ(s.unpack(packed.value()).value(), r);
  }
}

}  // namespace
}  // namespace ntcs::convert
